// Bench: C10K-style connection scale for the epoll server core (net/server).
//
// One hdserver-shaped HttpServer process must sustain >= 10,000 concurrent
// idle keep-alive connections with a HANDFUL of threads (io_threads=4,
// loop_threads=2), serve sampled requests over those held connections, and
// shed precisely at the configured --max-connections bound — NOT at any
// thread count. The thread-per-connection core this replaced admitted at
// min(max_connections, thread budget); the property under test here is that
// admission is io_threads-independent.
//
// Process layout: this container caps RLIMIT_NOFILE at 20,000 and a single
// process cannot hold both ends of 10k sockets, so the client side runs in
// a forked CHILD (fork happens before the server spawns any threads). The
// port travels parent->child over a pipe; phase sync is a byte each way.
//
// Exit code 1 if fewer than kConnections are held simultaneously, if any
// connection is shed below the bound, or if no shed occurs beyond it.
// HTD_BENCH_CONNECTIONS overrides the default 10,000.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/server.h"
#include "util/socket.h"

namespace htd::bench {
namespace {

constexpr int kDefaultConnections = 10000;
constexpr int kShedProbes = 64;      ///< extra connections past the bound
constexpr int kBoundHeadroom = 16;   ///< max_connections = N + this

int Connections() {
  const char* env = std::getenv("HTD_BENCH_CONNECTIONS");
  if (env == nullptr) return kDefaultConnections;
  int value = std::atoi(env);
  return value > 0 ? value : kDefaultConnections;
}

void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

bool ReadByte(int fd) {
  char byte;
  return ::read(fd, &byte, 1) == 1;
}

void WriteByte(int fd) {
  char byte = '!';
  [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
}

/// One keep-alive request over an already-held connection; true on HTTP 200.
bool SampleRequest(int fd) {
  if (!htd::util::SendAll(fd, "GET /ping HTTP/1.1\r\nHost: bench\r\n\r\n")) {
    return false;
  }
  htd::util::SetRecvTimeout(fd, 30.0);
  htd::net::HttpResponseParser parser;
  char buffer[4096];
  while (true) {
    long n = htd::util::RecvSome(fd, buffer, sizeof(buffer));
    if (n <= 0) return false;
    auto state = parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
    if (state == htd::net::HttpResponseParser::State::kDone) {
      return parser.status() == 200;
    }
    if (state == htd::net::HttpResponseParser::State::kError) return false;
  }
}

int RunClient(int port_pipe, int notify_pipe, int go_pipe) {
  // Port arrives as a text line.
  char text[16] = {0};
  size_t off = 0;
  while (off < sizeof(text) - 1) {
    char c;
    if (::read(port_pipe, &c, 1) != 1) return 1;
    if (c == '\n') break;
    text[off++] = c;
  }
  int port = std::atoi(text);
  if (port <= 0) return 1;
  const int target = Connections();

  auto start = std::chrono::steady_clock::now();
  std::vector<htd::util::Socket> held;
  held.reserve(static_cast<size_t>(target));
  for (int i = 0; i < target; ++i) {
    auto sock = htd::util::ConnectTcp("127.0.0.1", port, 30.0);
    if (!sock.ok()) {
      std::fprintf(stderr, "client: connect %d failed: %s\n", i,
                   sock.status().message().c_str());
      return 1;
    }
    held.push_back(std::move(*sock));
    if ((i + 1) % 2000 == 0) {
      std::fprintf(stderr, "client: %d connections held\n", i + 1);
    }
  }
  double connect_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr, "client: %d keep-alive connections in %.2fs\n", target,
               connect_seconds);

  // Serving while saturated: a sample of held connections must still answer.
  int sampled = 0, served = 0;
  for (int i = 0; i < target; i += target / 20) {
    ++sampled;
    if (SampleRequest(held[static_cast<size_t>(i)].fd())) ++served;
  }
  std::fprintf(stderr, "client: %d/%d sampled requests served over held "
               "connections\n", served, sampled);

  WriteByte(notify_pipe);  // parent: sample your gauges now
  if (!ReadByte(go_pipe)) return 1;

  // Past the bound: the acceptor must answer 503 (transport shed). All
  // probes are HELD simultaneously — closing one frees its slot — so the
  // first kBoundHeadroom may be admitted and the rest must shed.
  std::vector<htd::util::Socket> probes;
  probes.reserve(kShedProbes);
  for (int i = 0; i < kShedProbes; ++i) {
    auto sock = htd::util::ConnectTcp("127.0.0.1", port, 30.0);
    if (sock.ok()) probes.push_back(std::move(*sock));
  }
  int shed = 0, admitted = 0;
  for (auto& probe : probes) {
    // Shed connections get their 503 + close immediately; admitted ones sit
    // idle and the read times out.
    htd::util::SetRecvTimeout(probe.fd(), 1.0);
    htd::net::HttpResponseParser parser;
    char buffer[2048];
    bool got_shed = false;
    while (true) {
      long n = htd::util::RecvSome(probe.fd(), buffer, sizeof(buffer));
      if (n <= 0) break;  // timeout: admitted and idle, no 503 coming
      if (parser.Consume(std::string_view(buffer, static_cast<size_t>(n))) ==
          htd::net::HttpResponseParser::State::kDone) {
        got_shed = parser.status() == 503;
        break;
      }
    }
    if (got_shed) {
      ++shed;
    } else {
      ++admitted;
    }
  }
  probes.clear();
  std::fprintf(stderr, "client: beyond the bound: %d shed (503), %d admitted "
               "(headroom %d)\n", shed, admitted, kBoundHeadroom);

  bool ok = served == sampled && shed > 0 &&
            admitted <= kBoundHeadroom + 4;  // races at the edge tolerated
  held.clear();
  return ok ? 0 : 1;
}

int Main() {
  RaiseFdLimit();
  const int target = Connections();

  int port_pipe[2], notify_pipe[2], go_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(notify_pipe) != 0 ||
      ::pipe(go_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  // Fork BEFORE the server spawns threads: a post-fork child of a threaded
  // process may not safely run much beyond exec/_exit.
  pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    ::close(port_pipe[1]);
    ::close(notify_pipe[0]);
    ::close(go_pipe[1]);
    int rc = RunClient(port_pipe[0], notify_pipe[1], go_pipe[0]);
    ::_exit(rc);
  }
  ::close(port_pipe[0]);
  ::close(notify_pipe[1]);
  ::close(go_pipe[0]);

  htd::net::HttpServer::Options options;
  options.io_threads = 4;       // deliberately tiny versus the conn count
  options.loop_threads = 2;
  options.backlog = 1024;
  options.max_connections = target + kBoundHeadroom;
  options.idle_timeout_seconds = 300.0;  // nothing reaped mid-bench
  htd::net::HttpServer server(options, [](const htd::net::HttpRequest&) {
    htd::net::HttpResponse response;
    response.body = "{\"ok\": true}\n";
    return response;
  });
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", status.message().c_str());
    return 1;
  }
  std::string port_line = std::to_string(server.port()) + "\n";
  if (::write(port_pipe[1], port_line.data(), port_line.size()) < 0) return 1;

  // Child says it holds everything: sample the gauges at saturation.
  bool saturated = ReadByte(notify_pipe[0]);
  auto counts = server.connection_counts();
  uint64_t shed_below_bound = server.connections_shed();
  std::printf("connection_scale: target=%d io_threads=%d loop_threads=%d\n",
              target, options.io_threads, options.loop_threads);
  std::printf("  at saturation: idle=%llu reading=%llu dispatched=%llu "
              "writing=%llu total=%llu\n",
              static_cast<unsigned long long>(counts.idle),
              static_cast<unsigned long long>(counts.reading),
              static_cast<unsigned long long>(counts.dispatched),
              static_cast<unsigned long long>(counts.writing),
              static_cast<unsigned long long>(counts.total()));
  std::printf("  accepted=%llu shed_below_bound=%llu reaped=%llu\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(shed_below_bound),
              static_cast<unsigned long long>(server.connections_reaped()));
  WriteByte(go_pipe[1]);  // child: proceed to the shed probes

  int wait_status = 0;
  ::waitpid(child, &wait_status, 0);
  uint64_t shed_total = server.connections_shed();
  std::printf("  shed_beyond_bound=%llu\n",
              static_cast<unsigned long long>(shed_total - shed_below_bound));
  server.Stop();

  bool child_ok = WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  bool held_all = saturated && counts.total() >= static_cast<uint64_t>(target);
  bool no_early_shed = shed_below_bound == 0;
  bool shed_at_bound = shed_total > shed_below_bound;
  if (!child_ok) std::fprintf(stderr, "FAIL: client phase failed\n");
  if (!held_all) {
    std::fprintf(stderr, "FAIL: held %llu < target %d at saturation\n",
                 static_cast<unsigned long long>(counts.total()), target);
  }
  if (!no_early_shed) {
    std::fprintf(stderr, "FAIL: shed %llu connections BELOW the bound — "
                 "admission is coupled to something other than "
                 "max_connections\n",
                 static_cast<unsigned long long>(shed_below_bound));
  }
  if (!shed_at_bound) {
    std::fprintf(stderr, "FAIL: no shed beyond max_connections\n");
  }
  bool ok = child_ok && held_all && no_early_shed && shed_at_bound;
  std::printf("connection_scale: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
