// Microbenchmarks of the solver kernels (google-benchmark):
//  * [U]-component splitting — the hot path of every solver,
//  * separator candidate enumeration,
//  * bitset algebra,
//  * end-to-end Algorithm 1 vs Algorithm 2 on the paper's cycle example —
//    the ablation for the Appendix C optimisations,
//  * det-k vs log-k on a mid-size CSP.
#include <benchmark/benchmark.h>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "core/negative_cache.h"
#include "decomp/normal_form.h"
#include "fractional/cover.h"
#include "prep/preprocess.h"
#include "decomp/components.h"
#include "hypergraph/generators.h"
#include "util/combinations.h"
#include "util/rng.h"

namespace htd {
namespace {

void BM_SplitComponentsCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Hypergraph graph = MakeCycle(n);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset separator =
      graph.edge_vertices(0) | graph.edge_vertices(n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitComponents(graph, registry, full, separator));
  }
}
BENCHMARK(BM_SplitComponentsCycle)->Arg(32)->Arg(128)->Arg(512);

void BM_SplitComponentsCsp(benchmark::State& state) {
  util::Rng rng(1);
  Hypergraph graph = MakeRandomCsp(rng, 120, static_cast<int>(state.range(0)), 2, 5);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset separator = graph.edge_vertices(0) | graph.edge_vertices(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitComponents(graph, registry, full, separator));
  }
}
BENCHMARK(BM_SplitComponentsCsp)->Arg(40)->Arg(80);

void BM_SubsetEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    long count = 0;
    for (const util::SubsetChunk& chunk : util::MakeSubsetChunks(n, 3, n)) {
      util::FixedFirstEnumerator en(n, chunk.size, chunk.first);
      while (en.Next()) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(16)->Arg(32);

void BM_BitsetUnion(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  util::Rng rng(2);
  util::DynamicBitset a(bits), b(bits);
  for (int i = 0; i < bits / 3; ++i) {
    a.Set(rng.UniformInt(0, bits - 1));
    b.Set(rng.UniformInt(0, bits - 1));
  }
  for (auto _ : state) {
    util::DynamicBitset c = a;
    c.InplaceOr(b);
    benchmark::DoNotOptimize(c.Count());
  }
}
BENCHMARK(BM_BitsetUnion)->Arg(256)->Arg(4096);

// Ablation: the paper's basic Algorithm 1 vs the optimised Algorithm 2 on
// the Appendix B cycle family. Algorithm 2's child-first search and allowed
// edge restrictions cut the explored candidate space by orders of magnitude.
void BM_Algorithm1Cycle(benchmark::State& state) {
  Hypergraph graph = MakeCycle(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LogKDecompBasic solver;
    benchmark::DoNotOptimize(solver.Solve(graph, 2).outcome);
  }
}
BENCHMARK(BM_Algorithm1Cycle)->Arg(6)->Arg(8);

void BM_Algorithm2Cycle(benchmark::State& state) {
  Hypergraph graph = MakeCycle(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LogKDecomp solver;
    benchmark::DoNotOptimize(solver.Solve(graph, 2).outcome);
  }
}
BENCHMARK(BM_Algorithm2Cycle)->Arg(6)->Arg(8)->Arg(16)->Arg(32);

void BM_DetKCsp(benchmark::State& state) {
  util::Rng rng(7);
  Hypergraph graph = MakeRandomCsp(rng, 30, static_cast<int>(state.range(0)), 2, 4);
  for (auto _ : state) {
    DetKDecomp solver;
    benchmark::DoNotOptimize(solver.Solve(graph, 3).outcome);
  }
}
BENCHMARK(BM_DetKCsp)->Arg(12)->Arg(18);

void BM_LogKCsp(benchmark::State& state) {
  util::Rng rng(7);
  Hypergraph graph = MakeRandomCsp(rng, 30, static_cast<int>(state.range(0)), 2, 4);
  for (auto _ : state) {
    LogKDecomp solver;
    benchmark::DoNotOptimize(solver.Solve(graph, 3).outcome);
  }
}
BENCHMARK(BM_LogKCsp)->Arg(12)->Arg(18);

void BM_FractionalCoverClique(benchmark::State& state) {
  // The simplex kernel: rho*(V(K_n)) solves an LP with n rows and C(n,2)
  // columns; FHD feasibility checks are exactly this shape.
  Hypergraph clique = MakeClique(static_cast<int>(state.range(0)));
  util::DynamicBitset all = clique.AllVertices();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fractional::FractionalCoverWeight(clique, all));
  }
}
BENCHMARK(BM_FractionalCoverClique)->Arg(6)->Arg(10)->Arg(14);

void BM_PreprocessRedundantCsp(benchmark::State& state) {
  // The reduction fixpoint on a redundancy-heavy instance.
  util::Rng rng(11);
  Hypergraph base = MakeRandomCsp(rng, 60, static_cast<int>(state.range(0)), 3, 5);
  Hypergraph messy = AddRedundancy(base, rng, base.num_edges() / 2, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Preprocess(messy).ReducedEdgeCount());
  }
}
BENCHMARK(BM_PreprocessRedundantCsp)->Arg(30)->Arg(60);

void BM_NormalizeHd(benchmark::State& state) {
  // Theorem 3.6 as a kernel: label-restricted reconstruction of a cycle HD.
  Hypergraph cycle = MakeCycle(static_cast<int>(state.range(0)));
  LogKDecomp solver;
  SolveResult result = solver.Solve(cycle, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizeHd(cycle, *result.decomposition).ok());
  }
}
BENCHMARK(BM_NormalizeHd)->Arg(8)->Arg(16)->Arg(32);

void BM_NegativeCacheLookup(benchmark::State& state) {
  // Cache probe cost (mutex + hash + subset checks) at a given fill level.
  const int entries = static_cast<int>(state.range(0));
  util::Rng rng(13);
  NegativeCache cache;
  ExtendedSubhypergraph comp;
  comp.edges = util::DynamicBitset(256);
  util::DynamicBitset conn(128);
  for (int i = 0; i < entries; ++i) {
    ExtendedSubhypergraph key;
    key.edges = util::DynamicBitset(256);
    for (int j = 0; j < 12; ++j) key.edges.Set(rng.UniformInt(0, 255));
    key.edge_count = key.edges.Count();
    cache.Insert(key, conn, key.edges);
  }
  comp.edges.Set(0);
  comp.edge_count = 1;
  util::DynamicBitset allowed(256);
  allowed.Set(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.ContainsDominating(comp, conn, allowed));
  }
}
BENCHMARK(BM_NegativeCacheLookup)->Arg(64)->Arg(4096);

void BM_CachedVsPlainRefutation(benchmark::State& state) {
  // End-to-end ablation row: K5 at k = 2 with and without the cache.
  Hypergraph clique = MakeClique(5);
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    SolveOptions options;
    options.enable_cache = cached;
    LogKDecomp solver(options);
    benchmark::DoNotOptimize(solver.Solve(clique, 2).outcome);
  }
}
BENCHMARK(BM_CachedVsPlainRefutation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace htd

BENCHMARK_MAIN();
