// Table 3: number of instances solved (optimal width found and proven) per
// width value, for each method and the Virtual Best aggregate.
//
// Expected shape (paper): the hybrid matches the Virtual Best for widths up
// to ~5 and dominates det-k from width 4 upward; the exact solver sits in
// between.
#include <array>
#include <cstdlib>
#include <map>

#include "bench_common.h"

namespace htd::bench {
namespace {

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Table 3: instances solved per optimal width", config,
                corpus.size());

  RunConfig sequential = config;
  sequential.num_threads = 1;
  Campaign det_k = RunCampaign("NewDetKDecomp", DetKFactory(), corpus, sequential);
  Campaign exact = RunExactCampaign(corpus, sequential);
  Campaign hybrid = RunCampaign("log-k Hybrid", HybridFactory(), corpus, config);

  const int max_width = config.max_width;
  std::map<int, std::array<int, 4>> per_width;  // width -> {vb, det, exact, hyb}
  for (size_t i = 0; i < corpus.size(); ++i) {
    const bool det_solved = det_k.records[i].solved;
    const bool exact_solved = exact.records[i].solved;
    const bool hybrid_solved = hybrid.records[i].solved;
    int width = det_solved      ? det_k.records[i].width
                : exact_solved  ? exact.records[i].width
                : hybrid_solved ? hybrid.records[i].width
                                : -1;
    if (width < 0) continue;
    auto& row = per_width[width];
    row[0] += 1;  // virtual best: solved by someone
    row[1] += det_solved ? 1 : 0;
    row[2] += exact_solved ? 1 : 0;
    row[3] += hybrid_solved ? 1 : 0;
  }

  TextTable table;
  table.AddRow({"width", "Virtual Best", "NewDetKDecomp", "opt-exact",
                "log-k Hybrid"});
  for (int width = 1; width <= max_width; ++width) {
    auto it = per_width.find(width);
    if (it == per_width.end()) continue;
    table.AddRow({std::to_string(width), std::to_string(it->second[0]),
                  std::to_string(it->second[1]), std::to_string(it->second[2]),
                  std::to_string(it->second[3])});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
