// Table 4: for how many instances can each method *decide* hw(H) <= w —
// i.e. either find a width-w HD or refute its existence within the timeout.
// (Unlike Tables 1/3 this does not require proving optimality.)
//
// Expected shape (paper): the hybrid tracks the Virtual Best closely for
// w <= 5; plain log-k trails the hybrid; det-k falls off from w = 4.
#include <cstdlib>

#include "bench_common.h"

namespace htd::bench {
namespace {

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Table 4: instances for which 'hw <= w' is decided", config,
                corpus.size());

  struct MethodSpec {
    const char* name;
    SolverFactory factory;
    bool sequential;
  };
  const std::vector<MethodSpec> methods = {
      {"log-k (Hybrid)", HybridFactory(), false},
      {"NewDetKDecomp", DetKFactory(), true},
      {"log-k", LogKFactory(), false},
  };

  TextTable table;
  table.AddRow({"problem", "Virtual Best", "log-k (Hybrid)", "NewDetKDecomp",
                "log-k"});
  const int max_w = std::min(config.max_width, 6);
  for (int w = 1; w <= max_w; ++w) {
    std::vector<int> decided(methods.size(), 0);
    int virtual_best = 0;
    for (const Instance& instance : corpus) {
      bool any = false;
      for (size_t m = 0; m < methods.size(); ++m) {
        RunConfig run_config = config;
        if (methods[m].sequential) run_config.num_threads = 1;
        Outcome outcome = RunDecisionWithTimeout(methods[m].factory,
                                                 instance.graph, w, run_config);
        if (outcome == Outcome::kYes || outcome == Outcome::kNo) {
          ++decided[m];
          any = true;
        }
      }
      virtual_best += any ? 1 : 0;
    }
    table.AddRow({"hw <= " + std::to_string(w), std::to_string(virtual_best),
                  std::to_string(decided[0]), std::to_string(decided[1]),
                  std::to_string(decided[2])});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
