// Portfolio pick vs first-found execution on skewed cardinalities.
//
// The decomposition service is cardinality-blind: which width-2 tree of a
// cyclic query it finds first is an accident of search order, and on a
// skewed database the unlucky tree pairs the two heavy relations in one
// bag. This harness pins that unlucky draw so runs are reproducible:
//
//   query   R(PR,X,Y), S(PS,Y,Z), T(PT,Z,W), U(PU,W,X)   (4-cycle core;
//           each atom carries a private variable so every bag's fractional
//           cover is forced and the AGM estimate is unambiguous)
//   data    |R| = |S| = N (heavy, joined on a single shared Y value),
//           |T| = |U| = s = 20 (light)
//
// Two width-2 trees cover the cycle: {R,S}+{T,U} materialises the N^2
// heavy-heavy join; {S,T}+{U,R} keeps every bag at O(N*s). The heavy
// pairing is inserted first (the first-found baseline slot the portfolio
// never evicts), the light pairing second, as a diversity probe would. The
// measurement is EvaluateWithDecomposition + CountSolutions wall time per
// pick; both picks must agree on the exact count s^2.
//
// Representative run (containerised CI box, -O2; see docs/QUERIES.md):
//
//   N     first-found   portfolio   est-cost ratio   speedup
//   200      0.066s       0.0005s         5x          124x
//   400      0.42 s       0.0009s        10x          488x
//   800      2.43 s       0.0048s        20x          503x
//
// The estimate ratio tracks N/(2s) exactly (N^2 vs 2Ns AGM bounds); the
// realised speedup is larger still because the N^2 bag join also pays
// hashing and materialisation constants the estimate ignores.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "decomp/decomposition.h"
#include "qa/portfolio.h"
#include "service/canonical.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace htd::bench {
namespace {

// Vertex numbering by first occurrence in the query text:
// PR=0 X=1 Y=2 PS=3 Z=4 PT=5 W=6 PU=7; edges R=0 S=1 T=2 U=3.
constexpr char kQueryText[] = "R(PR,X,Y), S(PS,Y,Z), T(PT,Z,W), U(PU,W,X).";

cq::Database SkewedDatabase(int64_t n, int64_t s) {
  cq::Database db;
  cq::Relation r{"R", 3, {}};
  cq::Relation s_rel{"S", 3, {}};
  r.tuples.reserve(static_cast<size_t>(n));
  s_rel.tuples.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    r.tuples.push_back({i, i, 0});      // PR=i, X=i, Y=0
    s_rel.tuples.push_back({i, 0, i});  // PS=i, Y=0, Z=i
  }
  cq::Relation t{"T", 3, {}};
  cq::Relation u{"U", 3, {}};
  for (int64_t i = 0; i < s; ++i) {
    t.tuples.push_back({i, i, 1});  // PT=i, Z=i, W=1
    u.tuples.push_back({i, 1, i});  // PU=i, W=1, X=i
  }
  db.AddRelation(std::move(r));
  db.AddRelation(std::move(s_rel));
  db.AddRelation(std::move(t));
  db.AddRelation(std::move(u));
  return db;
}

// {R,S} bag joins the two heavy relations: N^2 intermediate tuples.
Decomposition HeavyPairTree() {
  Decomposition decomp;
  int root = decomp.AddNode(
      {0, 1}, util::DynamicBitset::FromIndices(8, {0, 1, 2, 3, 4}), -1);
  decomp.AddNode({2, 3}, util::DynamicBitset::FromIndices(8, {1, 4, 5, 6, 7}),
                 root);
  return decomp;
}

// {S,T} and {U,R} bags each pair a heavy relation with a light one.
Decomposition LightPairTree() {
  Decomposition decomp;
  int root = decomp.AddNode(
      {1, 2}, util::DynamicBitset::FromIndices(8, {2, 3, 4, 5, 6}), -1);
  decomp.AddNode({3, 0}, util::DynamicBitset::FromIndices(8, {0, 1, 2, 6, 7}),
                 root);
  return decomp;
}

// Evaluate + count with one tree; returns wall seconds, checks the count.
double TimeExecution(const cq::Query& query, const cq::Database& db,
                     const Decomposition& decomp, unsigned long long want) {
  util::WallTimer timer;
  auto eval = cq::EvaluateWithDecomposition(query, db, decomp);
  auto count = cq::CountSolutions(query, db, decomp);
  double seconds = timer.ElapsedSeconds();
  if (!eval.ok() || !count.ok() || !eval->satisfiable ||
      count->value != want || count->saturated) {
    std::fprintf(stderr, "FATAL: execution disagrees with expected count %llu\n",
                 want);
    std::exit(1);
  }
  return seconds;
}

}  // namespace

int Main() {
  auto query = cq::ParseQuery(kQueryText);
  if (!query.ok()) return 1;
  const Hypergraph graph = cq::QueryHypergraph(*query);
  const service::Fingerprint fp = service::CanonicalFingerprint(graph);
  const int64_t s = 20;

  std::printf("=== query portfolio: scored pick vs first-found ===\n");
  std::printf("query: %s  |T|=|U|=%lld (light)\n\n", kQueryText,
              static_cast<long long>(s));
  std::printf("%8s %14s %14s %16s %9s\n", "N", "first-found(s)", "portfolio(s)",
              "est-cost ratio", "speedup");

  for (int64_t n : {200, 400, 800}) {
    qa::DecompositionPortfolio portfolio;
    if (!portfolio.Insert(fp, graph, HeavyPairTree()) ||
        !portfolio.Insert(fp, graph, LightPairTree())) {
      std::fprintf(stderr, "FATAL: portfolio rejected a candidate\n");
      return 1;
    }
    const cq::Database db = SkewedDatabase(n, s);
    const std::vector<uint64_t> cardinalities = {
        static_cast<uint64_t>(n), static_cast<uint64_t>(n),
        static_cast<uint64_t>(s), static_cast<uint64_t>(s)};
    auto first = portfolio.PickFirst(fp, graph, cardinalities);
    auto best = portfolio.PickBest(fp, graph, cardinalities);
    if (!first || !best || best->candidate_index == 0) {
      std::fprintf(stderr,
                   "FATAL: PickBest did not prefer the light pairing\n");
      return 1;
    }
    const unsigned long long want =
        static_cast<unsigned long long>(s) * static_cast<unsigned long long>(s);
    double first_seconds =
        TimeExecution(*query, db, first->decomposition, want);
    double best_seconds = TimeExecution(*query, db, best->decomposition, want);
    std::printf("%8lld %14.4f %14.4f %16.1f %8.1fx\n",
                static_cast<long long>(n), first_seconds, best_seconds,
                first->estimated_cost / best->estimated_cost,
                first_seconds / best_seconds);
  }
  std::printf(
      "\nBoth picks returned the exact count %lld^2; the portfolio pick "
      "avoids the\nN^2 heavy-heavy bag join the first-found tree "
      "materialises.\n",
      static_cast<long long>(s));
  return 0;
}

}  // namespace htd::bench

int main() { return htd::bench::Main(); }
