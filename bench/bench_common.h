// Shared helpers for the per-table benchmark harnesses.
//
// Every harness reads its protocol knobs from the environment so the same
// binaries scale from CI smoke run to full study:
//   HTD_BENCH_TIMEOUT   per-instance timeout in seconds (default varies)
//   HTD_BENCH_SCALE     corpus replication factor (default 1)
//   HTD_BENCH_THREADS   worker threads for parallel solvers (default 4)
//   HTD_BENCH_MAX_WIDTH widest k probed (default 10, as in the paper)
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/det_k_decomp.h"
#include "benchlib/corpus.h"
#include "benchlib/runner.h"
#include "benchlib/table.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "util/stats.h"

namespace htd::bench {

inline SolverFactory DetKFactory() {
  return [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<DetKDecomp>(options);
  };
}

inline SolverFactory LogKFactory() {
  return [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<LogKDecomp>(options);
  };
}

inline SolverFactory HybridFactory(
    HybridMetric metric = HybridMetric::kWeightedCount,
    double threshold = kDefaultWeightedCountThreshold) {
  return [metric, threshold](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return MakeHybridSolver(metric, threshold, options);
  };
}

/// Per-instance outcome of an optimal-width campaign for one method.
struct Campaign {
  std::string method;
  std::vector<RunRecord> records;  // index-aligned with the corpus

  int SolvedCount() const {
    int count = 0;
    for (const auto& r : records) count += r.solved ? 1 : 0;
    return count;
  }
};

/// Runs the paper's optimal-width protocol over the whole corpus.
inline Campaign RunCampaign(const std::string& method, const SolverFactory& factory,
                            const std::vector<Instance>& corpus,
                            const RunConfig& config) {
  Campaign campaign;
  campaign.method = method;
  campaign.records.reserve(corpus.size());
  for (const Instance& instance : corpus) {
    campaign.records.push_back(RunOptimalWithTimeout(factory, instance.graph, config));
  }
  return campaign;
}

/// Exact-solver (HtdLEO stand-in) campaign.
inline Campaign RunExactCampaign(const std::vector<Instance>& corpus,
                                 const RunConfig& config) {
  Campaign campaign;
  campaign.method = "opt-exact";
  campaign.records.reserve(corpus.size());
  for (const Instance& instance : corpus) {
    campaign.records.push_back(RunExactWithTimeout(instance.graph, config));
  }
  return campaign;
}

inline void PrintPreamble(const char* title, const RunConfig& config,
                          size_t corpus_size) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "corpus: %zu instances (HyperBench-like synthetic stand-in, see DESIGN.md)\n",
      corpus_size);
  std::printf("timeout: %.2fs/instance, max width %d, %d thread(s)\n\n",
              config.timeout_seconds, config.max_width, config.num_threads);
}

}  // namespace htd::bench
