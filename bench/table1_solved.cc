// Table 1: number of cases solved and runtimes (sec.) to find optimal-width
// HDs, for NewDetKDecomp, HtdLEO (exact stand-in) and the log-k-decomp
// Hybrid, grouped by instance origin and size.
//
// Expected shape (paper): the hybrid solves the most instances in every
// group and dominates on |E| > 50; det-k is bimodal (instant or timeout);
// the exact solver is steady but slowest on average.
#include <cstdlib>

#include "bench_common.h"

namespace htd::bench {
namespace {

struct GroupKey {
  Origin origin;
  SizeBin bin;
  bool operator<(const GroupKey& other) const {
    if (origin != other.origin) return origin < other.origin;
    return bin < other.bin;
  }
};

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Table 1: optimal-width HDs solved per method and group", config,
                corpus.size());

  RunConfig sequential = config;
  sequential.num_threads = 1;  // det-k and the exact solver are single-core
  Campaign det_k = RunCampaign("NewDetKDecomp", DetKFactory(), corpus, sequential);
  Campaign exact = RunExactCampaign(corpus, sequential);
  Campaign hybrid = RunCampaign("log-k Hybrid", HybridFactory(), corpus, config);

  // Group rows in the paper's order: Application bins large to small, then
  // Synthetic.
  const std::vector<GroupKey> group_order = {
      {Origin::kApplication, SizeBin::k75To100},
      {Origin::kApplication, SizeBin::k50To75},
      {Origin::kApplication, SizeBin::k10To50},
      {Origin::kApplication, SizeBin::kUpTo10},
      {Origin::kSynthetic, SizeBin::kOver100},
      {Origin::kSynthetic, SizeBin::k75To100},
      {Origin::kSynthetic, SizeBin::k50To75},
      {Origin::kSynthetic, SizeBin::k10To50},
      {Origin::kSynthetic, SizeBin::kUpTo10},
  };

  for (const Campaign* campaign : {&det_k, &exact, &hybrid}) {
    std::printf("--- %s ---\n", campaign->method.c_str());
    TextTable table;
    table.AddRow({"origin", "size", "#inst", "#solved", "avg", "max", "stdev"});
    for (const GroupKey& group : group_order) {
      int in_group = 0;
      int solved = 0;
      util::RunningStats stats;
      for (size_t i = 0; i < corpus.size(); ++i) {
        if (corpus[i].origin != group.origin ||
            BinForEdgeCount(corpus[i].graph.num_edges()) != group.bin) {
          continue;
        }
        ++in_group;
        if (campaign->records[i].solved) {
          ++solved;
          // Paper convention: runtime stats over solved instances only.
          stats.Add(campaign->records[i].seconds);
        }
      }
      if (in_group == 0) continue;
      table.AddRow({OriginName(group.origin), SizeBinName(group.bin),
                    std::to_string(in_group), std::to_string(solved),
                    Fmt1(stats.Mean()), Fmt1(stats.Max()), Fmt1(stats.StdDev())});
    }
    int solved_total = campaign->SolvedCount();
    util::RunningStats total_stats;
    for (const RunRecord& record : campaign->records) {
      if (record.solved) total_stats.Add(record.seconds);
    }
    table.AddRow({"Total", "-", std::to_string(corpus.size()),
                  std::to_string(solved_total), Fmt1(total_stats.Mean()),
                  Fmt1(total_stats.Max()), Fmt1(total_stats.StdDev())});
    std::printf("%s\n", table.Render().c_str());
  }

  // The paper's low-width summary (§5.2): solved counts among instances of
  // width <= 6 / <= 5, taking the hybrid's solved widths as ground truth
  // where available.
  int low6 = 0, low6_solved = 0, low5 = 0, low5_solved = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    int width = hybrid.records[i].solved ? hybrid.records[i].width
                : corpus[i].known_width.has_value() ? *corpus[i].known_width
                                                    : -1;
    if (width < 0) continue;
    if (width <= 6) {
      ++low6;
      low6_solved += hybrid.records[i].solved ? 1 : 0;
    }
    if (width <= 5) {
      ++low5;
      low5_solved += hybrid.records[i].solved ? 1 : 0;
    }
  }
  std::printf("hybrid on width<=6 instances: %d/%d solved; width<=5: %d/%d\n",
              low6_solved, low6, low5_solved, low5);
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
