// Bench: cold vs snapshot-warmed server start (service/persistence.h).
//
// Simulates the hdserver restart cycle in-process: a service solves the
// ablation corpus (cold pass), its warm state — result cache + subproblem
// store — is snapshotted to bytes, a *fresh* service restores from the
// snapshot, and the same corpus is replayed (warm pass). Reported per pass:
// time-to-first-result, total wall time, and where the answers came from
// (solves vs cache hits). A baseline restart without a snapshot is also
// replayed so the delta is attributable to persistence alone.
//
// Exit code 1 if the warm pass produces no cache hits — the property the
// snapshot subsystem exists for. Numbers from this bench are recorded in
// docs/SERVER.md.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hypergraph/generators.h"
#include "service/persistence.h"
#include "service/service.h"
#include "util/rng.h"
#include "util/timer.h"

namespace htd::bench {
namespace {

/// Isomorphic copy under fresh names — what a restarted server actually
/// receives from clients (same queries, new variable names).
Hypergraph RenameAndShuffle(const Hypergraph& graph, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> vertex_perm(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) vertex_perm[v] = v;
  rng.Shuffle(vertex_perm);
  std::vector<int> edge_order(graph.num_edges());
  for (int e = 0; e < graph.num_edges(); ++e) edge_order[e] = e;
  rng.Shuffle(edge_order);

  Hypergraph renamed;
  std::vector<int> new_id(graph.num_vertices(), -1);
  for (int e : edge_order) {
    std::vector<int> members;
    for (int v : graph.edge_vertex_list(e)) {
      if (new_id[v] < 0) {
        new_id[v] = renamed.GetOrAddVertex("r" + std::to_string(vertex_perm[v]));
      }
      members.push_back(new_id[v]);
    }
    if (!renamed.AddEdge(members).ok()) std::abort();
  }
  return renamed;
}

struct Workload {
  std::vector<Hypergraph> graphs;
  int k = 3;
};

/// Mixed families with enough structure that a cold pass costs real work:
/// hypercycles, grids, cliques, and renamed copies (cache-hit fodder).
Workload BuildWorkload() {
  Workload workload;
  workload.graphs.push_back(MakeHyperCycle(10, 3, 1));
  workload.graphs.push_back(MakeHyperCycle(12, 3, 1));
  workload.graphs.push_back(MakeHyperCycle(14, 4, 2));
  workload.graphs.push_back(MakeGrid(4, 4));
  workload.graphs.push_back(MakeGrid(5, 4));
  workload.graphs.push_back(MakeClique(9));
  workload.graphs.push_back(MakeClique(10));
  workload.graphs.push_back(MakeCycle(24));
  size_t base = workload.graphs.size();
  for (size_t i = 0; i < base; ++i) {
    workload.graphs.push_back(RenameAndShuffle(workload.graphs[i], 1000 + i));
  }
  return workload;
}

struct PassReport {
  double first_result_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t cache_hits = 0;
  uint64_t solves = 0;
};

PassReport RunPass(service::DecompositionService& service, const Workload& workload) {
  auto before = service.scheduler_stats();
  util::WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  for (const Hypergraph& graph : workload.graphs) {
    futures.push_back(service.Submit(graph, workload.k, /*timeout_seconds=*/60.0));
  }
  PassReport report;
  bool first = true;
  for (auto& future : futures) {
    future.get();
    if (first) {
      report.first_result_seconds = timer.ElapsedSeconds();
      first = false;
    }
  }
  report.total_seconds = timer.ElapsedSeconds();
  auto after = service.scheduler_stats();
  report.cache_hits = after.cache_hits - before.cache_hits;
  report.solves = after.solves - before.solves;
  return report;
}

service::ServiceOptions MakeOptions() {
  service::ServiceOptions options;
  options.num_workers = 4;
  options.solve.num_threads = 0;  // batch-aware auto
  options.enable_subproblem_store = true;
  return options;
}

void Print(const char* label, const PassReport& report) {
  std::printf("%-28s first result %8.3f ms | total %8.3f ms | "
              "%3llu cache hits | %3llu solves\n",
              label, report.first_result_seconds * 1e3,
              report.total_seconds * 1e3,
              static_cast<unsigned long long>(report.cache_hits),
              static_cast<unsigned long long>(report.solves));
}

}  // namespace
}  // namespace htd::bench

int main() {
  using namespace htd;
  using namespace htd::bench;

  Workload workload = BuildWorkload();
  std::printf("server_warm_restart: %zu instances, k = %d\n\n",
              workload.graphs.size(), workload.k);

  // --- Cold server: first boot, nothing memoized. -------------------------
  auto cold = service::DecompositionService::Create(MakeOptions());
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().message().c_str());
    return 2;
  }
  PassReport cold_report = RunPass(**cold, workload);
  Print("cold start", cold_report);

  // Snapshot the warm state (what hdserver writes on shutdown or on
  // POST /v1/admin/snapshot).
  util::WallTimer snapshot_timer;
  std::string snapshot = service::EncodeSnapshot(
      (*cold)->result_cache(), (*cold)->subproblem_store(), /*config_digest=*/0);
  double encode_ms = snapshot_timer.ElapsedSeconds() * 1e3;

  // --- Restart WITHOUT the snapshot: pays the full cost again. ------------
  auto relaunch_cold = service::DecompositionService::Create(MakeOptions());
  PassReport relaunch_cold_report = RunPass(**relaunch_cold, workload);
  Print("restart, no snapshot", relaunch_cold_report);

  // --- Restart WITH the snapshot: warm from the first request. ------------
  auto warm = service::DecompositionService::Create(MakeOptions());
  snapshot_timer.Restart();
  auto restored = service::DecodeSnapshot(snapshot, (*warm)->result_cache(),
                                          (*warm)->subproblem_store());
  double decode_ms = snapshot_timer.ElapsedSeconds() * 1e3;
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.status().message().c_str());
    return 2;
  }
  PassReport warm_report = RunPass(**warm, workload);
  Print("restart from snapshot", warm_report);

  std::printf(
      "\nsnapshot: %zu bytes, %zu cache entries, %zu store keys "
      "(encode %.3f ms, decode+restore %.3f ms)\n",
      snapshot.size(), restored->cache_entries, restored->store_entries,
      encode_ms, decode_ms);
  if (warm_report.total_seconds > 0) {
    std::printf("warm restart speedup: %.1fx total, %.1fx time-to-first-result\n",
                relaunch_cold_report.total_seconds / warm_report.total_seconds,
                relaunch_cold_report.first_result_seconds /
                    warm_report.first_result_seconds);
  }

  if (warm_report.cache_hits == 0) {
    std::fprintf(stderr,
                 "FAIL: snapshot-warmed pass produced no cache hits\n");
    return 1;
  }
  return 0;
}
