// Table 2: study of the two hybridisation metrics of log-k-decomp on
// HB_large, with NewDetKDecomp and the exact solver (HtdLEO stand-in) for
// reference.
//
// Expected shape (paper): WeightedCount beats EdgeCount at every threshold,
// thresholds matter much less for WeightedCount, and both hybrids beat the
// reference methods in solved count and runtime.
#include <cstdlib>

#include "bench_common.h"

namespace htd::bench {
namespace {

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Table 2: hybrid metrics and thresholds on HB_large", config,
                corpus.size());

  // Width pre-pass for HB_large selection.
  std::vector<int> widths(corpus.size(), -1);
  {
    RunConfig prepass = config;
    prepass.num_threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (corpus[i].graph.num_edges() <= 50) continue;
      RunRecord record =
          RunOptimalWithTimeout(HybridFactory(), corpus[i].graph, prepass);
      if (record.solved) widths[i] = record.width;
    }
  }
  std::vector<int> selected = SelectLargeSubset(corpus, widths);
  std::printf("HB_large analogue: %zu instances\n\n", selected.size());

  struct MethodSpec {
    std::string name;
    std::string threshold;
    SolverFactory factory;
    bool exact = false;
  };
  // The paper's thresholds (200/400/600 WeightedCount, 20/40/80 EdgeCount)
  // are tuned to HyperBench's instance sizes; our corpus is ~4x smaller in
  // |E|, so the sweep is scaled accordingly while keeping the ordering.
  std::vector<MethodSpec> methods = {
      {"WeightedCount", "30", HybridFactory(HybridMetric::kWeightedCount, 30)},
      {"WeightedCount", "60", HybridFactory(HybridMetric::kWeightedCount, 60)},
      {"WeightedCount", "120", HybridFactory(HybridMetric::kWeightedCount, 120)},
      {"EdgeCount", "10", HybridFactory(HybridMetric::kEdgeCount, 10)},
      {"EdgeCount", "25", HybridFactory(HybridMetric::kEdgeCount, 25)},
      {"EdgeCount", "40", HybridFactory(HybridMetric::kEdgeCount, 40)},
      {"NewDetKDecomp", "-", DetKFactory()},
      {"opt-exact (HtdLEO stand-in)", "-", nullptr, true},
  };

  TextTable table;
  table.AddRow({"method", "threshold", "solved", "av. runtime (ms)"});
  for (const MethodSpec& method : methods) {
    int solved = 0;
    util::RunningStats stats;
    for (int index : selected) {
      RunConfig run_config = config;
      if (method.exact || method.name == "NewDetKDecomp") {
        run_config.num_threads = 1;  // reference methods are single-core
      }
      RunRecord record =
          method.exact
              ? RunExactWithTimeout(corpus[index].graph, run_config)
              : RunOptimalWithTimeout(method.factory, corpus[index].graph,
                                      run_config);
      if (record.solved) {
        ++solved;
        stats.Add(record.seconds);
      }
    }
    table.AddRow({method.name, method.threshold,
                  std::to_string(solved) + "/" + std::to_string(selected.size()),
                  Fmt1(stats.Mean() * 1000)});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
