// Ablation: cross-instance subproblem memoization (the SubproblemStore of
// service/subproblem_store.h).
//
// The per-run negative cache (bench/ablation_prep_cache.cc, Part B) showed
// what det-k-style caching buys *within* one solve. This bench measures the
// step beyond it: a store keyed by canonical subproblem fingerprints that
// lets *different* instances share subproblem outcomes — both failures and
// reusable fragments. The corpus is built from families with repeated
// substructure (renamed isomorphic copies and chord-overlapping variants),
// the shape a production decomposition service actually sees: the same
// query pattern arriving under fresh variable names.
//
// Expected shape: the first instance of each family pays the canonical-
// isation overhead to warm the store; subsequent isomorphic instances
// collapse (the root subproblem hits, zero separators), and overlapping
// variants reuse interior components. The bench fails (exit 1) if the
// shared store produces no cross-instance hits — that is the property the
// store exists for.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hypergraph/generators.h"
#include "service/subproblem_store.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace htd::bench {
namespace {

/// Isomorphic copy: random vertex renaming + random edge order.
Hypergraph RenameAndShuffle(const Hypergraph& graph, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> vertex_perm(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) vertex_perm[v] = v;
  rng.Shuffle(vertex_perm);
  std::vector<int> edge_order(graph.num_edges());
  for (int e = 0; e < graph.num_edges(); ++e) edge_order[e] = e;
  rng.Shuffle(edge_order);

  Hypergraph renamed;
  std::vector<int> new_id(graph.num_vertices(), -1);
  for (int e : edge_order) {
    std::vector<int> members;
    for (int v : graph.edge_vertex_list(e)) {
      if (new_id[v] < 0) {
        new_id[v] = renamed.GetOrAddVertex("r" + std::to_string(vertex_perm[v]));
      }
      members.push_back(new_id[v]);
    }
    if (!renamed.AddEdge(members).ok()) std::abort();
  }
  return renamed;
}

struct MemoInstance {
  std::string family;
  std::string label;
  Hypergraph graph;
  bool first_of_family = false;
};

void AddRenamedFamily(std::vector<MemoInstance>& corpus, const std::string& family,
                      const Hypergraph& base, int copies, uint64_t seed) {
  for (int i = 0; i < copies; ++i) {
    MemoInstance instance;
    instance.family = family;
    instance.label = family + "#" + std::to_string(i);
    instance.graph = i == 0 ? base : RenameAndShuffle(base, seed + i);
    instance.first_of_family = i == 0;
    corpus.push_back(std::move(instance));
  }
}

struct MemoRecord {
  int width = -1;
  long separators = 0;
  long store_positive = 0;
  long store_negative = 0;
  double ms = 0.0;
};

int Main() {
  RunConfig config = RunConfig::FromEnv();
  const int max_k = std::min(config.max_width, 5);

  std::vector<MemoInstance> corpus;
  AddRenamedFamily(corpus, "cycle C8", MakeCycle(8), 3, 100);
  AddRenamedFamily(corpus, "grid 3x4", MakeGrid(3, 4), 3, 200);
  AddRenamedFamily(corpus, "clique K5", MakeClique(5), 3, 300);
  AddRenamedFamily(corpus, "hypercycle(6,3,1)", MakeHyperCycle(6, 3, 1), 3, 400);
  {
    // Overlapping rather than isomorphic: a CSP, a renaming of it, and a
    // chorded variant that shares most interior components with the base.
    util::Rng rng(20260729);
    Hypergraph csp = MakeRandomCsp(rng, 14, 10, 2, 4);
    AddRenamedFamily(corpus, "csp14", csp, 2, 500);
    util::Rng chord_rng(7);
    MemoInstance chorded;
    chorded.family = "csp14";
    chorded.label = "csp14+chord";
    chorded.graph = AddRandomChords(csp, chord_rng, 1);
    corpus.push_back(std::move(chorded));
  }

  std::printf("=== Ablation: cross-instance subproblem memoization ===\n");
  std::printf("corpus: %zu instances in 5 families (renamed + chorded variants)\n",
              corpus.size());
  std::printf("protocol: optimal width in [1, %d], %.2fs/instance, solver logk\n\n",
              max_k, std::max(config.timeout_seconds, 1.0));

  service::SubproblemStore::Options store_options;
  store_options.byte_budget = size_t{16} << 20;
  service::SubproblemStore store(store_options);

  std::vector<MemoRecord> shared_records, plain_records;
  for (bool use_store : {false, true}) {
    for (const MemoInstance& instance : corpus) {
      util::CancelToken deadline;
      deadline.SetTimeout(std::chrono::duration<double>(
          std::max(config.timeout_seconds, 1.0)));
      SolveOptions options;
      options.cancel = &deadline;
      options.subproblem_store = use_store ? &store : nullptr;
      LogKDecomp solver(options);
      OptimalRun run = FindOptimalWidth(solver, instance.graph, max_k);
      MemoRecord record;
      record.width = run.outcome == Outcome::kYes ? run.width : -1;
      record.separators = run.stats.separators_tried;
      record.store_positive = run.stats.store_positive_hits;
      record.store_negative = run.stats.store_negative_hits;
      record.ms = run.seconds * 1000.0;
      (use_store ? shared_records : plain_records).push_back(record);
    }
  }

  TextTable table;
  table.AddRow({"instance", "width", "plain seps", "shared seps", "store+",
                "store-", "plain ms", "shared ms"});
  for (size_t i = 0; i < corpus.size(); ++i) {
    const MemoRecord& plain = plain_records[i];
    const MemoRecord& shared = shared_records[i];
    table.AddRow({corpus[i].label, std::to_string(shared.width),
                  std::to_string(plain.separators),
                  std::to_string(shared.separators),
                  std::to_string(shared.store_positive),
                  std::to_string(shared.store_negative), Fmt1(plain.ms),
                  Fmt1(shared.ms)});
  }
  std::printf("%s", table.Render().c_str());

  long cross_hits = 0, warm_collapsed = 0;
  long total_plain_seps = 0, total_shared_seps = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    total_plain_seps += plain_records[i].separators;
    total_shared_seps += shared_records[i].separators;
    if (!corpus[i].first_of_family) {
      cross_hits +=
          shared_records[i].store_positive + shared_records[i].store_negative;
      if (shared_records[i].separators == 0) ++warm_collapsed;
    }
  }
  service::SubproblemStore::Stats stats = store.GetStats();
  std::printf(
      "\nsubproblem hits while warm: %ld; %ld warm instances solved with ZERO\n"
      "separator work (zero search before the first probe means the root\n"
      "fingerprint was served by an earlier instance — self-hits cannot\n"
      "produce this, so it is the cross-instance proof)\n",
      cross_hits, warm_collapsed);
  std::printf("separator work, whole corpus: %ld plain -> %ld shared\n",
              total_plain_seps, total_shared_seps);
  std::printf(
      "store: %llu probes, %llu+ / %llu- hits, %zu entries, %zu bytes"
      " (budget %zu)\n",
      static_cast<unsigned long long>(stats.probes),
      static_cast<unsigned long long>(stats.positive_hits),
      static_cast<unsigned long long>(stats.negative_hits), stats.entries,
      stats.bytes, stats.byte_budget);
  std::printf(
      "\nReading: the first instance of each family warms the store; renamed\n"
      "copies then answer at the root fingerprint and chorded variants reuse\n"
      "interior components. This is det-k's \"extensive caching\" (paper §1)\n"
      "recast as a shared, sharded service component instead of a per-run,\n"
      "single-mutex bottleneck.\n");

  // Gate on the self-hit-proof signal: a warm instance finishing with zero
  // separator work can only have been answered by another instance's entry.
  if (warm_collapsed == 0) {
    std::printf("FAIL: no warm instance was served from another instance's"
                " subproblem entries\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
