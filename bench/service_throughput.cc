// Service-throughput bench: concurrent batch submission through the
// DecompositionService at increasing executor widths, plus the cache effect.
//
// Part A sweeps the work-stealing executor over 1, 2, 4, ... workers
// (capped by HTD_BENCH_THREADS, default 4) on a cold cache and reports
// jobs/second and speedup over the 1-worker run — the batch scheduler's
// analogue of the paper's Figure 1 scaling study, with whole instances as
// the unit of parallelism instead of separator candidates. Deadlines are
// end-to-end from admission (scheduler.h), so the "solved" column — jobs
// that met their deadline — is the scaling signal that survives even on
// core-starved machines where wall-clock speedup cannot materialise:
// more workers ⇒ hard jobs start sooner ⇒ fewer deadline misses.
//
// Part B replays the identical batch against the warm cache and reports the
// served-from-cache throughput, i.e. what repeat traffic costs once the
// fingerprint ➞ result mapping is populated.
//
// Part C is the mixed-batch scenario the executor refactor exists for: one
// big solve submitted alongside many small ones. With a static per-job
// width (num_threads = 1, emulating the old one-pool-slot-per-job split)
// the big solve stays single-threaded even after every small job has
// drained; with the adaptive hint (num_threads = 0) its chunk tasks are
// picked up by each worker the moment it frees, so the fleet converges on
// the straggler. The table reports aggregate solves/sec and the big job's
// threads_used — the peak number of workers concurrently inside its task
// group, which has no static cap.
//
// Environment knobs (bench_common.h): HTD_BENCH_THREADS, HTD_BENCH_SCALE,
// HTD_BENCH_TIMEOUT.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hypergraph/generators.h"
#include "service/service.h"
#include "util/executor.h"
#include "util/timer.h"

namespace htd::bench {
namespace {

// Part C's small-job count: enough to keep every worker busy at first so
// the static/adaptive contrast is about what happens after they drain.
constexpr int kSmallJobs = 24;

struct BatchOutcome {
  double seconds = 0.0;
  int solved = 0;
  int cancelled = 0;
  uint64_t cache_hits = 0;
  uint64_t dedup_joins = 0;
};

BatchOutcome RunBatch(service::DecompositionService& svc,
                      const std::vector<const Hypergraph*>& graphs, int k,
                      double timeout_seconds) {
  std::vector<service::JobSpec> specs;
  specs.reserve(graphs.size());
  for (const Hypergraph* graph : graphs) {
    service::JobSpec spec;
    spec.graph = graph;
    spec.k = k;
    spec.timeout_seconds = timeout_seconds;
    specs.push_back(spec);
  }
  util::WallTimer timer;
  auto futures = svc.SubmitBatch(specs);
  BatchOutcome outcome;
  for (auto& future : futures) {
    service::JobResult job = future.get();
    if (job.result.outcome == Outcome::kCancelled) {
      ++outcome.cancelled;
    } else {
      ++outcome.solved;
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  outcome.cache_hits = svc.scheduler_stats().cache_hits;
  outcome.dedup_joins = svc.scheduler_stats().dedup_joins;
  return outcome;
}

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Service throughput: batch scheduling and result cache",
                config, corpus.size());

  // The job mix: every corpus instance at a fixed decision width. k = 3
  // solves most instances quickly (yes or no) so the bench measures the
  // service machinery, not one hard straggler; the per-job timeout bounds
  // the stragglers that remain.
  const int k = 3;
  const double timeout = config.timeout_seconds;
  std::vector<const Hypergraph*> graphs;
  graphs.reserve(corpus.size());
  for (const Instance& instance : corpus) graphs.push_back(&instance.graph);

  const int max_workers = config.num_threads > 0 ? config.num_threads : 4;
  std::printf("\nPart A: cold-cache batch throughput, %zu jobs at k = %d\n\n",
              graphs.size(), k);
  TextTable table;
  table.AddRow({"workers", "seconds", "jobs/s", "speedup", "solved", "cancelled"});
  double base_seconds = 0.0;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    util::Executor executor(workers);  // private fleet: deterministic width
    service::ServiceOptions options;
    options.solver_name = "logk";
    options.executor = &executor;
    options.num_workers = workers;
    options.cache_capacity = 2 * graphs.size();
    service::DecompositionService svc(options);
    BatchOutcome outcome = RunBatch(svc, graphs, k, timeout);
    if (workers == 1) base_seconds = outcome.seconds;
    table.AddRow({std::to_string(workers), Fmt1(outcome.seconds),
                  Fmt1(outcome.seconds > 0 ? graphs.size() / outcome.seconds : 0.0),
                  Fmt1(outcome.seconds > 0 ? base_seconds / outcome.seconds : 0.0),
                  std::to_string(outcome.solved),
                  std::to_string(outcome.cancelled)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Part B: warm-cache replay (same batch twice, one service)\n\n");
  {
    util::Executor executor(max_workers);
    service::ServiceOptions options;
    options.solver_name = "logk";
    options.executor = &executor;
    options.num_workers = max_workers;
    options.cache_capacity = 2 * graphs.size();
    service::DecompositionService svc(options);
    BatchOutcome cold = RunBatch(svc, graphs, k, timeout);
    BatchOutcome warm = RunBatch(svc, graphs, k, timeout);
    uint64_t warm_hits = warm.cache_hits - cold.cache_hits;
    TextTable replay;
    replay.AddRow({"pass", "seconds", "jobs/s", "cache hits"});
    replay.AddRow({"cold", Fmt1(cold.seconds),
                   Fmt1(cold.seconds > 0 ? graphs.size() / cold.seconds : 0.0),
                   std::to_string(cold.cache_hits)});
    replay.AddRow({"warm", Fmt1(warm.seconds),
                   Fmt1(warm.seconds > 0 ? graphs.size() / warm.seconds : 0.0),
                   std::to_string(warm_hits)});
    std::printf("%s\n", replay.Render().c_str());
    std::printf("warm pass served %llu/%zu jobs from the cache\n\n",
                static_cast<unsigned long long>(warm_hits), graphs.size());
  }

  // Part C: 1 big solve + many small ones through one executor. "static"
  // pins every job at width 1 (what the old admission-time pool split chose
  // for a deep queue); "adaptive" lets the big solve widen as the small
  // jobs drain.
  std::printf("Part C: mixed batch (1 big + %d small) on %d workers\n\n",
              kSmallJobs, max_workers);
  Hypergraph big = MakeClique(14);
  std::vector<Hypergraph> small;
  small.reserve(kSmallJobs);
  for (int i = 0; i < kSmallJobs; ++i) {
    small.push_back(MakeHyperCycle(6 + (i % 5), 3, 1));
  }
  TextTable mixed;
  mixed.AddRow({"policy", "seconds", "solves/s", "solved", "big threads_used"});
  for (int policy = 0; policy < 2; ++policy) {
    const bool adaptive = policy == 1;
    util::Executor executor(max_workers);
    service::ServiceOptions options;
    options.solver_name = "logk";
    options.executor = &executor;
    options.num_workers = max_workers;
    options.enable_result_cache = false;  // measure solves, not memoization
    options.solve.num_threads = adaptive ? 0 : 1;
    service::DecompositionService svc(options);
    util::WallTimer timer;
    std::future<service::JobResult> big_future =
        svc.Submit(big, 4, timeout);  // kNo at k=4: the exhaustive straggler
    std::vector<std::future<service::JobResult>> small_futures;
    small_futures.reserve(small.size());
    for (const Hypergraph& graph : small) {
      small_futures.push_back(svc.Submit(graph, 2, timeout));
    }
    int solved = 0;
    for (auto& future : small_futures) {
      service::JobResult job = future.get();
      solved += job.result.outcome != Outcome::kCancelled &&
                        job.result.outcome != Outcome::kError
                    ? 1
                    : 0;
    }
    service::JobResult big_job = big_future.get();
    solved += big_job.result.outcome != Outcome::kCancelled &&
                      big_job.result.outcome != Outcome::kError
                  ? 1
                  : 0;
    double seconds = timer.ElapsedSeconds();
    int total = static_cast<int>(small.size()) + 1;
    mixed.AddRow({adaptive ? "adaptive (0)" : "static (1)", Fmt1(seconds),
                  Fmt1(seconds > 0 ? total / seconds : 0.0),
                  std::to_string(solved),
                  std::to_string(big_job.threads_used)});
  }
  std::printf("%s\n", mixed.Render().c_str());
  std::printf(
      "adaptive lets the straggler widen to every worker once the small "
      "jobs drain;\nstatic keeps it at width 1 no matter how idle the fleet "
      "is\n");
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
