// Figure 1: parallel scaling of log-k-decomp (plain and hybrid) over the
// HB_large analogue (instances with |E| > 50 and hw <= 6), with the
// single-core NewDetKDecomp as reference.
//
// The paper measures wall-clock time on 1..5 cores of a 12-core Xeon. This
// container has a single core (DESIGN.md §4, substitution 3), where real
// threads cannot speed anything up (and oversubscription actively starves
// workers). The harness therefore runs the solvers in partition-simulation
// mode: the separator search executes sequentially while list-scheduling its
// work chunks onto n virtual workers — exactly the dynamic chunk-claiming
// discipline of the real parallel path — and reports
//
//   effective time(n) = wall time * makespan(n) / total work,
//
// the wall time the same search would take if the longest worker bounded the
// runtime (the paper's §5.2 argument: no inter-thread communication, so the
// longest worker is the critical path). Set HTD_FIG1_REAL_THREADS=1 on a
// multicore machine to measure genuine wall-clock scaling instead.
#include <cstdlib>

#include "bench_common.h"
#include "util/cancel.h"
#include "util/timer.h"

namespace htd::bench {
namespace {

bool UseRealThreads() {
  const char* value = std::getenv("HTD_FIG1_REAL_THREADS");
  return value != nullptr && value[0] == '1';
}

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Figure 1: scaling with the number of cores (HB_large)", config,
                corpus.size());
  const bool real_threads = UseRealThreads();
  std::printf("mode: %s\n\n", real_threads
                                  ? "real threads (wall-clock scaling)"
                                  : "partition simulation (single-core host)");

  // Pre-pass: determine widths (hybrid, sequential) to select HB_large.
  std::vector<int> widths(corpus.size(), -1);
  {
    RunConfig prepass = config;
    prepass.num_threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (corpus[i].graph.num_edges() <= 50) continue;
      RunRecord record =
          RunOptimalWithTimeout(HybridFactory(), corpus[i].graph, prepass);
      if (record.solved) widths[i] = record.width;
    }
  }
  std::vector<int> selected = SelectLargeSubset(corpus, widths);
  std::printf("HB_large analogue: %zu instances (|E| > 50, hw <= 6)\n\n",
              selected.size());

  const int max_threads = 6;
  struct MethodSpec {
    const char* name;
    SolverFactory factory;
  };
  const std::vector<MethodSpec> methods = {
      {"log-k", LogKFactory()},
      {"log-k (Hybrid)", HybridFactory()},
  };

  TextTable table;
  table.AddRow({"method", "cores", "avg wall (ms)", "avg effective (ms)",
                "speedup", "timeouts (all runs)"});
  for (const MethodSpec& method : methods) {
    // The paper averages only over instances that never time out for any n.
    std::vector<bool> always_solved(selected.size(), true);
    std::vector<std::vector<double>> wall_per_inst(
        selected.size(), std::vector<double>(max_threads + 1, 0.0));
    std::vector<std::vector<double>> eff_per_inst = wall_per_inst;
    int timeouts = 0;

    for (int threads = 1; threads <= max_threads; ++threads) {
      for (size_t s = 0; s < selected.size(); ++s) {
        const Instance& instance = corpus[selected[s]];
        util::CancelToken cancel;
        cancel.SetTimeout(std::chrono::duration<double>(config.timeout_seconds));
        SolveOptions options;
        options.cancel = &cancel;
        options.num_threads = threads;
        options.simulate_partition = !real_threads;
        std::unique_ptr<HdSolver> solver = method.factory(options);
        util::WallTimer timer;
        OptimalRun run = FindOptimalWidth(*solver, instance.graph, config.max_width);
        double seconds = timer.ElapsedSeconds();
        if (run.outcome != Outcome::kYes) {
          always_solved[s] = false;
          ++timeouts;
          continue;
        }
        double ratio = run.stats.work_total > 0
                           ? static_cast<double>(run.stats.work_parallel) /
                                 static_cast<double>(run.stats.work_total)
                           : 1.0;
        wall_per_inst[s][threads] = seconds;
        eff_per_inst[s][threads] = real_threads ? seconds : seconds * ratio;
      }
    }
    double base_effective = 0.0;
    for (int threads = 1; threads <= max_threads; ++threads) {
      util::RunningStats wall_stats, eff_stats;
      for (size_t s = 0; s < selected.size(); ++s) {
        if (!always_solved[s]) continue;
        wall_stats.Add(wall_per_inst[s][threads]);
        eff_stats.Add(eff_per_inst[s][threads]);
      }
      if (threads == 1) base_effective = eff_stats.Mean();
      double speedup =
          eff_stats.Mean() > 0 ? base_effective / eff_stats.Mean() : 1.0;
      table.AddRow({method.name, std::to_string(threads),
                    Fmt1(wall_stats.Mean() * 1000), Fmt1(eff_stats.Mean() * 1000),
                    Fmt1(speedup) + "x", std::to_string(timeouts)});
    }
  }

  // Reference: single-core NewDetKDecomp on the same subset.
  {
    RunConfig sequential = config;
    sequential.num_threads = 1;
    util::RunningStats stats;
    int timeouts = 0;
    for (int index : selected) {
      RunRecord record =
          RunOptimalWithTimeout(DetKFactory(), corpus[index].graph, sequential);
      if (record.solved) {
        stats.Add(record.seconds);
      } else {
        ++timeouts;
      }
    }
    table.AddRow({"NewDetKDecomp", "1", Fmt1(stats.Mean() * 1000),
                  Fmt1(stats.Mean() * 1000), "1.0x", std::to_string(timeouts)});
  }
  std::printf("%s\n", table.Render().c_str());
  if (!real_threads) {
    std::printf(
        "note: effective time = wall * simulated-makespan / total-work; wall\n"
        "itself cannot decrease on 1-CPU hardware. Rerun with\n"
        "HTD_FIG1_REAL_THREADS=1 on a multicore machine for wall-clock scaling.\n");
  }
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
