// Table 5: the exact solver (HtdLEO stand-in) with a 10x extended timeout —
// solved counts per group and the delta against the 1x run.
//
// Expected shape (paper): the extended timeout adds a moderate number of
// solves, and the total stays below the log-k hybrid's Table 1 count.
#include <cstdlib>

#include "bench_common.h"

namespace htd::bench {
namespace {

struct GroupKey {
  Origin origin;
  SizeBin bin;
};

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Table 5: exact solver with 10x extended timeout", config,
                corpus.size());

  RunConfig base = config;
  base.num_threads = 1;
  Campaign short_run = RunExactCampaign(corpus, base);

  // Re-run only the instances that the 1x budget failed to solve (counts are
  // identical to re-running everything; deterministic solver).
  RunConfig extended = base;
  extended.timeout_seconds = base.timeout_seconds * 10;
  std::vector<RunRecord> long_records = short_run.records;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!short_run.records[i].solved) {
      long_records[i] = RunExactWithTimeout(corpus[i].graph, extended);
    }
  }

  const std::vector<GroupKey> group_order = {
      {Origin::kApplication, SizeBin::k75To100},
      {Origin::kApplication, SizeBin::k50To75},
      {Origin::kApplication, SizeBin::k10To50},
      {Origin::kApplication, SizeBin::kUpTo10},
      {Origin::kSynthetic, SizeBin::kOver100},
      {Origin::kSynthetic, SizeBin::k75To100},
      {Origin::kSynthetic, SizeBin::k50To75},
      {Origin::kSynthetic, SizeBin::k10To50},
      {Origin::kSynthetic, SizeBin::kUpTo10},
  };

  TextTable table;
  table.AddRow({"origin", "size", "#inst", "#solved 10x", "change vs 1x"});
  int total_solved = 0, total_delta = 0;
  for (const GroupKey& group : group_order) {
    int in_group = 0, solved = 0, delta = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (corpus[i].origin != group.origin ||
          BinForEdgeCount(corpus[i].graph.num_edges()) != group.bin) {
        continue;
      }
      ++in_group;
      solved += long_records[i].solved ? 1 : 0;
      delta += (long_records[i].solved && !short_run.records[i].solved) ? 1 : 0;
    }
    if (in_group == 0) continue;
    total_solved += solved;
    total_delta += delta;
    table.AddRow({OriginName(group.origin), SizeBinName(group.bin),
                  std::to_string(in_group), std::to_string(solved),
                  (delta > 0 ? "+" : "") + std::to_string(delta)});
  }
  table.AddRow({"Total", "-", std::to_string(corpus.size()),
                std::to_string(total_solved),
                (total_delta > 0 ? "+" : "") + std::to_string(total_delta)});
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
