// Figure 3: scatter of solved (green) vs unsolved (red) instances relative
// to their edge and vertex counts, one series per method. Emitted as CSV
// rows (method, instance, edges, vertices, solved) ready for plotting.
//
// Expected shape (paper): det-k's unsolved region starts at moderate sizes;
// the exact solver extends it; log-k hybrid leaves mostly the extremely
// large or very-high-width instances unsolved.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

namespace htd::bench {
namespace {

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Figure 3: solved/unsolved scatter by |E| and |V|", config,
                corpus.size());

  RunConfig sequential = config;
  sequential.num_threads = 1;
  Campaign det_k = RunCampaign("det-k-decomp", DetKFactory(), corpus, sequential);
  Campaign exact = RunExactCampaign(corpus, sequential);
  Campaign hybrid = RunCampaign("log-k-decomp", HybridFactory(), corpus, config);

  std::printf("method,instance,edges,vertices,solved\n");
  for (const Campaign* campaign : {&det_k, &exact, &hybrid}) {
    for (size_t i = 0; i < corpus.size(); ++i) {
      std::printf("%s,%s,%d,%d,%d\n", campaign->method.c_str(),
                  corpus[i].name.c_str(), corpus[i].graph.num_edges(),
                  corpus[i].graph.num_vertices(),
                  campaign->records[i].solved ? 1 : 0);
    }
  }
  std::printf("\nsummary: det-k %d, exact %d, hybrid %d of %zu solved\n",
              det_k.SolvedCount(), exact.SolvedCount(), hybrid.SolvedCount(),
              corpus.size());
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
