// §5.2 GHD paragraph: "the results reported for BalancedGo show that the
// best method there solves only 1730 instances optimally without timeout; in
// contrast log-k-decomp manages to solve 2491 ... in none of the cases where
// BalancedGo finds the optimal ghw is it lower than the optimal hw."
//
// We reproduce both halves with the BalancedGo stand-in (baselines/
// balsep_ghd.*): (a) the GHD search solves fewer instances than the HD
// hybrid under the same budget, and (b) the first width at which a GHD is
// found is never below the proven hw — the extra generality of GHDs buys
// nothing on HyperBench-like inputs, while costing more search.
#include <cstdlib>

#include "baselines/balsep_ghd.h"
#include "bench_common.h"

namespace htd::bench {
namespace {

SolverFactory GhdFactory() {
  return [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<BalSepGhd>(options);
  };
}

int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("GHD vs HD comparison (§5.2 paragraph, BalancedGo stand-in)",
                config, corpus.size());

  Campaign hd = RunCampaign("log-k Hybrid (HD)", HybridFactory(), corpus, config);
  Campaign ghd = RunCampaign("balsep-ghd (GHD)", GhdFactory(), corpus, config);

  TextTable table;
  table.AddRow({"method", "solved", "avg ms", "max ms"});
  for (const Campaign* campaign : {&hd, &ghd}) {
    util::RunningStats stats;
    for (const RunRecord& record : campaign->records) {
      if (record.solved) stats.Add(record.seconds * 1000.0);
    }
    table.AddRow({campaign->method, std::to_string(campaign->SolvedCount()),
                  Fmt1(stats.Mean()), Fmt1(stats.Max())});
  }
  std::printf("%s", table.Render().c_str());

  // Width comparison on instances both methods solved. (The GHD stand-in is
  // exhaustive within its χ = ⋃λ search space, so "its optimum" means the
  // first width at which it finds a GHD — exactly BalancedGo's protocol.)
  int both = 0, ghw_below_hw = 0, ghw_equal_hw = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!hd.records[i].solved || !ghd.records[i].solved) continue;
    ++both;
    if (ghd.records[i].width < hd.records[i].width) ++ghw_below_hw;
    if (ghd.records[i].width == hd.records[i].width) ++ghw_equal_hw;
  }
  std::printf(
      "\nboth solved: %d; ghw(found) < hw: %d; ghw(found) = hw: %d\n"
      "(paper: the < count is zero — GHD generality buys no width here)\n",
      both, ghw_below_hw, ghw_equal_hw);
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
