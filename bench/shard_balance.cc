// Bench: fingerprint-range sharding of the warm state (service/shard_map.h).
//
// Two properties make the sharding layer worth running and this bench
// measures both on a realistic mixed corpus:
//
//  1. Balance. ShardMap splits the 128-bit canonical fingerprint space into
//     N equal hi-ranges. The fingerprint is a hash, so distinct isomorphism
//     classes should spread near-uniformly over the shards; a skewed split
//     would turn one hdserver into the fleet's hotspot. Reported as the
//     max/mean load ratio for N in {2, 4, 8, 16}.
//
//  2. Affinity. Renamed isomorphic copies — the production shape: one query
//     pattern under fresh variable names — must all land on the SAME shard,
//     or the fleet re-solves what one process would have cached. Verified
//     exactly (the bench fails on any split family), and the routing cost
//     itself is timed: IndexFor is arithmetic on an already-computed
//     fingerprint, so it must be in the nanoseconds, dwarfed by the
//     canonicalisation that produces the fingerprint.
//
// Env knobs (bench_common.h conventions): HTD_BENCH_SCALE multiplies the
// corpus.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hypergraph/generators.h"
#include "service/canonical.h"
#include "service/shard_map.h"
#include "util/rng.h"

namespace htd::bench {
namespace {

/// Isomorphic copy: random vertex renaming + random edge order.
Hypergraph RenameAndShuffle(const Hypergraph& graph, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> vertex_perm(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) vertex_perm[v] = v;
  rng.Shuffle(vertex_perm);
  std::vector<int> edge_order(graph.num_edges());
  for (int e = 0; e < graph.num_edges(); ++e) edge_order[e] = e;
  rng.Shuffle(edge_order);

  Hypergraph renamed;
  std::vector<int> new_id(graph.num_vertices(), -1);
  for (int e : edge_order) {
    std::vector<int> members;
    for (int v : graph.edge_vertex_list(e)) {
      if (new_id[v] < 0) {
        new_id[v] = renamed.GetOrAddVertex("r" + std::to_string(vertex_perm[v]));
      }
      members.push_back(new_id[v]);
    }
    if (!renamed.AddEdge(members).ok()) std::abort();
  }
  return renamed;
}

int ScaleFromEnv() {
  const char* text = std::getenv("HTD_BENCH_SCALE");
  int scale = text != nullptr ? std::atoi(text) : 1;
  return scale >= 1 ? scale : 1;
}

service::ShardMap MapOf(int n) {
  std::string spec;
  for (int i = 0; i < n; ++i) {
    spec += (i ? "," : "") + std::string("shard") + std::to_string(i) + ":80";
  }
  return service::ShardMap::Parse(spec).value();
}

}  // namespace
}  // namespace htd::bench

int main() {
  using namespace htd;
  using namespace htd::bench;

  const int scale = ScaleFromEnv();

  // Distinct isomorphism classes (one representative each)...
  std::vector<Hypergraph> classes;
  for (int n = 3; n < 3 + 40 * scale; ++n) {
    classes.push_back(MakePath(n));
    classes.push_back(MakeCycle(n));
    classes.push_back(MakeHyperCycle(n, 3, 1));
  }
  for (int n = 2; n < 2 + 4 * scale; ++n) {
    classes.push_back(MakeGrid(n, n + 1));
    classes.push_back(MakeClique(n + 2));
  }
  // ...and per-class renamed copies (the affinity workload).
  const int kCopies = 8;

  std::printf("shard_balance: %zu isomorphism classes, %d renamed copies each\n",
              classes.size(), kCopies);

  // Fingerprint everything once (timed: this is the real routing cost).
  auto t0 = std::chrono::steady_clock::now();
  std::vector<service::Fingerprint> class_fp;
  class_fp.reserve(classes.size());
  for (const Hypergraph& graph : classes) {
    class_fp.push_back(service::CanonicalFingerprint(graph));
  }
  auto t1 = std::chrono::steady_clock::now();
  const double fp_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() /
      static_cast<double>(classes.size());

  // Affinity: every renamed copy must route with its class, on every map.
  int split_families = 0;
  for (int n : {2, 4, 8, 16}) {
    service::ShardMap map = MapOf(n);
    for (size_t c = 0; c < classes.size(); ++c) {
      const int home = map.IndexFor(class_fp[c]);
      for (int copy = 0; copy < kCopies; ++copy) {
        Hypergraph renamed =
            RenameAndShuffle(classes[c], 0x5eed + c * 131 + copy);
        if (map.IndexFor(service::CanonicalFingerprint(renamed)) != home) {
          ++split_families;
          std::printf("  SPLIT: class %zu copy %d leaves shard %d (N=%d)\n",
                      c, copy, home, n);
        }
      }
    }
  }

  // Balance: distinct classes over the shards, plus raw IndexFor cost.
  std::printf("%6s %12s %12s %10s\n", "shards", "max load", "mean load",
              "max/mean");
  for (int n : {2, 4, 8, 16}) {
    service::ShardMap map = MapOf(n);
    std::vector<int> load(n, 0);
    for (const service::Fingerprint& fp : class_fp) ++load[map.IndexFor(fp)];
    int max_load = 0;
    for (int l : load) max_load = std::max(max_load, l);
    const double mean = static_cast<double>(class_fp.size()) / n;
    std::printf("%6d %12d %12.1f %10.2f\n", n, max_load, mean,
                static_cast<double>(max_load) / mean);
  }

  auto t2 = std::chrono::steady_clock::now();
  service::ShardMap map16 = MapOf(16);
  uint64_t sink = 0;
  constexpr int kLookups = 1'000'000;
  for (int i = 0; i < kLookups; ++i) {
    sink += static_cast<uint64_t>(
        map16.IndexFor(class_fp[static_cast<size_t>(i) % class_fp.size()]));
  }
  auto t3 = std::chrono::steady_clock::now();
  const double lookup_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / kLookups;

  std::printf("fingerprint (route key): %8.1f us/instance\n", fp_us);
  std::printf("IndexFor lookup:         %8.2f ns/lookup (sink %llu)\n",
              lookup_ns, static_cast<unsigned long long>(sink));

  if (split_families > 0) {
    std::printf("shard_balance: FAIL — %d renamed copies changed shard\n",
                split_families);
    return 1;
  }
  std::printf("shard_balance: OK — all renamed copies stayed on their shard\n");
  return 0;
}
