// Bench: live warm-state migration (PR 5) vs PR 4's drop-and-resolve
// resharding, on a 2 -> 4 shard transition.
//
// PR 4's supported reshard was: snapshot every shard, restart the fleet
// under the new map, and let the range-filtered restore DROP every entry
// outside each shard's new slice — the dropped slice is re-solved cold,
// which throws away exactly the "extensive caching" the paper credits for
// det-k-decomp's sequential strength (PODS 2022 §1). The migration path
// (net/decomposition_server.h /v1/admin/migrate) instead cuts each donor's
// snapshot to the intersection with every new range and streams it to the
// new owner, so retention is total.
//
// This bench isolates the data-plane cost — the persistence codec plus the
// dominance-checked insert paths, which is the wire format minus TCP — and
// reports:
//
//   * entries/sec migrated for the full 2 -> 4 transition, and
//   * warm-hit-rate retained (sampled lookups against the new owners)
//     for migration vs the drop-and-resolve baseline.
//
// The baseline models the PR 4 operator playbook for 2 -> 4: old shard 0
// restarts as new shard 0, old shard 1 as new shard 2 (each keeping the
// half of its entries that its shrunken range still covers), and new
// shards 1/3 start cold.
//
// Env knobs: HTD_BENCH_SCALE multiplies the synthetic entry volume.
// Exits non-zero if migration retains less than 100% of the warm state or
// fails to beat the baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/persistence.h"
#include "service/result_cache.h"
#include "service/shard_map.h"
#include "service/subproblem_store.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace htd::bench {
namespace {

int ScaleFromEnv() {
  const char* text = std::getenv("HTD_BENCH_SCALE");
  int scale = text != nullptr ? std::atoi(text) : 1;
  return scale >= 1 ? scale : 1;
}

service::ShardMap MapOf(int n) {
  std::string spec;
  for (int i = 0; i < n; ++i) {
    spec += (i ? "," : "") + std::string("shard") + std::to_string(i) + ":80";
  }
  return service::ShardMap::Parse(spec).value();
}

/// A small but realistic cache value: a two-node decomposition, the shape
/// an easy instance's SolveResult carries. The codec cost scales with this
/// payload, so every synthetic entry shares it.
SolveResult MakeResult() {
  SolveResult result;
  result.outcome = Outcome::kYes;
  Decomposition decomp;
  util::DynamicBitset chi_root(6), chi_leaf(6);
  chi_root.Set(0);
  chi_root.Set(1);
  chi_leaf.Set(1);
  chi_leaf.Set(2);
  decomp.AddNode({0, 1}, std::move(chi_root), -1);
  decomp.AddNode({1, 2}, std::move(chi_leaf), 0);
  result.decomposition = std::move(decomp);
  return result;
}

service::CacheKey KeyOf(const service::Fingerprint& fp) {
  service::CacheKey key;
  key.fingerprint = fp;
  key.k = 3;
  key.config_digest = 7;
  return key;
}

service::SubproblemStore::ExportedEntry StoreEntryOf(
    const service::Fingerprint& fp) {
  service::SubproblemStore::ExportedEntry entry;
  entry.fingerprint = fp;
  entry.k = 3;
  entry.negatives.push_back({{0, 1, 2}, {1, 2, 3}, {2, 3, 4}});
  return entry;
}

struct Shard {
  std::unique_ptr<service::ResultCache> cache;
  std::unique_ptr<service::SubproblemStore> store;

  Shard() {
    cache = std::make_unique<service::ResultCache>(1 << 20);
    store = std::make_unique<service::SubproblemStore>();
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
}  // namespace htd::bench

int main() {
  using namespace htd;
  using namespace htd::bench;

  const int scale = ScaleFromEnv();
  const size_t kCacheEntries = 20'000 * static_cast<size_t>(scale);
  const size_t kStoreEntries = 5'000 * static_cast<size_t>(scale);

  const service::ShardMap old_map = MapOf(2);
  const service::ShardMap new_map = MapOf(4);

  // Warm the OLD fleet with uniformly distributed fingerprints (the
  // canonical fingerprint is a hash — see bench/shard_balance.cc — so
  // synthetic uniform keys model the real key population).
  util::Rng rng(0x5eed);
  std::vector<Shard> old_fleet(2);
  std::vector<service::Fingerprint> cache_keys, store_keys;
  const SolveResult payload = MakeResult();
  for (size_t i = 0; i < kCacheEntries; ++i) {
    service::Fingerprint fp{rng.Next64(), rng.Next64()};
    cache_keys.push_back(fp);
    old_fleet[static_cast<size_t>(old_map.IndexFor(fp))].cache->Insert(
        KeyOf(fp), payload);
  }
  for (size_t i = 0; i < kStoreEntries; ++i) {
    service::Fingerprint fp{rng.Next64(), rng.Next64()};
    store_keys.push_back(fp);
    old_fleet[static_cast<size_t>(old_map.IndexFor(fp))].store->Import(
        StoreEntryOf(fp));
  }
  std::printf("reshard_migration: %zu cache entries + %zu store keys over 2 "
              "shards, resharding to 4\n",
              kCacheEntries, kStoreEntries);

  const auto retained = [&](std::vector<Shard>& fleet,
                            const service::ShardMap& map) {
    size_t cache_hits = 0, store_present = 0;
    for (const service::Fingerprint& fp : cache_keys) {
      Shard& owner = fleet[static_cast<size_t>(map.IndexFor(fp))];
      if (owner.cache->Lookup(KeyOf(fp)).has_value()) ++cache_hits;
    }
    for (const service::Fingerprint& fp : store_keys) {
      // Presence probe via a range export of exactly this key's hi slot.
      service::FingerprintRange point{fp.hi, fp.hi};
      Shard& owner = fleet[static_cast<size_t>(map.IndexFor(fp))];
      if (!owner.store->Export(&point).empty()) ++store_present;
    }
    return std::pair<size_t, size_t>(cache_hits, store_present);
  };

  // --- Baseline: PR 4 drop-and-resolve. ------------------------------------
  // Old shard i snapshots its full range; new shard 2i restores it filtered
  // to its (quartered) new range; new shards 1 and 3 start cold.
  std::vector<Shard> baseline_fleet(4);
  auto baseline_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 2; ++i) {
    const std::string snapshot = service::EncodeSnapshot(
        old_fleet[static_cast<size_t>(i)].cache.get(),
        old_fleet[static_cast<size_t>(i)].store.get(), /*config_digest=*/7);
    const int new_index = 2 * i;
    service::FingerprintRange range = new_map.RangeFor(new_index);
    auto restored = service::DecodeSnapshot(
        snapshot, baseline_fleet[static_cast<size_t>(new_index)].cache.get(),
        baseline_fleet[static_cast<size_t>(new_index)].store.get(), &range);
    if (!restored.ok()) {
      std::printf("FAIL: baseline restore: %s\n",
                  restored.status().message().c_str());
      return 1;
    }
  }
  const double baseline_seconds = SecondsSince(baseline_start);
  const auto [baseline_cache, baseline_store] =
      retained(baseline_fleet, new_map);

  // --- Migration: stream every leaving slice to its new owner. -------------
  std::vector<Shard> migrated_fleet(4);
  size_t moved = 0;
  auto migrate_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 2; ++i) {
    Shard& donor = old_fleet[static_cast<size_t>(i)];
    const service::FingerprintRange old_range = old_map.RangeFor(i);
    for (int j = 0; j < 4; ++j) {
      service::FingerprintRange slice = new_map.RangeFor(j);
      slice.first_hi = std::max(slice.first_hi, old_range.first_hi);
      slice.last_hi = std::min(slice.last_hi, old_range.last_hi);
      if (slice.first_hi > slice.last_hi) continue;
      service::SnapshotStats written;
      const std::string blob =
          service::EncodeSnapshot(donor.cache.get(), donor.store.get(),
                                  /*config_digest=*/7, &slice, &written);
      auto imported = service::DecodeSnapshot(
          blob, migrated_fleet[static_cast<size_t>(j)].cache.get(),
          migrated_fleet[static_cast<size_t>(j)].store.get(), &slice);
      if (!imported.ok()) {
        std::printf("FAIL: migration import: %s\n",
                    imported.status().message().c_str());
        return 1;
      }
      moved += written.cache_entries + written.store_entries;
    }
  }
  const double migrate_seconds = SecondsSince(migrate_start);
  const auto [migrated_cache, migrated_store] =
      retained(migrated_fleet, new_map);

  const size_t total = kCacheEntries + kStoreEntries;
  const double baseline_rate =
      100.0 * static_cast<double>(baseline_cache + baseline_store) /
      static_cast<double>(total);
  const double migrated_rate =
      100.0 * static_cast<double>(migrated_cache + migrated_store) /
      static_cast<double>(total);
  std::printf("%18s %10s %10s %12s %10s %14s\n", "mode", "cache", "store",
              "retained%", "seconds", "entries/sec");
  std::printf("%18s %10zu %10zu %11.1f%% %10.3f %14s\n", "drop-and-resolve",
              baseline_cache, baseline_store, baseline_rate, baseline_seconds,
              "-");
  std::printf("%18s %10zu %10zu %11.1f%% %10.3f %14.0f\n", "migration",
              migrated_cache, migrated_store, migrated_rate, migrate_seconds,
              static_cast<double>(moved) / migrate_seconds);

  if (migrated_cache + migrated_store != total) {
    std::printf("reshard_migration: FAIL — migration lost %zu entries\n",
                total - migrated_cache - migrated_store);
    return 1;
  }
  if (baseline_cache + baseline_store >= migrated_cache + migrated_store) {
    std::printf("reshard_migration: FAIL — baseline retained as much as "
                "migration?\n");
    return 1;
  }
  std::printf("reshard_migration: OK — migration retained 100%% "
              "(baseline %.1f%%), %.0f entries/sec\n",
              baseline_rate, static_cast<double>(moved) / migrate_seconds);
  return 0;
}
