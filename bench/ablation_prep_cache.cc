// Ablation bench (no direct paper counterpart; DESIGN.md §3 design choices):
//
//  A. Preprocessing — the width-preserving reductions (subsumed edges, twin
//     vertices, component split) every production HD system applies. We run
//     the optimal-width protocol with and without the PreprocessingSolver
//     wrapper for both log-k-decomp and det-k-decomp.
//
//  B. Negative subproblem cache — det-k-decomp's signature trick, which the
//     paper singles out as the reason det-k parallelises badly (§1). We
//     bolt the same idea onto log-k-decomp (core/negative_cache.h) and
//     measure what it buys on refutation-heavy workloads, sequentially and
//     under the partition simulation.
//
// Expected shape: preprocessing never changes widths and only shrinks the
// search (large wins exactly where instances carry redundancy); the cache
// cuts separator work on hard negatives, at a mutex cost the parallel
// scaling pays for.
#include <algorithm>
#include <cstdlib>
#include <chrono>

#include "bench_common.h"
#include "hypergraph/generators.h"
#include "prep/prep_solver.h"
#include "util/cancel.h"

namespace htd::bench {
namespace {

SolverFactory PreppedFactory(SolverFactory inner) {
  return [inner](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return MakePreprocessingSolver(inner(options));
  };
}


int Main() {
  RunConfig config = RunConfig::FromEnv();
  CorpusConfig corpus_config;
  corpus_config.scale = CorpusScaleFromEnv();
  std::vector<Instance> corpus = BuildHyperBenchLikeCorpus(corpus_config);
  PrintPreamble("Ablation: preprocessing and negative cache", config,
                corpus.size());

  // -------------------------------------------------------------- Part A
  // Preprocessing on the mid/large corpus slice (small instances finish in
  // microseconds either way).
  std::vector<int> selected;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].graph.num_edges() > 20) selected.push_back(static_cast<int>(i));
  }
  std::printf("Part A: preprocessing ablation (%zu instances with |E| > 20)\n",
              selected.size());

  struct Variant {
    std::string name;
    SolverFactory factory;
  };
  std::vector<Variant> variants = {
      {"log-k raw", LogKFactory()},
      {"log-k + prep", PreppedFactory(LogKFactory())},
      {"det-k raw", DetKFactory()},
      {"det-k + prep", PreppedFactory(DetKFactory())},
  };

  TextTable table_a;
  table_a.AddRow({"variant", "solved", "avg ms", "max ms"});
  for (const Variant& variant : variants) {
    int solved = 0;
    util::RunningStats stats;
    for (int index : selected) {
      RunRecord record =
          RunOptimalWithTimeout(variant.factory, corpus[index].graph, config);
      if (record.solved) {
        ++solved;
        stats.Add(record.seconds * 1000.0);
      }
    }
    table_a.AddRow({variant.name, std::to_string(solved),
                    Fmt1(stats.Mean()), Fmt1(stats.Max())});
  }
  std::printf("%s", table_a.Render().c_str());

  // Part A2: the same slice with HyperBench-style redundancy injected
  // (projection atoms + payload columns). The corpus generators emit
  // already-reduced hypergraphs, so this is where preprocessing shows the
  // effect it has on raw real-world CQ sets.
  std::printf("\nPart A2: same slice with injected redundancy "
              "(+33%% projection atoms, +4 payload columns)\n");
  std::vector<Hypergraph> redundant;
  for (int index : selected) {
    util::Rng inject_rng(1000 + index);
    redundant.push_back(AddRedundancy(corpus[index].graph, inject_rng,
                                      corpus[index].graph.num_edges() / 3, 4));
  }
  TextTable table_a2;
  table_a2.AddRow({"variant", "solved", "avg ms", "max ms"});
  for (const Variant& variant : variants) {
    int solved = 0;
    util::RunningStats stats;
    for (const Hypergraph& graph : redundant) {
      RunRecord record = RunOptimalWithTimeout(variant.factory, graph, config);
      if (record.solved) {
        ++solved;
        stats.Add(record.seconds * 1000.0);
      }
    }
    table_a2.AddRow({variant.name, std::to_string(solved),
                     Fmt1(stats.Mean()), Fmt1(stats.Max())});
  }
  std::printf("%s", table_a2.Render().c_str());

  // -------------------------------------------------------------- Part B
  // Negative cache on refutation-heavy instances: decide hw <= k for a k
  // strictly below the optimum, so the full search space is exhausted.
  std::printf("\nPart B: negative-cache ablation on hard refutations\n");
  struct Negative {
    std::string name;
    Hypergraph graph;
    int k;
  };
  util::Rng rng(20220412);
  std::vector<Negative> negatives;
  // K5 at k=2 is the canonical deep refutation (balanced separators exist,
  // so the search recurses and revisits subproblems). Bigger cliques at
  // small k refute instantly — no balanced separator — so K7 is a cheap
  // sanity row, not a stress row.
  negatives.push_back({"clique K5, k=2", MakeClique(5), 2});
  negatives.push_back({"clique K7, k=2", MakeClique(7), 2});
  negatives.push_back({"grid 3x4, k=1", MakeGrid(3, 4), 1});
  negatives.push_back(
      {"dense CSP, k=2", MakeRandomCsp(rng, 16, 12, 3, 5), 2});

  struct CacheVariant {
    const char* name;
    bool enabled;
    int shards;
  };
  // "cached-1" pins the cache to a single stripe — the historical global-
  // mutex configuration whose contention the paper's §1 argument is about;
  // "cached-16" is the striped default.
  const CacheVariant cache_variants[] = {
      {"plain", false, 1}, {"cached-16", true, 16}, {"cached-1", true, 1}};
  TextTable table_b;
  table_b.AddRow({"instance", "variant", "outcome", "separators", "cache hits",
                  "ms"});
  for (const Negative& negative : negatives) {
    for (const CacheVariant& variant : cache_variants) {
      util::CancelToken deadline;
      deadline.SetTimeout(std::chrono::duration<double>(
          std::max(config.timeout_seconds, 1.0)));
      SolveOptions options;
      options.enable_cache = variant.enabled;
      options.cache_shards = variant.shards;
      options.cancel = &deadline;
      LogKDecomp solver(options);
      SolveResult result = solver.Solve(negative.graph, negative.k);
      const char* outcome = result.outcome == Outcome::kNo    ? "no"
                            : result.outcome == Outcome::kYes ? "yes"
                                                              : "other";
      table_b.AddRow({negative.name, variant.name, outcome,
                      std::to_string(result.stats.separators_tried),
                      std::to_string(result.stats.cache_hits),
                      Fmt1(result.stats.seconds * 1000.0)});
    }
  }
  std::printf("%s", table_b.Render().c_str());
  std::printf(
      "\nReading: the cache trims exhaustive refutations (same outcome, fewer\n"
      "separators); the paper's design point keeps log-k cache-free because\n"
      "a shared cache serialises exactly the searches the algorithm\n"
      "parallelises — cached-1 is that historical single-mutex exhibit, and\n"
      "the striped cached-16 is what production paths use now. The follow-up\n"
      "ablation, bench/ablation_shared_memo.cc, measures the cross-instance\n"
      "version of the same idea: subproblem outcomes shared across runs.\n");
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
