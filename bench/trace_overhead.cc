// Overhead of the trace/metrics instrumentation (util/trace.h,
// util/metrics.h) on the hot solve path.
//
// Two measurements, each over the same mixed small-instance workload
// solved with LogKDecomp at 2 intra-solve threads (so the per-recursion
// separator-search spans in core/parallel_search.cc fire):
//
//   A. tracing disabled (TraceRegistry::set_enabled(false)): every
//      TraceScope constructs inert. The budget for this mode is "free" —
//      indistinguishable from noise.
//   B. tracing enabled with a live root for every solve, plus the stage
//      histograms observed per solve, which is what a production server
//      under full observability pays. Budget: < 2% over disabled.
//
// A third microbenchmark times the raw span record (TraceScope
// construct+destruct against a warm thread-local ring) to put a ns number
// on the primitive itself.
//
// The measured numbers are recorded in docs/OPERATIONS.md ("Latency
// debugging"); re-run this harness after touching the seqlock write path.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "hypergraph/generators.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace htd::bench {
namespace {

/// Solves every instance once; returns wall seconds for the sweep.
double SweepOnce(const std::vector<Hypergraph>& corpus,
                 const std::vector<int>& widths, bool traced,
                 util::MetricsRegistry* metrics) {
  util::TraceRegistry& registry = util::TraceRegistry::Instance();
  util::Histogram* solve_hist =
      metrics == nullptr
          ? nullptr
          : &metrics->GetHistogram("htd_stage_seconds", "stage=\"solve\"");
  util::WallTimer timer;
  for (size_t i = 0; i < corpus.size(); ++i) {
    SolveOptions options;
    options.num_threads = 2;
    util::WallTimer solve_timer;
    if (traced) {
      const uint64_t id = registry.NextId();
      util::TraceScope root("request", util::TraceRootId{id});
      util::TraceScope solve_span("solve", util::TraceParent{id, id});
      options.trace_parent = solve_span.id();
      options.trace_root = solve_span.root();
      auto solver = LogKFactory()(options);
      solver->Solve(corpus[i], widths[i]);
    } else {
      auto solver = LogKFactory()(options);
      solver->Solve(corpus[i], widths[i]);
    }
    if (solve_hist != nullptr) solve_hist->Observe(solve_timer.ElapsedSeconds());
  }
  return timer.ElapsedSeconds();
}

int Main() {
  // Mixed small shapes: paths and cycles (fast yes-instances), small grids
  // and cliques (separator search actually recurses). Small on purpose —
  // the shorter the solve, the larger any fixed per-span cost looms, so
  // this is the unfavourable case for the instrumentation.
  std::vector<Hypergraph> corpus;
  std::vector<int> widths;
  for (int n = 4; n <= 10; ++n) {
    corpus.push_back(MakePath(n));
    widths.push_back(2);
    corpus.push_back(MakeCycle(n));
    widths.push_back(2);
  }
  for (int n = 3; n <= 4; ++n) {
    corpus.push_back(MakeGrid(n, n));
    widths.push_back(3);
    corpus.push_back(MakeClique(n + 2));
    widths.push_back(3);
  }

  util::TraceRegistry& registry = util::TraceRegistry::Instance();
  const int kRounds = 9;

  // Warm-up: fault in code paths, thread-local rings, allocator arenas.
  registry.set_enabled(true);
  util::MetricsRegistry warm_metrics;
  SweepOnce(corpus, widths, /*traced=*/true, &warm_metrics);

  // Interleave the two modes so drift (thermal, other tenants) hits both
  // equally; the median round is the reported figure.
  std::vector<double> disabled_rounds, enabled_rounds;
  util::MetricsRegistry metrics;
  for (int round = 0; round < kRounds; ++round) {
    registry.set_enabled(false);
    disabled_rounds.push_back(
        SweepOnce(corpus, widths, /*traced=*/false, nullptr));
    registry.set_enabled(true);
    enabled_rounds.push_back(SweepOnce(corpus, widths, /*traced=*/true, &metrics));
  }
  registry.set_enabled(true);

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double disabled_s = median(disabled_rounds);
  const double enabled_s = median(enabled_rounds);
  const double overhead_pct = (enabled_s / disabled_s - 1.0) * 100.0;

  // Raw primitive: span record against a warm ring.
  const uint64_t root_id = registry.NextId();
  const int kSpans = 1000000;
  util::WallTimer span_timer;
  for (int i = 0; i < kSpans; ++i) {
    util::TraceScope span("bench", util::TraceParent{root_id, root_id},
                          static_cast<uint64_t>(i));
  }
  const double ns_per_span = span_timer.ElapsedSeconds() * 1e9 / kSpans;

  std::printf("trace_overhead: %zu instances x %d rounds (median)\n",
              corpus.size(), kRounds);
  std::printf("  disabled       %8.3f ms/sweep\n", disabled_s * 1e3);
  std::printf("  enabled        %8.3f ms/sweep\n", enabled_s * 1e3);
  std::printf("  overhead       %+7.2f %%  (budget < 2%%)\n", overhead_pct);
  std::printf("  span record    %8.1f ns each (%d spans)\n", ns_per_span,
              kSpans);
  // Exit non-zero well past budget so CI could gate on this harness; the
  // 2x margin absorbs shared-runner noise without hiding a regression.
  if (overhead_pct > 4.0) {
    std::printf("trace_overhead: FAIL (> 4%% — budget is 2%% + noise margin)\n");
    return 1;
  }
  std::printf("trace_overhead: OK\n");
  return 0;
}

}  // namespace
}  // namespace htd::bench

int main() { return htd::bench::Main(); }
