// hdserver: the standalone decomposition server (docs/SERVER.md).
//
//   $ hdserver --port 8080 --solver logk --workers 8 --threads 0 \
//              --queue-depth 64 --snapshot /var/lib/htd/warm.snap --store
//
// Serves POST /v1/decompose, GET /v1/jobs/<id>, GET /v1/stats, and
// POST /v1/admin/snapshot over HTTP/1.1. With --snapshot the server restores
// the result cache and subproblem store at startup (warm start) and saves
// them on clean shutdown (SIGINT/SIGTERM) unless --no-save-on-exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/decomposition_server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host ADDR        listen address (default 127.0.0.1)\n"
      "  --port N           listen port, 0 = ephemeral (default 8080)\n"
      "  --io-threads N     connection-serving threads (default 8)\n"
      "  --workers N        scheduler worker threads (default 4)\n"
      "  --threads N        intra-solve threads per job; 0 = batch-aware auto\n"
      "                     (default 0)\n"
      "  --solver NAME      logk | logk-basic | detk | hybrid | balsep-ghd\n"
      "  --queue-depth N    admission bound: shed with 429 beyond N\n"
      "                     outstanding jobs (default 64)\n"
      "  --max-connections N  live-connection bound: further connections are\n"
      "                     answered 503 and closed (default 64)\n"
      "  --default-timeout S  deadline for requests without ?timeout=\n"
      "                     (default 30, 0 = none)\n"
      "  --cache-capacity N result-cache entries (default 4096)\n"
      "  --store            enable the cross-instance subproblem store\n"
      "  --store-budget-mb N  subproblem store byte budget (default 64)\n"
      "  --max-k N          largest accepted width parameter (default 64)\n"
      "  --snapshot PATH    warm-state snapshot file (enables\n"
      "                     /v1/admin/snapshot, startup restore, exit save)\n"
      "  --no-load          do not restore the snapshot at startup\n"
      "  --no-save-on-exit  do not save the snapshot on clean shutdown\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  htd::net::DecompositionServerOptions options;
  options.http.port = 8080;
  options.service.solve.num_threads = 0;  // batch-aware auto
  options.service.default_timeout_seconds = 30.0;
  bool save_on_exit = true;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") {
      options.http.host = next("--host");
    } else if (flag == "--port") {
      options.http.port = std::atoi(next("--port"));
    } else if (flag == "--io-threads") {
      options.http.io_threads = std::atoi(next("--io-threads"));
    } else if (flag == "--workers") {
      options.service.num_workers = std::atoi(next("--workers"));
    } else if (flag == "--threads") {
      options.service.solve.num_threads = std::atoi(next("--threads"));
    } else if (flag == "--solver") {
      options.service.solver_name = next("--solver");
    } else if (flag == "--queue-depth") {
      options.max_queue_depth = std::atoi(next("--queue-depth"));
    } else if (flag == "--max-connections") {
      options.http.max_connections = std::atoi(next("--max-connections"));
    } else if (flag == "--default-timeout") {
      options.service.default_timeout_seconds = std::atof(next("--default-timeout"));
    } else if (flag == "--cache-capacity") {
      options.service.cache_capacity =
          static_cast<size_t>(std::atol(next("--cache-capacity")));
    } else if (flag == "--store") {
      options.service.enable_subproblem_store = true;
    } else if (flag == "--store-budget-mb") {
      options.service.subproblem_store.byte_budget =
          static_cast<size_t>(std::atol(next("--store-budget-mb"))) << 20;
      options.service.enable_subproblem_store = true;
    } else if (flag == "--max-k") {
      options.max_k = std::atoi(next("--max-k"));
    } else if (flag == "--snapshot") {
      options.snapshot_path = next("--snapshot");
    } else if (flag == "--no-load") {
      options.load_snapshot_on_start = false;
    } else if (flag == "--no-save-on-exit") {
      save_on_exit = false;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  auto server = htd::net::DecompositionServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "hdserver: %s\n", server.status().message().c_str());
    return 2;
  }
  if (auto status = (*server)->Start(); !status.ok()) {
    std::fprintf(stderr, "hdserver: %s\n", status.message().c_str());
    return 2;
  }

  const auto& restored = (*server)->restored();
  std::printf(
      "hdserver: listening on %s:%d (solver %s, %d workers, queue depth %d)\n",
      options.http.host.c_str(), (*server)->port(),
      options.service.solver_name.c_str(), options.service.num_workers,
      options.max_queue_depth);
  if (restored.cache_entries > 0 || restored.store_entries > 0) {
    std::printf("hdserver: warm start — restored %zu cache entries, "
                "%zu store keys from %s\n",
                restored.cache_entries, restored.store_entries,
                options.snapshot_path.c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("hdserver: shutting down\n");
  if (save_on_exit && !options.snapshot_path.empty()) {
    auto saved = (*server)->SaveSnapshotNow();
    if (saved.ok()) {
      std::printf("hdserver: snapshot saved (%zu cache entries, %zu store keys, "
                  "%zu bytes)\n",
                  saved->cache_entries, saved->store_entries, saved->bytes);
    } else {
      std::fprintf(stderr, "hdserver: snapshot save failed: %s\n",
                   saved.status().message().c_str());
    }
  }
  (*server)->Stop();
  return 0;
}
