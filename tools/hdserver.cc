// hdserver: the standalone decomposition server (docs/SERVER.md).
//
//   $ hdserver --port 8080 --solver logk --workers 8 --threads 0 \
//              --queue-depth 64 --snapshot /var/lib/htd/warm.snap --store
//
// Serves POST /v1/decompose, GET /v1/jobs/<id>, GET /v1/stats,
// GET /v1/metrics (Prometheus text), GET /v1/trace (recent request traces),
// and POST /v1/admin/snapshot over HTTP/1.1. With --snapshot the server restores
// the result cache and subproblem store at startup (warm start) and saves
// them on clean shutdown (SIGINT/SIGTERM) unless --no-save-on-exit;
// --snapshot-interval additionally saves periodically in the background.
//
// Sharded deployments (docs/SERVER.md "Sharding the warm state"):
//
//   $ hdserver --route-to 10.0.0.1:8080,10.0.0.2:8080         # proxy mode
//   $ hdserver --shard-map 10.0.0.1:8080,10.0.0.2:8080 \
//              --shard-index 0 --snapshot shard0.snap          # backend
//
// Proxy mode forwards each /v1/decompose to the shard owning the instance's
// canonical fingerprint (net/shard_router.h), aggregates GET /v1/metrics
// across the fleet, and serves nothing else locally;
// backend mode restricts snapshots to this shard's fingerprint range and
// refuses requests routed by a mismatched map digest with 421. A map item
// "host:port*2" declares a replicated range (that endpoint plus the next
// one serve the same range; the router round-robins over them). Topologies
// change at runtime: tools/hdreshard.cc drives a live N->M reshard through
// POST /v1/admin/transition (router) and /v1/admin/migrate (backends)
// without dropping warm state — see docs/OPERATIONS.md.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/decomposition_server.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "util/cli.h"
#include "util/executor.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host ADDR        listen address (default 127.0.0.1)\n"
      "  --port N           listen port, 0 = ephemeral (default 8080)\n"
      "  --io-threads N     handler-executing threads: a synchronous solve\n"
      "                     blocks one for its duration (default 8)\n"
      "  --loop-threads N   epoll event-loop ring driving connection I/O;\n"
      "                     a few loops carry tens of thousands of sockets\n"
      "                     (default 2)\n"
      "  --workers N        fleet executor width: workers shared by every\n"
      "                     solve and async query job (default 4)\n"
      "  --threads N        intra-solve threads per job; 0 = batch-aware auto\n"
      "                     (default 0)\n"
      "  --solver NAME      logk | logk-basic | detk | hybrid | balsep-ghd\n"
      "  --queue-depth N    admission bound: shed with 429 beyond N\n"
      "                     outstanding jobs (default 64)\n"
      "  --max-connections N  live-connection bound: further connections are\n"
      "                     answered 503 and closed (default 64)\n"
      "  --idle-timeout S   close keep-alive connections idle past S seconds\n"
      "                     (default 30)\n"
      "  --header-timeout S reap a connection still mid-request after S\n"
      "                     seconds with 408 (slow-loris guard; default 10,\n"
      "                     0 = use --idle-timeout)\n"
      "  --write-timeout S  abandon a response part-flushed to a stalled\n"
      "                     reader after S seconds (default 30)\n"
      "  --default-timeout S  deadline for requests without ?timeout=\n"
      "                     (default 30, 0 = none)\n"
      "  --cache-capacity N result-cache entries (default 4096)\n"
      "  --store            enable the cross-instance subproblem store\n"
      "  --store-budget-mb N  subproblem store byte budget (default 64)\n"
      "  --max-k N          largest accepted width parameter (default 64)\n"
      "  --snapshot PATH    warm-state snapshot file (enables\n"
      "                     /v1/admin/snapshot, startup restore, exit save)\n"
      "  --snapshot-interval S  also save the snapshot every S seconds\n"
      "                     (0 = off, the default; requires --snapshot)\n"
      "  --no-load          do not restore the snapshot at startup\n"
      "  --no-save-on-exit  do not save the snapshot on clean shutdown\n"
      "sharding (docs/SERVER.md, docs/OPERATIONS.md):\n"
      "  --shard-map H:P,H:P,...  fleet topology; this process serves the\n"
      "                     fingerprint range of shard --shard-index.\n"
      "                     \"H:P*2\" marks a replicated range (this endpoint\n"
      "                     plus the next serve the same range)\n"
      "  --shard-index N    which RANGE of --shard-map this process serves\n"
      "                     (replicas of one range share the index)\n"
      "  --route-to H:P,H:P,...   proxy mode: forward /v1/decompose to the\n"
      "                     owning shard instead of serving locally\n"
      "  --route-backoff S  base backoff after a shard transport failure\n"
      "                     (default 0.5, doubling up to 30)\n"
      "  --anti-entropy-interval S  reconcile warm state with the replica\n"
      "                     siblings of this range every S seconds (0 = off,\n"
      "                     the default; requires --shard-map). POST\n"
      "                     /v1/admin/antientropy forces a round either way\n"
      "  --anti-entropy-slices N  digest sub-slices per comparison\n"
      "                     (default 16, max 4096)\n"
      "  --self H:P         this process's own endpoint as written in\n"
      "                     --shard-map, so the sweep skips itself (default:\n"
      "                     inferred from the listen port)\n"
      "live resharding: drive with hdreshard (POST /v1/admin/transition on\n"
      "the router, /v1/admin/migrate on each backend)\n",
      argv0);
}

/// Strict integer flag: full-string, range-checked. Prints usage and exits
/// non-zero on garbage — `--port x` must not silently bind port 0.
long RequireInt(const char* argv0, const char* flag, const char* text,
                long min_value, long max_value) {
  long value;
  if (!htd::util::ParseIntFlag(text, min_value, max_value, &value)) {
    std::fprintf(stderr,
                 "invalid value for %s: \"%s\" (expected an integer in "
                 "[%ld, %ld])\n\n",
                 flag, text, min_value, max_value);
    Usage(argv0);
    std::exit(2);
  }
  return value;
}

double RequireSeconds(const char* argv0, const char* flag, const char* text) {
  double value;
  if (!htd::util::ParseDoubleFlag(text, 0.0, &value)) {
    std::fprintf(stderr,
                 "invalid value for %s: \"%s\" (expected seconds >= 0)\n\n",
                 flag, text);
    Usage(argv0);
    std::exit(2);
  }
  return value;
}

htd::service::ShardMap RequireShardMap(const char* argv0, const char* flag,
                                       const char* text) {
  auto map = htd::service::ShardMap::Parse(text);
  if (!map.ok()) {
    std::fprintf(stderr, "invalid value for %s: %s\n\n", flag,
                 map.status().message().c_str());
    Usage(argv0);
    std::exit(2);
  }
  return *std::move(map);
}

/// Proxy mode: an HttpServer whose handler is the ShardRouter; no local
/// service, no snapshot — the shards own the warm state.
int RunRouter(htd::net::HttpServer::Options http,
              htd::net::ShardRouterOptions router_options) {
  htd::net::ShardRouter router(std::move(router_options));
  htd::net::HttpServer http_server(
      http, [&router](const htd::net::HttpRequest& request) {
        return router.Handle(request);
      });
  if (auto status = http_server.Start(); !status.ok()) {
    std::fprintf(stderr, "hdserver: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("hdserver: routing on %s:%d across %d shards (%s), digest %s\n",
              http.host.c_str(), http_server.port(),
              router.options().map.num_shards(),
              router.options().map.Serialise().c_str(),
              router.options().map.DigestHex().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("hdserver: router shutting down\n");
  http_server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  htd::net::DecompositionServerOptions options;
  options.http.port = 8080;
  options.service.solve.num_threads = 0;  // batch-aware auto
  options.service.default_timeout_seconds = 30.0;
  bool save_on_exit = true;
  double snapshot_interval = 0.0;
  bool have_shard_index = false;
  std::string route_to_spec;
  htd::net::ShardRouterOptions router_options{
      htd::service::ShardMap::Parse("unused:1").value()};

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") {
      options.http.host = next("--host");
    } else if (flag == "--port") {
      options.http.port = static_cast<int>(
          RequireInt(argv[0], "--port", next("--port"), 0, 65535));
    } else if (flag == "--io-threads") {
      options.http.io_threads = static_cast<int>(
          RequireInt(argv[0], "--io-threads", next("--io-threads"), 1, 1024));
    } else if (flag == "--loop-threads") {
      options.http.loop_threads = static_cast<int>(RequireInt(
          argv[0], "--loop-threads", next("--loop-threads"), 1, 256));
    } else if (flag == "--idle-timeout") {
      options.http.idle_timeout_seconds =
          RequireSeconds(argv[0], "--idle-timeout", next("--idle-timeout"));
    } else if (flag == "--header-timeout") {
      options.http.header_timeout_seconds =
          RequireSeconds(argv[0], "--header-timeout", next("--header-timeout"));
    } else if (flag == "--write-timeout") {
      options.http.write_timeout_seconds =
          RequireSeconds(argv[0], "--write-timeout", next("--write-timeout"));
    } else if (flag == "--workers") {
      options.service.num_workers = static_cast<int>(
          RequireInt(argv[0], "--workers", next("--workers"), 1, 1024));
    } else if (flag == "--threads") {
      options.service.solve.num_threads = static_cast<int>(
          RequireInt(argv[0], "--threads", next("--threads"), 0, 1024));
    } else if (flag == "--solver") {
      options.service.solver_name = next("--solver");
    } else if (flag == "--queue-depth") {
      options.max_queue_depth = static_cast<int>(RequireInt(
          argv[0], "--queue-depth", next("--queue-depth"), 1, 1'000'000));
    } else if (flag == "--max-connections") {
      options.http.max_connections = static_cast<int>(
          RequireInt(argv[0], "--max-connections", next("--max-connections"), 1,
                     1'000'000));
    } else if (flag == "--default-timeout") {
      options.service.default_timeout_seconds =
          RequireSeconds(argv[0], "--default-timeout", next("--default-timeout"));
    } else if (flag == "--cache-capacity") {
      options.service.cache_capacity = static_cast<size_t>(
          RequireInt(argv[0], "--cache-capacity", next("--cache-capacity"), 1,
                     1'000'000'000));
    } else if (flag == "--store") {
      options.service.enable_subproblem_store = true;
    } else if (flag == "--store-budget-mb") {
      options.service.subproblem_store.byte_budget =
          static_cast<size_t>(RequireInt(argv[0], "--store-budget-mb",
                                         next("--store-budget-mb"), 1,
                                         1'000'000))
          << 20;
      options.service.enable_subproblem_store = true;
    } else if (flag == "--max-k") {
      options.max_k = static_cast<int>(
          RequireInt(argv[0], "--max-k", next("--max-k"), 1, 1'000'000));
    } else if (flag == "--snapshot") {
      options.snapshot_path = next("--snapshot");
    } else if (flag == "--snapshot-interval") {
      snapshot_interval = RequireSeconds(argv[0], "--snapshot-interval",
                                         next("--snapshot-interval"));
    } else if (flag == "--no-load") {
      options.load_snapshot_on_start = false;
    } else if (flag == "--no-save-on-exit") {
      save_on_exit = false;
    } else if (flag == "--shard-map") {
      options.shard_map =
          RequireShardMap(argv[0], "--shard-map", next("--shard-map"));
    } else if (flag == "--shard-index") {
      options.shard_index = static_cast<int>(
          RequireInt(argv[0], "--shard-index", next("--shard-index"), 0, 4095));
      have_shard_index = true;
    } else if (flag == "--anti-entropy-interval") {
      options.anti_entropy_interval_seconds =
          RequireSeconds(argv[0], "--anti-entropy-interval",
                         next("--anti-entropy-interval"));
    } else if (flag == "--anti-entropy-slices") {
      options.anti_entropy_slices = static_cast<int>(
          RequireInt(argv[0], "--anti-entropy-slices",
                     next("--anti-entropy-slices"), 1, 4096));
    } else if (flag == "--self") {
      options.anti_entropy_self = next("--self");
    } else if (flag == "--route-to") {
      route_to_spec = next("--route-to");
    } else if (flag == "--route-backoff") {
      router_options.backoff_base_seconds =
          RequireSeconds(argv[0], "--route-backoff", next("--route-backoff"));
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (!route_to_spec.empty()) {
    if (options.shard_map.has_value() || have_shard_index ||
        !options.snapshot_path.empty()) {
      std::fprintf(stderr,
                   "--route-to (proxy mode) excludes --shard-map, "
                   "--shard-index, and --snapshot: the shards own the warm "
                   "state, the router owns none\n");
      return 2;
    }
    router_options.map =
        RequireShardMap(argv[0], "--route-to", route_to_spec.c_str());
    return RunRouter(options.http, std::move(router_options));
  }
  if (options.shard_map.has_value() != have_shard_index) {
    std::fprintf(stderr, "--shard-map and --shard-index go together\n");
    return 2;
  }
  if (snapshot_interval > 0 && options.snapshot_path.empty()) {
    std::fprintf(stderr, "--snapshot-interval requires --snapshot PATH\n");
    return 2;
  }

  // Size the fleet-wide executor before anything touches Global(): every
  // flight, chunk task, and async query job in this process runs on it.
  htd::util::Executor::InitGlobal(options.service.num_workers);
  auto server = htd::net::DecompositionServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "hdserver: %s\n", server.status().message().c_str());
    return 2;
  }
  if (auto status = (*server)->Start(); !status.ok()) {
    std::fprintf(stderr, "hdserver: %s\n", status.message().c_str());
    return 2;
  }

  const auto& restored = (*server)->restored();
  std::printf(
      "hdserver: listening on %s:%d (solver %s, %d workers, queue depth %d)\n",
      options.http.host.c_str(), (*server)->port(),
      options.service.solver_name.c_str(), options.service.num_workers,
      options.max_queue_depth);
  if (options.shard_map.has_value()) {
    std::printf("hdserver: shard %d/%d of %s (digest %s)\n",
                options.shard_index, options.shard_map->num_shards(),
                options.shard_map->Serialise().c_str(),
                options.shard_map->DigestHex().c_str());
  }
  if (options.anti_entropy_interval_seconds > 0) {
    std::printf("hdserver: anti-entropy sweep every %.3gs (%d digest slices)\n",
                options.anti_entropy_interval_seconds,
                options.anti_entropy_slices);
  }
  if (restored.cache_entries > 0 || restored.store_entries > 0 ||
      restored.dropped_out_of_range > 0) {
    std::printf("hdserver: warm start — restored %zu cache entries, "
                "%zu store keys from %s (%zu dropped out of shard range)\n",
                restored.cache_entries, restored.store_entries,
                options.snapshot_path.c_str(), restored.dropped_out_of_range);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Periodic background snapshot (--snapshot-interval): bounds warm-state
  // loss on crash to one interval. SaveSnapshotNow serialises writers, so a
  // colliding /v1/admin/snapshot or exit save stays safe.
  auto last_save = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (snapshot_interval > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_save).count() >=
          snapshot_interval) {
        last_save = now;
        auto saved = (*server)->SaveSnapshotNow();
        if (!saved.ok()) {
          std::fprintf(stderr, "hdserver: periodic snapshot failed: %s\n",
                       saved.status().message().c_str());
        }
      }
    }
  }

  std::printf("hdserver: shutting down\n");
  if (save_on_exit && !options.snapshot_path.empty()) {
    auto saved = (*server)->SaveSnapshotNow();
    if (saved.ok()) {
      std::printf("hdserver: snapshot saved (%zu cache entries, %zu store keys, "
                  "%zu bytes)\n",
                  saved->cache_entries, saved->store_entries, saved->bytes);
    } else {
      std::fprintf(stderr, "hdserver: snapshot save failed: %s\n",
                   saved.status().message().c_str());
    }
  }
  (*server)->Stop();
  return 0;
}
