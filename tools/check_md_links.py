#!/usr/bin/env python3
"""Checks intra-repo links and anchors in the repository's Markdown files.

Scans every *.md file (outside build trees) for inline links and
reference-style definitions, and fails if

  * a relative link points at a file or directory that does not exist, or
  * a fragment — `#anchor` within the same file, or `other.md#anchor`
    across files — names a heading that does not exist in the target
    Markdown file (GitHub slug rules: lowercase, punctuation stripped,
    spaces to hyphens, `-N` suffixes for duplicates).

External schemes (http, https, mailto) are ignored; fenced code blocks are
skipped so code samples cannot produce false positives.

Usage: python3 tools/check_md_links.py [repo_root]
Exit status: 0 if every intra-repo link and anchor resolves, 1 otherwise.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-tsan", "node_modules"}
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
MD_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)]*\)")
SLUG_STRIP = re.compile(r"[^\w\- ]")


def find_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def non_fenced_lines(path):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            yield line_number, line


def links_in(path):
    for line_number, line in non_fenced_lines(path):
        for match in INLINE_LINK.finditer(line):
            yield line_number, match.group(1)
        match = REFERENCE_DEF.match(line)
        if match:
            yield line_number, match.group(1)


def github_slug(text):
    """The anchor GitHub generates for a heading (close enough: lowercase,
    markdown markup dropped, punctuation removed — underscores KEPT —
    spaces hyphenated)."""
    text = MD_LINK_TEXT.sub(r"\1", text)       # [text](url) -> text
    text = text.replace("`", "").replace("*", "")
    text = SLUG_STRIP.sub("", text.lower())
    return text.strip().replace(" ", "-")


def anchors_in(path):
    """All heading anchors of one Markdown file, with duplicate -N suffixes."""
    seen = {}
    anchors = set()
    for _, line in non_fenced_lines(path):
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    anchor_cache = {}

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = anchors_in(path)
        return anchor_cache[path]

    dead = []
    dangling = []
    checked = anchors_checked = 0
    for md_file in find_markdown_files(root):
        for line_number, target in links_in(md_file):
            if EXTERNAL.match(target):
                continue
            relative, _, fragment = target.partition("#")
            if not relative:
                resolved = md_file  # pure #anchor: same file
            elif relative.startswith("/"):
                resolved = os.path.join(root, relative.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(md_file), relative)
            if relative:
                checked += 1
                if not os.path.exists(resolved):
                    dead.append(
                        (os.path.relpath(md_file, root), line_number, target))
                    continue
            if fragment and resolved.endswith(".md") and os.path.isfile(resolved):
                anchors_checked += 1
                if fragment.lower() not in anchors_of(resolved):
                    dangling.append(
                        (os.path.relpath(md_file, root), line_number, target))
    status = 0
    if dead:
        print("dead intra-repo links:")
        for md_file, line_number, target in dead:
            print(f"  {md_file}:{line_number}: {target}")
        status = 1
    if dangling:
        print("dangling anchors (no such heading in the target file):")
        for md_file, line_number, target in dangling:
            print(f"  {md_file}:{line_number}: {target}")
        status = 1
    if status == 0:
        print(f"ok: {checked} intra-repo links and {anchors_checked} anchors "
              f"resolve")
    return status


if __name__ == "__main__":
    sys.exit(main())
