#!/usr/bin/env python3
"""Checks intra-repo links in the repository's Markdown files.

Scans every *.md file (outside build trees) for inline links and
reference-style definitions, and fails if a relative link points at a file
or directory that does not exist. External schemes (http, https, mailto)
and pure #anchor links are ignored; fenced code blocks are skipped so code
samples cannot produce false positives.

Usage: python3 tools/check_md_links.py [repo_root]
Exit status: 0 if every intra-repo link resolves, 1 otherwise.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-tsan", "node_modules"}
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def find_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in INLINE_LINK.finditer(line):
                yield line_number, match.group(1)
            match = REFERENCE_DEF.match(line)
            if match:
                yield line_number, match.group(1)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    dead = []
    checked = 0
    for md_file in find_markdown_files(root):
        for line_number, target in links_in(md_file):
            if EXTERNAL.match(target) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if relative.startswith("/"):
                resolved = os.path.join(root, relative.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(md_file), relative)
            checked += 1
            if not os.path.exists(resolved):
                dead.append((os.path.relpath(md_file, root), line_number, target))
    if dead:
        print("dead intra-repo links:")
        for md_file, line_number, target in dead:
            print(f"  {md_file}:{line_number}: {target}")
        return 1
    print(f"ok: {checked} intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
