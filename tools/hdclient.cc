// hdclient: command-line client for hdserver (docs/SERVER.md).
//
//   $ hdclient decompose instance.hg --k 3 --timeout 5 --decomposition
//   $ hdclient decompose instance.hg --k 3 --async      # prints a job id
//   $ hdclient job j42
//   $ hdclient stats
//   $ hdclient snapshot
//
// Speaks HTTP/1.1 over a raw TCP socket (Connection: close per request) —
// no external dependencies. The response body is printed to stdout.
//
// Exit codes: 0 = 2xx, 3 = other HTTP error, 4 = load shed (429/503),
// 2 = usage/transport error, 5 = --expect-cache-hit unmet.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "net/http.h"
#include "util/socket.h"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 8080;
  /// Transport timeout (connect + response read). For synchronous decompose
  /// requests the effective read timeout is stretched to cover the job's own
  /// --timeout (the server legitimately takes that long to answer); a job
  /// with no deadline (--timeout 0) waits indefinitely.
  double connect_timeout = 120.0;
  std::string command;
  std::string file;    // decompose: instance path ("-" = stdin)
  std::string job_id;  // job
  int k = 0;
  double timeout = -1.0;  // <0 = server default
  bool async = false;
  bool decomposition = false;
  bool expect_cache_hit = false;
  bool quiet = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port N] COMMAND\n"
      "commands:\n"
      "  decompose FILE --k N [--timeout S] [--async] [--decomposition]\n"
      "            [--expect-cache-hit]      FILE '-' reads stdin\n"
      "  job ID                              poll an async job\n"
      "  stats                               GET /v1/stats\n"
      "  snapshot                            POST /v1/admin/snapshot\n"
      "options:\n"
      "  --quiet               suppress the response body on success\n"
      "  --connect-timeout S   transport timeout (default 120; sync decompose\n"
      "                        reads wait at least the job timeout + 60)\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args& args) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      args.host = v;
    } else if (flag == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      args.port = std::atoi(v);
    } else if (flag == "--k") {
      const char* v = next("--k");
      if (v == nullptr) return false;
      args.k = std::atoi(v);
    } else if (flag == "--timeout") {
      const char* v = next("--timeout");
      if (v == nullptr) return false;
      args.timeout = std::atof(v);
    } else if (flag == "--connect-timeout") {
      const char* v = next("--connect-timeout");
      if (v == nullptr) return false;
      args.connect_timeout = std::atof(v);
    } else if (flag == "--async") {
      args.async = true;
    } else if (flag == "--decomposition") {
      args.decomposition = true;
    } else if (flag == "--expect-cache-hit") {
      args.expect_cache_hit = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    } else if (positional == 0) {
      args.command = flag;
      ++positional;
    } else if (positional == 1 &&
               (args.command == "decompose" || args.command == "job")) {
      if (args.command == "decompose") {
        args.file = flag;
      } else {
        args.job_id = flag;
      }
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", flag.c_str());
      return false;
    }
  }
  if (args.command == "decompose") return !args.file.empty() && args.k >= 1;
  if (args.command == "job") return !args.job_id.empty();
  return args.command == "stats" || args.command == "snapshot";
}

/// One HTTP exchange (Connection: close). Returns false on transport errors.
bool Exchange(const Args& args, const std::string& method,
              const std::string& target, const std::string& body, int* status,
              std::string* response_body) {
  double io_timeout = args.connect_timeout;
  if (args.command == "decompose" && !args.async) {
    // A synchronous solve may legitimately run for the job's full deadline;
    // the transport must outlast it. --timeout 0 = no deadline: wait forever.
    io_timeout = args.timeout == 0.0
                     ? 0.0
                     : std::max(io_timeout, args.timeout + 60.0);
  }
  auto sock = htd::util::ConnectTcp(args.host, args.port, io_timeout);
  if (!sock.ok()) {
    std::fprintf(stderr, "hdclient: %s\n", sock.status().message().c_str());
    return false;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + args.host + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!htd::util::SendAll(sock->fd(), request)) {
    std::fprintf(stderr, "hdclient: send failed\n");
    return false;
  }
  std::string blob;
  char buffer[16 * 1024];
  while (true) {
    long n = htd::util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n == 0) break;  // orderly close: response complete
    if (n < 0) {
      std::fprintf(stderr, "hdclient: %s\n",
                   n == -2 ? "response timed out" : "recv failed");
      return false;
    }
    blob.append(buffer, static_cast<size_t>(n));
  }
  std::map<std::string, std::string> headers;
  if (!htd::net::ParseHttpResponseBlob(blob, status, &headers, response_body)) {
    std::fprintf(stderr, "hdclient: malformed HTTP response\n");
    return false;
  }
  return true;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    Usage(argv[0]);
    return 2;
  }

  std::string method = "GET", target, body;
  if (args.command == "decompose") {
    std::string text;
    if (args.file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream in(args.file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "hdclient: cannot open %s\n", args.file.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
    method = "POST";
    target = "/v1/decompose?k=" + std::to_string(args.k);
    if (args.timeout >= 0) target += "&timeout=" + FormatSeconds(args.timeout);
    if (args.async) target += "&async=1";
    if (args.decomposition) target += "&decomposition=1";
    body = std::move(text);
  } else if (args.command == "job") {
    target = "/v1/jobs/" + args.job_id;
  } else if (args.command == "stats") {
    target = "/v1/stats";
  } else {  // snapshot
    method = "POST";
    target = "/v1/admin/snapshot";
  }

  int status = 0;
  std::string response;
  if (!Exchange(args, method, target, body, &status, &response)) return 2;

  if (status >= 200 && status < 300) {
    if (!args.quiet) std::fputs(response.c_str(), stdout);
    if (args.expect_cache_hit &&
        response.find("\"cache_hit\": true") == std::string::npos) {
      std::fprintf(stderr, "hdclient: expected a cache hit, got: %s",
                   response.c_str());
      return 5;
    }
    return 0;
  }
  std::fprintf(stderr, "hdclient: HTTP %d: %s", status, response.c_str());
  return status == 429 || status == 503 ? 4 : 3;
}
