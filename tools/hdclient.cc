// hdclient: command-line client for hdserver (docs/SERVER.md).
//
//   $ hdclient decompose instance.hg --k 3 --timeout 5 --decomposition
//   $ hdclient decompose instance.hg --k 3 --async      # prints a job id
//   $ hdclient query request.qr --timeout 5             # HTDQUERY1 body
//   $ hdclient job j42                                  # or q42 (query job)
//   $ hdclient stats
//   $ hdclient metrics                    # /v1/metrics, histograms condensed
//   $ hdclient trace --last 5             # /v1/trace?n=5
//   $ hdclient snapshot
//
// --verbose prints the response's observability headers (X-HTD-Request-Id,
// Server-Timing stage breakdown) to stderr on decompose, and the raw
// Prometheus page (HELP/TYPE lines, every histogram bucket) on metrics.
//
// Sharded fleets (docs/SERVER.md "Sharding the warm state"): with
// --shards host:port,host:port the client hashes the instance's canonical
// fingerprint itself and talks straight to the owning shard — no proxy hop.
// The shared ShardMap's digest rides along on every request, so a client
// holding a stale topology is refused with 421 instead of warming the wrong
// shard. `stats` and `snapshot` fan out to every shard.
//
// Speaks HTTP/1.1 over a raw TCP socket (Connection: close per request) —
// no external dependencies. The response body is printed to stdout.
//
// Exit codes: 0 = 2xx, 3 = other HTTP error, 4 = load shed (429/503),
// 2 = usage/transport error, 5 = --expect-cache-hit unmet.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cq/query.h"
#include "hypergraph/parser.h"
#include "net/http_client.h"
#include "qa/wire.h"
#include "service/canonical.h"
#include "service/shard_map.h"
#include "util/cli.h"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 8080;
  /// Transport timeout (connect + response read). For synchronous decompose
  /// requests the effective read timeout is stretched to cover the job's own
  /// --timeout (the server legitimately takes that long to answer); a job
  /// with no deadline (--timeout 0) waits indefinitely.
  double connect_timeout = 120.0;
  std::string command;
  std::string file;    // decompose: instance path ("-" = stdin)
  std::string job_id;  // job
  int k = 0;
  double timeout = -1.0;  // <0 = server default
  int count = -1;         // query: <0 = server default, 0/1 = override
  bool async = false;
  bool decomposition = false;
  bool expect_cache_hit = false;
  bool quiet = false;
  bool verbose = false;
  long trace_n = 16;  // trace: how many recent root spans to fetch
  /// Client-side sharding: fingerprint the instance locally and pick the
  /// owning endpoint from this map (overrides --host/--port for decompose).
  std::optional<htd::service::ShardMap> shards;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port N] [--shards H:P,H:P,...] COMMAND\n"
      "commands:\n"
      "  decompose FILE --k N [--timeout S] [--async] [--decomposition]\n"
      "            [--expect-cache-hit]      FILE '-' reads stdin\n"
      "  query FILE [--timeout S] [--async] [--count 0|1]\n"
      "            [--expect-cache-hit]      FILE: HTDQUERY1 query+database\n"
      "                                      (docs/QUERIES.md); '-' = stdin\n"
      "  job ID                              poll an async job (j* or q*)\n"
      "  stats                               GET /v1/stats\n"
      "  metrics                             GET /v1/metrics (condensed;\n"
      "                                      --verbose prints the raw page)\n"
      "  trace [--last N]                    GET /v1/trace?n=N (default 16)\n"
      "  snapshot                            POST /v1/admin/snapshot\n"
      "  sync                                POST /v1/admin/antientropy\n"
      "                                      (force one anti-entropy round)\n"
      "options:\n"
      "  --shards H:P,...      shared shard map: decompose routes to the\n"
      "                        shard owning the instance's fingerprint;\n"
      "                        stats/metrics/trace/snapshot fan out to\n"
      "                        every shard\n"
      "  --quiet               suppress the response body on success\n"
      "  --verbose             print X-HTD-Request-Id and the Server-Timing\n"
      "                        stage breakdown (decompose), or the full\n"
      "                        Prometheus page (metrics)\n"
      "  --connect-timeout S   transport timeout (default 120; sync decompose\n"
      "                        reads wait at least the job timeout + 60)\n",
      argv0);
}

/// Strict numeric flag parse; a false return lands in main's usage+exit-2
/// path (bare atoi silently turned `--port x` into port 0).
bool FlagInt(const char* flag, const char* text, long min_value, long max_value,
             long* out) {
  if (!htd::util::ParseIntFlag(text, min_value, max_value, out)) {
    std::fprintf(stderr,
                 "invalid value for %s: \"%s\" (expected an integer in "
                 "[%ld, %ld])\n",
                 flag, text, min_value, max_value);
    return false;
  }
  return true;
}

bool FlagSeconds(const char* flag, const char* text, double* out) {
  if (!htd::util::ParseDoubleFlag(text, 0.0, out)) {
    std::fprintf(stderr, "invalid value for %s: \"%s\" (expected seconds >= 0)\n",
                 flag, text);
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Args& args) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      args.host = v;
    } else if (flag == "--port") {
      const char* v = next("--port");
      long port;
      if (v == nullptr || !FlagInt("--port", v, 1, 65535, &port)) return false;
      args.port = static_cast<int>(port);
    } else if (flag == "--shards") {
      const char* v = next("--shards");
      if (v == nullptr) return false;
      auto map = htd::service::ShardMap::Parse(v);
      if (!map.ok()) {
        std::fprintf(stderr, "invalid value for --shards: %s\n",
                     map.status().message().c_str());
        return false;
      }
      args.shards = *map;
    } else if (flag == "--k") {
      const char* v = next("--k");
      long k;
      if (v == nullptr || !FlagInt("--k", v, 1, 1'000'000, &k)) return false;
      args.k = static_cast<int>(k);
    } else if (flag == "--timeout") {
      const char* v = next("--timeout");
      if (v == nullptr || !FlagSeconds("--timeout", v, &args.timeout)) {
        return false;
      }
    } else if (flag == "--count") {
      const char* v = next("--count");
      long count;
      if (v == nullptr || !FlagInt("--count", v, 0, 1, &count)) return false;
      args.count = static_cast<int>(count);
    } else if (flag == "--connect-timeout") {
      const char* v = next("--connect-timeout");
      if (v == nullptr ||
          !FlagSeconds("--connect-timeout", v, &args.connect_timeout)) {
        return false;
      }
    } else if (flag == "--async") {
      args.async = true;
    } else if (flag == "--decomposition") {
      args.decomposition = true;
    } else if (flag == "--expect-cache-hit") {
      args.expect_cache_hit = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else if (flag == "--last") {
      const char* v = next("--last");
      if (v == nullptr || !FlagInt("--last", v, 1, 256, &args.trace_n)) {
        return false;
      }
    } else if (flag.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    } else if (positional == 0) {
      args.command = flag;
      ++positional;
    } else if (positional == 1 &&
               (args.command == "decompose" || args.command == "query" ||
                args.command == "job")) {
      if (args.command == "job") {
        args.job_id = flag;
      } else {
        args.file = flag;
      }
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", flag.c_str());
      return false;
    }
  }
  if (args.command == "decompose") return !args.file.empty() && args.k >= 1;
  if (args.command == "query") return !args.file.empty();
  if (args.command == "job") return !args.job_id.empty();
  return args.command == "stats" || args.command == "snapshot" ||
         args.command == "metrics" || args.command == "trace" ||
         args.command == "sync";
}

/// One HTTP exchange (Connection: close) over the shared client
/// (net/http_client.h). Returns false on transport errors.
bool Exchange(const Args& args, const std::string& host, int port,
              const std::string& method, const std::string& target,
              const std::string& body,
              const std::vector<std::pair<std::string, std::string>>&
                  extra_headers,
              int* status, std::string* response_body,
              std::map<std::string, std::string>* response_headers = nullptr) {
  double io_timeout = args.connect_timeout;
  if ((args.command == "decompose" || args.command == "query") && !args.async) {
    // A synchronous solve may legitimately run for the job's full deadline;
    // the transport must outlast it. --timeout 0 = no deadline: wait forever.
    io_timeout = args.timeout == 0.0
                     ? 0.0
                     : std::max(io_timeout, args.timeout + 60.0);
  }
  htd::net::FetchOptions options;
  options.connect_timeout_seconds = io_timeout;
  options.read_timeout_seconds = io_timeout;
  htd::net::FetchResult result = htd::net::HttpFetch(
      host, port, method, target, body, extra_headers, options);
  if (!result.ok()) {
    std::fprintf(stderr, "hdclient: %s\n", result.error.c_str());
    return false;
  }
  *status = result.status;
  *response_body = std::move(result.body);
  if (response_headers != nullptr) {
    *response_headers = std::move(result.headers);  // keys lower-cased
  }
  return true;
}

/// Condensed /v1/metrics rendering: drops HELP/TYPE comments and per-bucket
/// histogram lines, keeping the _count/_sum rollups and every counter and
/// gauge — the 30-second "is the fleet healthy" read. --verbose prints the
/// raw page instead.
std::string PrettyMetrics(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.find("_bucket{") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", seconds);
  return buf;
}

int ExitCodeFor(int status) {
  if (status >= 200 && status < 300) return 0;
  return status == 429 || status == 503 ? 4 : 3;
}

/// stats/snapshot against a shard map: one exchange per PROCESS (every
/// replica of every range), each body printed under its endpoint. Fails
/// with the worst per-endpoint exit code.
int FanOut(const Args& args, const std::string& method,
           const std::string& target) {
  const htd::service::ShardMap& map = *args.shards;
  const std::vector<std::pair<std::string, std::string>> digest_header = {
      {"X-HTD-Shard-Digest", map.DigestHex()}};
  int worst = 0;
  for (int i = 0; i < map.num_shards(); ++i) {
    for (int r = 0; r < map.num_replicas(i); ++r) {
      const htd::service::ShardEndpoint& endpoint = map.replica(i, r);
      int status = 0;
      std::string response;
      if (!Exchange(args, endpoint.host, endpoint.port, method, target, "",
                    digest_header, &status, &response)) {
        worst = std::max(worst, 2);
        continue;
      }
      if (args.command == "metrics" && !args.verbose && status == 200) {
        response = PrettyMetrics(response);
      }
      if (!args.quiet || status < 200 || status >= 300) {
        std::printf("shard %d replica %d (%s:%d): HTTP %d\n%s", i, r,
                    endpoint.host.c_str(), endpoint.port, status,
                    response.c_str());
      }
      worst = std::max(worst, ExitCodeFor(status));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    Usage(argv[0]);
    return 2;
  }

  std::string method = "GET", target, body;
  if (args.command == "decompose" || args.command == "query") {
    std::string text;
    if (args.file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream in(args.file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "hdclient: cannot open %s\n", args.file.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
    method = "POST";
    if (args.command == "decompose") {
      target = "/v1/decompose?k=" + std::to_string(args.k);
      if (args.timeout >= 0) target += "&timeout=" + FormatSeconds(args.timeout);
      if (args.async) target += "&async=1";
      if (args.decomposition) target += "&decomposition=1";
    } else {
      target = "/v1/query";
      std::string sep = "?";
      if (args.timeout >= 0) {
        target += sep + "timeout=" + FormatSeconds(args.timeout);
        sep = "&";
      }
      if (args.async) {
        target += sep + "async=1";
        sep = "&";
      }
      if (args.count >= 0) {
        target += sep + "count=" + std::to_string(args.count);
        sep = "&";
      }
    }
    body = std::move(text);
  } else if (args.command == "job") {
    target = "/v1/jobs/" + args.job_id;
  } else if (args.command == "stats") {
    target = "/v1/stats";
  } else if (args.command == "metrics") {
    target = "/v1/metrics";
  } else if (args.command == "trace") {
    target = "/v1/trace?n=" + std::to_string(args.trace_n);
  } else if (args.command == "sync") {
    method = "POST";
    target = "/v1/admin/antientropy";
  } else {  // snapshot
    method = "POST";
    target = "/v1/admin/snapshot";
  }

  std::string host = args.host;
  int port = args.port;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  /// Sibling replicas of the chosen shard, tried in order on transport
  /// failure (client-side analogue of the router's replica failover).
  std::vector<std::pair<std::string, int>> replica_fallbacks;
  if (args.shards.has_value()) {
    if (args.command == "stats" || args.command == "snapshot" ||
        args.command == "metrics" || args.command == "trace" ||
        args.command == "sync") {
      return FanOut(args, method, target);
    }
    if (args.command == "job") {
      std::fprintf(stderr,
                   "hdclient: `job` with --shards is ambiguous; poll the "
                   "shard that admitted the job via --host/--port\n");
      return 2;
    }
    // Client-side hashing: the canonical fingerprint decides the shard, so
    // every renaming of this instance lands on the same warm state. A query
    // hashes the fingerprint of its hypergraph — the same key the backend
    // decomposes under.
    htd::service::Fingerprint fp;
    if (args.command == "query") {
      auto parsed = htd::qa::ParseQueryRequest(body);
      if (!parsed.ok()) {
        std::fprintf(stderr, "hdclient: cannot parse %s: %s\n",
                     args.file.c_str(), parsed.status().message().c_str());
        return 2;
      }
      fp = htd::service::CanonicalFingerprint(
          htd::cq::QueryHypergraph(parsed->query));
    } else {
      auto parsed = htd::ParseAuto(body);
      if (!parsed.ok()) {
        std::fprintf(stderr, "hdclient: cannot parse %s: %s\n",
                     args.file.c_str(), parsed.status().message().c_str());
        return 2;
      }
      fp = htd::service::CanonicalFingerprint(*parsed);
    }
    const int shard = args.shards->IndexFor(fp);
    // A replicated range (host:port*R in the map) spreads clients over its
    // replicas by the fingerprint's low word — stateless, deterministic per
    // instance — and the remaining replicas are kept as transport-failure
    // fallbacks below, so one dead replica does not fail the request.
    const int replicas = args.shards->num_replicas(shard);
    const int first = static_cast<int>(fp.lo % static_cast<uint64_t>(replicas));
    const htd::service::ShardEndpoint& endpoint =
        args.shards->replica(shard, first);
    host = endpoint.host;
    port = endpoint.port;
    for (int attempt = 1; attempt < replicas; ++attempt) {
      const htd::service::ShardEndpoint& fallback =
          args.shards->replica(shard, (first + attempt) % replicas);
      replica_fallbacks.emplace_back(fallback.host, fallback.port);
    }
    extra_headers = {{"X-HTD-Shard-Digest", args.shards->DigestHex()},
                     {"X-HTD-Shard-Fingerprint", fp.ToHex()}};
    if (!args.quiet) {
      std::fprintf(stderr, "hdclient: %s -> shard %d (%s:%d)\n",
                   fp.ToHex().c_str(), shard, host.c_str(), port);
    }
  }

  int status = 0;
  std::string response;
  std::map<std::string, std::string> response_headers;
  while (!Exchange(args, host, port, method, target, body, extra_headers,
                   &status, &response, &response_headers)) {
    if (replica_fallbacks.empty()) return 2;
    std::tie(host, port) = replica_fallbacks.front();
    replica_fallbacks.erase(replica_fallbacks.begin());
    std::fprintf(stderr, "hdclient: failing over to replica %s:%d\n",
                 host.c_str(), port);
  }
  if (args.verbose &&
      (args.command == "decompose" || args.command == "query")) {
    auto request_id = response_headers.find("x-htd-request-id");
    if (request_id != response_headers.end()) {
      std::fprintf(stderr, "hdclient: request id %s\n",
                   request_id->second.c_str());
    }
    auto server_timing = response_headers.find("server-timing");
    if (server_timing != response_headers.end()) {
      std::fprintf(stderr, "hdclient: server timing %s\n",
                   server_timing->second.c_str());
    }
  }

  if (status >= 200 && status < 300) {
    if (args.command == "metrics" && !args.verbose) {
      response = PrettyMetrics(response);
    }
    if (!args.quiet) std::fputs(response.c_str(), stdout);
    if (args.expect_cache_hit &&
        response.find("\"cache_hit\": true") == std::string::npos) {
      std::fprintf(stderr, "hdclient: expected a cache hit, got: %s",
                   response.c_str());
      return 5;
    }
    return 0;
  }
  std::fprintf(stderr, "hdclient: HTTP %d: %s", status, response.c_str());
  return ExitCodeFor(status);
}
