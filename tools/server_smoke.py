#!/usr/bin/env python3
"""End-to-end smoke test for hdserver + hdclient (run by CI).

Phases (see ISSUE/acceptance criteria and docs/SERVER.md):
  1. cold server on a small corpus: every request answers 200, repeats hit
     the result cache, /v1/admin/snapshot persists the warm state;
  2. restart from the snapshot: the replayed corpus reports cache hits and
     /v1/stats shows the restored entry count;
  3. overload: a single-worker server with a tiny admission bound floods
     past the queue bound and sheds with 429 instead of queueing or hanging;
  4. sharding: two shard servers behind a --route-to proxy — deterministic
     fingerprint-range routing (resubmits hit the same shard's cache),
     aggregated stats summing across shards, per-shard snapshots, and a
     warm restart of ONE shard that serves its instances as cache hits
     while the other shard is untouched; then observability: /v1/metrics
     on the router and both shards parses as Prometheus text with
     populated stage histograms, and a proxied sync decompose carries an
     X-HTD-Request-Id whose root span is retrievable from the owning
     shard's /v1/trace plus a Server-Timing stage breakdown;
  5. live resharding: a 2→3 reshard (the third range replicated across two
     processes) driven by hdreshard UNDER CONCURRENT TRAFFIC — zero 421s,
     zero lost cache hits during and after the transition — then one
     replica of the new range is killed and the router keeps serving the
     range's warm entries from the survivor;
  6. anti-entropy: a replicated range behind the router, one replica killed
     under traffic and revived COLD with --anti-entropy-interval — with
     zero operator action its background sweep pulls the sibling's warm
     state until htd_cache_entries matches, after which the full corpus
     replays against the revived replica as cache hits (htd_cache_hits_total
     advances by the corpus size, htd_cache_misses_total not at all);
  7. query answering: an HTDQUERY1 corpus against a 2-shard fleet behind
     the router — cold answers carry verified witnesses and exact counts,
     the warm replay reports cache_hit (every decomposition probe served
     from the result cache, htd_cache_hits_total advancing fleet-wide),
     htd_query_seconds stage histograms populate, and an async query job
     round-trips through the router's job-id prefixing.

Usage: tools/server_smoke.py [BUILD_DIR]   (default: ./build)
Exits non-zero with a FAIL line on the first broken property.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

BUILD = Path(sys.argv[1] if len(sys.argv) > 1 else "build").resolve()
HDSERVER = BUILD / "hdserver"
HDCLIENT = BUILD / "hdclient"
HDRESHARD = BUILD / "hdreshard"
CLIENT_TIMEOUT = 60  # seconds per hdclient invocation; a hang is a failure


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def client(port, *args, expect_exit=0):
    """Runs hdclient, enforcing a wall-clock bound (no hangs allowed)."""
    cmd = [str(HDCLIENT), "--port", str(port), *args]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=CLIENT_TIMEOUT)
    except subprocess.TimeoutExpired:
        fail(f"hdclient hung: {' '.join(cmd)}")
    if expect_exit is not None and proc.returncode != expect_exit:
        fail(f"{' '.join(cmd)} exited {proc.returncode} "
             f"(expected {expect_exit}): {proc.stdout}{proc.stderr}")
    return proc


def start_server(port, *extra):
    proc = subprocess.Popen(
        [str(HDSERVER), "--port", str(port), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 20
    while time.time() < deadline:
        if proc.poll() is not None:
            fail(f"hdserver exited early:\n{proc.stdout.read()}")
        try:
            probe = subprocess.run(
                [str(HDCLIENT), "--port", str(port), "stats"],
                capture_output=True, timeout=5)
            if probe.returncode == 0:
                return proc
        except subprocess.TimeoutExpired:
            pass
        time.sleep(0.2)
    proc.kill()
    fail("hdserver did not become ready within 20s")


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("hdserver did not shut down on SIGTERM within 20s")


def write_corpus(workdir):
    """Small instances with known answers plus one deliberately hard one."""
    instances = {}
    # Path (hw 1) and a 6-cycle (hw 2).
    instances["path.hg"] = "e1(a,b),\ne2(b,c),\ne3(c,d),\ne4(d,e).\n"
    cycle = [f"c{i}(v{i},v{(i + 1) % 6})" for i in range(6)]
    instances["cycle.hg"] = ",\n".join(cycle) + ".\n"
    # 4x4 grid.
    grid = []
    for i in range(4):
        for j in range(4):
            if j + 1 < 4:
                grid.append(f"h{i}_{j}(g{i}_{j},g{i}_{j + 1})")
            if i + 1 < 4:
                grid.append(f"v{i}_{j}(g{i}_{j},g{i + 1}_{j})")
    instances["grid.hg"] = ",\n".join(grid) + ".\n"
    # K24 at k=4 runs for minutes — it exists to pin the worker in phase 3.
    clique = [f"e{i}_{j}(v{i},v{j})" for i in range(24) for j in range(i + 1, 24)]
    instances["clique24.hg"] = ",\n".join(clique) + ".\n"
    for name, text in instances.items():
        (workdir / name).write_text(text)
    return ["path.hg", "cycle.hg", "grid.hg"]


def shard_of(fingerprint_hex, num_shards):
    """Mirrors ShardMap::IndexFor: floor(hi / step) over equal hi-slices."""
    hi = int(fingerprint_hex[:16], 16)
    if num_shards == 1:
        return 0
    step = ((1 << 64) - 1) // num_shards + 1
    return min(num_shards - 1, hi // step)


STAGES = ("parse", "fingerprint", "cache", "schedule", "solve", "serialise")


def scrape(port, path):
    """GET an endpoint directly; returns (status, headers, body)."""
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


def parse_prometheus(text, source):
    """Every sample line must be `name[{labels}] value`; returns the map."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        try:
            series[key] = float(value)
        except ValueError:
            fail(f"{source}: unparseable metrics line: {line!r}")
        if not key:
            fail(f"{source}: metrics line without a name: {line!r}")
    if not series:
        fail(f"{source}: /v1/metrics rendered no samples")
    return series


def observability_checks(workdir, port_r, port_a, port_b, shard0_instance):
    """Metrics scrapes + end-to-end request-id propagation (phase 4b)."""
    # Cache hits skip the schedule/solve stages by design, and shard 0 has
    # served nothing BUT cache hits since its warm restart — land one fresh
    # solve on each shard so every stage histogram below is populated.
    fresh = {0: 0, 1: 0}
    for length in range(40, 80):
        name = f"obs_path{length}.hg"
        (workdir / name).write_text(
            ",\n".join(f"o{i}(w{i},w{i + 1})" for i in range(length)) + ".\n")
        body = json.loads(client(port_r, "decompose", str(workdir / name),
                                 "--k", "2", "--timeout", "30").stdout)
        fresh[shard_of(body["fingerprint"], 2)] += 1
        if fresh[0] and fresh[1]:
            break
    else:
        fail("could not land a fresh solve on both shards in 40 tries")

    # Every endpoint renders parseable Prometheus text with the stage
    # histograms populated by the traffic the phase already ran.
    for source, port in (("shard 0", port_a), ("shard 1", port_b),
                         ("router", port_r)):
        status, headers, text = scrape(port, "/v1/metrics")
        if status != 200:
            fail(f"{source}: /v1/metrics answered {status}")
        if "version=0.0.4" not in headers.get("Content-Type", ""):
            fail(f"{source}: wrong metrics content type: "
                 f"{headers.get('Content-Type')}")
        series = parse_prometheus(text, source)
        for stage in STAGES:
            key = f'htd_stage_seconds_count{{stage="{stage}"}}'
            if series.get(key, 0) <= 0:
                fail(f"{source}: stage histogram {key} is empty")
    # The router's page is the fleet aggregate plus its own series.
    status, _, text = scrape(port_r, "/v1/metrics")
    series = parse_prometheus(text, "router")
    if series.get("htd_fleet_endpoints_scraped", 0) != 2:
        fail(f"router scraped {series.get('htd_fleet_endpoints_scraped')} "
             f"of 2 endpoints")
    if not any(k.startswith("htd_router_request_seconds") for k in series):
        fail("router page is missing its own htd_router_request_seconds")

    # A proxied sync decompose returns the request id the router minted;
    # the same id must be a root span on the owning shard (shard 0), and
    # Server-Timing must carry the full stage breakdown.
    proc = client(port_r, "decompose", str(workdir / shard0_instance),
                  "--k", "2", "--expect-cache-hit", "--verbose")
    id_match = re.search(r"hdclient: request id ([0-9a-f]{16})", proc.stderr)
    if not id_match:
        fail(f"no request id in verbose output: {proc.stderr}")
    request_id = id_match.group(1)
    timing = re.search(r"hdclient: server timing (.*)", proc.stderr)
    if not timing:
        fail(f"no Server-Timing in verbose output: {proc.stderr}")
    for stage in STAGES:
        if f"{stage};dur=" not in timing.group(1):
            fail(f"Server-Timing is missing stage {stage}: {timing.group(1)}")
    status, _, trace_body = scrape(port_a, "/v1/trace?n=64")
    if status != 200:
        fail(f"shard 0 /v1/trace answered {status}")
    traces = json.loads(trace_body)
    root_ids = [t["id"] for t in traces["traces"]]
    if request_id not in root_ids:
        fail(f"request id {request_id} not among shard 0 root spans "
             f"{root_ids[:8]}")
    print(f"phase 4b OK: metrics parse on router + 2 shards with populated "
          f"stage histograms; request id {request_id} propagated "
          f"router -> shard 0 trace with full Server-Timing")


def shard_phase(workdir):
    """Phase 4: two shards behind a proxy-mode router."""
    port_a, port_b, port_r = free_port(), free_port(), free_port()
    shard_map = f"127.0.0.1:{port_a},127.0.0.1:{port_b}"
    snap = {0: workdir / "shard0.snap", 1: workdir / "shard1.snap"}

    def start_shard(index, port):
        return start_server(port, "--shard-map", shard_map, "--shard-index",
                            str(index), "--snapshot", str(snap[index]),
                            "--workers", "2")

    shards = {0: start_shard(0, port_a), 1: start_shard(1, port_b)}
    router = start_server(port_r, "--route-to", shard_map)

    # Find instances on BOTH sides of the range split: paths of growing
    # length have effectively uniform fingerprints, so a handful suffices.
    by_shard = {0: [], 1: []}
    for length in range(3, 33):
        name = f"shard_path{length}.hg"
        text = ",\n".join(f"e{i}(n{i},n{i + 1})" for i in range(length)) + ".\n"
        (workdir / name).write_text(text)
        proc = client(port_r, "decompose", str(workdir / name), "--k", "2",
                      "--timeout", "30")
        body = json.loads(proc.stdout)
        if body["cache_hit"]:
            fail(f"{name}: first submission must not be a cache hit")
        owner = shard_of(body["fingerprint"], 2)
        if len(by_shard[owner]) < 2:
            by_shard[owner].append(name)
        if len(by_shard[0]) >= 2 and len(by_shard[1]) >= 2:
            break
    else:
        fail("could not find instances for both shards in 30 tries")
    corpus = by_shard[0] + by_shard[1]

    # Deterministic routing: resubmission through the router must land on
    # the shard that solved it — i.e. answer from that shard's cache.
    for name in corpus:
        client(port_r, "decompose", str(workdir / name), "--k", "2",
               "--expect-cache-hit", "--quiet")

    # Per-shard stats confirm the split, aggregated stats sum across shards.
    stats = {i: json.loads(client(p, "stats").stdout)
             for i, p in ((0, port_a), (1, port_b))}
    for index in (0, 1):
        hits = stats[index]["scheduler"]["cache_hits"]
        if hits < len(by_shard[index]):
            fail(f"shard {index}: expected >= {len(by_shard[index])} cache "
                 f"hits, got {hits} (routing not deterministic?)")
        if not stats[index]["shard"]["enabled"]:
            fail(f"shard {index}: /v1/stats does not report sharding")
    router_stats = json.loads(client(port_r, "stats").stdout)
    agg = router_stats["aggregate"]
    want_hits = stats[0]["scheduler"]["cache_hits"] + \
        stats[1]["scheduler"]["cache_hits"]
    if agg["scheduler_cache_hits"] != want_hits:
        fail(f"aggregated cache_hits {agg['scheduler_cache_hits']} != "
             f"sum of shards {want_hits}")
    want_admitted = stats[0]["admission"]["admitted"] + \
        stats[1]["admission"]["admitted"]
    if agg["admission_admitted"] != want_admitted:
        fail(f"aggregated admitted {agg['admission_admitted']} != "
             f"{want_admitted}")

    # Snapshot through the router: every shard persists its own range.
    client(port_r, "snapshot", "--quiet")
    for index in (0, 1):
        if not snap[index].exists():
            fail(f"shard {index} snapshot was not written")

    # Restart ONLY shard 0 from its snapshot: its instances replay as cache
    # hits, and shard 1 must not see any of this.
    before_b = json.loads(client(port_b, "stats").stdout)
    stop_server(shards[0])
    shards[0] = start_shard(0, port_a)
    restarted = json.loads(client(port_a, "stats").stdout)
    if restarted["snapshot"]["restored_cache_entries"] < len(by_shard[0]):
        fail(f"shard 0 restored "
             f"{restarted['snapshot']['restored_cache_entries']} entries, "
             f"expected >= {len(by_shard[0])}")
    for name in by_shard[0]:
        client(port_r, "decompose", str(workdir / name), "--k", "2",
               "--expect-cache-hit", "--quiet")
    after_b = json.loads(client(port_b, "stats").stdout)
    if after_b["admission"]["admitted"] != before_b["admission"]["admitted"]:
        fail("shard 1 saw traffic during shard 0's warm restart")

    # Observability rides on the warm fleet: stage histograms are already
    # populated (including on the restarted shard) and the cache-hit path
    # still stitches request ids end to end.
    observability_checks(workdir, port_r, port_a, port_b, by_shard[0][0])

    stop_server(router)
    for proc in shards.values():
        stop_server(proc)
    print(f"phase 4 OK: routed {len(corpus)} instances across 2 shards "
          f"({len(by_shard[0])}/{len(by_shard[1])} split), aggregate stats "
          f"consistent, per-shard warm restart served "
          f"{len(by_shard[0])} cache hits")


def reshard_phase(workdir):
    """Phase 5: live 2→3 reshard (replicated third range) under traffic."""
    p0, p1, p2, p3, port_r = (free_port() for _ in range(5))
    old_map = f"127.0.0.1:{p0},127.0.0.1:{p1}"
    new_map = f"127.0.0.1:{p0},127.0.0.1:{p1},127.0.0.1:{p2}*2,127.0.0.1:{p3}"

    servers = {
        0: start_server(p0, "--shard-map", old_map, "--shard-index", "0",
                        "--workers", "2"),
        1: start_server(p1, "--shard-map", old_map, "--shard-index", "1",
                        "--workers", "2"),
    }
    router = start_server(port_r, "--route-to", old_map)

    # Warm corpus through the router; remember each instance's fingerprint
    # so we know which land on the NEW third range.
    corpus = []
    for length in range(3, 20):
        name = f"reshard_path{length}.hg"
        text = ",\n".join(f"r{i}(m{i},m{i + 1})" for i in range(length)) + ".\n"
        (workdir / name).write_text(text)
        proc = client(port_r, "decompose", str(workdir / name), "--k", "2",
                      "--timeout", "30")
        body = json.loads(proc.stdout)
        if body["cache_hit"]:
            fail(f"{name}: first submission must not be a cache hit")
        corpus.append((name, body["fingerprint"]))
    moved_to_new_range = [name for name, fp in corpus if shard_of(fp, 3) == 2]
    if not moved_to_new_range:
        fail("no instance lands on the new third range in 17 tries")

    # Concurrent traffic for the whole transition: every request must be a
    # 200 cache hit — a 421 (exit 3) or a lost warm entry (exit 5) fails.
    stop = threading.Event()
    traffic_failures = []
    traffic_count = [0]

    def traffic():
        while not stop.is_set():
            for name, _ in corpus:
                if stop.is_set():
                    break
                proc = client(port_r, "decompose", str(workdir / name),
                              "--k", "2", "--expect-cache-hit", "--quiet",
                              expect_exit=None)
                traffic_count[0] += 1
                if proc.returncode != 0:
                    traffic_failures.append(
                        (name, proc.returncode, proc.stderr.strip()))

    thread = threading.Thread(target=traffic)
    thread.start()

    try:
        # The joining replicas come up with the NEW map, then hdreshard
        # drives announce → prepare → migrate → flip → finalise → verify.
        servers[2] = start_server(p2, "--shard-map", new_map, "--shard-index",
                                  "2", "--workers", "2")
        servers[3] = start_server(p3, "--shard-map", new_map, "--shard-index",
                                  "2", "--workers", "2")
        reshard = subprocess.run(
            [str(HDRESHARD), "--from", old_map, "--to", new_map,
             "--router", f"127.0.0.1:{port_r}"],
            capture_output=True, text=True, timeout=120)
        if reshard.returncode != 0:
            fail(f"hdreshard exited {reshard.returncode}:\n"
                 f"{reshard.stdout}{reshard.stderr}")
    finally:
        stop.set()
        thread.join()
    if traffic_failures:
        fail(f"traffic during reshard broke ({len(traffic_failures)} of "
             f"{traffic_count[0]}): {traffic_failures[:5]}")
    if traffic_count[0] == 0:
        fail("no traffic ran during the reshard window")

    # After the reshard: every pre-reshard entry still hits through the
    # router (the acceptance bar is >= 95%; we require all of them).
    for name, _ in corpus:
        client(port_r, "decompose", str(workdir / name), "--k", "2",
               "--expect-cache-hit", "--quiet")

    # Kill ONE replica of the new range: the router fails over and keeps
    # serving the range's warm entries from the survivor.
    stop_server(servers.pop(2))
    for name in moved_to_new_range:
        client(port_r, "decompose", str(workdir / name), "--k", "2",
               "--expect-cache-hit", "--quiet")

    stop_server(router)
    for proc in servers.values():
        stop_server(proc)
    print(f"phase 5 OK: live 2→3 reshard under {traffic_count[0]} concurrent "
          f"requests with zero 421s/lost hits; {len(moved_to_new_range)} "
          f"entries moved to the replicated range and survived a replica kill")


def anti_entropy_phase(workdir):
    """Phase 6: a cold-revived replica converges by itself."""
    pa, pb, port_r = free_port(), free_port(), free_port()
    shard_map = f"127.0.0.1:{pa}*2,127.0.0.1:{pb}"

    def start_replica(port):
        return start_server(port, "--shard-map", shard_map, "--shard-index",
                            "0", "--self", f"127.0.0.1:{port}",
                            "--anti-entropy-interval", "0.25", "--workers", "2")

    replicas = {pa: start_replica(pa), pb: start_replica(pb)}
    router = start_server(port_r, "--route-to", shard_map)

    # Warm the range through the router, then let one background sweep
    # round replicate the entries to whichever replica did not solve them.
    corpus = []
    for length in range(3, 15):
        name = f"ae_path{length}.hg"
        text = ",\n".join(f"a{i}(q{i},q{i + 1})" for i in range(length)) + ".\n"
        (workdir / name).write_text(text)
        proc = client(port_r, "decompose", str(workdir / name), "--k", "2",
                      "--timeout", "30")
        if json.loads(proc.stdout)["cache_hit"]:
            fail(f"{name}: first submission must not be a cache hit")
        corpus.append(name)

    def cache_series(port):
        status, _, text = scrape(port, "/v1/metrics")
        if status != 200:
            fail(f"replica :{port}: /v1/metrics answered {status}")
        series = parse_prometheus(text, f"replica :{port}")
        return {key: series.get(key, 0.0)
                for key in ("htd_cache_entries", "htd_cache_hits_total",
                            "htd_cache_misses_total")}

    def await_entries(port, want, deadline_seconds, why):
        deadline = time.time() + deadline_seconds
        while time.time() < deadline:
            if cache_series(port)["htd_cache_entries"] >= want:
                return
            time.sleep(0.2)
        fail(f"replica :{port} never reached {want} cache entries ({why}): "
             f"{cache_series(port)}")

    await_entries(pa, len(corpus), 15, "initial sweep")
    await_entries(pb, len(corpus), 15, "initial sweep")

    # Kill replica B under sustained traffic; the router fails over to A.
    # A request that lands on B mid-drain gets its 503 proxied through
    # (hdclient exit 4) — that is the documented retry-with-backoff
    # contract, not a lost entry, so it is tolerated. Anything else (a 421,
    # a cache miss, a 5xx from the survivor) fails the phase.
    stop = threading.Event()
    traffic_failures = []
    sheds = [0]

    def traffic():
        while not stop.is_set():
            for name in corpus:
                if stop.is_set():
                    break
                proc = client(port_r, "decompose", str(workdir / name),
                              "--k", "2", "--expect-cache-hit", "--quiet",
                              expect_exit=None)
                if proc.returncode == 4:
                    sheds[0] += 1
                elif proc.returncode != 0:
                    traffic_failures.append((name, proc.returncode))

    thread = threading.Thread(target=traffic)
    thread.start()
    try:
        stop_server(replicas.pop(pb))
        time.sleep(1.0)  # traffic keeps flowing against the survivor
    finally:
        stop.set()
        thread.join()
    if traffic_failures:
        fail(f"traffic broke during the kill window: {traffic_failures[:5]}")

    # Revive B COLD: no snapshot, empty cache, and no routed traffic that
    # could warm it organically. Nobody posts a sync either — the
    # background sweep alone must refill it.
    replicas[pb] = start_replica(pb)
    await_entries(pb, len(corpus), 30, "cold revival, anti-entropy only")

    # The revived replica's hit rate converges to the sibling's: replaying
    # the full corpus directly against B is all hits and zero new misses.
    before = cache_series(pb)
    for name in corpus:
        client(pb, "decompose", str(workdir / name), "--k", "2",
               "--expect-cache-hit", "--quiet")
    after = cache_series(pb)
    hits = after["htd_cache_hits_total"] - before["htd_cache_hits_total"]
    misses = after["htd_cache_misses_total"] - before["htd_cache_misses_total"]
    if hits < len(corpus) or misses > 0:
        fail(f"revived replica is not warm: +{hits} hits, +{misses} misses "
             f"over {len(corpus)} replays")
    sibling = cache_series(pa)
    if after["htd_cache_entries"] != sibling["htd_cache_entries"]:
        fail(f"replica caches did not converge: {after['htd_cache_entries']} "
             f"vs sibling {sibling['htd_cache_entries']}")

    # The sweep surfaced in observability: counted rounds and pulled bytes.
    status, _, text = scrape(pb, "/v1/metrics")
    series = parse_prometheus(text, "revived replica")
    if series.get('htd_antientropy_rounds_total{result="ok"}', 0) <= 0:
        fail("revived replica reports no successful anti-entropy rounds")
    if series.get("htd_antientropy_bytes_total", 0) <= 0:
        fail("revived replica reports zero anti-entropy bytes pulled")

    stop_server(router)
    for proc in replicas.values():
        stop_server(proc)
    print(f"phase 6 OK: cold-revived replica pulled {len(corpus)} entries by "
          f"anti-entropy alone and replayed the corpus warm "
          f"({int(hits)} hits, {int(misses)} misses; {sheds[0]} retryable "
          f"sheds during the drain window)")


def write_query_request(path, length):
    """Canonical HTDQUERY1 chain query R0(V0,V1), ..., each relation holding
    {(1,1), (2,3)} — exactly one satisfying assignment (all variables 1)."""
    atoms = ", ".join(f"R{i}(V{i},V{i + 1})" for i in range(length))
    lines = [f"HTDQUERY1 {length}", f"QUERY {atoms}."]
    for i in range(length):
        lines += [f"REL R{i} 2 2", "1 1", "2 3"]
    lines.append("END")
    path.write_text("\n".join(lines) + "\n")


def query_phase(workdir):
    """Phase 7: decompose-and-execute query answering across a shard fleet."""
    port_a, port_b, port_r = free_port(), free_port(), free_port()
    shard_map = f"127.0.0.1:{port_a},127.0.0.1:{port_b}"
    shards = {
        0: start_server(port_a, "--shard-map", shard_map, "--shard-index", "0",
                        "--workers", "2"),
        1: start_server(port_b, "--shard-map", shard_map, "--shard-index", "1",
                        "--workers", "2"),
    }
    router = start_server(port_r, "--route-to", shard_map)

    # Cold pass: grow the corpus until both shards own at least one query
    # (a chain query's hypergraph is a path, so fingerprints spread
    # uniformly). Every cold answer must carry a correct witness and count.
    by_shard = {0: [], 1: []}
    corpus = []
    for length in range(3, 33):
        name = f"query_chain{length}.qr"
        write_query_request(workdir / name, length)
        proc = client(port_r, "query", str(workdir / name),
                      "--timeout", "30")
        body = json.loads(proc.stdout)
        if body["outcome"] != "satisfiable":
            fail(f"{name}: expected satisfiable, got {body['outcome']}")
        if body["cache_hit"]:
            fail(f"{name}: cold query must not be a decompose cache hit")
        if body["count"] != 1 or body.get("count_saturated"):
            fail(f"{name}: expected exactly 1 answer, got {body['count']}")
        witness = body["witness"]
        if len(witness) != length + 1 or any(v != 1 for v in witness.values()):
            fail(f"{name}: wrong witness {witness} (expected all 1s)")
        owner = shard_of(body["fingerprint"], 2)
        corpus.append(name)
        if len(by_shard[owner]) < 2:
            by_shard[owner].append(name)
        if len(by_shard[0]) >= 2 and len(by_shard[1]) >= 2:
            break
    else:
        fail("could not land queries on both shards in 30 tries")

    # Warm pass: every decomposition probe (the k-sweep and the diversity
    # probes) answers from the owning shard's result cache — the response
    # says so, and the fleet-wide cache-hit counter advances accordingly.
    status, _, text = scrape(port_r, "/v1/metrics")
    before = parse_prometheus(text, "router").get("htd_cache_hits_total", 0)
    for name in corpus:
        client(port_r, "query", str(workdir / name), "--expect-cache-hit",
               "--quiet")
    status, _, text = scrape(port_r, "/v1/metrics")
    series = parse_prometheus(text, "router")
    delta = series.get("htd_cache_hits_total", 0) - before
    if delta < len(corpus):
        fail(f"warm query pass advanced htd_cache_hits_total by {delta}, "
             f"expected >= {len(corpus)}")

    # Query observability on the aggregated page: per-stage histograms and
    # the outcome counter populated by the traffic above.
    for stage in ("decompose", "pick", "execute"):
        key = f'htd_query_seconds_count{{stage="{stage}"}}'
        if series.get(key, 0) <= 0:
            fail(f"query stage histogram {key} is empty")
    if series.get('htd_queries_total{outcome="satisfiable"}', 0) < len(corpus):
        fail("htd_queries_total{outcome=satisfiable} below corpus size")
    if series.get('htd_query_portfolio_picks_total{pick="first"}', 0) + \
            series.get('htd_query_portfolio_picks_total{pick="alternative"}',
                       0) < len(corpus):
        fail("portfolio pick counters below corpus size")

    # Async query through the router: the job id comes back prefixed
    # s<shard>r<replica>.q<N> and polls to the same verified answer.
    proc = client(port_r, "query", str(workdir / corpus[0]), "--async")
    job_id = json.loads(proc.stdout)["job"]
    if not re.fullmatch(r"s\dr\d+\.q\d+", job_id):
        fail(f"async query job id {job_id!r} is not router-prefixed")
    deadline = time.time() + 30
    while True:
        body = json.loads(client(port_r, "job", job_id).stdout)
        if body["state"] == "done":
            break
        if time.time() > deadline:
            fail(f"async query job {job_id} never finished")
        time.sleep(0.2)
    result = body["result"]
    if result["outcome"] != "satisfiable" or result["count"] != 1:
        fail(f"async query result wrong: {result}")

    stop_server(router)
    for proc in shards.values():
        stop_server(proc)
    print(f"phase 7 OK: {len(corpus)} queries answered with verified "
          f"witnesses ({len(by_shard[0])}/{len(by_shard[1])} shard split), "
          f"warm replay all cache hits (+{int(delta)} fleet-wide), async "
          f"query job {job_id} round-tripped")


def read_http_response(sock):
    """Reads one HTTP response off a keep-alive socket (Content-Length framed)."""
    sock.settimeout(30)
    blob = b""
    while b"\r\n\r\n" not in blob:
        chunk = sock.recv(4096)
        if not chunk:
            return blob
        blob += chunk
    head, _, body = blob.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1].strip())
    while len(body) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


def keepalive_scale_phase(workdir, snapshot):
    """Phase 8: ~2000 idle keep-alives held through a warm restart, zero sheds.

    The epoll core must admit connections up to --max-connections no matter
    how few io/loop threads it runs; the thread-per-connection core this
    replaced would have shed at the thread count.
    """
    target = 2000
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        want = target * 2 + 512
        if soft < want:
            new_soft = want if hard == resource.RLIM_INFINITY \
                else min(want, hard)
            resource.setrlimit(resource.RLIMIT_NOFILE, (new_soft, hard))
    except (ImportError, ValueError, OSError) as error:
        fail(f"phase 8: cannot raise RLIMIT_NOFILE for {target} sockets: "
             f"{error}")

    def hold_and_check(port, label):
        conns = []
        try:
            for _ in range(target):
                conns.append(socket.create_connection(("127.0.0.1", port),
                                                      timeout=10))
            deadline = time.time() + 30
            idle = -1
            while time.time() < deadline:
                _, _, text = scrape(port, "/v1/metrics")
                series = parse_prometheus(text, f"phase 8 {label}")
                idle = series.get('htd_connections{state="idle"}', 0)
                if idle >= target:
                    break
                time.sleep(0.2)
            if idle < target:
                fail(f"phase 8 {label}: only {idle} idle connections held "
                     f"(want >= {target})")
            shed = series.get("htd_connections_shed_total", -1)
            if shed != 0:
                fail(f"phase 8 {label}: {shed} connections shed while under "
                     f"the bound — admission is NOT io_threads-independent")
            # The held sockets are served, not parked: a sample answers.
            for probe in (conns[0], conns[target // 2], conns[-1]):
                probe.sendall(b"GET /healthz HTTP/1.1\r\nHost: smoke\r\n\r\n")
                blob = read_http_response(probe)
                if b" 200 " not in blob.split(b"\r\n", 1)[0]:
                    fail(f"phase 8 {label}: held connection answered "
                         f"{blob[:80]!r}")
            # And new work is still admitted alongside the held mass.
            client(port, "stats", "--quiet")
        finally:
            for conn in conns:
                conn.close()

    args = ("--snapshot", str(snapshot), "--workers", "2",
            "--io-threads", "2", "--loop-threads", "2",
            "--max-connections", str(target + 64),
            "--idle-timeout", "300")
    port = free_port()
    server = start_server(port, *args)
    hold_and_check(port, "cold")
    stop_server(server)  # 2000 idle conns must not stall the drain

    # Warm restart: the same mass held again against the restored process.
    port = free_port()
    server = start_server(port, *args)
    hold_and_check(port, "warm")
    stats = json.loads(client(port, "stats").stdout)
    if stats["snapshot"]["restored_cache_entries"] < 1:
        fail("phase 8: warm restart restored no cache entries")
    stop_server(server)
    print(f"phase 8 OK: {target} idle keep-alives held through a warm "
          f"restart on 2 io-threads, zero sheds")


def main():
    for binary in (HDSERVER, HDCLIENT, HDRESHARD):
        if not binary.exists():
            fail(f"{binary} not built")
    workdir = Path(tempfile.mkdtemp(prefix="hdserver_smoke_"))
    snapshot = workdir / "warm.snap"
    corpus = write_corpus(workdir)

    # --- Phase 1: cold serve + snapshot. -----------------------------------
    port = free_port()
    server = start_server(port, "--snapshot", str(snapshot), "--workers", "2")
    for name in corpus:
        proc = client(port, "decompose", str(workdir / name), "--k", "3",
                      "--timeout", "30")
        body = json.loads(proc.stdout)
        if body["outcome"] not in ("yes", "no"):
            fail(f"{name}: unexpected outcome {body['outcome']}")
        if body["cache_hit"]:
            fail(f"{name}: cold pass must not be a cache hit")
    # Identical resubmission: served from memory.
    client(port, "decompose", str(workdir / corpus[0]), "--k", "3",
           "--expect-cache-hit", "--quiet")
    client(port, "snapshot", "--quiet")
    if not snapshot.exists():
        fail("snapshot file was not written")
    stop_server(server)
    print("phase 1 OK: cold serve, cache hit on resubmit, snapshot written")

    # --- Phase 2: warm restart from the snapshot. --------------------------
    port = free_port()
    server = start_server(port, "--snapshot", str(snapshot), "--workers", "2")
    for name in corpus:
        client(port, "decompose", str(workdir / name), "--k", "3",
               "--expect-cache-hit", "--quiet")
    stats = json.loads(client(port, "stats").stdout)
    restored = stats["snapshot"]["restored_cache_entries"]
    if restored < len(corpus):
        fail(f"expected >= {len(corpus)} restored cache entries, got {restored}")
    # Idle fleet: every cache hit has resolved, so no executor worker should
    # still be running a task.
    status, _, text = scrape(port, "/v1/metrics")
    if status != 200:
        fail(f"idle scrape: /v1/metrics answered {status}")
    series = parse_prometheus(text, "idle server")
    idle_busy = series.get("htd_executor_workers_busy", -1)
    if idle_busy != 0:
        fail(f"idle server reports {idle_busy} busy executor workers, want 0")
    if series.get("htd_executor_workers", 0) != 2:
        fail(f"idle server reports {series.get('htd_executor_workers')} "
             f"executor workers, want 2 (--workers 2)")
    stop_server(server)
    print(f"phase 2 OK: warm restart served {len(corpus)} cache hits "
          f"({restored} entries restored), executor idle after drain")

    # --- Phase 3: flood past the admission bound. --------------------------
    port = free_port()
    server = start_server(port, "--workers", "1", "--queue-depth", "2")
    accepted = shed = 0
    for _ in range(8):
        proc = client(port, "decompose", str(workdir / "clique24.hg"),
                      "--k", "4", "--timeout", "30", "--async", "--quiet",
                      expect_exit=None)
        if proc.returncode == 0:
            accepted += 1
        elif proc.returncode == 4:  # 429/503: load shed
            shed += 1
        else:
            fail(f"flood request failed unexpectedly (exit {proc.returncode}): "
                 f"{proc.stderr}")
    if accepted == 0:
        fail("flood: no request was admitted")
    if shed == 0:
        fail("flood: queue bound never shed load (server queues unboundedly?)")
    stats = json.loads(client(port, "stats").stdout)
    if stats["admission"]["shed"] != shed:
        fail(f"stats disagree: {stats['admission']['shed']} != {shed}")
    # Saturated fleet: the pinned clique24 solves are still running, so the
    # whole executor (1 worker) must be busy — no idle capacity while work
    # is queued.
    status, _, text = scrape(port, "/v1/metrics")
    if status != 200:
        fail(f"flood scrape: /v1/metrics answered {status}")
    series = parse_prometheus(text, "flooded server")
    busy = series.get("htd_executor_workers_busy", -1)
    fleet = series.get("htd_executor_workers", 0)
    if fleet != 1:
        fail(f"flooded server reports {fleet} executor workers, want 1")
    if busy != fleet:
        fail(f"flood: {busy}/{fleet} executor workers busy; the fleet must "
             f"saturate while solves are pinned")
    stop_server(server)  # must cancel pinned solves promptly, not hang
    print(f"phase 3 OK: {accepted} admitted, {shed} shed with 429, "
          f"{busy}/{fleet} workers busy during the flood")

    # --- Phase 4: fingerprint-range sharding behind the router. ------------
    shard_phase(workdir)

    # --- Phase 5: live resharding + replication under traffic. -------------
    reshard_phase(workdir)

    # --- Phase 6: anti-entropy revival of a killed replica. ----------------
    anti_entropy_phase(workdir)

    # --- Phase 7: query answering across the shard fleet. ------------------
    query_phase(workdir)

    # --- Phase 8: idle keep-alive scale through a warm restart. ------------
    keepalive_scale_phase(workdir, snapshot)

    print("server_smoke: all phases passed")


if __name__ == "__main__":
    main()
