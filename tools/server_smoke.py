#!/usr/bin/env python3
"""End-to-end smoke test for hdserver + hdclient (run by CI).

Phases (see ISSUE/acceptance criteria and docs/SERVER.md):
  1. cold server on a small corpus: every request answers 200, repeats hit
     the result cache, /v1/admin/snapshot persists the warm state;
  2. restart from the snapshot: the replayed corpus reports cache hits and
     /v1/stats shows the restored entry count;
  3. overload: a single-worker server with a tiny admission bound floods
     past the queue bound and sheds with 429 instead of queueing or hanging.

Usage: tools/server_smoke.py [BUILD_DIR]   (default: ./build)
Exits non-zero with a FAIL line on the first broken property.
"""

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BUILD = Path(sys.argv[1] if len(sys.argv) > 1 else "build").resolve()
HDSERVER = BUILD / "hdserver"
HDCLIENT = BUILD / "hdclient"
CLIENT_TIMEOUT = 60  # seconds per hdclient invocation; a hang is a failure


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def client(port, *args, expect_exit=0):
    """Runs hdclient, enforcing a wall-clock bound (no hangs allowed)."""
    cmd = [str(HDCLIENT), "--port", str(port), *args]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=CLIENT_TIMEOUT)
    except subprocess.TimeoutExpired:
        fail(f"hdclient hung: {' '.join(cmd)}")
    if expect_exit is not None and proc.returncode != expect_exit:
        fail(f"{' '.join(cmd)} exited {proc.returncode} "
             f"(expected {expect_exit}): {proc.stdout}{proc.stderr}")
    return proc


def start_server(port, *extra):
    proc = subprocess.Popen(
        [str(HDSERVER), "--port", str(port), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 20
    while time.time() < deadline:
        if proc.poll() is not None:
            fail(f"hdserver exited early:\n{proc.stdout.read()}")
        try:
            probe = subprocess.run(
                [str(HDCLIENT), "--port", str(port), "stats"],
                capture_output=True, timeout=5)
            if probe.returncode == 0:
                return proc
        except subprocess.TimeoutExpired:
            pass
        time.sleep(0.2)
    proc.kill()
    fail("hdserver did not become ready within 20s")


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("hdserver did not shut down on SIGTERM within 20s")


def write_corpus(workdir):
    """Small instances with known answers plus one deliberately hard one."""
    instances = {}
    # Path (hw 1) and a 6-cycle (hw 2).
    instances["path.hg"] = "e1(a,b),\ne2(b,c),\ne3(c,d),\ne4(d,e).\n"
    cycle = [f"c{i}(v{i},v{(i + 1) % 6})" for i in range(6)]
    instances["cycle.hg"] = ",\n".join(cycle) + ".\n"
    # 4x4 grid.
    grid = []
    for i in range(4):
        for j in range(4):
            if j + 1 < 4:
                grid.append(f"h{i}_{j}(g{i}_{j},g{i}_{j + 1})")
            if i + 1 < 4:
                grid.append(f"v{i}_{j}(g{i}_{j},g{i + 1}_{j})")
    instances["grid.hg"] = ",\n".join(grid) + ".\n"
    # K24 at k=4 runs for minutes — it exists to pin the worker in phase 3.
    clique = [f"e{i}_{j}(v{i},v{j})" for i in range(24) for j in range(i + 1, 24)]
    instances["clique24.hg"] = ",\n".join(clique) + ".\n"
    for name, text in instances.items():
        (workdir / name).write_text(text)
    return ["path.hg", "cycle.hg", "grid.hg"]


def main():
    for binary in (HDSERVER, HDCLIENT):
        if not binary.exists():
            fail(f"{binary} not built")
    workdir = Path(tempfile.mkdtemp(prefix="hdserver_smoke_"))
    snapshot = workdir / "warm.snap"
    corpus = write_corpus(workdir)

    # --- Phase 1: cold serve + snapshot. -----------------------------------
    port = free_port()
    server = start_server(port, "--snapshot", str(snapshot), "--workers", "2")
    for name in corpus:
        proc = client(port, "decompose", str(workdir / name), "--k", "3",
                      "--timeout", "30")
        body = json.loads(proc.stdout)
        if body["outcome"] not in ("yes", "no"):
            fail(f"{name}: unexpected outcome {body['outcome']}")
        if body["cache_hit"]:
            fail(f"{name}: cold pass must not be a cache hit")
    # Identical resubmission: served from memory.
    client(port, "decompose", str(workdir / corpus[0]), "--k", "3",
           "--expect-cache-hit", "--quiet")
    client(port, "snapshot", "--quiet")
    if not snapshot.exists():
        fail("snapshot file was not written")
    stop_server(server)
    print("phase 1 OK: cold serve, cache hit on resubmit, snapshot written")

    # --- Phase 2: warm restart from the snapshot. --------------------------
    port = free_port()
    server = start_server(port, "--snapshot", str(snapshot), "--workers", "2")
    for name in corpus:
        client(port, "decompose", str(workdir / name), "--k", "3",
               "--expect-cache-hit", "--quiet")
    stats = json.loads(client(port, "stats").stdout)
    restored = stats["snapshot"]["restored_cache_entries"]
    if restored < len(corpus):
        fail(f"expected >= {len(corpus)} restored cache entries, got {restored}")
    stop_server(server)
    print(f"phase 2 OK: warm restart served {len(corpus)} cache hits "
          f"({restored} entries restored)")

    # --- Phase 3: flood past the admission bound. --------------------------
    port = free_port()
    server = start_server(port, "--workers", "1", "--queue-depth", "2")
    accepted = shed = 0
    for _ in range(8):
        proc = client(port, "decompose", str(workdir / "clique24.hg"),
                      "--k", "4", "--timeout", "30", "--async", "--quiet",
                      expect_exit=None)
        if proc.returncode == 0:
            accepted += 1
        elif proc.returncode == 4:  # 429/503: load shed
            shed += 1
        else:
            fail(f"flood request failed unexpectedly (exit {proc.returncode}): "
                 f"{proc.stderr}")
    if accepted == 0:
        fail("flood: no request was admitted")
    if shed == 0:
        fail("flood: queue bound never shed load (server queues unboundedly?)")
    stats = json.loads(client(port, "stats").stdout)
    if stats["admission"]["shed"] != shed:
        fail(f"stats disagree: {stats['admission']['shed']} != {shed}")
    stop_server(server)  # must cancel pinned solves promptly, not hang
    print(f"phase 3 OK: {accepted} admitted, {shed} shed with 429")

    print("server_smoke: all phases passed")


if __name__ == "__main__":
    main()
