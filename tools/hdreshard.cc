// hdreshard: drives a live N→M reshard of a sharded hdserver fleet
// (docs/OPERATIONS.md has the full runbook and a worked 2→3 transcript).
//
//   $ hdreshard --from 10.0.0.1:8080,10.0.0.2:8080 \
//               --to   10.0.0.1:8080,10.0.0.2:8080,10.0.0.3:8080 \
//               --router 10.0.0.9:8080
//
// Sequence (each step is an idempotent HTTP call; re-running a failed
// reshard with the same arguments is safe):
//
//   1. announce  POST /v1/admin/transition on the router: it starts
//                double-routing (old owner first, new owner on 421/5xx) so
//                no request 421s while the fleet is mid-topology.
//   2. prepare   POST /v1/admin/migrate?prepare=1&new_index=J on every OLD
//                backend: each enters its transitioning state (accepts both
//                digests) BEFORE any entry moves, so peers' new-digest
//                pushes are welcome everywhere.
//   3. migrate   POST /v1/admin/migrate?new_index=J on every old backend:
//                streams the entries leaving its range to every replica of
//                their new owners via /v1/admin/import.
//   4. flip      POST /v1/admin/transition?complete=1 on the router: the
//                new map becomes the only map.
//   5. finalise  POST /v1/admin/migrate?finalise=1 on every old backend
//                that stays in the fleet; backends that left the map are
//                reported for shutdown instead.
//   6. verify    GET /v1/stats on every new endpoint: prints imported /
//                migrated-out counters so the operator can see the warm
//                state actually moved.
//
// Backends keep serving throughout — donors retain their entries until the
// flip, so warm hits survive the whole transition. Exits non-zero on the
// first failed step; nothing is rolled back automatically (the router can
// be reverted with POST /v1/admin/transition?abort=1 — see the runbook).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/http_client.h"
#include "net/json.h"
#include "service/shard_map.h"
#include "util/cli.h"

namespace {

struct Args {
  std::string from_spec;
  std::string to_spec;
  std::string router_host;
  int router_port = 0;
  bool have_router = false;
  bool dry_run = false;
  double timeout = 300.0;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --from H:P,... --to H:P,... [options]\n"
      "  --from SPEC     the fleet's CURRENT shard map\n"
      "  --to SPEC       the new shard map (host:port*2 = replicated range)\n"
      "  --router H:P    a --route-to proxy to transition and flip\n"
      "                  (omit for fleets addressed by hdclient --shards)\n"
      "  --timeout S     per-step HTTP timeout (default 300)\n"
      "  --dry-run       print the migration plan and exit\n",
      argv0);
}

/// One HTTP step against a backend or the router; prints and fails loudly.
bool Step(const Args& args, const std::string& what, const std::string& host,
          int port, const std::string& method, const std::string& target,
          const std::string& body, std::string* response_body = nullptr) {
  htd::net::FetchOptions fetch;
  fetch.read_timeout_seconds = args.timeout;
  htd::net::FetchResult result =
      htd::net::HttpFetch(host, port, method, target, body, {}, fetch);
  if (!result.ok()) {
    std::fprintf(stderr, "hdreshard: %s (%s:%d): transport failure: %s\n",
                 what.c_str(), host.c_str(), port, result.error.c_str());
    return false;
  }
  if (result.status != 200) {
    std::fprintf(stderr, "hdreshard: %s (%s:%d): HTTP %d: %s",
                 what.c_str(), host.c_str(), port, result.status,
                 result.body.c_str());
    return false;
  }
  std::printf("hdreshard: %s (%s:%d): ok %s", what.c_str(), host.c_str(), port,
              result.body.c_str());
  if (response_body != nullptr) *response_body = result.body;
  return true;
}

/// Pulls `"key": <integer>` out of a fleet-rendered JSON body via the
/// shared scanner (net/json.h); -1 when absent.
long long JsonNumber(const std::string& body, const std::string& key) {
  double value;
  if (!htd::net::FindJsonNumber(body, key, &value)) return -1;
  return static_cast<long long>(value);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--from") {
      args.from_spec = next("--from");
    } else if (flag == "--to") {
      args.to_spec = next("--to");
    } else if (flag == "--router") {
      std::string endpoint = next("--router");
      size_t colon = endpoint.rfind(':');
      long port;
      if (colon == std::string::npos || colon == 0 ||
          !htd::util::ParseIntFlag(endpoint.substr(colon + 1), 1, 65535,
                                   &port)) {
        std::fprintf(stderr, "invalid value for --router: \"%s\" (expected "
                             "host:port)\n\n", endpoint.c_str());
        Usage(argv[0]);
        return 2;
      }
      args.router_host = endpoint.substr(0, colon);
      args.router_port = static_cast<int>(port);
      args.have_router = true;
    } else if (flag == "--timeout") {
      if (!htd::util::ParseDoubleFlag(next("--timeout"), 0.0, &args.timeout)) {
        std::fprintf(stderr, "invalid value for --timeout\n\n");
        Usage(argv[0]);
        return 2;
      }
    } else if (flag == "--dry-run") {
      args.dry_run = true;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (args.from_spec.empty() || args.to_spec.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto from = htd::service::ShardMap::Parse(args.from_spec);
  if (!from.ok()) {
    std::fprintf(stderr, "hdreshard: --from: %s\n",
                 from.status().message().c_str());
    return 2;
  }
  auto to = htd::service::ShardMap::Parse(args.to_spec);
  if (!to.ok()) {
    std::fprintf(stderr, "hdreshard: --to: %s\n", to.status().message().c_str());
    return 2;
  }
  if (from->Digest() == to->Digest()) {
    std::fprintf(stderr, "hdreshard: --from and --to are the same map "
                         "(digest %s); nothing to do\n",
                 from->DigestHex().c_str());
    return 2;
  }

  // Plan: every OLD process migrates; its identity under the new map is
  // found by endpoint equality (-1 = it leaves the fleet). NEW-only
  // endpoints must already be running with the new map before step 2 pushes
  // entries at them.
  struct OldBackend {
    htd::service::ShardEndpoint endpoint;
    int old_range = 0;
    int new_index = -1;
  };
  std::vector<OldBackend> old_backends;
  for (int index = 0; index < from->num_shards(); ++index) {
    for (int r = 0; r < from->num_replicas(index); ++r) {
      OldBackend backend;
      backend.endpoint = from->replica(index, r);
      backend.old_range = index;
      backend.new_index = to->RangeOfEndpoint(backend.endpoint);
      old_backends.push_back(std::move(backend));
    }
  }
  std::vector<htd::service::ShardEndpoint> new_only;
  for (int index = 0; index < to->num_shards(); ++index) {
    for (int r = 0; r < to->num_replicas(index); ++r) {
      if (from->RangeOfEndpoint(to->replica(index, r)) < 0) {
        new_only.push_back(to->replica(index, r));
      }
    }
  }

  std::printf("hdreshard: %d -> %d ranges (digests %s -> %s)\n",
              from->num_shards(), to->num_shards(), from->DigestHex().c_str(),
              to->DigestHex().c_str());
  for (const OldBackend& backend : old_backends) {
    if (backend.new_index >= 0) {
      std::printf("  %s:%d  range %d -> range %d\n",
                  backend.endpoint.host.c_str(), backend.endpoint.port,
                  backend.old_range, backend.new_index);
    } else {
      std::printf("  %s:%d  range %d -> LEAVES the fleet (shut down after "
                  "the flip)\n",
                  backend.endpoint.host.c_str(), backend.endpoint.port,
                  backend.old_range);
    }
  }
  for (const htd::service::ShardEndpoint& endpoint : new_only) {
    std::printf("  %s:%d  JOINS as range %d (must already run with the new "
                "map)\n",
                endpoint.host.c_str(), endpoint.port,
                to->RangeOfEndpoint(endpoint));
  }
  if (args.dry_run) return 0;

  // 1. Announce the transition to the router: double-routing starts here.
  if (args.have_router &&
      !Step(args, "announce transition", args.router_host, args.router_port,
            "POST", "/v1/admin/transition", to->Serialise())) {
    return 1;
  }

  // 2. Prepare every old backend: all of them must accept the new digest
  // before any of them pushes entries at a peer.
  for (const OldBackend& backend : old_backends) {
    if (!Step(args, "prepare range " + std::to_string(backend.old_range),
              backend.endpoint.host, backend.endpoint.port, "POST",
              "/v1/admin/migrate?prepare=1&new_index=" +
                  std::to_string(backend.new_index),
              to->Serialise())) {
      return 1;
    }
  }

  // 3. Migrate every old backend (streams the entries leaving its range).
  long long total_out = 0;
  for (const OldBackend& backend : old_backends) {
    std::string response;
    // `self` lets the backend push its RETAINED slice to new sibling
    // replicas of its own range (it skips itself by endpoint identity).
    if (!Step(args,
              "migrate range " + std::to_string(backend.old_range),
              backend.endpoint.host, backend.endpoint.port, "POST",
              "/v1/admin/migrate?new_index=" + std::to_string(backend.new_index) +
                  "&self=" + backend.endpoint.host + ":" +
                  std::to_string(backend.endpoint.port),
              to->Serialise(), &response)) {
      std::fprintf(stderr, "hdreshard: migration incomplete — fix the backend "
                           "and re-run (all steps are idempotent), or revert "
                           "the router with /v1/admin/transition?abort=1\n");
      return 1;
    }
    long long out = JsonNumber(response, "entries_out");
    if (out > 0) total_out += out;
  }

  // 4. Flip the router onto the new map.
  if (args.have_router &&
      !Step(args, "flip router", args.router_host, args.router_port, "POST",
            "/v1/admin/transition?complete=1", "")) {
    return 1;
  }

  // 5. Finalise the backends that stay (adopt the new map exclusively).
  for (const OldBackend& backend : old_backends) {
    if (backend.new_index < 0) {
      std::printf("hdreshard: %s:%d left the map — drain and shut it down\n",
                  backend.endpoint.host.c_str(), backend.endpoint.port);
      continue;
    }
    if (!Step(args, "finalise range " + std::to_string(backend.new_index),
              backend.endpoint.host, backend.endpoint.port, "POST",
              "/v1/admin/migrate?finalise=1", "")) {
      return 1;
    }
  }

  // 6. Verify: the new fleet's counters show the warm state arrived.
  long long total_in = 0;
  bool verified = true;
  for (int index = 0; index < to->num_shards(); ++index) {
    for (int r = 0; r < to->num_replicas(index); ++r) {
      const htd::service::ShardEndpoint& endpoint = to->replica(index, r);
      htd::net::FetchOptions fetch;
      fetch.read_timeout_seconds = args.timeout;
      htd::net::FetchResult stats = htd::net::HttpFetch(
          endpoint.host, endpoint.port, "GET", "/v1/stats", "", {}, fetch);
      if (!stats.ok() || stats.status != 200) {
        std::fprintf(stderr, "hdreshard: verify %s:%d: unreachable\n",
                     endpoint.host.c_str(), endpoint.port);
        verified = false;
        continue;
      }
      const long long cache_in = JsonNumber(stats.body, "imported_cache_entries");
      const long long store_in = JsonNumber(stats.body, "imported_store_entries");
      std::printf("hdreshard: verify range %d (%s:%d): imported %lld cache + "
                  "%lld store entries\n",
                  index, endpoint.host.c_str(), endpoint.port,
                  cache_in > 0 ? cache_in : 0, store_in > 0 ? store_in : 0);
      if (cache_in > 0) total_in += cache_in;
      if (store_in > 0) total_in += store_in;
    }
  }
  std::printf("hdreshard: done — %lld entries pushed out, %lld accepted by "
              "new owners\n", total_out, total_in);
  return verified ? 0 : 1;
}
