// Tests for the trace ring / registry (util/trace.h) and the metrics
// registry (util/metrics.h). The concurrent cases are the reason this
// test runs under TSan in CI: a seqlock reader racing a writer must
// either see a consistent span or skip the slot, never a torn one.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace htd::util {
namespace {

TraceSpan MakeSpan(uint64_t id, uint64_t parent, uint64_t root,
                   const char* name, uint64_t tag = 0) {
  TraceSpan span;
  span.id = id;
  span.parent = parent;
  span.root = root;
  span.start_ns = id;  // any monotone-ish value
  span.duration_ns = 1;
  span.tag = tag;
  std::strncpy(span.name, name, sizeof(span.name) - 1);
  return span;
}

TEST(TraceRingTest, ReadsBackWhatWasPushed) {
  TraceRing ring;
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Push(MakeSpan(i, 0, i, "span"));
  }
  std::vector<TraceSpan> out;
  ring.ReadInto(&out);
  ASSERT_EQ(out.size(), 10u);
  std::set<uint64_t> ids;
  for (const TraceSpan& span : out) {
    ids.insert(span.id);
    EXPECT_EQ(span.Name(), "span");
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(TraceRingTest, WraparoundKeepsNewestCapacitySpans) {
  TraceRing ring;
  const uint64_t total = TraceRing::kCapacity * 2 + 17;
  for (uint64_t i = 1; i <= total; ++i) {
    ring.Push(MakeSpan(i, 0, i, "wrap"));
  }
  EXPECT_EQ(ring.pushed(), total);
  std::vector<TraceSpan> out;
  ring.ReadInto(&out);
  ASSERT_EQ(out.size(), TraceRing::kCapacity);
  // Exactly the newest kCapacity ids survive.
  for (const TraceSpan& span : out) {
    EXPECT_GT(span.id, total - TraceRing::kCapacity);
    EXPECT_LE(span.id, total);
  }
}

TEST(TraceRingTest, LongNameIsTruncatedNotOverrun) {
  TraceRing ring;
  TraceSpan span = MakeSpan(1, 0, 1, "a-very-long-span-name-indeed");
  ring.Push(span);
  std::vector<TraceSpan> out;
  ring.ReadInto(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].Name().size(), sizeof(span.name));
  EXPECT_EQ(out[0].Name().substr(0, 8), "a-very-l");
}

// One writer spinning on Push while readers snapshot: every span a reader
// sees must satisfy the writer's invariant (tag == id). A torn read would
// surface as a mismatch; TSan additionally checks the memory ordering.
TEST(TraceRingTest, ConcurrentReadersSeeConsistentSlots) {
  TraceRing ring;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Push(MakeSpan(i, 0, i, "race", /*tag=*/i));
      ++i;
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> spans_seen{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 200; ++iter) {
        std::vector<TraceSpan> out;
        ring.ReadInto(&out);
        for (const TraceSpan& span : out) {
          ASSERT_EQ(span.tag, span.id);
          ASSERT_EQ(span.root, span.id);
        }
        spans_seen.fetch_add(out.size(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(spans_seen.load(), 0u);
}

TEST(TraceRegistryTest, NextIdIsUniqueAndNonZero) {
  TraceRegistry& registry = TraceRegistry::Instance();
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = registry.NextId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TraceRegistryTest, ScopeNestingParentsUnderCurrent) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(true);
  uint64_t root_id = 0, child_id = 0;
  {
    TraceScope root("root-test");
    ASSERT_TRUE(root.armed());
    root_id = root.id();
    EXPECT_EQ(root.root(), root_id);
    {
      TraceScope child("child-test");
      ASSERT_TRUE(child.armed());
      child_id = child.id();
      EXPECT_EQ(child.root(), root_id);
      EXPECT_NE(child_id, root_id);
    }
  }
  // Both completed spans are findable, child parented under root.
  bool found_root = false, found_child = false;
  for (const TraceSpan& span : registry.Snapshot()) {
    if (span.id == root_id) {
      found_root = true;
      EXPECT_EQ(span.parent, 0u);
      EXPECT_EQ(span.Name(), "root-test");
    }
    if (span.id == child_id) {
      found_child = true;
      EXPECT_EQ(span.parent, root_id);
      EXPECT_EQ(span.root, root_id);
    }
  }
  EXPECT_TRUE(found_root);
  EXPECT_TRUE(found_child);
}

TEST(TraceRegistryTest, ZeroTraceParentIsInert) {
  TraceScope scope("untraced", TraceParent{});
  EXPECT_FALSE(scope.armed());
  EXPECT_EQ(scope.id(), 0u);
  EXPECT_EQ(scope.Seconds(), 0.0);
}

TEST(TraceRegistryTest, DisabledRegistryRecordsNothing) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(false);
  {
    TraceScope scope("while-off");
    EXPECT_FALSE(scope.armed());
  }
  registry.set_enabled(true);
  for (const TraceSpan& span : registry.Snapshot()) {
    EXPECT_NE(span.Name(), "while-off");
  }
}

TEST(TraceRegistryTest, AdoptedRootIdShowsUpInRecentRoots) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(true);
  const uint64_t request_id = registry.NextId();
  {
    TraceScope root("request", TraceRootId{request_id}, /*tag=*/42);
    TraceScope stage("solve", TraceParent{request_id, request_id});
  }
  auto roots = registry.RecentRoots(64);
  bool found = false;
  for (const TraceRegistry::RootTrace& trace : roots) {
    if (trace.root.id != request_id) continue;
    found = true;
    EXPECT_EQ(trace.root.tag, 42u);
    ASSERT_EQ(trace.spans.size(), 1u);
    EXPECT_EQ(trace.spans[0].Name(), "solve");
    EXPECT_EQ(trace.spans[0].root, request_id);
  }
  EXPECT_TRUE(found);
}

TEST(TraceRegistryTest, RecentRootsNewestFirstAndBounded) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(true);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    uint64_t id = registry.NextId();
    ids.push_back(id);
    TraceScope root("ordered", TraceRootId{id});
  }
  auto roots = registry.RecentRoots(3);
  ASSERT_LE(roots.size(), 3u);
  ASSERT_GE(roots.size(), 1u);
  // Newest of our batch comes before older ones (other tests' roots may
  // interleave, so only check relative order of ours).
  std::vector<uint64_t> seen;
  for (const auto& trace : roots) {
    for (uint64_t id : ids) {
      if (trace.root.id == id) seen.push_back(id);
    }
  }
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i - 1], seen[i]);
  }
}

// Many short-lived threads each record spans, as the parallel separator
// search does; spans must survive thread exit via the retired store.
TEST(TraceRegistryTest, SpansSurviveThreadExit) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(true);
  const uint64_t request_id = registry.NextId();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&registry, request_id, t] {
      TraceScope scope("worker", TraceParent{request_id, request_id},
                       static_cast<uint64_t>(t));
      (void)registry;
    });
  }
  for (std::thread& t : workers) t.join();
  size_t found = 0;
  for (const TraceSpan& span : registry.Snapshot()) {
    if (span.root == request_id && span.Name() == "worker") ++found;
  }
  EXPECT_EQ(found, 4u);
}

// Concurrent TraceScope recorders + Snapshot readers; primarily a TSan
// target (thread-local ring registration races the registry snapshot).
TEST(TraceRegistryTest, ConcurrentScopesAndSnapshots) {
  TraceRegistry& registry = TraceRegistry::Instance();
  registry.set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        TraceScope root("stress");
        TraceScope child("stress-kid");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.Snapshot();
      (void)registry.RecentRoots(8);
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(TraceIdTest, HexRoundTrip) {
  EXPECT_EQ(TraceIdHex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(TraceIdHex(1), "0000000000000001");
  uint64_t id = 0;
  ASSERT_TRUE(ParseTraceId("0123456789abcdef", &id));
  EXPECT_EQ(id, 0x0123456789abcdefULL);
  ASSERT_TRUE(ParseTraceId(TraceIdHex(0xdeadbeefULL), &id));
  EXPECT_EQ(id, 0xdeadbeefULL);
}

TEST(TraceIdTest, ParseRejectsMalformedIds) {
  uint64_t id = 7;
  EXPECT_FALSE(ParseTraceId("", &id));
  EXPECT_FALSE(ParseTraceId("123", &id));                  // too short
  EXPECT_FALSE(ParseTraceId("0123456789abcdef0", &id));    // too long
  EXPECT_FALSE(ParseTraceId("0123456789abcdeg", &id));     // non-hex
  EXPECT_FALSE(ParseTraceId("0000000000000000", &id));     // zero id
  EXPECT_EQ(id, 7u);  // untouched on failure
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwoMicros) {
  // Bound of bucket i is 2^i microseconds.
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1024e-6);
  // An observation exactly at a bound lands in that bucket (le semantics).
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0);
  EXPECT_EQ(Histogram::BucketIndex(2e-6), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.1e-6), 2);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);  // clamped
  // Beyond the largest finite bound: the +Inf slot.
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kFiniteBuckets);
}

TEST(HistogramTest, ObserveAccumulatesCountAndSum) {
  Histogram h;
  h.Observe(0.001);
  h.Observe(0.002);
  h.Observe(0.004);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_NEAR(h.SumSeconds(), 0.007, 1e-9);
  uint64_t total = 0;
  for (int i = 0; i < Histogram::kBucketCount; ++i) total += h.BucketValue(i);
  EXPECT_EQ(total, 3u);
}

TEST(MetricsRegistryTest, CounterIdentityByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests_total", "route=\"x\"");
  Counter& b = registry.GetCounter("requests_total", "route=\"x\"");
  Counter& c = registry.GetCounter("requests_total", "route=\"y\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.Add(2);
  EXPECT_EQ(b.Value(), 2u);
  EXPECT_EQ(c.Value(), 0u);
}

TEST(MetricsRegistryTest, SnapshotReadsInRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("part_total").Add(3);
  registry.GetCounter("whole_total").Add(5);
  registry.RegisterCallback("gauge_now", "", "gauge", [] { return 1.5; });
  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "part_total");
  EXPECT_EQ(samples[0].value, 3.0);
  EXPECT_EQ(samples[1].name, "whole_total");
  EXPECT_EQ(samples[1].value, 5.0);
  EXPECT_EQ(samples[2].name, "gauge_now");
  EXPECT_EQ(samples[2].value, 1.5);
}

TEST(MetricsRegistryTest, RenderPrometheusShape) {
  MetricsRegistry registry;
  registry.SetHelp("req_total", "Requests served.");
  registry.GetCounter("req_total", "route=\"a\"").Add(4);
  registry.GetHistogram("lat_seconds").Observe(0.5);
  registry.GetHistogram("lat_seconds").Observe(0.5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP req_total Requests served.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{route=\"a\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 1\n"), std::string::npos);
  // Buckets are cumulative: the +Inf count equals the total count.
  EXPECT_EQ(text.find("lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeInRender) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("stage_seconds");
  h.Observe(0.5e-6);  // bucket 0 (le 1us)
  h.Observe(3e-6);    // bucket 2 (le 4us)
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("stage_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentGetAndAdd) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared_total").Add();
        registry.GetHistogram("shared_seconds").Observe(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared_total").Value(), 4000u);
  EXPECT_EQ(registry.GetHistogram("shared_seconds").Count(), 4000u);
}

TEST(FormatMetricValueTest, IntegersBareDoublesWithPoint) {
  EXPECT_EQ(FormatMetricValue(4.0), "4");
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(1.5), "1.5");
}

}  // namespace
}  // namespace htd::util
