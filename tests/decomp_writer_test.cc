#include "decomp/decomp_writer.h"

#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "hypergraph/generators.h"

namespace htd {
namespace {

class DecompWriterTest : public ::testing::Test {
 protected:
  DecompWriterTest() : graph_(MakeCycle(6)) {
    LogKDecomp solver;
    SolveResult result = solver.Solve(graph_, 2);
    HTD_CHECK(result.outcome == Outcome::kYes);
    decomp_ = std::move(*result.decomposition);
  }
  Hypergraph graph_;
  Decomposition decomp_;
};

TEST_F(DecompWriterTest, GmlContainsAllNodesAndEdges) {
  std::string gml = WriteDecompositionGml(graph_, decomp_);
  size_t node_count = 0, edge_count = 0, pos = 0;
  while ((pos = gml.find("node [", pos)) != std::string::npos) {
    ++node_count;
    ++pos;
  }
  pos = 0;
  while ((pos = gml.find("edge [", pos)) != std::string::npos) {
    ++edge_count;
    ++pos;
  }
  EXPECT_EQ(node_count, static_cast<size_t>(decomp_.num_nodes()));
  EXPECT_EQ(edge_count, static_cast<size_t>(decomp_.num_nodes() - 1));
  EXPECT_NE(gml.find("directed 1"), std::string::npos);
}

TEST_F(DecompWriterTest, GmlMentionsEdgeAndVertexNames) {
  std::string gml = WriteDecompositionGml(graph_, decomp_);
  EXPECT_NE(gml.find("R1"), std::string::npos);
  EXPECT_NE(gml.find("x0"), std::string::npos);
}

TEST_F(DecompWriterTest, JsonHasWidthAndStructure) {
  std::string json = WriteDecompositionJson(graph_, decomp_);
  EXPECT_NE(json.find("\"width\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"parent\": -1"), std::string::npos);  // the root
  EXPECT_NE(json.find("\"lambda\": ["), std::string::npos);
  EXPECT_NE(json.find("\"chi\": ["), std::string::npos);
  // Rough balance check of the JSON structure.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(DecompWriterEmptyTest, EmptyDecomposition) {
  Hypergraph empty;
  Decomposition decomp;
  EXPECT_NE(WriteDecompositionGml(empty, decomp).find("graph ["),
            std::string::npos);
  EXPECT_NE(WriteDecompositionJson(empty, decomp).find("\"nodes\": []"),
            std::string::npos);
}

}  // namespace
}  // namespace htd
