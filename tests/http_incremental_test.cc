// Fragmentation fuzz for the incremental parsers in net/http.h: the epoll
// readiness loop feeds them whatever byte chunks the kernel happens to
// return, so NO split of the wire bytes may change the outcome. Every corpus
// blob is parsed one-shot, byte-at-a-time, at every two-fragment boundary,
// and under seeded random multi-splits, asserting byte-identical results.
// A final section drives a live HttpServer with fragmented writes and
// asserts the response is identical to an unfragmented exchange.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/server.h"
#include "util/socket.h"

namespace htd::net {
namespace {

// ---------------------------------------------------------------------------
// Deterministic drivers: feed a chunking of the same bytes, flatten the
// result (including every pipelined request and the terminal error, if any)
// into a canonical string so a mismatch prints both outcomes side by side.

std::string DriveRequests(const std::vector<std::string>& chunks,
                          HttpRequestParser::Limits limits) {
  HttpRequestParser parser(limits);
  std::string out;
  auto state = HttpRequestParser::State::kNeedMore;
  for (const std::string& chunk : chunks) {
    if (state == HttpRequestParser::State::kError) break;
    state = parser.Consume(chunk);
    while (state == HttpRequestParser::State::kDone) {
      const HttpRequest& request = parser.request();
      out += "request{" + request.method + " " + request.target + " " +
             request.version + " path=" + request.path;
      for (const auto& [key, value] : request.query) {
        out += " q." + key + "=" + value;
      }
      for (const auto& [key, value] : request.headers) {
        out += " h." + key + "=" + value;
      }
      out += " close=" + std::string(request.WantsClose() ? "1" : "0");
      out += " body=[" + request.body + "]}\n";
      parser.Reset();
      state = parser.Continue();
    }
  }
  if (state == HttpRequestParser::State::kError) {
    out += "error{" + std::to_string(parser.error_status()) + " " +
           parser.error() + "}\n";
  } else {
    out += "needmore{buffered=" + std::to_string(parser.buffered_bytes()) +
           "}\n";
  }
  return out;
}

std::string DriveResponse(const std::vector<std::string>& chunks) {
  HttpResponseParser parser;
  auto state = HttpResponseParser::State::kNeedMore;
  for (const std::string& chunk : chunks) {
    if (state != HttpResponseParser::State::kNeedMore) break;
    state = parser.Consume(chunk);
  }
  if (state == HttpResponseParser::State::kNeedMore) state = parser.Finish();
  if (state == HttpResponseParser::State::kError) {
    return "error{" + parser.error() + "}\n";
  }
  std::string out = "response{" + std::to_string(parser.status());
  for (const auto& [key, value] : parser.headers()) {
    out += " h." + key + "=" + value;
  }
  out += " body=[" + parser.body() + "]}\n";
  return out;
}

std::vector<std::string> SplitAt(std::string_view blob,
                                 const std::vector<size_t>& cuts) {
  std::vector<std::string> chunks;
  size_t start = 0;
  for (size_t cut : cuts) {
    chunks.emplace_back(blob.substr(start, cut - start));
    start = cut;
  }
  chunks.emplace_back(blob.substr(start));
  return chunks;
}

std::vector<std::string> ByteAtATime(std::string_view blob) {
  std::vector<std::string> chunks;
  for (char c : blob) chunks.emplace_back(1, c);
  return chunks;
}

/// Seeded random multi-splits: deterministic per (blob, round).
std::vector<size_t> RandomCuts(size_t length, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> count_dist(1, 8);
  std::uniform_int_distribution<size_t> pos_dist(1, length > 1 ? length - 1 : 1);
  size_t count = count_dist(rng);
  std::vector<size_t> cuts;
  for (size_t i = 0; i < count; ++i) cuts.push_back(pos_dist(rng));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

constexpr int kRandomRounds = 48;

void ExpectFragmentationInvariant(std::string_view blob,
                                  HttpRequestParser::Limits limits) {
  std::string reference = DriveRequests({std::string(blob)}, limits);
  EXPECT_EQ(DriveRequests(ByteAtATime(blob), limits), reference)
      << "byte-at-a-time diverged for: " << blob;
  for (size_t cut = 1; cut < blob.size(); ++cut) {
    ASSERT_EQ(DriveRequests(SplitAt(blob, {cut}), limits), reference)
        << "two-fragment split at " << cut << " diverged for: " << blob;
  }
  for (int round = 0; round < kRandomRounds; ++round) {
    auto cuts = RandomCuts(blob.size(),
                           0x9e3779b9u * static_cast<uint32_t>(round + 1) +
                               static_cast<uint32_t>(blob.size()));
    ASSERT_EQ(DriveRequests(SplitAt(blob, cuts), limits), reference)
        << "random split round " << round << " diverged for: " << blob;
  }
}

void ExpectResponseFragmentationInvariant(std::string_view blob) {
  std::string reference = DriveResponse({std::string(blob)});
  EXPECT_EQ(DriveResponse(ByteAtATime(blob)), reference)
      << "byte-at-a-time diverged for: " << blob;
  for (size_t cut = 1; cut < blob.size(); ++cut) {
    ASSERT_EQ(DriveResponse(SplitAt(blob, {cut})), reference)
        << "two-fragment split at " << cut << " diverged for: " << blob;
  }
  for (int round = 0; round < kRandomRounds; ++round) {
    auto cuts = RandomCuts(blob.size(),
                           0x85ebca6bu * static_cast<uint32_t>(round + 1) +
                               static_cast<uint32_t>(blob.size()));
    ASSERT_EQ(DriveResponse(SplitAt(blob, cuts)), reference)
        << "random split round " << round << " diverged for: " << blob;
  }
}

// ---------------------------------------------------------------------------
// Request corpus: the tests/http_test.cc blobs (valid, malformed, limits,
// pipelined, bare-LF) replayed under every fragmentation.

const char* const kRequestCorpus[] = {
    "GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n",
    "POST /v1/decompose?k=3&timeout=1.5 HTTP/1.1\r\n"
    "Content-Length: 11\r\n\r\n"
    "e1(a,b,c).\n",
    "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
    // Pipelined pair in one stream.
    "GET /first HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\n\r\n",
    // Pipelined POST pair: the second body must frame correctly no matter
    // where the first one's bytes were cut.
    "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
    "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok",
    // Bare-LF separators.
    "GET /lf HTTP/1.0\nHost: y\n\n",
    // Connection semantics corpus.
    "GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
    "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    "GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n",
    // Percent-decoding in the target.
    "GET /v1/stats?name=a%20b+c HTTP/1.1\r\n\r\n",
    // Malformed request line.
    "GARBAGE\r\n\r\n",
    // Non-HTTP version.
    "GET / SPDY/3\r\n\r\n",
    // Chunked transfer rejected with 501.
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    // Malformed Content-Length.
    "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
    // Header without a colon.
    "GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
};

TEST(HttpIncrementalTest, RequestCorpusIsFragmentationInvariant) {
  for (const char* blob : kRequestCorpus) {
    ExpectFragmentationInvariant(blob, HttpRequestParser::Limits{});
  }
}

TEST(HttpIncrementalTest, RequestLimitsAreFragmentationInvariant) {
  HttpRequestParser::Limits tight;
  tight.max_head_bytes = 64;
  tight.max_body_bytes = 8;
  // Head exactly at / just past the bound, and a body past its bound: the
  // 413 must fire identically whether the bytes arrive in one read or many.
  std::string long_head = "GET /" + std::string(80, 'a') + " HTTP/1.1\r\n\r\n";
  ExpectFragmentationInvariant(long_head, tight);
  ExpectFragmentationInvariant(
      "POST / HTTP/1.1\r\nContent-Length: 32\r\n\r\n" + std::string(32, 'b'),
      tight);
  // An unterminated head that never reaches the bound stays kNeedMore.
  ExpectFragmentationInvariant("GET /" + std::string(16, 'c'), tight);
}

// ---------------------------------------------------------------------------
// Response corpus: serialised server responses plus close-framed and
// truncated variants for the client-side parser.

TEST(HttpIncrementalTest, ResponseCorpusIsFragmentationInvariant) {
  std::vector<std::string> corpus;
  HttpResponse ok;
  ok.status = 200;
  ok.body = "{\"result\": \"fine\"}\n";
  corpus.push_back(SerializeResponse(ok, "close"));
  HttpResponse shed;
  shed.status = 503;
  shed.headers.emplace_back("Retry-After", "1");
  shed.body = "{\"error\": \"shed\"}\n";
  corpus.push_back(SerializeResponse(shed, "close"));
  // Close-framed (no Content-Length): the body is everything before EOF.
  corpus.push_back("HTTP/1.1 200 OK\r\nX-Kind: close-framed\r\n\r\npartial body");
  // Truncated mid-head and short-of-Content-Length: errors either way.
  corpus.push_back("HTTP/1.1 200 OK\r\nContent-Le");
  corpus.push_back("HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort");
  // Garbage status line.
  corpus.push_back("ICY 200 OK\r\n\r\n");
  corpus.push_back("HTTP/1.1 9000 NOPE\r\n\r\n");
  // Extra bytes past Content-Length are ignored (keep-alive stream tail).
  corpus.push_back("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\ntail");
  for (const std::string& blob : corpus) {
    ExpectResponseFragmentationInvariant(blob);
  }
}

TEST(HttpIncrementalTest, BlobParserAgreesWithIncrementalParser) {
  // ParseHttpResponseBlob is now a wrapper over HttpResponseParser; pin the
  // equivalence on a framed and a close-framed response.
  HttpResponse response;
  response.status = 200;
  response.body = "hello";
  std::string wire = SerializeResponse(response, "close");
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
  ASSERT_TRUE(ParseHttpResponseBlob(wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "hello");
  ASSERT_TRUE(ParseHttpResponseBlob("HTTP/1.0 404 Nope\r\n\r\ngone", &status,
                                    &headers, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(body, "gone");
  EXPECT_FALSE(ParseHttpResponseBlob("not http", &status, &headers, &body));
}

// ---------------------------------------------------------------------------
// Live-server section: the same request delivered under different
// fragmentation patterns (including byte-at-a-time with real syscall
// boundaries) must produce byte-identical responses from the epoll loop.

std::string ExchangeFragmented(int port, std::string_view wire,
                               const std::vector<size_t>& cuts) {
  auto sock = util::ConnectTcp("127.0.0.1", port, 5.0);
  if (!sock.ok()) return "connect-failed";
  util::SetRecvTimeout(sock->fd(), 10.0);
  for (const std::string& chunk : SplitAt(wire, cuts)) {
    if (!util::SendAll(sock->fd(), chunk)) return "send-failed";
    // A real flush boundary: give the loop a chance to consume the partial
    // bytes before the next fragment lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string blob;
  char buffer[4096];
  while (true) {
    long n = util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  return blob;
}

TEST(HttpIncrementalTest, ServerResponseUnchangedByFragmentation) {
  HttpServer::Options options;
  options.io_threads = 2;
  options.loop_threads = 2;
  HttpServer server(options, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "{\"echo\": \"" + request.path + "\", \"bytes\": " +
                    std::to_string(request.body.size()) + "}\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string wire =
      "POST /v1/echo HTTP/1.1\r\n"
      "Host: fragtest\r\n"
      "Content-Length: 10\r\n"
      "Connection: close\r\n\r\n"
      "0123456789";
  std::string reference = ExchangeFragmented(server.port(), wire, {});
  ASSERT_NE(reference, "connect-failed");
  ASSERT_NE(reference.find("200"), std::string::npos) << reference;
  // Every prefix boundary once...
  for (size_t cut : {size_t{1}, size_t{17}, wire.find("\r\n\r\n") + 2,
                     wire.size() - 5, wire.size() - 1}) {
    EXPECT_EQ(ExchangeFragmented(server.port(), wire, {cut}), reference)
        << "split at " << cut;
  }
  // ...then seeded random multi-splits with real syscall boundaries.
  for (int round = 0; round < 8; ++round) {
    auto cuts = RandomCuts(wire.size(), 0xc2b2ae35u + round);
    EXPECT_EQ(ExchangeFragmented(server.port(), wire, cuts), reference)
        << "random live split round " << round;
  }
  server.Stop();
}

}  // namespace
}  // namespace htd::net
