// ResultCache: LRU/eviction behaviour, stats accounting, and thread safety
// of the sharded stripes under concurrent mixed traffic.
#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace htd::service {
namespace {

CacheKey KeyOf(uint64_t id, int k = 2) {
  CacheKey key;
  key.fingerprint = Fingerprint{id, ~id};
  key.k = k;
  key.config_digest = 7;
  return key;
}

SolveResult YesResult(long marker) {
  SolveResult result;
  result.outcome = Outcome::kYes;
  result.stats.separators_tried = marker;  // lets tests identify the entry
  return result;
}

TEST(ResultCacheTest, InsertThenLookup) {
  ResultCache cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());
  cache.Insert(KeyOf(1), YesResult(42));
  auto hit = cache.Lookup(KeyOf(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome, Outcome::kYes);
  EXPECT_EQ(hit->stats.separators_tried, 42);

  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, DistinguishesKAndConfig) {
  ResultCache cache(8, 1);
  cache.Insert(KeyOf(1, 2), YesResult(2));
  EXPECT_FALSE(cache.Lookup(KeyOf(1, 3)).has_value());
  CacheKey other_config = KeyOf(1, 2);
  other_config.config_digest = 8;
  EXPECT_FALSE(cache.Lookup(other_config).has_value());
  EXPECT_TRUE(cache.Lookup(KeyOf(1, 2)).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(KeyOf(1), YesResult(1));
  cache.Insert(KeyOf(2), YesResult(2));
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  cache.Insert(KeyOf(3), YesResult(3));

  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyOf(2)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyOf(3)).has_value());
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2, 1);
  cache.Insert(KeyOf(1), YesResult(1));
  cache.Insert(KeyOf(1), YesResult(99));
  EXPECT_EQ(cache.num_entries(), 1u);
  auto hit = cache.Lookup(KeyOf(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stats.separators_tried, 99);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsStats) {
  // Per-shard capacity 10: five entries can never evict however they stripe.
  ResultCache cache(40, 4);
  for (uint64_t i = 0; i < 5; ++i) cache.Insert(KeyOf(i), YesResult(1));
  EXPECT_EQ(cache.num_entries(), 5u);
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_FALSE(cache.Lookup(KeyOf(0)).has_value());
  EXPECT_EQ(cache.GetStats().insertions, 5u);
}

TEST(ResultCacheTest, CapacitySmallerThanShards) {
  ResultCache cache(/*capacity=*/2, /*num_shards=*/16);
  cache.Insert(KeyOf(1), YesResult(1));
  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
}

TEST(ResultCacheTest, ConcurrentMixedTraffic) {
  ResultCache cache(/*capacity=*/64, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t id = static_cast<uint64_t>((t * 31 + i) % 100);
        if (i % 3 == 0) {
          cache.Insert(KeyOf(id), YesResult(static_cast<long>(id)));
        } else {
          auto hit = cache.Lookup(KeyOf(id));
          if (hit.has_value()) {
            EXPECT_EQ(hit->stats.separators_tried, static_cast<long>(id));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ResultCache::Stats stats = cache.GetStats();
  const int lookups_per_thread = kOpsPerThread - (kOpsPerThread + 2) / 3;
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * lookups_per_thread);
  EXPECT_LE(stats.entries, stats.capacity);
}

}  // namespace
}  // namespace htd::service
