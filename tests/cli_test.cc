// util/cli.h: strict CLI-flag parsing. Regression coverage for the tools'
// former bare-atoi behaviour, where `--port x` silently bound port 0 (an
// ephemeral port), `--queue-depth x` silently shed everything, and numeric
// overflow was UB.
#include "util/cli.h"

#include <gtest/gtest.h>

namespace htd::util {
namespace {

TEST(CliTest, ParsesPlainIntegers) {
  long value = -1;
  EXPECT_TRUE(ParseIntFlag("8080", 0, 65535, &value));
  EXPECT_EQ(value, 8080);
  EXPECT_TRUE(ParseIntFlag("0", 0, 65535, &value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ParseIntFlag("-3", -10, 10, &value));
  EXPECT_EQ(value, -3);
  EXPECT_TRUE(ParseIntFlag("+7", 0, 10, &value));
  EXPECT_EQ(value, 7);
}

TEST(CliTest, RejectsWhatAtoiAccepted) {
  long value = 123;
  // atoi("x") == 0: the bug this helper exists to kill.
  EXPECT_FALSE(ParseIntFlag("x", 0, 65535, &value));
  // atoi("8080x") == 8080: trailing junk must fail, full string or nothing.
  EXPECT_FALSE(ParseIntFlag("8080x", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("12 ", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag(" 12", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("1.5", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("0x10", 0, 65535, &value));
  EXPECT_EQ(value, 123) << "failed parses must not touch the output";
}

TEST(CliTest, RejectsOutOfRangeAndOverflow) {
  long value;
  EXPECT_FALSE(ParseIntFlag("65536", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("-1", 0, 65535, &value));
  // atoi overflow is UB; here it is a plain failure.
  EXPECT_FALSE(ParseIntFlag("99999999999999999999999999", 0, 65535, &value));
  EXPECT_FALSE(ParseIntFlag("-99999999999999999999999999", -100, 100, &value));
  EXPECT_TRUE(ParseIntFlag("65535", 0, 65535, &value));
  EXPECT_EQ(value, 65535);
}

TEST(CliTest, ParsesSeconds) {
  double value = -1;
  EXPECT_TRUE(ParseDoubleFlag("1.5", 0.0, &value));
  EXPECT_DOUBLE_EQ(value, 1.5);
  EXPECT_TRUE(ParseDoubleFlag("0", 0.0, &value));
  EXPECT_DOUBLE_EQ(value, 0.0);
  EXPECT_TRUE(ParseDoubleFlag("1e3", 0.0, &value));
  EXPECT_DOUBLE_EQ(value, 1000.0);
}

TEST(CliTest, RejectsBadSeconds) {
  double value;
  EXPECT_FALSE(ParseDoubleFlag("abc", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("1.5s", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("-1", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("nan", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("inf", 0.0, &value));
  EXPECT_FALSE(ParseDoubleFlag("1e999", 0.0, &value));
}

}  // namespace
}  // namespace htd::util
