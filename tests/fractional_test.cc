// Fractional module: simplex LP solver, fractional edge covers (closed
// forms), greedy integral covers, fractional widths of decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/det_k_decomp.h"
#include "fractional/cover.h"
#include "fractional/simplex.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd::fractional {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, SolvesTrivialSingleConstraint) {
  // min x0 + x1  s.t.  x0 + x1 >= 1: optimum 1.
  LpProblem problem;
  problem.objective = {1.0, 1.0};
  problem.rows = {{1.0, 1.0}};
  problem.rhs = {1.0};
  LpSolution solution = SolveCoveringLp(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective_value, 1.0, kTol);
}

TEST(SimplexTest, PrefersCheaperVariable) {
  // min 3 x0 + x1  s.t.  x0 + x1 >= 2: all weight on x1.
  LpProblem problem;
  problem.objective = {3.0, 1.0};
  problem.rows = {{1.0, 1.0}};
  problem.rhs = {2.0};
  LpSolution solution = SolveCoveringLp(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective_value, 2.0, kTol);
  EXPECT_NEAR(solution.x[0], 0.0, kTol);
  EXPECT_NEAR(solution.x[1], 2.0, kTol);
}

TEST(SimplexTest, HandlesMultipleConstraints) {
  // min x0 + x1 s.t. x0 >= 1, x1 >= 2, x0 + x1 >= 2: optimum 3.
  LpProblem problem;
  problem.objective = {1.0, 1.0};
  problem.rows = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  problem.rhs = {1.0, 2.0, 2.0};
  LpSolution solution = SolveCoveringLp(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective_value, 3.0, kTol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x0 appears in no constraint with positive coefficient for row 2.
  LpProblem problem;
  problem.objective = {1.0};
  problem.rows = {{0.0}};
  problem.rhs = {1.0};
  LpSolution solution = SolveCoveringLp(problem);
  EXPECT_FALSE(solution.feasible);
}

TEST(SimplexTest, EmptyProblemIsZero) {
  LpProblem problem;
  problem.objective = {1.0, 1.0};
  LpSolution solution = SolveCoveringLp(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective_value, 0.0, kTol);
}

TEST(SimplexTest, FractionalOptimumBeatsIntegral) {
  // Odd-cycle structure: three variables, constraints x_i + x_{i+1} >= 1.
  // Integral optimum 2, fractional 1.5.
  LpProblem problem;
  problem.objective = {1.0, 1.0, 1.0};
  problem.rows = {{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}};
  problem.rhs = {1.0, 1.0, 1.0};
  LpSolution solution = SolveCoveringLp(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective_value, 1.5, kTol);
}

// ---------------------------------------------------------------------------

TEST(FractionalCoverTest, CliqueIsHalfN) {
  // ρ*(V(K_n)) = n/2 (uniform weight 1/(n-1)); the integral cover needs ⌈n/2⌉.
  for (int n : {4, 5, 6, 7}) {
    Hypergraph clique = MakeClique(n);
    double weight = FractionalCoverWeight(clique, clique.AllVertices());
    EXPECT_NEAR(weight, n / 2.0, kTol) << "n=" << n;
  }
}

TEST(FractionalCoverTest, OddCycleIsHalfN) {
  for (int n : {5, 7, 9}) {
    Hypergraph cycle = MakeCycle(n);
    double weight = FractionalCoverWeight(cycle, cycle.AllVertices());
    EXPECT_NEAR(weight, n / 2.0, kTol) << "n=" << n;
    // The greedy integral cover cannot do better than ⌈n/2⌉ edges — and on
    // odd cycles it is strictly worse than ρ*.
    std::vector<int> integral = GreedyIntegralCover(cycle, cycle.AllVertices());
    EXPECT_GE(static_cast<double>(integral.size()), weight - kTol) << "n=" << n;
  }
}

TEST(FractionalCoverTest, FanoPlaneIsSevenThirds) {
  // 7 points, 7 lines, every point on 3 lines, every line has 3 points:
  // uniform 1/3 is optimal both primally and dually.
  Hypergraph fano;
  const int lines[7][3] = {{0, 1, 2}, {0, 3, 4}, {0, 5, 6}, {1, 3, 5},
                           {1, 4, 6}, {2, 3, 6}, {2, 4, 5}};
  for (int v = 0; v < 7; ++v) fano.GetOrAddVertex("p" + std::to_string(v));
  for (const auto& line : lines) {
    ASSERT_TRUE(fano.AddEdge({line[0], line[1], line[2]}).ok());
  }
  EXPECT_NEAR(FractionalCoverWeight(fano, fano.AllVertices()), 7.0 / 3.0, kTol);
}

TEST(FractionalCoverTest, StarNeedsEveryLeafEdge) {
  Hypergraph star = MakeStar(5);
  // Each leaf lies in exactly one edge, so every edge has weight 1.
  FractionalCover cover = FractionalEdgeCover(star, star.AllVertices());
  EXPECT_NEAR(cover.weight, 5.0, kTol);
  EXPECT_EQ(cover.edge_weights.size(), 5u);
}

TEST(FractionalCoverTest, EmptySetIsZero) {
  Hypergraph cycle = MakeCycle(5);
  util::DynamicBitset empty(cycle.num_vertices());
  EXPECT_NEAR(FractionalCoverWeight(cycle, empty), 0.0, kTol);
}

TEST(FractionalCoverTest, SubsetCostsNoMore) {
  util::Rng rng(7);
  Hypergraph graph = MakeRandomCsp(rng, 12, 8, 2, 4);
  util::DynamicBitset all = graph.AllVertices();
  util::DynamicBitset half(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); v += 2) half.Set(v);
  EXPECT_LE(FractionalCoverWeight(graph, half),
            FractionalCoverWeight(graph, all) + kTol);
}

TEST(FractionalCoverTest, CoverWeightsAreAFeasibleCover) {
  util::Rng rng(11);
  Hypergraph graph = MakeRandomCsp(rng, 10, 7, 2, 4);
  util::DynamicBitset target = graph.AllVertices();
  FractionalCover cover = FractionalEdgeCover(graph, target);
  ASSERT_GE(cover.weight, 0.0);
  target.ForEach([&](int v) {
    double sum = 0.0;
    for (const auto& [e, w] : cover.edge_weights) {
      if (graph.edge_vertices(e).Test(v)) sum += w;
    }
    EXPECT_GE(sum, 1.0 - kTol) << "vertex " << v << " undercovered";
  });
}

// ---------------------------------------------------------------------------

class FractionalWidthPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FractionalWidthPropertyTest, FractionalWidthAtMostIntegralWidth) {
  // fhw(D) ≤ width(D) for the same tree: λ(u) is an integral cover of χ(u).
  util::Rng rng(GetParam());
  Hypergraph graph = (GetParam() % 2 == 0) ? MakeRandomCsp(rng, 12, 8, 2, 4)
                                           : MakeRandomCq(rng, 9, 4, 0.3);
  DetKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, graph, 6);
  ASSERT_EQ(run.outcome, Outcome::kYes);

  double fractional = FractionalWidth(graph, *run.decomposition);
  EXPECT_LE(fractional, run.width + kTol) << "seed=" << GetParam();
  EXPECT_GE(fractional, 1.0 - kTol) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionalWidthPropertyTest,
                         ::testing::Range(0, 16));

// Differential check of the LP against brute force on tiny universes: ρ* of
// a set S equals the minimum over all fractional combinations — here we just
// verify LP optimality via weak duality with a hand-rolled dual ascent.
class DualityTest : public ::testing::TestWithParam<int> {};

TEST_P(DualityTest, GreedyIntegralNeverBeatsLp) {
  util::Rng rng(GetParam() * 131);
  Hypergraph graph = MakeRandomCsp(rng, 10, 6, 2, 4);
  util::DynamicBitset target = graph.AllVertices();
  double lp = FractionalCoverWeight(graph, target);
  std::vector<int> greedy = GreedyIntegralCover(graph, target);
  EXPECT_GE(static_cast<double>(greedy.size()) + kTol, lp) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htd::fractional
