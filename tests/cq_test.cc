#include "cq/yannakakis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/opt_solver.h"
#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "qa/portfolio.h"
#include "service/canonical.h"
#include "util/rng.h"

namespace htd::cq {
namespace {

TEST(QueryParseTest, Basic) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok()) << query.status().message();
  ASSERT_EQ(query->atoms.size(), 2u);
  EXPECT_EQ(query->atoms[0].relation, "R");
  EXPECT_EQ(query->atoms[0].variables, (std::vector<std::string>{"X", "Y"}));
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("R(X").ok());
  EXPECT_FALSE(ParseQuery("R()").ok());
  EXPECT_FALSE(ParseQuery("(X,Y)").ok());
}

TEST(QueryHypergraphTest, SharedVariables) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Hypergraph graph = QueryHypergraph(*query);
  EXPECT_EQ(graph.num_vertices(), 3);
  EXPECT_EQ(graph.num_edges(), 3);
  EXPECT_TRUE(graph.edge_vertices(0).Intersects(graph.edge_vertices(1)));
}

TEST(QueryHypergraphTest, RepeatedVariableCollapses) {
  auto query = ParseQuery("R(X,X,Y).");
  ASSERT_TRUE(query.ok());
  Hypergraph graph = QueryHypergraph(*query);
  EXPECT_EQ(graph.edge_vertex_list(0).size(), 2u);
}

class YannakakisTest : public ::testing::Test {
 protected:
  // Decomposes the query's hypergraph with log-k-decomp at optimal width.
  Decomposition Decompose(const Query& query) {
    LogKDecomp solver;
    OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(query), 10);
    HTD_CHECK(run.outcome == Outcome::kYes);
    return std::move(*run.decomposition);
  }
};

TEST_F(YannakakisTest, SimpleSatisfiableJoin) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 4}}});
  db.AddRelation({"S", 2, {{2, 5}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->satisfiable);
  EXPECT_EQ(result->witness.at("X"), 1);
  EXPECT_EQ(result->witness.at("Y"), 2);
  EXPECT_EQ(result->witness.at("Z"), 5);
}

TEST_F(YannakakisTest, UnsatisfiableJoin) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{3, 4}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST_F(YannakakisTest, CyclicQueryTriangle) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {2, 3}}});
  db.AddRelation({"S", 2, {{2, 3}, {3, 1}}});
  db.AddRelation({"T", 2, {{3, 1}, {1, 2}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
  // Verify the witness satisfies every atom.
  int64_t x = result->witness.at("X");
  int64_t y = result->witness.at("Y");
  int64_t z = result->witness.at("Z");
  EXPECT_TRUE((x == 1 && y == 2 && z == 3));
}

TEST_F(YannakakisTest, RepeatedVariableAtom) {
  auto query = ParseQuery("R(X,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 3}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
  EXPECT_EQ(result->witness.at("X"), 3);
}

TEST_F(YannakakisTest, MissingRelationReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  EXPECT_FALSE(result.ok());
}

TEST_F(YannakakisTest, ArityMismatchReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 3, {{1, 2, 3}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  EXPECT_FALSE(result.ok());
}

// Differential testing: HD-guided evaluation must agree with brute force on
// random queries and databases, and its witnesses must satisfy every atom.
class YannakakisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(YannakakisPropertyTest, AgreesWithBruteForce) {
  util::Rng rng(GetParam());
  // Random chain query with some cross joins; small domain so both outcomes
  // occur across seeds.
  auto query = ParseQuery([&] {
    std::string text;
    int atoms = rng.UniformInt(3, 6);
    for (int i = 0; i < atoms; ++i) {
      if (i > 0) text += ", ";
      text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
              std::to_string(i + 1) + ")";
    }
    text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 3)) + ").";
    return text;
  }());
  ASSERT_TRUE(query.ok());
  Database db = RandomDatabase(rng, *query, /*domain_size=*/4,
                               /*tuples_per_relation=*/6,
                               /*satisfiable_bias=*/0.6);

  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(*query), 10);
  ASSERT_EQ(run.outcome, Outcome::kYes);

  auto fast = EvaluateWithDecomposition(*query, db, *run.decomposition);
  auto slow = EvaluateBruteForce(*query, db);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->satisfiable, slow->satisfiable) << "seed " << GetParam();

  if (fast->satisfiable) {
    // The witness must satisfy every atom.
    for (const Atom& atom : query->atoms) {
      const Relation* rel = db.Find(atom.relation);
      ASSERT_NE(rel, nullptr);
      Tuple expected;
      for (const auto& variable : atom.variables) {
        expected.push_back(fast->witness.at(variable));
      }
      bool found = false;
      for (const Tuple& t : rel->tuples) {
        if (t == expected) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "witness violates atom " << atom.relation << " (seed "
                         << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisPropertyTest, ::testing::Range(0, 25));

// Portfolio cross-check: every decomposition the portfolio retains for a
// query — the first-found one AND the higher-k diversity probes — must
// agree with the brute-force oracles on satisfiability, witness validity,
// and the exact count. A portfolio that stored a tree unsound for execution
// would otherwise surface as a wrong answer only when PickBest happens to
// choose it.
class PortfolioPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioPropertyTest, EveryRetainedCandidateAgreesWithBruteForce) {
  util::Rng rng(GetParam() + 5000);
  auto query = ParseQuery([&] {
    std::string text;
    int atoms = rng.UniformInt(3, 6);
    for (int i = 0; i < atoms; ++i) {
      if (i > 0) text += ", ";
      text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
              std::to_string(i + 1) + ")";
    }
    text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 3)) + ").";
    return text;
  }());
  ASSERT_TRUE(query.ok());
  Database db = RandomDatabase(rng, *query, /*domain_size=*/4,
                               /*tuples_per_relation=*/6,
                               /*satisfiable_bias=*/0.6);
  Hypergraph graph = QueryHypergraph(*query);
  const service::Fingerprint fp = service::CanonicalFingerprint(graph);

  // Populate like the query engine does: first kYes, then diversity probes.
  LogKDecomp solver;
  qa::DecompositionPortfolio portfolio;
  OptimalRun run = FindOptimalWidth(solver, graph, 10);
  ASSERT_EQ(run.outcome, Outcome::kYes);
  portfolio.Insert(fp, graph, *run.decomposition);
  for (int k = run.width + 1; k <= std::min(run.width + 2, graph.num_edges());
       ++k) {
    SolveResult probe = solver.Solve(graph, k);
    ASSERT_EQ(probe.outcome, Outcome::kYes);
    portfolio.Insert(fp, graph, *probe.decomposition);
  }

  auto oracle_sat = EvaluateBruteForce(*query, db);
  auto oracle_count = CountSolutionsBruteForce(*query, db);
  ASSERT_TRUE(oracle_sat.ok());
  ASSERT_TRUE(oracle_count.ok());

  std::vector<Decomposition> candidates = portfolio.Candidates(fp, graph);
  ASSERT_GE(candidates.size(), 1u);
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto fast = EvaluateWithDecomposition(*query, db, candidates[c]);
    ASSERT_TRUE(fast.ok()) << fast.status().message();
    EXPECT_EQ(fast->satisfiable, oracle_sat->satisfiable)
        << "candidate " << c << ", seed " << GetParam();
    if (fast->satisfiable) {
      for (const Atom& atom : query->atoms) {
        const Relation* rel = db.Find(atom.relation);
        ASSERT_NE(rel, nullptr);
        Tuple expected;
        for (const auto& variable : atom.variables) {
          expected.push_back(fast->witness.at(variable));
        }
        EXPECT_NE(std::find(rel->tuples.begin(), rel->tuples.end(), expected),
                  rel->tuples.end())
            << "candidate " << c << " witness violates " << atom.relation
            << " (seed " << GetParam() << ")";
      }
    }
    auto count = CountSolutions(*query, db, candidates[c]);
    ASSERT_TRUE(count.ok()) << count.status().message();
    EXPECT_FALSE(count->saturated);
    EXPECT_EQ(count->value, *oracle_count)
        << "candidate " << c << ", seed " << GetParam();
  }

  // PickBest must return one of the retained candidates, and on a database
  // with one huge relation the baseline should never cost LESS than the
  // portfolio's choice (PickBest minimises the estimate).
  std::vector<uint64_t> cardinalities;
  for (const Atom& atom : query->atoms) {
    cardinalities.push_back(db.Find(atom.relation)->tuples.size());
  }
  auto best = portfolio.PickBest(fp, graph, cardinalities);
  auto first = portfolio.PickFirst(fp, graph, cardinalities);
  ASSERT_TRUE(best.has_value());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(best->num_candidates, static_cast<int>(candidates.size()));
  EXPECT_LE(best->estimated_cost, first->estimated_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace htd::cq
