#include "cq/yannakakis.h"

#include <gtest/gtest.h>

#include "baselines/opt_solver.h"
#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "util/rng.h"

namespace htd::cq {
namespace {

TEST(QueryParseTest, Basic) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok()) << query.status().message();
  ASSERT_EQ(query->atoms.size(), 2u);
  EXPECT_EQ(query->atoms[0].relation, "R");
  EXPECT_EQ(query->atoms[0].variables, (std::vector<std::string>{"X", "Y"}));
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("R(X").ok());
  EXPECT_FALSE(ParseQuery("R()").ok());
  EXPECT_FALSE(ParseQuery("(X,Y)").ok());
}

TEST(QueryHypergraphTest, SharedVariables) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Hypergraph graph = QueryHypergraph(*query);
  EXPECT_EQ(graph.num_vertices(), 3);
  EXPECT_EQ(graph.num_edges(), 3);
  EXPECT_TRUE(graph.edge_vertices(0).Intersects(graph.edge_vertices(1)));
}

TEST(QueryHypergraphTest, RepeatedVariableCollapses) {
  auto query = ParseQuery("R(X,X,Y).");
  ASSERT_TRUE(query.ok());
  Hypergraph graph = QueryHypergraph(*query);
  EXPECT_EQ(graph.edge_vertex_list(0).size(), 2u);
}

class YannakakisTest : public ::testing::Test {
 protected:
  // Decomposes the query's hypergraph with log-k-decomp at optimal width.
  Decomposition Decompose(const Query& query) {
    LogKDecomp solver;
    OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(query), 10);
    HTD_CHECK(run.outcome == Outcome::kYes);
    return std::move(*run.decomposition);
  }
};

TEST_F(YannakakisTest, SimpleSatisfiableJoin) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 4}}});
  db.AddRelation({"S", 2, {{2, 5}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->satisfiable);
  EXPECT_EQ(result->witness.at("X"), 1);
  EXPECT_EQ(result->witness.at("Y"), 2);
  EXPECT_EQ(result->witness.at("Z"), 5);
}

TEST_F(YannakakisTest, UnsatisfiableJoin) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{3, 4}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST_F(YannakakisTest, CyclicQueryTriangle) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {2, 3}}});
  db.AddRelation({"S", 2, {{2, 3}, {3, 1}}});
  db.AddRelation({"T", 2, {{3, 1}, {1, 2}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
  // Verify the witness satisfies every atom.
  int64_t x = result->witness.at("X");
  int64_t y = result->witness.at("Y");
  int64_t z = result->witness.at("Z");
  EXPECT_TRUE((x == 1 && y == 2 && z == 3));
}

TEST_F(YannakakisTest, RepeatedVariableAtom) {
  auto query = ParseQuery("R(X,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 3}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
  EXPECT_EQ(result->witness.at("X"), 3);
}

TEST_F(YannakakisTest, MissingRelationReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  EXPECT_FALSE(result.ok());
}

TEST_F(YannakakisTest, ArityMismatchReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 3, {{1, 2, 3}}});
  auto result = EvaluateWithDecomposition(*query, db, Decompose(*query));
  EXPECT_FALSE(result.ok());
}

// Differential testing: HD-guided evaluation must agree with brute force on
// random queries and databases, and its witnesses must satisfy every atom.
class YannakakisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(YannakakisPropertyTest, AgreesWithBruteForce) {
  util::Rng rng(GetParam());
  // Random chain query with some cross joins; small domain so both outcomes
  // occur across seeds.
  auto query = ParseQuery([&] {
    std::string text;
    int atoms = rng.UniformInt(3, 6);
    for (int i = 0; i < atoms; ++i) {
      if (i > 0) text += ", ";
      text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
              std::to_string(i + 1) + ")";
    }
    text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 3)) + ").";
    return text;
  }());
  ASSERT_TRUE(query.ok());
  Database db = RandomDatabase(rng, *query, /*domain_size=*/4,
                               /*tuples_per_relation=*/6,
                               /*satisfiable_bias=*/0.6);

  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(*query), 10);
  ASSERT_EQ(run.outcome, Outcome::kYes);

  auto fast = EvaluateWithDecomposition(*query, db, *run.decomposition);
  auto slow = EvaluateBruteForce(*query, db);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->satisfiable, slow->satisfiable) << "seed " << GetParam();

  if (fast->satisfiable) {
    // The witness must satisfy every atom.
    for (const Atom& atom : query->atoms) {
      const Relation* rel = db.Find(atom.relation);
      ASSERT_NE(rel, nullptr);
      Tuple expected;
      for (const auto& variable : atom.variables) {
        expected.push_back(fast->witness.at(variable));
      }
      bool found = false;
      for (const Tuple& t : rel->tuples) {
        if (t == expected) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "witness violates atom " << atom.relation << " (seed "
                         << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace htd::cq
