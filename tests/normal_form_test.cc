// Normal-form machinery (decomp/normal_form.*): Theorem 3.6 transformation
// and Lemma 3.10 balanced-separator extraction.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "decomp/normal_form.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

/// The maximal-χ HD of the cycle C_n in the style of the paper's Figure 2a:
/// a path of nodes u_i with λ(u_i) = {R_1, R_{i+2}} and χ(u_i) the full
/// ⋃λ(u_i). Valid HD of width 2 but NOT in the paper's minimal-χ normal form
/// (bags repeat x0 down the path beyond need).
Decomposition Figure2StyleHd(const Hypergraph& cycle) {
  const int n = cycle.num_edges();
  Decomposition decomp;
  int parent = -1;
  for (int i = 0; i + 2 <= n; ++i) {
    std::vector<int> lambda = {0, i + 1};  // {R1, R_{i+2}}
    util::DynamicBitset chi = cycle.UnionOfEdges(lambda);
    parent = decomp.AddNode(std::move(lambda), std::move(chi), parent);
  }
  return decomp;
}

TEST(NormalizeHdTest, Figure2HdIsValidInput) {
  Hypergraph cycle = MakeCycle(10);
  Decomposition decomp = Figure2StyleHd(cycle);
  Validation validation = ValidateHd(cycle, decomp);
  ASSERT_TRUE(validation.ok) << validation.error;
  EXPECT_EQ(decomp.Width(), 2);
}

TEST(NormalizeHdTest, NormalizesFigure2Hd) {
  Hypergraph cycle = MakeCycle(10);
  Decomposition decomp = Figure2StyleHd(cycle);

  auto normalized = NormalizeHd(cycle, decomp);
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString();

  Validation valid = ValidateHd(cycle, *normalized);
  EXPECT_TRUE(valid.ok) << valid.error;
  Validation nf = CheckNormalForm(cycle, *normalized);
  EXPECT_TRUE(nf.ok) << nf.error;
  EXPECT_LE(normalized->Width(), decomp.Width());
}

TEST(NormalizeHdTest, RejectsInvalidInput) {
  Hypergraph cycle = MakeCycle(6);
  Decomposition bogus;
  // Single node covering only one edge: misses the covering condition.
  bogus.AddNode({0}, cycle.edge_vertices(0), -1);
  auto result = NormalizeHd(cycle, bogus);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(NormalizeHdTest, IdempotentOnNormalFormInput) {
  Hypergraph graph = MakeHyperCycle(6, 3, 1);
  LogKDecomp solver;
  SolveResult result = solver.Solve(graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);

  auto once = NormalizeHd(graph, *result.decomposition);
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  auto twice = NormalizeHd(graph, *once);
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  Validation nf = CheckNormalForm(graph, *twice);
  EXPECT_TRUE(nf.ok) << nf.error;
  EXPECT_EQ(once->Width(), twice->Width());
}

TEST(BalancedSeparatorTest, PathHdSeparatorIsCentral) {
  // The Figure-2-style HD of C_10 is a path of 8 nodes; the balanced
  // separator cannot be near either end.
  Hypergraph cycle = MakeCycle(10);
  Decomposition decomp = Figure2StyleHd(cycle);
  int u = FindBalancedSeparatorNode(cycle, decomp);

  std::vector<util::DynamicBitset> cov = FirstCoverPerSubtree(cycle, decomp);
  const int total = cycle.num_edges();
  for (int c : decomp.node(u).children) {
    EXPECT_LE(2 * cov[c].Count(), total);
  }
  // Above part = total - cov(T_u) is strictly less than half.
  EXPECT_LT(2 * (total - cov[u].Count()), total);
}

TEST(BalancedSeparatorTest, RootIsSeparatorWhenBalanced) {
  // A star's HD can be a root with all leaves as children: root is balanced.
  Hypergraph star = MakeStar(6);
  DetKDecomp solver;
  SolveResult result = solver.Solve(star, 1);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  int u = FindBalancedSeparatorNode(star, *result.decomposition);
  std::vector<util::DynamicBitset> cov =
      FirstCoverPerSubtree(star, *result.decomposition);
  for (int c : result.decomposition->node(u).children) {
    EXPECT_LE(2 * cov[c].Count(), star.num_edges());
  }
}

TEST(FirstCoverTest, RootSubtreeCoversEverything) {
  Hypergraph graph = MakeGrid(3, 3);
  DetKDecomp solver;
  SolveResult result = solver.Solve(graph, 3);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  std::vector<util::DynamicBitset> cov =
      FirstCoverPerSubtree(graph, *result.decomposition);
  EXPECT_EQ(cov[result.decomposition->root()].Count(), graph.num_edges());
}

// ---------------------------------------------------------------------------
// Property sweep: every solver-produced HD normalizes to a valid NF HD of no
// larger width, and always contains a balanced separator node.

Hypergraph RandomNfInstance(uint64_t seed) {
  util::Rng rng(seed);
  switch (seed % 4) {
    case 0:
      return MakeRandomCsp(rng, 12, 8, 2, 4);
    case 1:
      return MakeRandomCq(rng, 9, 4, 0.3);
    case 2:
      return MakeCycleBundle(2 + seed % 3, 4);
    default:
      return AddRandomChords(MakeGrid(2, 4), rng, 2);
  }
}

class NormalFormPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormPropertyTest, SolverHdsNormalizeAndSeparate) {
  const uint64_t seed = GetParam();
  Hypergraph graph = RandomNfInstance(seed);

  DetKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, graph, /*max_k=*/6);
  ASSERT_EQ(run.outcome, Outcome::kYes) << "seed=" << seed;
  ASSERT_TRUE(run.decomposition.has_value());

  auto normalized = NormalizeHd(graph, *run.decomposition);
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString() << " seed=" << seed;
  Validation valid = ValidateHd(graph, *normalized);
  EXPECT_TRUE(valid.ok) << valid.error << " seed=" << seed;
  Validation nf = CheckNormalForm(graph, *normalized);
  EXPECT_TRUE(nf.ok) << nf.error << " seed=" << seed;
  EXPECT_LE(normalized->Width(), run.decomposition->Width()) << "seed=" << seed;

  // Lemma 3.10 on the normalized HD: the walk terminates and both balance
  // conditions hold at the returned node.
  int u = FindBalancedSeparatorNode(graph, *normalized);
  std::vector<util::DynamicBitset> cov = FirstCoverPerSubtree(graph, *normalized);
  const int total = graph.num_edges();
  for (int c : normalized->node(u).children) {
    EXPECT_LE(2 * cov[c].Count(), total) << "seed=" << seed;
  }
  EXPECT_LT(2 * (total - cov[u].Count()), total) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace htd
