// Cross-configuration integration matrix: every way of composing the
// solvers (plain / cached / preprocessed / hybrid / parallel-simulated)
// must agree on hw ≤ k, and every constructed HD must validate. This is the
// suite that catches interactions the per-feature tests cannot (e.g. a
// cache entry poisoning a preprocessed component solve).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/det_k_decomp.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "prep/prep_solver.h"
#include "util/rng.h"

namespace htd {
namespace {

struct Config {
  std::string name;
  std::unique_ptr<HdSolver> solver;
};

std::vector<Config> AllConfigurations() {
  std::vector<Config> configs;
  configs.push_back({"log-k", std::make_unique<LogKDecomp>()});

  SolveOptions cached;
  cached.enable_cache = true;
  configs.push_back({"log-k cached", std::make_unique<LogKDecomp>(cached)});

  SolveOptions parallel;
  parallel.num_threads = 3;
  parallel.parallel_min_size = 4;
  configs.push_back({"log-k 3 threads", std::make_unique<LogKDecomp>(parallel)});

  SolveOptions simulated;
  simulated.num_threads = 4;
  simulated.simulate_partition = true;
  simulated.parallel_min_size = 4;
  configs.push_back({"log-k simulated", std::make_unique<LogKDecomp>(simulated)});

  configs.push_back({"hybrid",
                     MakeHybridSolver(HybridMetric::kWeightedCount, 25.0)});
  configs.push_back({"det-k", std::make_unique<DetKDecomp>()});
  configs.push_back(
      {"det-k + prep", MakePreprocessingSolver(std::make_unique<DetKDecomp>())});

  SolveOptions cached_for_prep;
  cached_for_prep.enable_cache = true;
  configs.push_back(
      {"log-k cached + prep",
       MakePreprocessingSolver(std::make_unique<LogKDecomp>(cached_for_prep))});
  return configs;
}

Hypergraph MatrixInstance(uint64_t seed) {
  util::Rng rng(seed);
  switch (seed % 5) {
    case 0:
      return MakeRandomCsp(rng, 12, 8, 2, 4);
    case 1:
      return MakeRandomCq(rng, 9, 4, 0.35);
    case 2:
      return AddRedundancy(MakeCycle(7), rng, 3, 2);
    case 3:
      return MakeCycleBundle(2, 5);
    default:
      return AddRandomChords(MakeGrid(2, 4), rng, 2);
  }
}

class SolverMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverMatrixTest, AllConfigurationsAgree) {
  const uint64_t seed = GetParam();
  Hypergraph graph = MatrixInstance(seed);
  std::vector<Config> configs = AllConfigurations();

  for (int k = 1; k <= 3; ++k) {
    Outcome reference = configs[0].solver->Solve(graph, k).outcome;
    for (size_t i = 1; i < configs.size(); ++i) {
      SolveResult result = configs[i].solver->Solve(graph, k);
      EXPECT_EQ(result.outcome, reference)
          << configs[i].name << " vs " << configs[0].name << " seed=" << seed
          << " k=" << k;
      if (result.outcome == Outcome::kYes && result.decomposition.has_value()) {
        Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
        EXPECT_TRUE(validation.ok)
            << configs[i].name << ": " << validation.error << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverMatrixTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace htd
