// Cross-instance subproblem memoization (service/subproblem_store.h):
// canonical subproblem fingerprints (connector vertices as distinguished
// colours), allowed-trace dominance, positive-fragment rehydration across
// isomorphic instances, concurrent insert/query, eviction, and the solver /
// service wiring.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "service/service.h"
#include "service/subproblem_store.h"
#include "util/rng.h"

namespace htd {
namespace {

using service::SubproblemStore;

/// Isomorphic copy: random vertex renaming + random edge order.
Hypergraph RenameAndShuffle(const Hypergraph& graph, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> vertex_perm(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) vertex_perm[v] = v;
  rng.Shuffle(vertex_perm);
  std::vector<int> edge_order(graph.num_edges());
  for (int e = 0; e < graph.num_edges(); ++e) edge_order[e] = e;
  rng.Shuffle(edge_order);

  Hypergraph renamed;
  std::vector<int> new_id(graph.num_vertices(), -1);
  for (int e : edge_order) {
    std::vector<int> members;
    for (int v : graph.edge_vertex_list(e)) {
      if (new_id[v] < 0) {
        new_id[v] = renamed.GetOrAddVertex("r" + std::to_string(vertex_perm[v]));
      }
      members.push_back(new_id[v]);
    }
    EXPECT_TRUE(renamed.AddEdge(members).ok());
  }
  EXPECT_EQ(renamed.num_vertices(), graph.num_vertices());
  EXPECT_EQ(renamed.num_edges(), graph.num_edges());
  return renamed;
}

SubproblemStore::Key FullGraphKey(const Hypergraph& graph,
                                  const SpecialEdgeRegistry& registry,
                                  const util::DynamicBitset& conn, int k) {
  return SubproblemStore::MakeKey(graph, registry,
                                  ExtendedSubhypergraph::FullGraph(graph), conn,
                                  graph.AllEdges(), k);
}

TEST(FingerprintSubhypergraphTest, InvariantUnderRenaming) {
  Hypergraph graph = MakeGrid(3, 3);
  SpecialEdgeRegistry registry(graph.num_vertices());
  util::DynamicBitset empty_conn(graph.num_vertices());
  auto key = FullGraphKey(graph, registry, empty_conn, 2);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Hypergraph renamed = RenameAndShuffle(graph, seed);
    SpecialEdgeRegistry renamed_registry(renamed.num_vertices());
    util::DynamicBitset renamed_conn(renamed.num_vertices());
    auto renamed_key = FullGraphKey(renamed, renamed_registry, renamed_conn, 2);
    EXPECT_EQ(key.fingerprint.ToHex(), renamed_key.fingerprint.ToHex())
        << "seed=" << seed;
    // The allowed-edge traces are canonical too, so they must coincide.
    EXPECT_EQ(key.allowed_traces, renamed_key.allowed_traces) << "seed=" << seed;
  }
}

TEST(FingerprintSubhypergraphTest, ConnectorColoursDistinguish) {
  // Path a - b - c - d: the two endpoints are automorphic, the interior
  // vertices are not endpoints.
  Hypergraph path = MakePath(4);
  SpecialEdgeRegistry registry(path.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(path);

  util::DynamicBitset no_conn(path.num_vertices());
  util::DynamicBitset end_a = util::DynamicBitset::FromIndices(path.num_vertices(), {0});
  util::DynamicBitset end_b =
      util::DynamicBitset::FromIndices(path.num_vertices(), {3});
  util::DynamicBitset middle =
      util::DynamicBitset::FromIndices(path.num_vertices(), {1});

  auto fp = [&](const util::DynamicBitset& conn) {
    return service::FingerprintSubhypergraph(path, registry, full, conn)
        .fingerprint.ToHex();
  };
  EXPECT_NE(fp(no_conn), fp(end_a)) << "connector must colour the structure";
  EXPECT_EQ(fp(end_a), fp(end_b)) << "automorphic connectors must coincide";
  EXPECT_NE(fp(end_a), fp(middle));
}

TEST(FingerprintSubhypergraphTest, SpecialEdgesAreDistinguished) {
  // One triangle; the same vertex set once as a normal edge and once as a
  // special edge must fingerprint differently.
  Hypergraph graph;
  int a = graph.AddVertex(), b = graph.AddVertex(), c = graph.AddVertex();
  ASSERT_TRUE(graph.AddEdge({a, b}).ok());
  ASSERT_TRUE(graph.AddEdge({b, c}).ok());
  ASSERT_TRUE(graph.AddEdge({a, c}).ok());

  SpecialEdgeRegistry registry(graph.num_vertices());
  int special = registry.Add(
      util::DynamicBitset::FromIndices(graph.num_vertices(), {a, c}), {2});

  ExtendedSubhypergraph with_edge;
  with_edge.edges = util::DynamicBitset::FromIndices(graph.num_edges(), {0, 1, 2});
  with_edge.edge_count = 3;

  ExtendedSubhypergraph with_special;
  with_special.edges = util::DynamicBitset::FromIndices(graph.num_edges(), {0, 1});
  with_special.edge_count = 2;
  with_special.specials = {special};

  util::DynamicBitset no_conn(graph.num_vertices());
  auto fp_edge =
      service::FingerprintSubhypergraph(graph, registry, with_edge, no_conn);
  auto fp_special =
      service::FingerprintSubhypergraph(graph, registry, with_special, no_conn);
  EXPECT_NE(fp_edge.fingerprint.ToHex(), fp_special.fingerprint.ToHex());
  EXPECT_EQ(fp_special.special_order.size(), 1u);
  EXPECT_EQ(fp_special.special_order[0], special);
}

TEST(SubproblemStoreTest, NegativeDominanceOverAllowedTraces) {
  Hypergraph graph = MakeCycle(6);
  SpecialEdgeRegistry registry(graph.num_vertices());
  util::DynamicBitset conn(graph.num_vertices());

  util::DynamicBitset narrow(graph.num_edges());
  for (int e = 0; e < 4; ++e) narrow.Set(e);

  SubproblemStore store;
  auto narrow_key = SubproblemStore::MakeKey(
      graph, registry, ExtendedSubhypergraph::FullGraph(graph), conn, narrow, 2);
  auto full_key = FullGraphKey(graph, registry, conn, 2);

  store.InsertNegative(narrow_key);
  // The recorded failure used a narrower allowed set: it dominates itself...
  EXPECT_EQ(store.Lookup(narrow_key, graph, nullptr), SubproblemStore::Hit::kNegative);
  // ...but not the full-allowed query (more labels might succeed).
  EXPECT_EQ(store.Lookup(full_key, graph, nullptr), SubproblemStore::Hit::kMiss);

  store.InsertNegative(full_key);
  EXPECT_EQ(store.Lookup(full_key, graph, nullptr), SubproblemStore::Hit::kNegative);
  // Full-allowed failure dominates the narrower query too.
  EXPECT_EQ(store.Lookup(narrow_key, graph, nullptr),
            SubproblemStore::Hit::kNegative);

  // A different width parameter is a different subproblem.
  auto other_k = FullGraphKey(graph, registry, conn, 3);
  EXPECT_EQ(store.Lookup(other_k, graph, nullptr), SubproblemStore::Hit::kMiss);
}

TEST(SubproblemStoreTest, PositiveFragmentRehydratesAcrossInstances) {
  Hypergraph graph = MakeCycle(6);  // hw = 2
  SubproblemStore store;
  SolveOptions options;
  options.subproblem_store = &store;
  options.validate_result = true;

  LogKDecomp producer(options);
  SolveResult first = producer.Solve(graph, 2);
  ASSERT_EQ(first.outcome, Outcome::kYes);
  ASSERT_GT(store.GetStats().positive_inserts, 0u);

  Hypergraph renamed = RenameAndShuffle(graph, 99);
  LogKDecomp consumer(options);
  SolveResult second = consumer.Solve(renamed, 2);
  ASSERT_EQ(second.outcome, Outcome::kYes);
  EXPECT_GT(second.stats.store_positive_hits, 0)
      << "isomorphic instance must reuse recorded fragments";
  ASSERT_TRUE(second.decomposition.has_value());
  Validation validation = ValidateHdWithWidth(renamed, *second.decomposition, 2);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(SubproblemStoreTest, NegativeOutcomesShortCircuitAcrossInstances) {
  Hypergraph clique = MakeClique(5);  // hw(K5) = 3: k = 2 is a deep refutation
  SubproblemStore store;
  SolveOptions options;
  options.subproblem_store = &store;

  LogKDecomp first_solver(options);
  SolveResult first = first_solver.Solve(clique, 2);
  ASSERT_EQ(first.outcome, Outcome::kNo);
  ASSERT_GT(store.GetStats().negative_inserts, 0u);

  Hypergraph renamed = RenameAndShuffle(clique, 7);
  LogKDecomp second_solver(options);
  SolveResult second = second_solver.Solve(renamed, 2);
  EXPECT_EQ(second.outcome, Outcome::kNo);
  EXPECT_GT(second.stats.store_negative_hits, 0);
  // The renamed root subproblem is the recorded one: refuted without search.
  EXPECT_LT(second.stats.separators_tried, first.stats.separators_tried);
}

TEST(SubproblemStoreTest, DetKSharesEntriesWithLogK) {
  Hypergraph clique = MakeClique(5);
  SubproblemStore store;
  SolveOptions options;
  options.subproblem_store = &store;

  LogKDecomp logk(options);
  ASSERT_EQ(logk.Solve(clique, 2).outcome, Outcome::kNo);

  DetKDecomp detk(options);
  SolveResult refuted = detk.Solve(RenameAndShuffle(clique, 3), 2);
  EXPECT_EQ(refuted.outcome, Outcome::kNo);
  EXPECT_GT(refuted.stats.store_negative_hits, 0)
      << "det-k must reuse log-k's recorded failures";

  ASSERT_EQ(logk.Solve(MakeCycle(6), 2).outcome, Outcome::kYes);
  SolveOptions validate = options;
  validate.validate_result = true;
  DetKDecomp validating(validate);
  SolveResult found = validating.Solve(RenameAndShuffle(MakeCycle(6), 4), 2);
  EXPECT_EQ(found.outcome, Outcome::kYes);
  EXPECT_GT(found.stats.store_positive_hits, 0);
}

TEST(SubproblemStoreTest, BasicVariantConsumesButNeverInserts) {
  Hypergraph clique = MakeClique(5);
  SubproblemStore store;
  SolveOptions options;
  options.subproblem_store = &store;

  // A basic-only run may probe but must record nothing.
  LogKDecompBasic lone(options);
  ASSERT_EQ(lone.Solve(clique, 2).outcome, Outcome::kNo);
  EXPECT_EQ(store.GetStats().negative_inserts, 0u);
  EXPECT_EQ(store.GetStats().positive_inserts, 0u);

  // After log-k populates the store, basic reuses the entries.
  LogKDecomp producer(options);
  ASSERT_EQ(producer.Solve(clique, 2).outcome, Outcome::kNo);
  LogKDecompBasic consumer(options);
  SolveResult result = consumer.Solve(RenameAndShuffle(clique, 11), 2);
  EXPECT_EQ(result.outcome, Outcome::kNo);
  EXPECT_GT(result.stats.store_negative_hits, 0);
}

// The store must never change answers: solvers sharing one store across
// many instances and widths agree with a store-free reference, and every
// positive decomposition validates.
class SharedStoreAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedStoreAgreementTest, AgreesWithReferenceEverywhere) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  Hypergraph graph;
  switch (seed % 4) {
    case 0: graph = MakeRandomCsp(rng, 12, 8, 2, 4); break;
    case 1: graph = MakeClique(5); break;
    case 2: graph = MakeGrid(3, 3); break;
    default: graph = MakeRandomCq(rng, 9, 4, 0.4); break;
  }

  // One store shared across the instance AND its renaming AND all widths —
  // maximal cross-pollution.
  SubproblemStore::Options store_options;
  store_options.min_subproblem_size = 2;  // exercise small subproblems too
  SubproblemStore store(store_options);
  SolveOptions stored_options;
  stored_options.subproblem_store = &store;
  stored_options.validate_result = true;

  for (const Hypergraph& instance : {graph, RenameAndShuffle(graph, seed + 100)}) {
    for (int k = 1; k <= 3; ++k) {
      LogKDecomp reference;
      LogKDecomp stored(stored_options);
      SolveResult expected = reference.Solve(instance, k);
      SolveResult actual = stored.Solve(instance, k);
      ASSERT_EQ(expected.outcome, actual.outcome) << "seed=" << seed << " k=" << k;
      if (actual.outcome == Outcome::kYes) {
        Validation validation = ValidateHdWithWidth(instance, *actual.decomposition, k);
        ASSERT_TRUE(validation.ok)
            << validation.error << " seed=" << seed << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedStoreAgreementTest, ::testing::Range(0, 12));

TEST(SubproblemStoreTest, ConcurrentInsertAndQueryKeepDominance) {
  // Nested allowed sets over one subproblem: whatever interleaving the
  // threads produce, the surviving antichain entry dominates every inserted
  // set, so a lookup right after one's own insert must hit.
  Hypergraph graph = MakeCycle(8);
  SpecialEdgeRegistry registry(graph.num_vertices());
  util::DynamicBitset conn(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);

  SubproblemStore store;
  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        int prefix = 2 + (round + t) % (graph.num_edges() - 1);
        util::DynamicBitset allowed(graph.num_edges());
        for (int e = 0; e < prefix; ++e) allowed.Set(e);
        auto key = SubproblemStore::MakeKey(graph, registry, full, conn, allowed,
                                            /*k=*/2);
        store.InsertNegative(key);
        EXPECT_EQ(store.Lookup(key, graph, nullptr),
                  SubproblemStore::Hit::kNegative)
            << "thread " << t << " round " << round;

        // Distinct per-thread keys churn other shards concurrently.
        auto churn = SubproblemStore::MakeKey(graph, registry, full, conn, allowed,
                                              /*k=*/10 + t);
        store.InsertNegative(churn);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(store.num_entries(), 0u);

  // The nested inserts collapse into one ⊆-maximal recorded set.
  util::DynamicBitset widest(graph.num_edges());
  for (int e = 0; e < graph.num_edges() - 1; ++e) widest.Set(e);
  auto widest_key =
      SubproblemStore::MakeKey(graph, registry, full, conn, widest, /*k=*/2);
  EXPECT_EQ(store.Lookup(widest_key, graph, nullptr),
            SubproblemStore::Hit::kNegative);
}

TEST(SubproblemStoreTest, ConcurrentPositiveInsertAndDecode) {
  Hypergraph graph = MakeCycle(6);
  SubproblemStore store;
  SolveOptions options;
  options.subproblem_store = &store;
  options.validate_result = true;

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        LogKDecomp solver(options);
        Hypergraph instance = RenameAndShuffle(graph, t * 17 + round);
        SolveResult result = solver.Solve(instance, 2);
        EXPECT_EQ(result.outcome, Outcome::kYes);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SubproblemStore::Stats stats = store.GetStats();
  EXPECT_GT(stats.positive_inserts, 0u);
}

TEST(SubproblemStoreTest, EvictsUnderByteBudget) {
  Hypergraph graph = MakeCycle(24);
  SpecialEdgeRegistry registry(graph.num_vertices());
  util::DynamicBitset conn(graph.num_vertices());

  SubproblemStore::Options options;
  options.byte_budget = 2000;
  options.num_shards = 1;
  SubproblemStore store(options);

  // Paths of distinct lengths: non-isomorphic, so every insert is a fresh key.
  const int kWindows = 16;
  for (int length = 2; length < 2 + kWindows; ++length) {
    ExtendedSubhypergraph window;
    window.edges = util::DynamicBitset(graph.num_edges());
    for (int i = 0; i < length; ++i) window.edges.Set(i);
    window.edge_count = length;
    auto key = SubproblemStore::MakeKey(graph, registry, window, conn,
                                        graph.AllEdges(), 2);
    store.InsertNegative(key);
  }
  SubproblemStore::Stats stats = store.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, static_cast<size_t>(kWindows));
  EXPECT_LE(stats.bytes, options.byte_budget);
}

TEST(SubproblemStoreTest, ServiceSharesOneStoreAcrossJobs) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.enable_subproblem_store = true;
  options.solve.validate_result = true;
  // The whole-instance result cache would serve isomorphic resubmissions
  // outright (renamings share the canonical fingerprint); disable it so the
  // jobs reach the solvers and exercise the subproblem store.
  options.enable_result_cache = false;

  auto service_or = service::DecompositionService::Create(options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().message();
  auto& service = *service_or.value();

  // Isomorphic positives and isomorphic negatives, interleaved.
  Hypergraph cycle = MakeCycle(6);
  Hypergraph clique = MakeClique(5);
  std::vector<Hypergraph> graphs;
  std::vector<int> widths;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    graphs.push_back(RenameAndShuffle(cycle, seed));
    widths.push_back(2);
    graphs.push_back(RenameAndShuffle(clique, seed));
    widths.push_back(2);
  }
  for (size_t i = 0; i < graphs.size(); ++i) {
    service::JobResult result = service.Solve(graphs[i], widths[i]);
    if (widths[i] == 2 && graphs[i].num_edges() == 6) {
      EXPECT_EQ(result.result.outcome, Outcome::kYes);
    }
  }
  service.Drain();
  SubproblemStore::Stats stats = service.subproblem_stats();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.negative_hits + stats.positive_hits, 0u)
      << "isomorphic jobs must share subproblem entries";
}

TEST(SubproblemStoreTest, ServiceRejectsCallerOwnedStore) {
  SubproblemStore store;
  service::ServiceOptions options;
  options.solve.subproblem_store = &store;
  auto service_or = service::DecompositionService::Create(options);
  EXPECT_FALSE(service_or.ok());
}

}  // namespace
}  // namespace htd
