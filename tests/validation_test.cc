// Validator tests built around the paper's Appendix B example: the cycle of
// length 10 and its width-2 HD of Figure 2a.
#include "decomp/validation.h"

#include <gtest/gtest.h>

#include "hypergraph/generators.h"

namespace htd {
namespace {

// Builds Figure 2a: the path of nodes u1..u8 with λ(u_i) = {R1, R_{i+1}} and
// χ(u_i) = {x1, x_{i+1}, x_{i+2}} (0-based here: R1 -> edge 0, x1 -> vertex 0).
Decomposition PaperFigure2a(const Hypergraph& cycle10) {
  Decomposition decomp;
  int parent = -1;
  for (int i = 0; i < 8; ++i) {
    std::vector<int> lambda{0, i + 1};
    util::DynamicBitset chi =
        util::DynamicBitset::FromIndices(10, {0, i + 1, i + 2});
    parent = decomp.AddNode(lambda, chi, parent);
  }
  return decomp;
}

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : graph_(MakeCycle(10)), decomp_(PaperFigure2a(graph_)) {}
  Hypergraph graph_;
  Decomposition decomp_;
};

TEST_F(PaperExampleTest, Figure2aIsAValidHd) {
  Validation hd = ValidateHd(graph_, decomp_);
  EXPECT_TRUE(hd.ok) << hd.error;
  EXPECT_EQ(decomp_.Width(), 2);
}

TEST_F(PaperExampleTest, Figure2aIsAValidGhd) {
  Validation ghd = ValidateGhd(graph_, decomp_);
  EXPECT_TRUE(ghd.ok) << ghd.error;
}

TEST_F(PaperExampleTest, WidthCheckRejectsTooSmallK) {
  EXPECT_TRUE(ValidateHdWithWidth(graph_, decomp_, 2).ok);
  EXPECT_FALSE(ValidateHdWithWidth(graph_, decomp_, 1).ok);
}

TEST_F(PaperExampleTest, BreakingCoverageIsDetected) {
  // Remove the last node: edge R9 = {x8, x9} loses its covering bag.
  Decomposition truncated;
  int parent = -1;
  for (int i = 0; i < 7; ++i) {
    truncated.AddNode({0, i + 1},
                      util::DynamicBitset::FromIndices(10, {0, i + 1, i + 2}),
                      parent);
    parent = i;
  }
  Validation result = ValidateHd(graph_, truncated);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("covered by no bag"), std::string::npos);
}

TEST_F(PaperExampleTest, BreakingConnectednessIsDetected) {
  // Drop x1 (vertex 0) from a middle bag: its occurrences become disconnected.
  Decomposition broken;
  int parent = -1;
  for (int i = 0; i < 8; ++i) {
    util::DynamicBitset chi =
        i == 4 ? util::DynamicBitset::FromIndices(10, {i + 1, i + 2})
               : util::DynamicBitset::FromIndices(10, {0, i + 1, i + 2});
    parent = broken.AddNode({0, i + 1}, chi, parent);
  }
  Validation result = ValidateHd(graph_, broken);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("connectedness"), std::string::npos);
}

TEST_F(PaperExampleTest, BreakingChiSubsetLambdaIsDetected) {
  Decomposition broken;
  // χ contains x5 (vertex 4) which is in neither R1 nor R2.
  broken.AddNode({0, 1}, util::DynamicBitset::FromIndices(10, {0, 1, 2, 4}), -1);
  Validation result = ValidateGhd(graph_, broken);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not covered by lambda"), std::string::npos);
}

TEST_F(PaperExampleTest, SpecialConditionViolationIsDetected) {
  // Root λ = {R1, R3}, χ = {x0, x1} but subtree covers x2 ∈ R3: the special
  // condition χ(T_u) ∩ ⋃λ(u) ⊆ χ(u) fails at the root (x2, x3 missing).
  Decomposition broken;
  int root =
      broken.AddNode({0, 2}, util::DynamicBitset::FromIndices(10, {0, 1}), -1);
  int child =
      broken.AddNode({1, 2}, util::DynamicBitset::FromIndices(10, {1, 2, 3}), root);
  (void)child;
  // Make it at least a GHD first (coverage fails, so test only condition 4
  // on a complete-but-wrong HD). We use a 3-cycle to keep it small.
  Hypergraph triangle = MakeCycle(3);
  Decomposition bad;
  int r = bad.AddNode({0, 1}, util::DynamicBitset::FromIndices(3, {0, 1}), -1);
  bad.AddNode({1, 2}, util::DynamicBitset::FromIndices(3, {1, 2, 0}), r);
  // Root's λ covers vertex 2 (via edge 1 = {x1,x2}); vertex 2 appears in the
  // subtree but not in the root's χ -> violation.
  Validation ghd = ValidateGhd(triangle, bad);
  EXPECT_TRUE(ghd.ok) << ghd.error;
  Validation hd = ValidateHd(triangle, bad);
  EXPECT_FALSE(hd.ok);
  EXPECT_NE(hd.error.find("special condition"), std::string::npos);
}

TEST_F(PaperExampleTest, InvalidLambdaEdgeIdIsDetected) {
  Decomposition broken;
  broken.AddNode({42}, util::DynamicBitset(10), -1);
  EXPECT_FALSE(ValidateGhd(graph_, broken).ok);
}

TEST_F(PaperExampleTest, NormalFormOfPaperHd) {
  // Figure 2a is in (minimal-χ) normal form.
  Validation nf = CheckNormalForm(graph_, decomp_);
  EXPECT_TRUE(nf.ok) << nf.error;
}

TEST_F(PaperExampleTest, NormalFormViolationDetected) {
  // Give a middle node a maximal χ (adds x1..x4 beyond the component's
  // vertices): still a valid HD but not in our minimal normal form? Instead,
  // we break condition 2: a child whose bag covers no new component edge.
  Decomposition odd;
  int root = odd.AddNode({0, 1}, util::DynamicBitset::FromIndices(10, {0, 1, 2}), -1);
  // Child repeats the root's bag: cov(T_c) has no edge covered first at c.
  int child = odd.AddNode({0, 1}, util::DynamicBitset::FromIndices(10, {0, 1, 2}), root);
  (void)child;
  Validation nf = CheckNormalForm(graph_, odd);
  EXPECT_FALSE(nf.ok);
}

TEST(ValidationTest, EmptyHypergraphEmptyDecomposition) {
  Hypergraph empty;
  Decomposition decomp;
  EXPECT_TRUE(ValidateHd(empty, decomp).ok);
}

TEST(ValidationTest, EmptyDecompositionOfNonEmptyGraphFails) {
  Hypergraph graph = MakePath(3);
  Decomposition decomp;
  EXPECT_FALSE(ValidateHd(graph, decomp).ok);
}

// --- Extended HD validation (Definition 3.3) -------------------------------

TEST(ExtendedValidationTest, FragmentWithSpecialLeaf) {
  // Paper's HD-fragment D1.2 (Figure 2c) for the extended subhypergraph
  // ⟨{R3,R4,R5}, {s1}, {x1,x3}⟩ of the 10-cycle, with s1 = {x1, x6, x7}
  // (0-based: {x0, x5, x6}).
  Hypergraph graph = MakeCycle(10);
  SpecialEdgeRegistry registry(10);
  int s1 = registry.Add(util::DynamicBitset::FromIndices(10, {0, 5, 6}), {});

  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset::FromIndices(10, {2, 3, 4});  // R3,R4,R5
  sub.edge_count = 3;
  sub.specials.push_back(s1);
  util::DynamicBitset conn = util::DynamicBitset::FromIndices(10, {0, 2});

  Fragment fragment;
  int n1 = fragment.AddNode({0, 2}, util::DynamicBitset::FromIndices(10, {0, 2, 3}));
  int n2 = fragment.AddNode({0, 3}, util::DynamicBitset::FromIndices(10, {0, 3, 4}));
  int n3 = fragment.AddNode({0, 4}, util::DynamicBitset::FromIndices(10, {0, 4, 5}));
  int leaf = fragment.AddSpecialLeaf(s1, registry.vertices(s1));
  fragment.SetRoot(n1);
  fragment.AddChild(n1, n2);
  fragment.AddChild(n2, n3);
  fragment.AddChild(n3, leaf);

  Validation result = ValidateExtendedHd(graph, registry, sub, conn, fragment);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ExtendedValidationTest, MissingSpecialLeafDetected) {
  Hypergraph graph = MakeCycle(10);
  SpecialEdgeRegistry registry(10);
  int s1 = registry.Add(util::DynamicBitset::FromIndices(10, {0, 5, 6}), {});
  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset(10);
  sub.specials.push_back(s1);
  Fragment fragment;
  int node = fragment.AddNode({0}, graph.edge_vertices(0));
  fragment.SetRoot(node);
  Validation result =
      ValidateExtendedHd(graph, registry, sub, util::DynamicBitset(10), fragment);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no leaf"), std::string::npos);
}

TEST(ExtendedValidationTest, ConnNotInRootDetected) {
  Hypergraph graph = MakePath(3);
  SpecialEdgeRegistry registry(3);
  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset::FromIndices(2, {0});
  sub.edge_count = 1;
  Fragment fragment;
  int node = fragment.AddNode({0}, graph.edge_vertices(0));  // χ = {x0,x1}
  fragment.SetRoot(node);
  util::DynamicBitset conn = util::DynamicBitset::FromIndices(3, {2});
  Validation result = ValidateExtendedHd(graph, registry, sub, conn, fragment);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("Conn"), std::string::npos);
}

TEST(ExtendedValidationTest, SpecialNodeWithChildrenDetected) {
  Hypergraph graph = MakePath(3);
  SpecialEdgeRegistry registry(3);
  int s = registry.Add(util::DynamicBitset::FromIndices(3, {0, 1}), {});
  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset::FromIndices(2, {0});
  sub.edge_count = 1;
  sub.specials.push_back(s);
  Fragment fragment;
  int leaf = fragment.AddSpecialLeaf(s, registry.vertices(s));
  int child = fragment.AddNode({0}, graph.edge_vertices(0));
  fragment.SetRoot(leaf);
  fragment.AddChild(leaf, child);
  Validation result =
      ValidateExtendedHd(graph, registry, sub, util::DynamicBitset(3), fragment);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not a leaf"), std::string::npos);
}

}  // namespace
}  // namespace htd
