// Negative subproblem cache (core/negative_cache.*): dominance semantics,
// and the cached solver must agree with the cache-free solver everywhere.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/log_k_decomp.h"
#include "core/negative_cache.h"
#include "util/cancel.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

ExtendedSubhypergraph MakeComp(int num_edges, std::initializer_list<int> edges,
                               std::initializer_list<int> specials) {
  ExtendedSubhypergraph comp;
  comp.edges = util::DynamicBitset::FromIndices(num_edges, edges);
  comp.edge_count = comp.edges.Count();
  comp.specials.assign(specials);
  return comp;
}

TEST(NegativeCacheTest, ExactKeyAndAllowedSupersetHit) {
  NegativeCache cache;
  ExtendedSubhypergraph comp = MakeComp(8, {1, 2, 5}, {0});
  util::DynamicBitset conn = util::DynamicBitset::FromIndices(10, {3});
  util::DynamicBitset allowed = util::DynamicBitset::FromIndices(8, {0, 1, 2, 5});

  cache.Insert(comp, conn, allowed);
  EXPECT_TRUE(cache.ContainsDominating(comp, conn, allowed));

  // Smaller allowed set: dominated, still a hit.
  util::DynamicBitset narrower = util::DynamicBitset::FromIndices(8, {1, 2});
  EXPECT_TRUE(cache.ContainsDominating(comp, conn, narrower));

  // Larger allowed set: NOT dominated — more labels might succeed.
  util::DynamicBitset wider = util::DynamicBitset::FromIndices(8, {0, 1, 2, 5, 7});
  EXPECT_FALSE(cache.ContainsDominating(comp, conn, wider));
}

TEST(NegativeCacheTest, DifferentConnOrSpecialsMiss) {
  NegativeCache cache;
  ExtendedSubhypergraph comp = MakeComp(8, {1, 2}, {0});
  util::DynamicBitset conn = util::DynamicBitset::FromIndices(10, {3});
  util::DynamicBitset allowed = util::DynamicBitset::FromIndices(8, {1, 2});
  cache.Insert(comp, conn, allowed);

  util::DynamicBitset other_conn = util::DynamicBitset::FromIndices(10, {4});
  EXPECT_FALSE(cache.ContainsDominating(comp, other_conn, allowed));

  ExtendedSubhypergraph other_specials = MakeComp(8, {1, 2}, {0, 1});
  EXPECT_FALSE(cache.ContainsDominating(other_specials, conn, allowed));
}

TEST(NegativeCacheTest, MaintainsAntichain) {
  NegativeCache cache;
  ExtendedSubhypergraph comp = MakeComp(6, {0}, {});
  util::DynamicBitset conn(4);

  util::DynamicBitset small = util::DynamicBitset::FromIndices(6, {0, 1});
  util::DynamicBitset large = util::DynamicBitset::FromIndices(6, {0, 1, 2});
  cache.Insert(comp, conn, small);
  cache.Insert(comp, conn, large);  // replaces the dominated entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.ContainsDominating(comp, conn, large));

  cache.Insert(comp, conn, small);  // already dominated: no growth
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------

Hypergraph RandomCacheInstance(uint64_t seed) {
  util::Rng rng(seed);
  switch (seed % 4) {
    case 0:
      return MakeRandomCsp(rng, 13, 9, 2, 4);
    case 1:
      // K5 at k = 2 is the interesting hard negative: a balanced separator
      // exists, so the search recurses deeply and revisits subproblems.
      // (Larger cliques at small k die instantly — no balanced separator —
      // and at k near hw the cache-free search space explodes; see the
      // ablation bench for the budgeted version of those.)
      return MakeClique(5);
    case 2:
      return MakeGrid(3, 4);
    default:
      return MakeRandomCq(rng, 10, 4, 0.4);
  }
}

class CachedSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(CachedSolverTest, CachedAndUncachedAgree) {
  const uint64_t seed = GetParam();
  Hypergraph graph = RandomCacheInstance(seed);

  for (int k = 1; k <= 3; ++k) {
    // Deadline-guarded: a pathological search must not hang the suite; a
    // cancelled probe is skipped rather than compared.
    util::CancelToken deadline;
    deadline.SetTimeout(std::chrono::duration<double>(10.0));

    SolveOptions plain_options;
    plain_options.cancel = &deadline;
    LogKDecomp plain(plain_options);

    SolveOptions cached_options;
    cached_options.enable_cache = true;
    cached_options.validate_result = true;
    cached_options.cancel = &deadline;
    LogKDecomp cached(cached_options);

    SolveResult plain_result = plain.Solve(graph, k);
    SolveResult cached_result = cached.Solve(graph, k);
    if (plain_result.outcome == Outcome::kCancelled ||
        cached_result.outcome == Outcome::kCancelled) {
      continue;
    }
    EXPECT_EQ(plain_result.outcome, cached_result.outcome)
        << "seed=" << seed << " k=" << k;
    if (cached_result.outcome == Outcome::kYes) {
      Validation validation =
          ValidateHdWithWidth(graph, *cached_result.decomposition, k);
      EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedSolverTest, ::testing::Range(0, 16));

TEST(CachedSolverTest, CacheHitsOnHardNegativeInstance) {
  // K5 at k = 2 exhausts a large search space with recurring subproblems
  // (~3·10^5 separators cache-free).
  Hypergraph clique = MakeClique(5);
  SolveOptions options;
  options.enable_cache = true;
  LogKDecomp solver(options);
  SolveResult result = solver.Solve(clique, 2);
  EXPECT_EQ(result.outcome, Outcome::kNo);
  EXPECT_GT(result.stats.cache_hits, 0) << "expected cache reuse on K5";
}

TEST(CachedSolverTest, CacheCutsSearchWorkOnNegatives) {
  Hypergraph clique = MakeClique(5);
  LogKDecomp plain;
  SolveOptions options;
  options.enable_cache = true;
  LogKDecomp cached(options);
  SolveResult plain_result = plain.Solve(clique, 2);
  SolveResult cached_result = cached.Solve(clique, 2);
  ASSERT_EQ(plain_result.outcome, Outcome::kNo);
  ASSERT_EQ(cached_result.outcome, Outcome::kNo);
  EXPECT_LT(cached_result.stats.separators_tried, plain_result.stats.separators_tried);
}

TEST(NegativeCacheTest, StripingPreservesSemantics) {
  // The dominance semantics must be identical at any stripe count; 1 shard
  // reproduces the historical global-mutex configuration.
  for (int shards : {1, 3, 64}) {
    NegativeCache cache(shards);
    ExtendedSubhypergraph comp = MakeComp(8, {1, 2, 5}, {0});
    util::DynamicBitset conn = util::DynamicBitset::FromIndices(10, {3});
    util::DynamicBitset allowed = util::DynamicBitset::FromIndices(8, {0, 1, 2});
    cache.Insert(comp, conn, allowed);
    EXPECT_TRUE(cache.ContainsDominating(comp, conn, allowed)) << shards;

    // Spread keys over shards; size() must sum across them.
    for (int i = 0; i < 20; ++i) {
      ExtendedSubhypergraph other = MakeComp(64, {i, (i + 7) % 64}, {});
      cache.Insert(other, conn, allowed);
    }
    EXPECT_EQ(cache.size(), 21u) << shards;
  }
}

TEST(NegativeCacheTest, ConcurrentInsertAndLookupAreSafe) {
  // Mutex smoke test: hammer the cache from several threads with
  // overlapping keys; the final state must contain every inserted key.
  NegativeCache cache;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        ExtendedSubhypergraph comp;
        comp.edges = util::DynamicBitset(64);
        comp.edges.Set((t * kKeysPerThread + i) % 64);
        comp.edges.Set(i % 17);
        comp.edge_count = comp.edges.Count();
        util::DynamicBitset conn(32);
        conn.Set(i % 32);
        util::DynamicBitset allowed(64);
        allowed.Set(i % 64);
        cache.Insert(comp, conn, allowed);
        // Read-back mixed in with other threads' writes.
        EXPECT_TRUE(cache.ContainsDominating(comp, conn, allowed));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(cache.size(), 0u);
}

TEST(CachedSolverTest, ParallelCachedSolveAgrees) {
  Hypergraph graph = MakeGrid(3, 4);
  SolveOptions options;
  options.enable_cache = true;
  options.num_threads = 2;
  options.validate_result = true;
  LogKDecomp solver(options);
  LogKDecomp reference;
  for (int k = 2; k <= 3; ++k) {
    EXPECT_EQ(solver.Solve(graph, k).outcome, reference.Solve(graph, k).outcome)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace htd
