// Tests for [U]-components of extended subhypergraphs (Definition 3.2).
#include "decomp/components.h"

#include <gtest/gtest.h>

#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

// The paper's Appendix B example: a cycle of length 10.
class CycleComponentsTest : public ::testing::Test {
 protected:
  CycleComponentsTest()
      : graph_(MakeCycle(10)),
        registry_(graph_.num_vertices()),
        full_(ExtendedSubhypergraph::FullGraph(graph_)) {}

  Hypergraph graph_;
  SpecialEdgeRegistry registry_;
  ExtendedSubhypergraph full_;
};

TEST_F(CycleComponentsTest, EmptySeparatorYieldsOneComponent) {
  ComponentSplit split =
      SplitComponents(graph_, registry_, full_, util::DynamicBitset(10));
  ASSERT_EQ(split.components.size(), 1u);
  EXPECT_EQ(split.components[0].size(), 10);
  EXPECT_EQ(split.covered.size(), 0);
}

TEST_F(CycleComponentsTest, PaperExampleLambdaR1R5) {
  // [λ]-components for λ = {R1, R5} (the paper's Call 1): R1 = {x0,x1},
  // R5 = {x4,x5}. Components: {R2,R3,R4} and {R6,...,R10}; R1 and R5 are
  // covered by the separator.
  util::DynamicBitset separator =
      graph_.edge_vertices(0) | graph_.edge_vertices(4);
  ComponentSplit split = SplitComponents(graph_, registry_, full_, separator);
  ASSERT_EQ(split.components.size(), 2u);
  int small = split.components[0].size() == 3 ? 0 : 1;
  EXPECT_EQ(split.components[small].size(), 3);
  EXPECT_EQ(split.components[1 - small].size(), 5);
  EXPECT_EQ(split.covered.edge_count, 2);
}

TEST_F(CycleComponentsTest, ComponentsPartitionTheItems) {
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    util::DynamicBitset separator(10);
    for (int v = 0; v < 10; ++v) {
      if (rng.Chance(0.4)) separator.Set(v);
    }
    ComponentSplit split = SplitComponents(graph_, registry_, full_, separator);
    int total = split.covered.edge_count;
    util::DynamicBitset seen = split.covered.edges;
    for (const auto& comp : split.components) {
      total += comp.size();
      EXPECT_FALSE(seen.Intersects(comp.edges)) << "components overlap";
      seen.InplaceOr(comp.edges);
    }
    EXPECT_EQ(total, 10);
  }
}

TEST_F(CycleComponentsTest, ComponentVerticesIncludeSeparatorVertices) {
  // V(component) is the full union of its edges, including separator
  // vertices (needed for Conn computations).
  util::DynamicBitset separator =
      graph_.edge_vertices(0) | graph_.edge_vertices(4);
  ComponentSplit split = SplitComponents(graph_, registry_, full_, separator);
  for (size_t i = 0; i < split.components.size(); ++i) {
    util::DynamicBitset expected(graph_.num_vertices());
    split.components[i].edges.ForEach(
        [&](int e) { expected.InplaceOr(graph_.edge_vertices(e)); });
    EXPECT_EQ(split.component_vertices[i], expected);
  }
}

TEST(ComponentsTest, SpecialEdgesParticipate) {
  // Path a-b-c-d plus a special edge {b, d}: with separator {c}, the special
  // edge keeps {c,d}-side and {a,b}-side connected through b and d.
  Hypergraph graph = MakePath(4);  // edges {0,1},{1,2},{2,3}
  SpecialEdgeRegistry registry(graph.num_vertices());
  int special =
      registry.Add(util::DynamicBitset::FromIndices(4, {1, 3}), {});
  ExtendedSubhypergraph sub = ExtendedSubhypergraph::FullGraph(graph);
  sub.specials.push_back(special);

  util::DynamicBitset separator = util::DynamicBitset::FromIndices(4, {2});
  ComponentSplit split = SplitComponents(graph, registry, sub, separator);
  // Without the special edge, {a,b} and {d} sides would be two components;
  // the special edge {b,d} bridges them into one.
  ASSERT_EQ(split.components.size(), 1u);
  EXPECT_EQ(split.components[0].size(), 4);  // 3 edges + 1 special
  EXPECT_EQ(split.components[0].specials.size(), 1u);
}

TEST(ComponentsTest, CoveredSpecialEdges) {
  Hypergraph graph = MakePath(4);
  SpecialEdgeRegistry registry(graph.num_vertices());
  int special = registry.Add(util::DynamicBitset::FromIndices(4, {0, 1}), {});
  ExtendedSubhypergraph sub = ExtendedSubhypergraph::FullGraph(graph);
  sub.specials.push_back(special);

  util::DynamicBitset separator = util::DynamicBitset::FromIndices(4, {0, 1});
  ComponentSplit split = SplitComponents(graph, registry, sub, separator);
  ASSERT_EQ(split.covered.specials.size(), 1u);
  EXPECT_EQ(split.covered.specials[0], special);
  EXPECT_EQ(split.covered.edge_count, 1);  // edge {0,1}
}

TEST(ComponentsTest, FindOversized) {
  Hypergraph graph = MakeCycle(10);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  // Separator = vertices of R1 only: one big component of 9 edges remains
  // ([{x0,x1}]-components: R2..R10 are connected around the cycle).
  ComponentSplit split =
      SplitComponents(graph, registry, full, graph.edge_vertices(0));
  ASSERT_EQ(split.components.size(), 1u);
  EXPECT_EQ(split.FindOversized(10), 0);
  EXPECT_EQ(split.MaxComponentSize(), 9);
  // With total = 20 nothing is oversized.
  EXPECT_EQ(split.FindOversized(20), -1);
}

TEST(ComponentsTest, DisconnectedHypergraph) {
  // Two disjoint triangles: empty separator yields two components.
  Hypergraph graph;
  std::vector<int> v;
  for (int i = 0; i < 6; ++i) v.push_back(graph.GetOrAddVertex("x" + std::to_string(i)));
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(graph
                      .AddEdge("t" + std::to_string(t) + "_" + std::to_string(i),
                               {v[3 * t + i], v[3 * t + (i + 1) % 3]})
                      .ok());
    }
  }
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  ComponentSplit split =
      SplitComponents(graph, registry, full, util::DynamicBitset(6));
  EXPECT_EQ(split.components.size(), 2u);
}

TEST(ComponentsTest, SeparatorCoveringEverything) {
  Hypergraph graph = MakePath(5);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  ComponentSplit split = SplitComponents(graph, registry, full, graph.AllVertices());
  EXPECT_TRUE(split.components.empty());
  EXPECT_EQ(split.covered.edge_count, 4);
}

TEST(ComponentsTest, SubhypergraphRestriction) {
  // Splitting a strict subhypergraph must ignore edges outside it.
  Hypergraph graph = MakeCycle(8);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset::FromIndices(8, {1, 2, 5, 6});
  sub.edge_count = 4;
  ComponentSplit split =
      SplitComponents(graph, registry, sub, util::DynamicBitset(8));
  // {R2,R3} and {R6,R7} are separated once R4,R5,R8,R1 are absent.
  ASSERT_EQ(split.components.size(), 2u);
  EXPECT_EQ(split.components[0].size(), 2);
  EXPECT_EQ(split.components[1].size(), 2);
}

// Property: for random separators on random CSPs, components never share
// vertices outside the separator, and every non-covered item lands in
// exactly one component.
class ComponentInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(ComponentInvariantTest, SeparationInvariant) {
  util::Rng rng(GetParam());
  Hypergraph graph = MakeRandomCsp(rng, 20, 14, 2, 4);
  SpecialEdgeRegistry registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset separator(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (rng.Chance(0.3)) separator.Set(v);
  }
  ComponentSplit split = SplitComponents(graph, registry, full, separator);
  for (size_t i = 0; i < split.components.size(); ++i) {
    for (size_t j = i + 1; j < split.components.size(); ++j) {
      util::DynamicBitset shared =
          split.component_vertices[i] & split.component_vertices[j];
      EXPECT_TRUE(shared.IsSubsetOf(separator))
          << "components " << i << "," << j << " share non-separator vertices";
    }
  }
  int total = split.covered.edge_count;
  for (const auto& comp : split.components) total += comp.size();
  EXPECT_EQ(total, graph.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentInvariantTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace htd
