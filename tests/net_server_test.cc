// net/decomposition_server.h end to end: real sockets on an ephemeral port,
// route behaviour, admission-control load shedding, async jobs, and
// snapshot-based warm restart (including corrupt-snapshot cold start).
#include "net/decomposition_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "hypergraph/generators.h"
#include "hypergraph/writer.h"
#include "cq/query.h"
#include "net/http.h"
#include "qa/wire.h"
#include "util/socket.h"

namespace htd::net {
namespace {

using namespace std::chrono_literals;

struct WireResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Minimal HTTP client: one Connection: close exchange against localhost.
/// `extra_headers` are raw header lines including their trailing CRLF.
WireResponse Exchange(int port, const std::string& method,
                      const std::string& target, const std::string& body = "",
                      const std::string& extra_headers = "") {
  WireResponse out;
  auto sock = util::ConnectTcp("127.0.0.1", port, /*timeout_seconds=*/120.0);
  EXPECT_TRUE(sock.ok()) << sock.status().message();
  if (!sock.ok()) return out;
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += extra_headers;
  request += "Connection: close\r\n\r\n" + body;
  EXPECT_TRUE(util::SendAll(sock->fd(), request));
  std::string blob;
  char buffer[8192];
  while (true) {
    long n = util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  EXPECT_TRUE(ParseHttpResponseBlob(blob, &out.status, &out.headers, &out.body))
      << "unparseable response: " << blob;
  return out;
}

DecompositionServerOptions BaseOptions() {
  DecompositionServerOptions options;
  options.http.port = 0;  // ephemeral
  options.http.io_threads = 4;
  options.service.num_workers = 2;
  options.service.default_timeout_seconds = 30.0;
  return options;
}

std::string PathInstance() { return WriteHyperBench(MakePath(5)); }

TEST(NetServerTest, DecomposeSyncAndCacheHit) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  WireResponse first =
      Exchange(port, "POST", "/v1/decompose?k=2&decomposition=1", PathInstance());
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"outcome\": \"yes\""), std::string::npos) << first.body;
  EXPECT_NE(first.body.find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(first.body.find("\"decomposition\""), std::string::npos);

  // The same instance under renamed vertices still hits (canonical keys).
  WireResponse second =
      Exchange(port, "POST", "/v1/decompose?k=2", PathInstance());
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"cache_hit\": true"), std::string::npos) << second.body;

  WireResponse stats = Exchange(port, "GET", "/v1/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"cache_hits\": 1"), std::string::npos) << stats.body;
  (*server)->Stop();
}

TEST(NetServerTest, ValidationAndRouting) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  EXPECT_EQ(Exchange(port, "POST", "/v1/decompose", PathInstance()).status, 400)
      << "missing k";
  EXPECT_EQ(Exchange(port, "POST", "/v1/decompose?k=abc", PathInstance()).status,
            400);
  EXPECT_EQ(Exchange(port, "POST", "/v1/decompose?k=2", "").status, 400)
      << "empty body";
  EXPECT_EQ(Exchange(port, "POST", "/v1/decompose?k=2", "((((").status, 400)
      << "unparseable hypergraph";
  EXPECT_EQ(Exchange(port, "GET", "/v1/decompose?k=2").status, 405);
  EXPECT_EQ(Exchange(port, "GET", "/nope").status, 404);
  EXPECT_EQ(Exchange(port, "GET", "/v1/jobs/j999").status, 404);
  EXPECT_EQ(Exchange(port, "GET", "/healthz").status, 200);

  WireResponse stats = Exchange(port, "GET", "/v1/stats");
  EXPECT_NE(stats.body.find("\"bad_requests\": 4"), std::string::npos) << stats.body;
  (*server)->Stop();
}

TEST(NetServerTest, AsyncJobLifecycle) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  WireResponse admitted =
      Exchange(port, "POST", "/v1/decompose?k=2&async=1", PathInstance());
  EXPECT_EQ(admitted.status, 202);
  size_t id_pos = admitted.body.find("\"job\": \"");
  ASSERT_NE(id_pos, std::string::npos) << admitted.body;
  size_t id_start = id_pos + 8;
  std::string id = admitted.body.substr(
      id_start, admitted.body.find('"', id_start) - id_start);

  // Poll until resolved (a path at k=2 solves in microseconds).
  WireResponse job;
  for (int i = 0; i < 200; ++i) {
    job = Exchange(port, "GET", "/v1/jobs/" + id);
    ASSERT_EQ(job.status, 200);
    if (job.body.find("\"state\": \"done\"") != std::string::npos) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_NE(job.body.find("\"state\": \"done\""), std::string::npos) << job.body;
  EXPECT_NE(job.body.find("\"outcome\": \"yes\""), std::string::npos) << job.body;
  (*server)->Stop();
}

TEST(NetServerTest, AdmissionControlShedsWith429) {
  DecompositionServerOptions options = BaseOptions();
  options.service.num_workers = 1;
  options.max_queue_depth = 2;
  options.retry_after_seconds = 3;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  // A clique this size at k=4 runs far longer than the test (it is shed or
  // cancelled long before finishing), so it pins the single worker while
  // the flood arrives.
  std::string slow = WriteHyperBench(MakeClique(24));
  int accepted = 0, shed = 0;
  for (int i = 0; i < 6; ++i) {
    WireResponse r = Exchange(
        port, "POST", "/v1/decompose?k=4&async=1&timeout=30", slow);
    if (r.status == 202) {
      ++accepted;
    } else {
      ASSERT_EQ(r.status, 429) << r.body;
      EXPECT_EQ(r.headers.at("retry-after"), "3");
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 2) << "bounded queue must stop admitting at the bound";
  EXPECT_EQ(shed, 4);

  WireResponse stats = Exchange(port, "GET", "/v1/stats");
  EXPECT_NE(stats.body.find("\"shed\": 4"), std::string::npos) << stats.body;

  // Stop() cancels the pinned solves; it must return promptly rather than
  // wait out the 30 s deadlines.
  (*server)->Stop();
}

TEST(NetServerTest, SyncFloodShedsAtTheConnectionBound) {
  DecompositionServerOptions options = BaseOptions();
  options.service.num_workers = 1;
  options.http.io_threads = 2;
  options.http.max_connections = 2;  // both slots will be pinned
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  // Two synchronous requests pin both connection slots (the single worker
  // solves one; the other waits in the scheduler) — no async, so the
  // application-level queue bound alone could never shed this shape. The
  // pinning connections are opened HERE, sequentially, before any stats
  // probe: the kernel's accept queue is FIFO, so they own the two slots
  // before a probe can steal one (probe threads racing the pins for slots
  // made the original formulation flaky).
  std::string slow = WriteHyperBench(MakeClique(24));
  std::string pin_request =
      "POST /v1/decompose?k=4&timeout=30 HTTP/1.1\r\n"
      "Content-Length: " + std::to_string(slow.size()) +
      "\r\nConnection: close\r\n\r\n" + slow;
  auto pin1 = util::ConnectTcp("127.0.0.1", port, /*timeout_seconds=*/120.0);
  ASSERT_TRUE(pin1.ok()) << pin1.status().message();
  ASSERT_TRUE(util::SendAll(pin1->fd(), pin_request));
  auto pin2 = util::ConnectTcp("127.0.0.1", port, /*timeout_seconds=*/120.0);
  ASSERT_TRUE(pin2.ok()) << pin2.status().message();
  ASSERT_TRUE(util::SendAll(pin2->fd(), pin_request));

  // Once the acceptor has admitted both, the next connection must be shed
  // with 503 at the transport instead of queueing in the IO pool.
  WireResponse shed;
  for (int i = 0; i < 200; ++i) {
    shed = Exchange(port, "GET", "/v1/stats");
    if (shed.status == 503) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(shed.status, 503) << shed.body;
  EXPECT_EQ(shed.headers.at("retry-after"), "1");

  // The acceptor counts a connection live before its handler task has run;
  // stopping now could 503 the pins before they are admitted. Wait until
  // both have reached the scheduler.
  for (int i = 0; i < 500 && (*server)->admission_stats().admitted < 2; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ((*server)->admission_stats().admitted, 2u);

  // Stop() cancels the pinned solves but flushes their in-flight responses
  // (read-side-only shutdown): both pinned connections still read an
  // orderly 200 (outcome: cancelled).
  (*server)->Stop();
  for (util::Socket* pin : {&*pin1, &*pin2}) {
    std::string blob;
    char buffer[8192];
    while (true) {
      long n = util::RecvSome(pin->fd(), buffer, sizeof(buffer));
      if (n <= 0) break;
      blob.append(buffer, static_cast<size_t>(n));
    }
    WireResponse response;
    ASSERT_TRUE(ParseHttpResponseBlob(blob, &response.status, &response.headers,
                                      &response.body))
        << "pinned connection must still get its response: " << blob;
    EXPECT_EQ(response.status, 200);
  }
}

TEST(NetServerTest, AsyncQueryJobsCountAgainstTheAdmissionBound) {
  // Regression: async /v1/query jobs used to run on detached std::async
  // threads invisible to outstanding_jobs(), so a query flood sailed past
  // the 429 bound without limit. They now run on the executor's background
  // lane and are counted, so the same bound covers both job kinds.
  DecompositionServerOptions options = BaseOptions();
  options.service.num_workers = 1;
  options.max_queue_depth = 2;
  options.retry_after_seconds = 3;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  // A conjunctive query whose hypergraph is a big clique: the k-sweep's
  // probes run far longer than the test, so every admitted query job stays
  // outstanding while the flood arrives.
  std::string atoms;
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      if (!atoms.empty()) atoms += ", ";
      atoms += "R(X" + std::to_string(i) + ",X" + std::to_string(j) + ")";
    }
  }
  auto query = cq::ParseQuery(atoms + ".");
  ASSERT_TRUE(query.ok()) << query.status().message();
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}, {2, 3}}});
  auto body = qa::RenderQueryRequest(*query, db);
  ASSERT_TRUE(body.ok()) << body.status().message();

  int accepted = 0, shed = 0;
  for (int i = 0; i < 8; ++i) {
    WireResponse r =
        Exchange(port, "POST", "/v1/query?async=1&timeout=30", *body);
    if (r.status == 202) {
      ++accepted;
    } else {
      ASSERT_EQ(r.status, 429) << r.body;
      EXPECT_EQ(r.headers.at("retry-after"), "3");
      ++shed;
    }
  }
  // A query job's own probe flight may briefly double-count against the
  // bound, so the exact split can vary by one — but the bound must engage.
  EXPECT_GE(accepted, 1);
  EXPECT_LE(accepted, 2) << "the bound must stop admitting query jobs";
  EXPECT_GE(shed, 6);

  WireResponse stats = Exchange(port, "GET", "/v1/stats");
  EXPECT_NE(stats.body.find("\"shed\": " + std::to_string(shed)),
            std::string::npos)
      << stats.body;

  // Stop() must cancel the pinned probes AND wait out the query tasks —
  // returning while one still runs would be a use-after-free.
  (*server)->Stop();
}

TEST(NetServerTest, SnapshotWarmRestartServesCacheHits) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "htd_net_server_warm.snap").string();
  std::filesystem::remove(path);

  DecompositionServerOptions options = BaseOptions();
  options.snapshot_path = path;
  options.service.enable_subproblem_store = true;

  {
    auto server = DecompositionServer::Create(options);
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE((*server)->Start().ok());
    int port = (*server)->port();
    EXPECT_EQ(Exchange(port, "POST", "/v1/decompose?k=2",
                       WriteHyperBench(MakeCycle(6))).status, 200);
    EXPECT_EQ(Exchange(port, "POST", "/v1/decompose?k=2", PathInstance()).status,
              200);
    WireResponse snap = Exchange(port, "POST", "/v1/admin/snapshot");
    EXPECT_EQ(snap.status, 200) << snap.body;
    EXPECT_NE(snap.body.find("\"saved\": true"), std::string::npos);
    (*server)->Stop();
  }

  {
    auto server = DecompositionServer::Create(options);
    ASSERT_TRUE(server.ok());
    EXPECT_EQ((*server)->restored().cache_entries, 2u);
    ASSERT_TRUE((*server)->Start().ok());
    int port = (*server)->port();
    WireResponse replay =
        Exchange(port, "POST", "/v1/decompose?k=2", WriteHyperBench(MakeCycle(6)));
    EXPECT_EQ(replay.status, 200);
    EXPECT_NE(replay.body.find("\"cache_hit\": true"), std::string::npos)
        << "warm restart must serve previously-solved instances from cache: "
        << replay.body;
    WireResponse stats = Exchange(port, "GET", "/v1/stats");
    EXPECT_NE(stats.body.find("\"restored_cache_entries\": 2"), std::string::npos)
        << stats.body;
    (*server)->Stop();
  }
  std::filesystem::remove(path);
}

TEST(NetServerTest, CorruptSnapshotStartsCold) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "htd_net_server_corrupt.snap")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "HTDSNAP1 but then garbage follows";
  }
  DecompositionServerOptions options = BaseOptions();
  options.snapshot_path = path;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok()) << "corrupt snapshot must not abort startup";
  EXPECT_EQ((*server)->restored().cache_entries, 0u);
  EXPECT_EQ((*server)->restored().store_entries, 0u);
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_EQ(Exchange((*server)->port(), "POST", "/v1/decompose?k=2",
                     PathInstance()).status, 200);
  (*server)->Stop();
  std::filesystem::remove(path);
}

bool IsHex16(const std::string& text) {
  if (text.size() != 16) return false;
  for (char c : text) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

TEST(NetServerTest, SyncDecomposeCarriesObservabilityHeaders) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  WireResponse r =
      Exchange(port, "POST", "/v1/decompose?k=2", PathInstance());
  ASSERT_EQ(r.status, 200);
  ASSERT_TRUE(r.headers.count("x-htd-request-id")) << r.body;
  EXPECT_TRUE(IsHex16(r.headers.at("x-htd-request-id")))
      << r.headers.at("x-htd-request-id");
  ASSERT_TRUE(r.headers.count("server-timing"));
  const std::string& timing = r.headers.at("server-timing");
  for (const char* stage :
       {"parse", "fingerprint", "cache", "schedule", "solve", "serialise"}) {
    EXPECT_NE(timing.find(std::string(stage) + ";dur="), std::string::npos)
        << "missing stage " << stage << " in: " << timing;
  }
  (*server)->Stop();
}

TEST(NetServerTest, AdoptedRequestIdIsEchoedAndTraceable) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  const std::string id = "00deadbeef00f00d";
  WireResponse r = Exchange(port, "POST", "/v1/decompose?k=2", PathInstance(),
                            "X-HTD-Request-Id: " + id + "\r\n");
  ASSERT_EQ(r.status, 200);
  ASSERT_TRUE(r.headers.count("x-htd-request-id"));
  EXPECT_EQ(r.headers.at("x-htd-request-id"), id)
      << "a valid propagated request id must be adopted, not re-minted";

  WireResponse trace = Exchange(port, "GET", "/v1/trace?n=32");
  ASSERT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"id\": \"" + id + "\""), std::string::npos)
      << "adopted id must be retrievable as a root span: " << trace.body;
  EXPECT_NE(trace.body.find("\"name\": \"request\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"name\": \"solve\""), std::string::npos)
      << "stage spans must be attached to the root: " << trace.body;
  (*server)->Stop();
}

TEST(NetServerTest, MalformedRequestIdIsReplacedNotAdopted) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  WireResponse r = Exchange(port, "POST", "/v1/decompose?k=2", PathInstance(),
                            "X-HTD-Request-Id: not-a-trace-id\r\n");
  ASSERT_EQ(r.status, 200);
  ASSERT_TRUE(r.headers.count("x-htd-request-id"));
  EXPECT_NE(r.headers.at("x-htd-request-id"), "not-a-trace-id");
  EXPECT_TRUE(IsHex16(r.headers.at("x-htd-request-id")));
  (*server)->Stop();
}

TEST(NetServerTest, MetricsEndpointRendersPrometheusText) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  ASSERT_EQ(
      Exchange(port, "POST", "/v1/decompose?k=2", PathInstance()).status, 200);

  WireResponse metrics = Exchange(port, "GET", "/v1/metrics");
  ASSERT_EQ(metrics.status, 200);
  ASSERT_TRUE(metrics.headers.count("content-type"));
  EXPECT_NE(metrics.headers.at("content-type").find("version=0.0.4"),
            std::string::npos);
  // Stage histograms are populated after one sync decompose.
  for (const char* stage :
       {"parse", "fingerprint", "cache", "schedule", "solve", "serialise"}) {
    std::string count_line =
        "htd_stage_seconds_count{stage=\"" + std::string(stage) + "\"}";
    size_t pos = metrics.body.find(count_line);
    ASSERT_NE(pos, std::string::npos) << "missing " << count_line;
    EXPECT_EQ(metrics.body.find(count_line + " 0\n"), std::string::npos)
        << "stage " << stage << " must have observations";
  }
  EXPECT_NE(metrics.body.find("# TYPE htd_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("htd_request_seconds_bucket{route=\"decompose\""),
            std::string::npos);
  EXPECT_NE(metrics.body.find("htd_admission_requests_total{result=\"admitted\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("htd_scheduler_submitted_total"),
            std::string::npos);
  EXPECT_EQ(Exchange(port, "POST", "/v1/metrics").status, 405);
  (*server)->Stop();
}

TEST(NetServerTest, StatsReadFromOneSnapshotStayConsistent) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  ASSERT_EQ(
      Exchange(port, "POST", "/v1/decompose?k=2", PathInstance()).status, 200);
  WireResponse stats = Exchange(port, "GET", "/v1/stats");
  ASSERT_EQ(stats.status, 200);
  // The pre-observability key set survives the snapshot rewrite.
  for (const char* key :
       {"\"admitted\"", "\"shed\"", "\"bad_requests\"", "\"submitted\"",
        "\"completed\"", "\"cache_hits\"", "\"queue_depth\""}) {
    EXPECT_NE(stats.body.find(key), std::string::npos)
        << "missing stats key " << key << " in: " << stats.body;
  }
  (*server)->Stop();
}

TEST(NetServerTest, SnapshotRouteWithoutPathIs412) {
  auto server = DecompositionServer::Create(BaseOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_EQ(Exchange((*server)->port(), "POST", "/v1/admin/snapshot").status, 412);
  (*server)->Stop();
}

// ---------------------------------------------------------------------------
// Epoll-core transport behaviour: slow-loris reaping, write-timeout slot
// recovery, io_threads-independent admission, and accept-failure backoff.
// These drive a bare HttpServer — the contract under test is the readiness
// loop itself, not the decomposition routes.

/// Polls `condition` until it holds or `deadline` elapses.
bool WaitFor(const std::function<bool()>& condition,
             std::chrono::milliseconds deadline) {
  auto give_up = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < give_up) {
    if (condition()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return condition();
}

HttpResponse OkHandler(const HttpRequest&) {
  HttpResponse response;
  response.body = "{\"ok\": true}\n";
  return response;
}

TEST(NetServerTest, SlowLorisIsReapedWhileFastClientsAreServed) {
  HttpServer::Options options;
  options.io_threads = 2;
  options.loop_threads = 1;
  options.header_timeout_seconds = 0.5;
  options.idle_timeout_seconds = 30.0;  // the loris must hit the HEADER clock
  HttpServer server(options, OkHandler);
  ASSERT_TRUE(server.Start().ok());

  // The loris: drips a valid request one byte at a time, far slower than
  // the header timeout allows.
  auto loris = util::ConnectTcp("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(loris.ok());
  util::SetRecvTimeout(loris->fd(), 10.0);
  std::atomic<bool> drip_done{false};
  std::thread dripper([&] {
    const std::string request = "GET /healthz HTTP/1.1\r\nHost: drip\r\n\r\n";
    for (char c : request) {
      if (!util::SendAll(loris->fd(), std::string_view(&c, 1))) break;
      std::this_thread::sleep_for(50ms);
    }
    drip_done.store(true);
  });

  // Fast clients during the drip: unchanged latency, all 200.
  for (int i = 0; i < 5; ++i) {
    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(Exchange(server.port(), "GET", "/anything").status, 200);
    EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  }

  // The loris is reaped by the header timeout: best-effort 408 then close.
  std::string blob;
  char buffer[1024];
  while (true) {
    long n = util::RecvSome(loris->fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  EXPECT_NE(blob.find(" 408 "), std::string::npos) << blob;
  EXPECT_GE(server.connections_reaped(), 1u);
  dripper.join();
  EXPECT_TRUE(drip_done.load());
  server.Stop();
}

TEST(NetServerTest, StalledReaderIsAbandonedAtWriteTimeoutWithoutLeakingSlot) {
  HttpServer::Options options;
  options.io_threads = 2;
  options.loop_threads = 1;
  options.max_connections = 1;  // ONE slot — a leak would starve the retry
  options.write_timeout_seconds = 0.5;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/octet-stream";
    response.body.assign(32 * 1024 * 1024, 'x');  // far past any socket buffer
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // A reader that requests the huge response and then never reads: the
  // kernel buffers fill, the flush stalls, and the write timeout must
  // abandon the connection rather than hold its slot forever. SO_RCVBUF is
  // pinned tiny BEFORE connect so autotuned loopback windows can never
  // swallow the whole response and let the flush complete.
  int stalled_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled_fd, 0);
  int tiny = 16 * 1024;
  ::setsockopt(stalled_fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in server_addr{};
  server_addr.sin_family = AF_INET;
  server_addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  server_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(stalled_fd, reinterpret_cast<sockaddr*>(&server_addr),
                      sizeof(server_addr)),
            0);
  util::Socket stalled(stalled_fd);
  ASSERT_TRUE(util::SendAll(stalled.fd(),
                            "GET /blob HTTP/1.1\r\nConnection: close\r\n\r\n"));
  ASSERT_TRUE(WaitFor([&] { return server.connections_reaped() >= 1; }, 15s))
      << "write timeout never fired";

  // The slot must be free again: a well-behaved client succeeds.
  ASSERT_TRUE(WaitFor(
      [&] { return server.connection_counts().total() == 0; }, 10s));
  auto probe = util::ConnectTcp("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(probe.ok());
  util::SetRecvTimeout(probe->fd(), 30.0);
  ASSERT_TRUE(util::SendAll(probe->fd(),
                            "GET /blob HTTP/1.1\r\nConnection: close\r\n\r\n"));
  std::string head;
  char buffer[4096];
  long n = util::RecvSome(probe->fd(), buffer, sizeof(buffer));
  ASSERT_GT(n, 0);
  head.assign(buffer, static_cast<size_t>(n));
  EXPECT_NE(head.find(" 200 "), std::string::npos) << head;
  server.Stop();
}

TEST(NetServerTest, IdleKeepAliveConnectionsArentBoundedByThreadCounts) {
  HttpServer::Options options;
  options.io_threads = 2;    // the whole point: 2 threads, hundreds of conns
  options.loop_threads = 2;
  options.backlog = 256;
  options.max_connections = 600;
  options.idle_timeout_seconds = 60.0;
  HttpServer server(options, OkHandler);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kIdle = 300;
  std::vector<util::Socket> held;
  held.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    auto sock = util::ConnectTcp("127.0.0.1", server.port(), 10.0);
    ASSERT_TRUE(sock.ok()) << "connect " << i << ": " << sock.status().message();
    held.push_back(std::move(*sock));
  }
  ASSERT_TRUE(WaitFor(
      [&] { return server.connection_counts().idle >= kIdle; }, 20s))
      << "only " << server.connection_counts().idle << " idle";
  // The thread-per-connection core shed at io_threads; the loop must not.
  EXPECT_EQ(server.connections_shed(), 0u);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kIdle));

  // The held connections are live, not zombies: a sample of them still
  // serves requests, as does a brand-new one.
  for (int i : {0, kIdle / 2, kIdle - 1}) {
    ASSERT_TRUE(util::SendAll(held[static_cast<size_t>(i)].fd(),
                              "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n"));
    util::SetRecvTimeout(held[static_cast<size_t>(i)].fd(), 10.0);
    std::string blob;
    char buffer[4096];
    while (true) {
      long n = util::RecvSome(held[static_cast<size_t>(i)].fd(), buffer,
                              sizeof(buffer));
      if (n <= 0) break;
      blob.append(buffer, static_cast<size_t>(n));
    }
    EXPECT_NE(blob.find(" 200 "), std::string::npos) << blob;
  }
  EXPECT_EQ(Exchange(server.port(), "GET", "/fresh").status, 200);
  EXPECT_EQ(server.connections_shed(), 0u);
  held.clear();
  server.Stop();
}

TEST(NetServerTest, AcceptBackoffRecoversFromFdExhaustion) {
  HttpServer::Options options;
  options.io_threads = 2;
  options.loop_threads = 1;
  HttpServer server(options, OkHandler);
  ASSERT_TRUE(server.Start().ok());

  // The client's fd is allocated BEFORE exhaustion; connect() itself needs
  // no new descriptor in this process.
  int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);

  // Exhaust the fd budget: lower the soft limit to just above current use,
  // then fill what remains. accept() in the server (same process) now fails
  // with EMFILE while the connection waits in the listen queue.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit tight = saved;
  tight.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  while (true) {
    int fd = ::dup(client);
    if (fd < 0) break;
    fillers.push_back(fd);
  }
  ASSERT_FALSE(fillers.empty());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(util::SendAll(client,
                            "GET /after HTTP/1.1\r\nConnection: close\r\n\r\n"));

  // The acceptor must be failing AND backing off (not spinning): failures
  // accrue at roughly one per 10 ms backoff, not tens of thousands.
  ASSERT_TRUE(WaitFor([&] { return server.accept_failures() >= 2; }, 10s));
  uint64_t failures_during_exhaustion = server.accept_failures();
  EXPECT_LT(failures_during_exhaustion, 2000u) << "acceptor is spinning";

  // Recovery: free the budget and the queued connection gets served.
  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  util::SetRecvTimeout(client, 20.0);
  std::string blob;
  char buffer[4096];
  while (true) {
    long n = util::RecvSome(client, buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  EXPECT_NE(blob.find(" 200 "), std::string::npos)
      << "queued connection not served after recovery: " << blob;
  ::close(client);
  server.Stop();
}

TEST(NetServerTest, StopDrainsInFlightResponsesAndRefusesNewWork) {
  // Re-pin the PR 3 drain contract on the epoll core directly: a response
  // in flight at Stop() is flushed; the port stops answering afterwards.
  HttpServer::Options options;
  options.io_threads = 2;
  options.loop_threads = 1;
  std::atomic<bool> release{false};
  HttpServer server(options, [&](const HttpRequest&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    HttpResponse response;
    response.body = "{\"drained\": true}\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  auto pinned = util::ConnectTcp("127.0.0.1", port, 5.0);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(util::SendAll(pinned->fd(),
                            "GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n"));
  ASSERT_TRUE(WaitFor(
      [&] { return server.connection_counts().dispatched >= 1; }, 10s));

  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(50ms);
  release.store(true);
  stopper.join();
  EXPECT_FALSE(server.running());

  // The dispatched response was flushed during the drain.
  util::SetRecvTimeout(pinned->fd(), 10.0);
  std::string blob;
  char buffer[4096];
  while (true) {
    long n = util::RecvSome(pinned->fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  EXPECT_NE(blob.find("\"drained\": true"), std::string::npos) << blob;
  EXPECT_EQ(server.connection_counts().total(), 0u);
}

}  // namespace
}  // namespace htd::net
