// service/persistence.h: snapshot round-trips (including a randomized fuzz
// loop over caches and stores), rejection of truncated / corrupt /
// version-mismatched snapshots with the target state untouched, and a
// behavioural warm-restart check through a real solver-populated store.
#include "service/persistence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/log_k_decomp.h"
#include "hypergraph/generators.h"
#include "service/result_cache.h"
#include "service/subproblem_store.h"
#include "util/rng.h"

namespace htd::service {
namespace {

Fingerprint RandomFingerprint(util::Rng& rng) {
  return Fingerprint{rng.Next64(), rng.Next64()};
}

/// Random decomposition over a `universe`-vertex instance: a random tree
/// with random λ / χ labels (structure only; validity doesn't matter to the
/// codec).
Decomposition RandomDecomposition(util::Rng& rng, int universe) {
  Decomposition decomp;
  int num_nodes = rng.UniformInt(1, 8);
  for (int i = 0; i < num_nodes; ++i) {
    std::vector<int> lambda;
    int width = rng.UniformInt(1, 3);
    for (int j = 0; j < width; ++j) lambda.push_back(rng.UniformInt(0, 30));
    util::DynamicBitset chi(universe);
    int bag = rng.UniformInt(0, std::min(5, universe - 1));
    for (int j = 0; j < bag; ++j) chi.Set(rng.UniformInt(0, universe - 1));
    decomp.AddNode(std::move(lambda), std::move(chi),
                   i == 0 ? -1 : rng.UniformInt(0, i - 1));
  }
  return decomp;
}

SolveResult RandomResult(util::Rng& rng) {
  SolveResult result;
  result.outcome = rng.Chance(0.5) ? Outcome::kYes : Outcome::kNo;
  result.stats.separators_tried = rng.UniformInt(0, 100000);
  result.stats.recursive_calls = rng.UniformInt(0, 5000);
  result.stats.max_recursion_depth = rng.UniformInt(0, 40);
  result.stats.seconds = rng.UniformDouble();
  if (result.outcome == Outcome::kYes && rng.Chance(0.8)) {
    result.decomposition = RandomDecomposition(rng, rng.UniformInt(2, 40));
  }
  return result;
}

CacheKey RandomKey(util::Rng& rng) {
  return CacheKey{RandomFingerprint(rng), rng.UniformInt(1, 6), rng.Next64() % 4};
}

bool SameDecomposition(const std::optional<Decomposition>& a,
                       const std::optional<Decomposition>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->num_nodes() != b->num_nodes() || a->root() != b->root()) return false;
  for (int i = 0; i < a->num_nodes(); ++i) {
    const DecompNode& na = a->node(i);
    const DecompNode& nb = b->node(i);
    if (na.lambda != nb.lambda || na.parent != nb.parent ||
        na.children != nb.children || na.chi != nb.chi) {
      return false;
    }
  }
  return true;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PersistenceTest, EmptySnapshotRoundTrips) {
  ResultCache cache(16, 2);
  SubproblemStore store;
  std::string bytes = EncodeSnapshot(&cache, &store, 7);
  auto restored = DecodeSnapshot(bytes, &cache, &store);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->cache_entries, 0u);
  EXPECT_EQ(restored->store_entries, 0u);
}

TEST(PersistenceTest, NullTargetsDecodeAndDiscard) {
  ResultCache cache(16, 2);
  util::Rng rng(1);
  cache.Insert(RandomKey(rng), RandomResult(rng));
  std::string bytes = EncodeSnapshot(&cache, nullptr, 0);
  // A consumer without a cache (or store) skips the section cleanly.
  auto restored = DecodeSnapshot(bytes, nullptr, nullptr);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->cache_entries, 1u);
}

TEST(PersistenceTest, FuzzCacheRoundTripPreservesLookups) {
  util::Rng rng(20260730);
  for (int round = 0; round < 20; ++round) {
    util::Rng round_rng = rng.Fork();
    int capacity = round_rng.UniformInt(4, 64);
    int shards = round_rng.UniformInt(1, 8);
    ResultCache original(capacity, shards);
    std::vector<CacheKey> keys;
    int inserts = round_rng.UniformInt(1, 48);
    for (int i = 0; i < inserts; ++i) {
      CacheKey key = RandomKey(round_rng);
      original.Insert(key, RandomResult(round_rng));
      keys.push_back(key);
    }

    std::string bytes = EncodeSnapshot(&original, nullptr, round);
    ResultCache restored(capacity, shards);
    auto stats = DecodeSnapshot(bytes, &restored, nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
    EXPECT_EQ(stats->cache_entries, original.num_entries());
    EXPECT_EQ(restored.num_entries(), original.num_entries());

    // Identical lookup behaviour on every key ever inserted: same presence,
    // same outcome, same decomposition.
    for (const CacheKey& key : keys) {
      auto a = original.Lookup(key);
      auto b = restored.Lookup(key);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        EXPECT_EQ(a->outcome, b->outcome);
        EXPECT_EQ(a->stats.separators_tried, b->stats.separators_tried);
        EXPECT_TRUE(SameDecomposition(a->decomposition, b->decomposition));
      }
    }
  }
}

/// Random exported store entry (the portable form the codec carries).
SubproblemStore::ExportedEntry RandomStoreEntry(util::Rng& rng) {
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = RandomFingerprint(rng);
  entry.k = rng.UniformInt(1, 5);
  int negatives = rng.UniformInt(0, 3);
  for (int i = 0; i < negatives; ++i) {
    std::vector<std::vector<int>> traces;
    int count = rng.UniformInt(1, 4);
    for (int j = 0; j < count; ++j) {
      traces.push_back(rng.SampleDistinct(0, 12, rng.UniformInt(1, 4)));
    }
    std::sort(traces.begin(), traces.end());
    traces.erase(std::unique(traces.begin(), traces.end()), traces.end());
    entry.negatives.push_back(std::move(traces));
  }
  int positives = rng.UniformInt(0, 2);
  for (int i = 0; i < positives; ++i) {
    SubproblemStore::ExportedPositive positive;
    int count = rng.UniformInt(1, 3);
    for (int j = 0; j < count; ++j) {
      positive.traces.push_back(rng.SampleDistinct(0, 12, rng.UniformInt(1, 4)));
    }
    std::sort(positive.traces.begin(), positive.traces.end());
    positive.traces.erase(
        std::unique(positive.traces.begin(), positive.traces.end()),
        positive.traces.end());
    PortableFragmentNode node;
    node.lambda = {0};
    int chi_count = rng.UniformInt(1, 4);
    node.chi = rng.SampleDistinct(0, 10, chi_count);
    positive.fragment.nodes.push_back(std::move(node));
    positive.fragment.root = 0;
    entry.positives.push_back(std::move(positive));
  }
  return entry;
}

TEST(PersistenceTest, FuzzStoreRoundTripPreservesEntries) {
  util::Rng rng(424242);
  for (int round = 0; round < 20; ++round) {
    util::Rng round_rng = rng.Fork();
    SubproblemStore original;
    int inserts = round_rng.UniformInt(1, 24);
    for (int i = 0; i < inserts; ++i) {
      original.Import(RandomStoreEntry(round_rng));
    }

    std::string bytes = EncodeSnapshot(nullptr, &original, round);
    SubproblemStore restored;
    auto stats = DecodeSnapshot(bytes, nullptr, &restored);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
    EXPECT_EQ(restored.num_entries(), original.num_entries());

    // Exported contents are identical up to ordering: every variant the
    // original recorded dominates lookups identically in the restored store.
    auto a = original.Export();
    auto b = restored.Export();
    ASSERT_EQ(a.size(), b.size());
    auto entry_key = [](const SubproblemStore::ExportedEntry& e) {
      return std::make_tuple(e.fingerprint.hi, e.fingerprint.lo, e.k);
    };
    auto by_key = [&](const SubproblemStore::ExportedEntry& x,
                      const SubproblemStore::ExportedEntry& y) {
      return entry_key(x) < entry_key(y);
    };
    std::sort(a.begin(), a.end(), by_key);
    std::sort(b.begin(), b.end(), by_key);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(entry_key(a[i]), entry_key(b[i]));
      auto negs_a = a[i].negatives;
      auto negs_b = b[i].negatives;
      std::sort(negs_a.begin(), negs_a.end());
      std::sort(negs_b.begin(), negs_b.end());
      EXPECT_EQ(negs_a, negs_b);
      ASSERT_EQ(a[i].positives.size(), b[i].positives.size());
    }
  }
}

TEST(PersistenceTest, WarmStoreReproducesSolverHits) {
  // Populate a store with a real solve, snapshot it, restore into a fresh
  // store, and check a fresh solver run gets warm hits — the end-to-end
  // property the server's warm start relies on.
  Hypergraph graph = MakeCycle(6);  // hw = 2; populates the store (see
                                    // tests/subproblem_store_test.cc)
  SubproblemStore original;
  SolveOptions options;
  options.subproblem_store = &original;
  LogKDecomp producer(options);
  ASSERT_EQ(producer.Solve(graph, 2).outcome, Outcome::kYes);
  ASSERT_GT(original.num_entries(), 0u);

  std::string bytes = EncodeSnapshot(nullptr, &original, 0);
  SubproblemStore restored;
  ASSERT_TRUE(DecodeSnapshot(bytes, nullptr, &restored).ok());

  SolveOptions warm_options;
  warm_options.subproblem_store = &restored;
  warm_options.validate_result = true;
  LogKDecomp consumer(warm_options);
  SolveResult warm = consumer.Solve(graph, 2);
  ASSERT_EQ(warm.outcome, Outcome::kYes);
  EXPECT_GT(warm.stats.store_positive_hits + warm.stats.store_negative_hits, 0)
      << "restored store must serve the same hits the original would";
}

TEST(PersistenceTest, SaveTimeCompactionDropsDominatedVariantsOnly) {
  // A store holding cross-k-dominated variants must write a strictly
  // smaller snapshot, and the reloaded store must answer the SAME decision
  // probes at every k — the dropped variants were pure redundancy.
  SubproblemStore store;
  Fingerprint fn{4100, 7};
  SubproblemStore::ExportedEntry wide_failure;
  wide_failure.fingerprint = fn;
  wide_failure.k = 3;
  wide_failure.negatives = {{{0}, {1}}};
  ASSERT_TRUE(store.Import(wide_failure));
  SubproblemStore::ExportedEntry implied_failure;  // {{0}} at k=2: dominated
  implied_failure.fingerprint = fn;
  implied_failure.k = 2;
  implied_failure.negatives = {{{0}}};
  ASSERT_TRUE(store.Import(implied_failure));

  Fingerprint fp{4200, 7};
  SubproblemStore::ExportedEntry narrow_fragment;
  narrow_fragment.fingerprint = fp;
  narrow_fragment.k = 2;
  SubproblemStore::ExportedPositive positive;
  positive.traces = {{0}};
  PortableFragmentNode node;
  node.lambda = {0};
  node.chi = {0, 1};
  positive.fragment.nodes.push_back(node);
  positive.fragment.root = 0;
  narrow_fragment.positives.push_back(positive);
  ASSERT_TRUE(store.Import(narrow_fragment));
  SubproblemStore::ExportedEntry implied_fragment;  // k=3 ⊇-traces: dominated
  implied_fragment.fingerprint = fp;
  implied_fragment.k = 3;
  positive.traces = {{0}, {1}};
  implied_fragment.positives.push_back(positive);
  ASSERT_TRUE(store.Import(implied_fragment));
  ASSERT_EQ(store.num_entries(), 4u);

  SnapshotStats written;
  std::string bytes = EncodeSnapshot(nullptr, &store, 0, nullptr, &written);
  EXPECT_EQ(written.compacted, 2u) << "one dominated variant per polarity";
  EXPECT_EQ(written.store_entries, 2u);

  SubproblemStore reloaded;
  ASSERT_TRUE(DecodeSnapshot(bytes, nullptr, &reloaded).ok());
  EXPECT_EQ(reloaded.num_entries(), 2u)
      << "the reloaded store must be strictly smaller than the source";

  // Warm hit behaviour is identical: both original probe points still
  // answer, the dominated ones now through the cross-k fallback.
  Hypergraph graph = MakeCycle(4);
  SubproblemStore::Key probe;
  probe.fingerprint = fn;
  probe.k = 3;
  probe.allowed_traces = {{0}, {1}};
  EXPECT_EQ(reloaded.Lookup(probe, graph, nullptr),
            SubproblemStore::Hit::kNegative);
  probe.k = 2;
  probe.allowed_traces = {{0}};
  EXPECT_EQ(reloaded.Lookup(probe, graph, nullptr),
            SubproblemStore::Hit::kNegative);

  probe.fingerprint = fp;
  probe.k = 2;
  probe.allowed_traces = {{0}};
  EXPECT_EQ(reloaded.Lookup(probe, graph, nullptr),
            SubproblemStore::Hit::kPositive);
  probe.k = 3;
  probe.allowed_traces = {{0}, {1}};
  EXPECT_EQ(reloaded.Lookup(probe, graph, nullptr),
            SubproblemStore::Hit::kPositive);
}

TEST(PersistenceTest, CompactedSnapshotKeepsSolverHitsWarm) {
  // End-to-end flavour of the above: snapshot a solver-populated store and
  // make sure compaction never costs a warm hit on replay.
  Hypergraph graph = MakeCycle(6);
  SubproblemStore original;
  SolveOptions options;
  options.subproblem_store = &original;
  LogKDecomp producer(options);
  ASSERT_EQ(producer.Solve(graph, 2).outcome, Outcome::kYes);

  SnapshotStats written;
  std::string bytes = EncodeSnapshot(nullptr, &original, 0, nullptr, &written);
  SubproblemStore restored;
  ASSERT_TRUE(DecodeSnapshot(bytes, nullptr, &restored).ok());
  EXPECT_LE(restored.num_entries(), original.num_entries());

  SolveOptions warm_options;
  warm_options.subproblem_store = &restored;
  LogKDecomp consumer(warm_options);
  SolveResult warm = consumer.Solve(graph, 2);
  ASSERT_EQ(warm.outcome, Outcome::kYes);

  SolveOptions uncompacted_options;
  uncompacted_options.subproblem_store = &original;
  LogKDecomp reference(uncompacted_options);
  SolveResult ref = reference.Solve(graph, 2);
  ASSERT_EQ(ref.outcome, Outcome::kYes);
  EXPECT_GE(warm.stats.store_positive_hits + warm.stats.store_negative_hits,
            ref.stats.store_positive_hits + ref.stats.store_negative_hits)
      << "compaction must not lose hits the uncompacted store serves";
}

TEST(PersistenceTest, RejectsTruncationAtEveryLength) {
  util::Rng rng(7);
  ResultCache cache(16, 2);
  SubproblemStore store;
  for (int i = 0; i < 6; ++i) cache.Insert(RandomKey(rng), RandomResult(rng));
  for (int i = 0; i < 4; ++i) store.Import(RandomStoreEntry(rng));
  std::string bytes = EncodeSnapshot(&cache, &store, 1);

  // Every proper prefix must be rejected and must leave the targets empty.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    ResultCache fresh_cache(16, 2);
    SubproblemStore fresh_store;
    auto status = DecodeSnapshot(bytes.substr(0, len), &fresh_cache, &fresh_store);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(fresh_cache.num_entries(), 0u);
    EXPECT_EQ(fresh_store.num_entries(), 0u);
  }
}

TEST(PersistenceTest, RejectsBitFlipsInPayload) {
  util::Rng rng(8);
  ResultCache cache(16, 2);
  for (int i = 0; i < 6; ++i) cache.Insert(RandomKey(rng), RandomResult(rng));
  std::string bytes = EncodeSnapshot(&cache, nullptr, 1);

  const size_t header = 36;  // magic + version + digest + size + checksum
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = bytes;
    size_t pos = header + rng.Next64() % (bytes.size() - header);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (trial % 8)));
    if (corrupt == bytes) continue;
    ResultCache fresh(16, 2);
    auto status = DecodeSnapshot(corrupt, &fresh, nullptr);
    EXPECT_FALSE(status.ok()) << "bit flip at " << pos << " accepted";
    EXPECT_EQ(fresh.num_entries(), 0u);
  }
}

TEST(PersistenceTest, RejectsVersionMismatchAndBadMagic) {
  ResultCache cache(16, 2);
  std::string bytes = EncodeSnapshot(&cache, nullptr, 1);

  std::string wrong_version = bytes;
  wrong_version[8] = static_cast<char>(kSnapshotVersion + 1);
  auto status = DecodeSnapshot(wrong_version, &cache, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.status().message().find("version"), std::string::npos);

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(DecodeSnapshot(wrong_magic, &cache, nullptr).ok());
}

TEST(PersistenceTest, SaveAndLoadFile) {
  const std::string path = TempPath("htd_persistence_test.snap");
  std::filesystem::remove(path);

  util::Rng rng(9);
  ResultCache cache(16, 2);
  CacheKey key = RandomKey(rng);
  cache.Insert(key, RandomResult(rng));

  auto missing = LoadSnapshot(path, &cache, nullptr);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);

  auto saved = SaveSnapshot(path, &cache, nullptr, 5);
  ASSERT_TRUE(saved.ok()) << saved.status().message();
  EXPECT_GT(saved->bytes, 0u);

  ResultCache restored(16, 2);
  auto loaded = LoadSnapshot(path, &restored, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(restored.Lookup(key).has_value());
  std::filesystem::remove(path);
}

TEST(PersistenceTest, RestoreIntoSmallerCacheEvictsGracefully) {
  util::Rng rng(10);
  ResultCache big(64, 4);
  for (int i = 0; i < 40; ++i) big.Insert(RandomKey(rng), RandomResult(rng));
  std::string bytes = EncodeSnapshot(&big, nullptr, 0);
  ResultCache small(8, 2);
  auto restored = DecodeSnapshot(bytes, &small, nullptr);
  ASSERT_TRUE(restored.ok());
  EXPECT_LE(small.num_entries(), small.GetStats().capacity);
}

}  // namespace
}  // namespace htd::service
