// Preprocessing (prep/): reductions are width-preserving, lifted HDs
// validate against the original hypergraph, and the wrapper solver agrees
// with raw solvers on every instance family.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "prep/prep_solver.h"
#include "prep/preprocess.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(PreprocessTest, RemovesSubsumedEdge) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  int c = graph.GetOrAddVertex("c");
  ASSERT_TRUE(graph.AddEdge("big", {a, b, c}).ok());
  ASSERT_TRUE(graph.AddEdge("small", {a, b}).ok());

  PreprocessedInstance instance = Preprocess(graph);
  EXPECT_EQ(instance.stats().subsumed_edges_removed, 1);
  ASSERT_EQ(instance.components().size(), 1u);
  EXPECT_EQ(instance.components()[0].graph.num_edges(), 1);
  EXPECT_EQ(instance.components()[0].graph.edge_name(0), "big");
}

TEST(PreprocessTest, DuplicateEdgesKeepLowerId) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("first", {a, b}).ok());
  ASSERT_TRUE(graph.AddEdge("second", {a, b}).ok());

  PreprocessedInstance instance = Preprocess(graph);
  // After contracting twins a,b the two edges are equal; exactly one survives
  // and it is the one with the smaller id.
  ASSERT_EQ(instance.components().size(), 1u);
  ASSERT_EQ(instance.components()[0].graph.num_edges(), 1);
  EXPECT_EQ(instance.components()[0].graph.edge_name(0), "first");
}

TEST(PreprocessTest, ContractsTwinVertices) {
  // x and y occur in exactly the edges {e1}, as does z: all three are twins.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  int z = graph.GetOrAddVertex("z");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("e1", {a, x, y, z}).ok());
  ASSERT_TRUE(graph.AddEdge("e2", {a, b}).ok());

  PreprocessedInstance instance = Preprocess(graph);
  EXPECT_EQ(instance.stats().twin_vertices_contracted, 2);
  EXPECT_EQ(instance.TwinClass(x), (std::vector<int>{x, y, z}));
  ASSERT_EQ(instance.components().size(), 1u);
  EXPECT_EQ(instance.components()[0].graph.num_vertices(), 3);  // a, x, b
}

TEST(PreprocessTest, FixpointChainsTwinsAndSubsumption) {
  // After contracting the twins {x, y}, edge "dup" becomes equal to "base"
  // and must be removed in a later round: the reductions feed each other.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("base", {a, x}).ok());
  ASSERT_TRUE(graph.AddEdge("dup", {a, y}).ok());
  ASSERT_TRUE(graph.AddEdge("tail", {a, b}).ok());
  // x and y are NOT twins initially (different edges); they become twins only
  // if edges merge first — which cannot happen here. Instead check the other
  // direction: make x, y twins via shared incidence.
  PreprocessedInstance instance = Preprocess(graph);
  // No twins, no subsumption: instance unchanged.
  EXPECT_EQ(instance.stats().twin_vertices_contracted, 0);
  EXPECT_EQ(instance.stats().subsumed_edges_removed, 0);
  EXPECT_EQ(instance.ReducedEdgeCount(), 3);
}

TEST(PreprocessTest, SubsumptionCreatesTwins) {
  // "wide" subsumes "narrow"; once "narrow" is gone, vertices c and d occur
  // only in "wide" and collapse into one class with b.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  int c = graph.GetOrAddVertex("c");
  int d = graph.GetOrAddVertex("d");
  int e = graph.GetOrAddVertex("e");
  ASSERT_TRUE(graph.AddEdge("wide", {a, b, c, d}).ok());
  ASSERT_TRUE(graph.AddEdge("narrow", {c, d}).ok());
  ASSERT_TRUE(graph.AddEdge("anchor", {a, e}).ok());

  PreprocessedInstance instance = Preprocess(graph);
  EXPECT_EQ(instance.stats().subsumed_edges_removed, 1);
  EXPECT_EQ(instance.stats().twin_vertices_contracted, 2);  // c, d join b
  EXPECT_EQ(instance.TwinClass(b), (std::vector<int>{b, c, d}));
  EXPECT_GE(instance.stats().fixpoint_rounds, 2);
}

TEST(PreprocessTest, SplitsConnectedComponents) {
  Hypergraph graph;
  std::vector<int> left, right;
  for (int i = 0; i < 4; ++i) left.push_back(graph.GetOrAddVertex("l" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) right.push_back(graph.GetOrAddVertex("r" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graph.AddEdge({left[i], left[(i + 1) % 4]}).ok());
    ASSERT_TRUE(graph.AddEdge({right[i], right[(i + 1) % 4]}).ok());
  }

  PreprocessedInstance instance = Preprocess(graph);
  EXPECT_EQ(instance.stats().num_components, 2);
  for (const ReducedComponent& component : instance.components()) {
    EXPECT_EQ(component.graph.num_edges(), 4);
    EXPECT_EQ(component.graph.num_vertices(), 4);
  }
}

TEST(PreprocessTest, OptionsDisableIndividualReductions) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  int c = graph.GetOrAddVertex("c");
  ASSERT_TRUE(graph.AddEdge("big", {a, b, c}).ok());
  ASSERT_TRUE(graph.AddEdge("small", {a, b}).ok());

  PreprocessOptions no_subsume;
  no_subsume.remove_subsumed_edges = false;
  no_subsume.contract_twin_vertices = false;
  PreprocessedInstance instance = Preprocess(graph, no_subsume);
  EXPECT_EQ(instance.stats().subsumed_edges_removed, 0);
  EXPECT_EQ(instance.ReducedEdgeCount(), 2);
}

TEST(PreprocessTest, EdgelessGraphLiftsToTrivialDecomposition) {
  Hypergraph graph;
  PreprocessedInstance instance = Preprocess(graph);
  EXPECT_EQ(instance.stats().num_components, 0);
  Decomposition lifted = instance.Lift(graph, {});
  EXPECT_EQ(lifted.num_nodes(), 1);
  EXPECT_EQ(lifted.Width(), 0);
}

TEST(PrepSolverTest, LiftedHdValidatesOnOriginal) {
  // Cycle + duplicated vertices + a subsumed edge + a second component.
  Hypergraph graph = MakeCycle(8);
  int extra1 = graph.AddVertex();
  int extra2 = graph.AddVertex();
  ASSERT_TRUE(graph.AddEdge("twins", {graph.FindVertex("x0"), extra1, extra2}).ok());
  ASSERT_TRUE(graph
                  .AddEdge("subsumed",
                           {graph.FindVertex("x0"), graph.FindVertex("x1")})
                  .ok());
  int island_a = graph.AddVertex();
  int island_b = graph.AddVertex();
  ASSERT_TRUE(graph.AddEdge("island", {island_a, island_b}).ok());

  LogKDecomp inner;
  PreprocessingSolver solver(inner, {}, /*validate_result=*/true);
  SolveResult result = solver.Solve(graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  ASSERT_TRUE(result.decomposition.has_value());
  Validation validation = ValidateHdWithWidth(graph, *result.decomposition, 2);
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_GT(solver.last_prep_stats().subsumed_edges_removed, 0);
  EXPECT_GT(solver.last_prep_stats().twin_vertices_contracted, 0);
  EXPECT_EQ(solver.last_prep_stats().num_components, 2);
}

TEST(PrepSolverTest, RejectsWidthBelowOptimum) {
  Hypergraph graph = MakeCycle(9);  // hw = 2
  LogKDecomp inner;
  PreprocessingSolver solver(inner);
  EXPECT_EQ(solver.Solve(graph, 1).outcome, Outcome::kNo);
  EXPECT_EQ(solver.Solve(graph, 2).outcome, Outcome::kYes);
}

TEST(PrepSolverTest, DisconnectedComponentsDecideIndependently) {
  // Component widths 1 and 2: hw of the union is 2.
  Hypergraph graph;
  std::vector<int> path, cycle;
  for (int i = 0; i < 3; ++i) path.push_back(graph.GetOrAddVertex("p" + std::to_string(i)));
  for (int i = 0; i < 5; ++i) cycle.push_back(graph.GetOrAddVertex("c" + std::to_string(i)));
  for (int i = 0; i + 1 < 3; ++i) ASSERT_TRUE(graph.AddEdge({path[i], path[i + 1]}).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(graph.AddEdge({cycle[i], cycle[(i + 1) % 5]}).ok());

  DetKDecomp inner;
  PreprocessingSolver solver(inner, {}, /*validate_result=*/true);
  EXPECT_EQ(solver.Solve(graph, 1).outcome, Outcome::kNo);
  SolveResult result = solver.Solve(graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  Validation validation = ValidateHd(graph, *result.decomposition);
  EXPECT_TRUE(validation.ok) << validation.error;
}

// ---------------------------------------------------------------------------
// Property sweep: preprocessing must not change the optimal width, and every
// lifted HD must pass the full validator on the original hypergraph.

Hypergraph RandomPrepInstance(uint64_t seed) {
  util::Rng rng(seed);
  switch (seed % 5) {
    case 0:
      return MakeRandomCsp(rng, 12, 8, 2, 4);  // high arity => twins
    case 1:
      return MakeRandomCq(rng, 9, 4, 0.3);
    case 2:
      return MakeHyperCycle(4 + static_cast<int>(seed % 4), 4, 2);
    case 3: {
      Hypergraph graph = MakeGrid(3, 3);
      return AddRandomChords(graph, rng, 2);
    }
    default: {
      // Deliberately messy: star + duplicate edges + an isolated cycle.
      Hypergraph graph = MakeStar(5);
      int a = graph.AddVertex();
      int b = graph.AddVertex();
      int c = graph.AddVertex();
      (void)graph.AddEdge({a, b});
      (void)graph.AddEdge({b, c});
      (void)graph.AddEdge({a, b});  // duplicate
      return graph;
    }
  }
}

class PrepPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrepPropertyTest, OptimalWidthUnchangedByPreprocessing) {
  const uint64_t seed = GetParam();
  Hypergraph graph = RandomPrepInstance(seed);

  DetKDecomp raw;
  DetKDecomp inner;
  PreprocessingSolver prepped(inner, {}, /*validate_result=*/true);

  OptimalRun raw_run = FindOptimalWidth(raw, graph, /*max_k=*/6);
  OptimalRun prep_run = FindOptimalWidth(prepped, graph, /*max_k=*/6);

  ASSERT_EQ(raw_run.outcome, Outcome::kYes) << "seed=" << seed;
  ASSERT_EQ(prep_run.outcome, Outcome::kYes) << "seed=" << seed;
  EXPECT_EQ(raw_run.width, prep_run.width) << "seed=" << seed;

  ASSERT_TRUE(prep_run.decomposition.has_value());
  Validation validation =
      ValidateHdWithWidth(graph, *prep_run.decomposition, prep_run.width);
  EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrepPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace htd
