#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(HybridTest, DefaultHybridSolvesFamilies) {
  std::unique_ptr<HdSolver> hybrid = MakeDefaultHybrid();
  EXPECT_EQ(hybrid->Solve(MakePath(10), 1).outcome, Outcome::kYes);
  EXPECT_EQ(hybrid->Solve(MakeCycle(12), 1).outcome, Outcome::kNo);
  SolveResult result = hybrid->Solve(MakeCycle(12), 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  Validation validation = ValidateHdWithWidth(MakeCycle(12), *result.decomposition, 2);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(HybridTest, HandsOffToDetKBelowThreshold) {
  // With a generous EdgeCount threshold, even the top-level call goes to
  // det-k; the counter must reflect the hand-off.
  std::unique_ptr<HdSolver> hybrid =
      MakeHybridSolver(HybridMetric::kEdgeCount, /*threshold=*/1000.0);
  SolveResult result = hybrid->Solve(MakeCycle(10), 2);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  EXPECT_GT(result.stats.detk_subproblems, 0);
}

TEST(HybridTest, NoHandOffWithZeroThreshold) {
  std::unique_ptr<HdSolver> hybrid =
      MakeHybridSolver(HybridMetric::kEdgeCount, /*threshold=*/0.0);
  SolveResult result = hybrid->Solve(MakeCycle(10), 2);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  EXPECT_EQ(result.stats.detk_subproblems, 0);
}

TEST(HybridTest, WeightedCountAgreesWithPlainSolvers) {
  for (uint64_t seed = 60; seed < 72; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeRandomCsp(rng, 16, 11, 2, 4);
    DetKDecomp det_k;
    for (double threshold : {5.0, 40.0, 1000.0}) {
      std::unique_ptr<HdSolver> hybrid =
          MakeHybridSolver(HybridMetric::kWeightedCount, threshold);
      for (int k = 2; k <= 3; ++k) {
        EXPECT_EQ(hybrid->Solve(graph, k).outcome, det_k.Solve(graph, k).outcome)
            << "seed=" << seed << " T=" << threshold << " k=" << k;
      }
    }
  }
}

TEST(HybridTest, HybridHdsValidate) {
  for (uint64_t seed = 80; seed < 88; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeRandomCq(rng, 16, 4, 0.3);
    std::unique_ptr<HdSolver> hybrid =
        MakeHybridSolver(HybridMetric::kWeightedCount, 30.0);
    for (int k = 1; k <= 3; ++k) {
      SolveResult result = hybrid->Solve(graph, k);
      if (result.outcome == Outcome::kYes) {
        Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
        EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;
      }
    }
  }
}

TEST(HybridTest, ParallelHybridMatches) {
  util::Rng rng(5);
  Hypergraph graph = MakeRandomCsp(rng, 18, 13, 2, 4);
  SolveOptions base;
  base.num_threads = 3;
  base.parallel_min_size = 4;
  std::unique_ptr<HdSolver> hybrid =
      MakeHybridSolver(HybridMetric::kWeightedCount, 20.0, base);
  DetKDecomp det_k;
  for (int k = 2; k <= 3; ++k) {
    EXPECT_EQ(hybrid->Solve(graph, k).outcome, det_k.Solve(graph, k).outcome);
  }
}

TEST(HybridTest, FactoryNames) {
  EXPECT_EQ(MakeDefaultHybrid()->name(), "log-k-hybrid(WeightedCount)");
  EXPECT_EQ(MakeHybridSolver(HybridMetric::kEdgeCount, 20)->name(),
            "log-k-hybrid(EdgeCount)");
}

}  // namespace
}  // namespace htd
