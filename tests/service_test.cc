// DecompositionService end-to-end: real solvers behind the full
// fingerprint ➞ cache ➞ scheduler flow.
#include "service/service.h"

#include <gtest/gtest.h>

#include <vector>

#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd::service {
namespace {

TEST(ServiceTest, SolvesWithRealSolver) {
  ServiceOptions options;
  options.solver_name = "logk";
  options.num_workers = 2;
  DecompositionService service(options);

  Hypergraph cycle = MakeCycle(10);
  JobResult no = service.Solve(cycle, 1);
  EXPECT_EQ(no.result.outcome, Outcome::kNo);

  JobResult yes = service.Solve(cycle, 2);
  ASSERT_EQ(yes.result.outcome, Outcome::kYes);
  ASSERT_TRUE(yes.result.decomposition.has_value());
  EXPECT_TRUE(ValidateHdWithWidth(cycle, *yes.result.decomposition, 2).ok);
}

TEST(ServiceTest, SecondIdenticalRequestIsACacheHit) {
  DecompositionService service;
  Hypergraph graph = MakeGrid(3, 3);
  JobResult first = service.Solve(graph, 3);
  EXPECT_FALSE(first.cache_hit);
  JobResult second = service.Solve(graph, 3);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.outcome, first.result.outcome);
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(ServiceTest, RenamedInstanceHitsTheSameCacheEntry) {
  DecompositionService service;

  // The same 6-cycle built twice with disjoint vertex names and reversed
  // edge order: one solve, one cache hit.
  Hypergraph original;
  std::vector<int> first_ids;
  for (int i = 0; i < 6; ++i) first_ids.push_back(original.GetOrAddVertex("a" + std::to_string(i)));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(original.AddEdge({first_ids[i], first_ids[(i + 1) % 6]}).ok());
  }
  Hypergraph renamed;
  std::vector<int> second_ids;
  for (int i = 0; i < 6; ++i) second_ids.push_back(renamed.GetOrAddVertex("z" + std::to_string(5 - i)));
  for (int i = 5; i >= 0; --i) {
    ASSERT_TRUE(renamed.AddEdge({second_ids[(i + 1) % 6], second_ids[i]}).ok());
  }

  JobResult first = service.Solve(original, 2);
  JobResult second = service.Solve(renamed, 2);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.outcome, Outcome::kYes);
}

TEST(ServiceTest, BatchSubmissionCompletesEveryJob) {
  ServiceOptions options;
  options.num_workers = 4;
  DecompositionService service(options);

  std::vector<Hypergraph> graphs;
  for (int n = 4; n <= 9; ++n) graphs.push_back(MakeCycle(n));
  std::vector<JobSpec> specs;
  for (const Hypergraph& graph : graphs) {
    JobSpec spec;
    spec.graph = &graph;
    spec.k = 2;
    specs.push_back(spec);
  }
  auto futures = service.SubmitBatch(specs);
  ASSERT_EQ(futures.size(), graphs.size());
  for (auto& future : futures) {
    EXPECT_EQ(future.get().result.outcome, Outcome::kYes);
  }
  EXPECT_EQ(service.scheduler_stats().completed, graphs.size());
}

TEST(ServiceTest, CacheDisabledStillSolves) {
  ServiceOptions options;
  options.enable_result_cache = false;
  DecompositionService service(options);
  Hypergraph graph = MakeCycle(6);
  EXPECT_EQ(service.Solve(graph, 2).result.outcome, Outcome::kYes);
  EXPECT_FALSE(service.Solve(graph, 2).cache_hit);
  EXPECT_EQ(service.cache_stats().capacity, 0u);
}

TEST(ServiceTest, DefaultTimeoutProducesCancelledOutcome) {
  ServiceOptions options;
  options.solver_name = "detk";  // sequential: a hard CSP at high k stalls it
  // A deadline this far below any real solve's first cancellation check makes
  // the outcome deterministic: the token is already expired when the flight
  // starts, however fast the machine.
  options.default_timeout_seconds = 1e-6;
  DecompositionService service(options);
  util::Rng rng(7);
  Hypergraph hard = MakeRandomCsp(rng, 40, 28, 3, 5);
  JobResult job = service.Solve(hard, 4);
  EXPECT_EQ(job.result.outcome, Outcome::kCancelled);
}

TEST(ServiceTest, CreateRejectsUnknownSolver) {
  ServiceOptions options;
  options.solver_name = "no-such-solver";
  auto service = DecompositionService::Create(options);
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ServiceTest, CreateRejectsBadWorkerCount) {
  ServiceOptions options;
  options.num_workers = 0;
  EXPECT_FALSE(DecompositionService::Create(options).ok());
}

TEST(ServiceTest, EveryRegisteredSolverWorksEndToEnd) {
  for (const std::string& name : KnownSolverNames()) {
    ServiceOptions options;
    options.solver_name = name;
    options.num_workers = 2;
    auto service = DecompositionService::Create(options);
    ASSERT_TRUE(service.ok()) << name;
    Hypergraph graph = MakeCycle(6);
    JobResult job = (*service)->Solve(graph, 2);
    EXPECT_EQ(job.result.outcome, Outcome::kYes) << name;
  }
}

}  // namespace
}  // namespace htd::service
