// service/shard_map.h: parse/serialise, deterministic range lookup, digest
// behaviour, and the fingerprint-range filters it drives through the warm
// state (ResultCache::ForEach, SubproblemStore::Import, snapshot
// encode/decode) — including the resharding story: a snapshot taken under
// one topology loads cleanly under another, dropping out-of-range entries
// with a count.
#include "service/shard_map.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "service/persistence.h"
#include "service/result_cache.h"
#include "service/subproblem_store.h"
#include "util/rng.h"

namespace htd::service {
namespace {

ShardMap MustParse(const std::string& spec) {
  auto map = ShardMap::Parse(spec);
  EXPECT_TRUE(map.ok()) << map.status().message();
  return *map;
}

TEST(ShardMapTest, ParseSerialiseRoundTrip) {
  ShardMap map = MustParse(" 10.0.0.1:8080, 10.0.0.2:9090 ,localhost:1");
  EXPECT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.endpoint(0).host, "10.0.0.1");
  EXPECT_EQ(map.endpoint(0).port, 8080);
  EXPECT_EQ(map.endpoint(2).host, "localhost");
  EXPECT_EQ(map.Serialise(), "10.0.0.1:8080,10.0.0.2:9090,localhost:1");
  ShardMap reparsed = MustParse(map.Serialise());
  EXPECT_EQ(reparsed.Serialise(), map.Serialise());
  EXPECT_EQ(reparsed.Digest(), map.Digest());
}

TEST(ShardMapTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ShardMap::Parse("").ok());
  EXPECT_FALSE(ShardMap::Parse("hostonly").ok());
  EXPECT_FALSE(ShardMap::Parse("host:0").ok());
  EXPECT_FALSE(ShardMap::Parse("host:65536").ok());
  EXPECT_FALSE(ShardMap::Parse("host:12x").ok());
  EXPECT_FALSE(ShardMap::Parse("a:1,,b:2").ok());
  EXPECT_FALSE(ShardMap::Parse(":8080").ok());
  EXPECT_TRUE(ShardMap::Parse("a:1").ok());
}

TEST(ShardMapTest, DigestSeparatesTopologies) {
  ShardMap two = MustParse("a:1,b:2");
  // Different endpoint, different order, different count: all different
  // routing decisions, so all must have different digests.
  EXPECT_NE(two.Digest(), MustParse("a:1,b:3").Digest());
  EXPECT_NE(two.Digest(), MustParse("b:2,a:1").Digest());
  EXPECT_NE(two.Digest(), MustParse("a:1").Digest());
  EXPECT_NE(two.Digest(), MustParse("a:1,b:2,c:3").Digest());
  EXPECT_EQ(two.Digest(), MustParse("a:1, b:2").Digest())
      << "whitespace is not topology";
  EXPECT_EQ(two.DigestHex().size(), 16u);
}

TEST(ShardMapTest, RangesPartitionTheSpace) {
  for (int n : {1, 2, 3, 7, 16}) {
    std::string spec;
    for (int i = 0; i < n; ++i) {
      spec += (i ? "," : "") + std::string("h") + std::to_string(i) + ":80";
    }
    ShardMap map = MustParse(spec);
    // Contiguous, gap-free, full coverage.
    EXPECT_EQ(map.RangeFor(0).first_hi, 0u) << n;
    EXPECT_EQ(map.RangeFor(n - 1).last_hi, ~0ULL) << n;
    for (int i = 0; i + 1 < n; ++i) {
      EXPECT_EQ(map.RangeFor(i).last_hi + 1, map.RangeFor(i + 1).first_hi)
          << "gap between shards " << i << " and " << i + 1 << " of " << n;
    }
  }
}

TEST(ShardMapTest, LookupIsDeterministicAndAgreesWithRanges) {
  ShardMap map = MustParse("a:1,b:2,c:3");
  ShardMap same = MustParse("a:1,b:2,c:3");
  util::Rng rng(7);
  std::set<int> used;
  for (int trial = 0; trial < 2000; ++trial) {
    Fingerprint fp;
    fp.hi = rng.Next64();
    fp.lo = rng.Next64();
    int index = map.IndexFor(fp);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, map.num_shards());
    EXPECT_EQ(index, same.IndexFor(fp)) << "equal maps must route equally";
    EXPECT_TRUE(map.RangeFor(index).Contains(fp));
    // Exactly one shard's range contains the fingerprint.
    for (int other = 0; other < map.num_shards(); ++other) {
      EXPECT_EQ(map.RangeFor(other).Contains(fp), other == index);
    }
    used.insert(index);
  }
  EXPECT_EQ(used.size(), 3u) << "2000 uniform keys must touch every shard";
  // Boundary fingerprints.
  Fingerprint zero{0, 0}, top{~0ULL, ~0ULL};
  EXPECT_EQ(map.IndexFor(zero), 0);
  EXPECT_EQ(map.IndexFor(top), 2);
}

// ---------------------------------------------------------------------------
// Replica groups ("host:port*R").

TEST(ShardMapTest, ReplicaGroupsParseAndSerialise) {
  ShardMap map = MustParse("a:1,b:2*2,c:3,d:4");
  EXPECT_EQ(map.num_shards(), 3) << "a replicated range counts once";
  EXPECT_EQ(map.num_endpoints(), 4);
  EXPECT_EQ(map.num_replicas(0), 1);
  EXPECT_EQ(map.num_replicas(1), 2);
  EXPECT_EQ(map.num_replicas(2), 1);
  EXPECT_EQ(map.endpoint(1).host, "b") << "endpoint() is the primary replica";
  EXPECT_EQ(map.replica(1, 1).host, "c");
  EXPECT_EQ(map.endpoint(2).host, "d");
  EXPECT_EQ(map.Serialise(), "a:1,b:2*2,c:3,d:4");
  ShardMap reparsed = MustParse(map.Serialise());
  EXPECT_EQ(reparsed.Digest(), map.Digest());
}

TEST(ShardMapTest, ReplicationIsTopology) {
  // Folding replication into the digest: the same processes with a
  // different replica grouping route imports/writes differently, so the
  // digests must disagree (and *1 is the canonical no-replication form).
  EXPECT_NE(MustParse("a:1,b:2*2,c:3").Digest(),
            MustParse("a:1,b:2,c:3").Digest());
  EXPECT_EQ(MustParse("a:1*1,b:2").Digest(), MustParse("a:1,b:2").Digest());
  EXPECT_EQ(MustParse("a:1*1,b:2").Serialise(), "a:1,b:2");
}

TEST(ShardMapTest, ReplicaRangesStayAligned) {
  // Replication must not move range boundaries: N ranges slice the space
  // identically whether or not any of them is replicated.
  ShardMap plain = MustParse("a:1,b:2,c:3");
  ShardMap replicated = MustParse("a:1,b:2*2,x:9,c:3");
  ASSERT_EQ(replicated.num_shards(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plain.RangeFor(i).first_hi, replicated.RangeFor(i).first_hi);
    EXPECT_EQ(plain.RangeFor(i).last_hi, replicated.RangeFor(i).last_hi);
  }
}

TEST(ShardMapTest, ReplicaGroupsRejectGarbage) {
  EXPECT_FALSE(ShardMap::Parse("a:1*2").ok()) << "group one endpoint short";
  EXPECT_FALSE(ShardMap::Parse("a:1*2,b:2*2,c:3").ok())
      << "group opened inside a group";
  EXPECT_FALSE(ShardMap::Parse("a:1*0,b:2").ok());
  EXPECT_FALSE(ShardMap::Parse("a:1*9,b:1,b:2,b:3,b:4,b:5,b:6,b:7,b:8").ok())
      << "replica count above the cap";
  EXPECT_FALSE(ShardMap::Parse("a:1*x,b:2").ok());
  EXPECT_FALSE(ShardMap::Parse("a:1,a:1").ok())
      << "one process cannot serve two slots";
}

TEST(ShardMapTest, SiblingsExcludeSelfOnly) {
  ShardMap map = MustParse("a:1*2,b:1,c:1");
  auto hosts = [](const std::vector<ShardEndpoint>& endpoints) {
    std::vector<std::string> out;
    for (const auto& endpoint : endpoints) out.push_back(endpoint.host);
    return out;
  };
  EXPECT_EQ(hosts(map.Siblings(0, ShardEndpoint{"a", 1})),
            std::vector<std::string>{"b"});
  EXPECT_EQ(hosts(map.Siblings(0, ShardEndpoint{"b", 1})),
            std::vector<std::string>{"a"});
  EXPECT_TRUE(map.Siblings(1, ShardEndpoint{"c", 1}).empty())
      << "an unreplicated range has no one to reconcile with";
  // A caller not in the group (a router, a drained replica) sees everyone.
  EXPECT_EQ(hosts(map.Siblings(0, ShardEndpoint{"z", 9})),
            (std::vector<std::string>{"a", "b"}));
  // Port differences matter: a:2 is not the a:1 replica.
  EXPECT_EQ(hosts(map.Siblings(0, ShardEndpoint{"a", 2})),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ShardMapTest, RangeOfEndpointFindsAnyReplica) {
  ShardMap map = MustParse("a:1,b:2*2,c:3");
  EXPECT_EQ(map.RangeOfEndpoint({"a", 1}), 0);
  EXPECT_EQ(map.RangeOfEndpoint({"b", 2}), 1);
  EXPECT_EQ(map.RangeOfEndpoint({"c", 3}), 1) << "second replica, same range";
  EXPECT_EQ(map.RangeOfEndpoint({"d", 4}), -1);
}

// ---------------------------------------------------------------------------
// Range filters through the warm state.

CacheKey KeyAt(uint64_t hi, int k = 2) {
  CacheKey key;
  key.fingerprint = Fingerprint{hi, 0x1234};
  key.k = k;
  key.config_digest = 42;
  return key;
}

SolveResult YesResult() {
  SolveResult result;
  result.outcome = Outcome::kYes;
  return result;
}

TEST(ShardMapTest, CacheForEachHonoursRange) {
  ResultCache cache(/*capacity=*/16, /*num_shards=*/4);
  cache.Insert(KeyAt(10), YesResult());
  cache.Insert(KeyAt(1ULL << 63), YesResult());
  cache.Insert(KeyAt(~0ULL), YesResult());

  FingerprintRange lower{0, (1ULL << 63) - 1};
  std::vector<uint64_t> seen;
  cache.ForEach([&](const CacheKey& key, const SolveResult&) {
    seen.push_back(key.fingerprint.hi);
  }, &lower);
  EXPECT_EQ(seen, std::vector<uint64_t>{10});

  seen.clear();
  cache.ForEach([&](const CacheKey& key, const SolveResult&) {
    seen.push_back(key.fingerprint.hi);
  });
  EXPECT_EQ(seen.size(), 3u) << "no range = every entry";
}

SubproblemStore::ExportedEntry StoreEntryAt(uint64_t hi) {
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = Fingerprint{hi, 7};
  entry.k = 2;
  entry.negatives.push_back({{0, 1}, {1, 2}});
  return entry;
}

TEST(ShardMapTest, StoreImportHonoursRange) {
  SubproblemStore store;
  FingerprintRange upper{1ULL << 63, ~0ULL};
  EXPECT_FALSE(store.Import(StoreEntryAt(5), &upper));
  EXPECT_TRUE(store.Import(StoreEntryAt(~0ULL - 3), &upper));
  EXPECT_TRUE(store.Import(StoreEntryAt(5), nullptr)) << "no range = import all";
  EXPECT_EQ(store.num_entries(), 2u);

  FingerprintRange lower{0, (1ULL << 63) - 1};
  auto exported = store.Export(&lower);
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].fingerprint.hi, 5u);
}

TEST(ShardMapTest, ReshardedSnapshotLoadsWithDrops) {
  // Warm state written by an UNSHARDED server...
  ResultCache cache(16);
  SubproblemStore store;
  // Both inside shard 0-of-4's quarter [0, 2^62); ~0 is far outside it.
  const uint64_t low_hi = 10, high_hi = (1ULL << 62) - 5;
  cache.Insert(KeyAt(low_hi), YesResult());
  cache.Insert(KeyAt(high_hi), YesResult());
  cache.Insert(KeyAt(~0ULL), YesResult());
  store.Import(StoreEntryAt(low_hi));
  store.Import(StoreEntryAt(~0ULL));
  std::string snapshot = EncodeSnapshot(&cache, &store, /*config_digest=*/1);

  // ...restores into shard 0 of 4: only the first quarter of the space
  // survives, the rest is dropped and counted — never an error.
  ShardMap map = MustParse("a:1,b:2,c:3,d:4");
  FingerprintRange range = map.RangeFor(0);
  ResultCache restored_cache(16);
  SubproblemStore restored_store;
  auto stats = DecodeSnapshot(snapshot, &restored_cache, &restored_store, &range);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->cache_entries, 2u);  // low_hi and high_hi < 2^62+
  EXPECT_EQ(stats->store_entries, 1u);
  EXPECT_EQ(stats->dropped_out_of_range, 2u);
  EXPECT_EQ(restored_cache.num_entries(), 2u);
  EXPECT_EQ(restored_store.num_entries(), 1u);
  EXPECT_TRUE(restored_cache.Lookup(KeyAt(low_hi)).has_value());
  EXPECT_FALSE(restored_cache.Lookup(KeyAt(~0ULL)).has_value());

  // A sharded SAVE writes only the shard's own range.
  auto partial =
      DecodeSnapshot(EncodeSnapshot(&cache, &store, 1, &range), &restored_cache,
                     &restored_store, nullptr);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->cache_entries, 2u);
  EXPECT_EQ(partial->store_entries, 1u);
  EXPECT_EQ(partial->dropped_out_of_range, 0u)
      << "a per-shard snapshot contains nothing to drop";
}

}  // namespace
}  // namespace htd::service
