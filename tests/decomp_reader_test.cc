// JSON decomposition reader: round-trips with the writer, and rejects every
// malformed-input class with a useful error.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "decomp/decomp_reader.h"
#include "decomp/decomp_writer.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(DecompReaderTest, ParsesHandWrittenDocument) {
  Hypergraph path = MakePath(3);  // R1(x0,x1), R2(x1,x2)
  const char* json = R"({"nodes": [
    {"id": 0, "parent": -1, "lambda": ["R1"], "chi": ["x0", "x1"]},
    {"id": 1, "parent": 0, "lambda": ["R2"], "chi": ["x1", "x2"]}
  ]})";
  auto decomp = ParseDecompositionJson(path, json);
  ASSERT_TRUE(decomp.ok()) << decomp.status().ToString();
  EXPECT_EQ(decomp->num_nodes(), 2);
  EXPECT_EQ(decomp->Width(), 1);
  Validation validation = ValidateHd(path, *decomp);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(DecompReaderTest, AcceptsNodesInArbitraryOrder) {
  Hypergraph path = MakePath(3);
  // Child listed before its parent, ids not dense.
  const char* json = R"({"nodes": [
    {"id": 7, "parent": 42, "lambda": ["R2"], "chi": ["x1", "x2"]},
    {"id": 42, "parent": -1, "lambda": ["R1"], "chi": ["x0", "x1"]}
  ]})";
  auto decomp = ParseDecompositionJson(path, json);
  ASSERT_TRUE(decomp.ok()) << decomp.status().ToString();
  EXPECT_EQ(decomp->num_nodes(), 2);
  EXPECT_EQ(decomp->node(decomp->root()).lambda, (std::vector<int>{0}));
}

TEST(DecompReaderTest, ChecksDeclaredWidth) {
  Hypergraph path = MakePath(3);
  const char* json = R"({"width": 2, "nodes": [
    {"id": 0, "parent": -1, "lambda": ["R1"], "chi": ["x0", "x1"]},
    {"id": 1, "parent": 0, "lambda": ["R2"], "chi": ["x1", "x2"]}
  ]})";
  auto decomp = ParseDecompositionJson(path, json);
  ASSERT_FALSE(decomp.ok());
  EXPECT_NE(decomp.status().message().find("width"), std::string::npos);
}

struct BadCase {
  const char* name;
  const char* json;
};

class DecompReaderRejectionTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(DecompReaderRejectionTest, RejectsMalformedInput) {
  Hypergraph path = MakePath(3);
  auto decomp = ParseDecompositionJson(path, GetParam().json);
  EXPECT_FALSE(decomp.ok()) << "case: " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DecompReaderRejectionTest,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"not_json", "hello"},
        BadCase{"no_nodes", R"({"width": 1})"},
        BadCase{"empty_nodes", R"({"nodes": []})"},
        BadCase{"two_roots",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": [], "chi": []},
                              {"id": 1, "parent": -1, "lambda": [], "chi": []}]})"},
        BadCase{"no_root",
                R"({"nodes": [{"id": 0, "parent": 1, "lambda": [], "chi": []},
                              {"id": 1, "parent": 0, "lambda": [], "chi": []}]})"},
        BadCase{"unknown_parent",
                R"({"nodes": [{"id": 0, "parent": 9, "lambda": [], "chi": []}]})"},
        BadCase{"duplicate_id",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": [], "chi": []},
                              {"id": 0, "parent": 0, "lambda": [], "chi": []}]})"},
        BadCase{"unknown_edge",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": ["nope"], "chi": []}]})"},
        BadCase{"unknown_vertex",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": [], "chi": ["nope"]}]})"},
        BadCase{"missing_parent_field",
                R"({"nodes": [{"id": 0, "lambda": [], "chi": []}]})"},
        BadCase{"unterminated_string",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": ["R1)"},
        BadCase{"trailing_garbage",
                R"({"nodes": [{"id": 0, "parent": -1, "lambda": [], "chi": []}]} x)"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, WriterOutputParsesBackIdentically) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  Hypergraph graph = (seed % 2 == 0) ? MakeRandomCsp(rng, 12, 8, 2, 4)
                                     : MakeRandomCq(rng, 10, 4, 0.3);
  DetKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, graph, 6);
  ASSERT_EQ(run.outcome, Outcome::kYes) << "seed=" << seed;

  std::string json = WriteDecompositionJson(graph, *run.decomposition);
  auto parsed = ParseDecompositionJson(graph, json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " seed=" << seed;

  // Node-by-node equality (ids are preserved by the writer).
  ASSERT_EQ(parsed->num_nodes(), run.decomposition->num_nodes());
  EXPECT_EQ(parsed->Width(), run.decomposition->Width());
  for (int u = 0; u < parsed->num_nodes(); ++u) {
    EXPECT_EQ(parsed->node(u).lambda, run.decomposition->node(u).lambda);
    EXPECT_EQ(parsed->node(u).chi, run.decomposition->node(u).chi);
    EXPECT_EQ(parsed->node(u).parent, run.decomposition->node(u).parent);
  }
  Validation validation = ValidateHd(graph, *parsed);
  EXPECT_TRUE(validation.ok) << validation.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htd
