// Differential property tests: all solvers must agree on hw(H) <= k, every
// constructed HD must validate, and decisions must be monotone in k.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

Hypergraph RandomInstance(uint64_t seed) {
  util::Rng rng(seed);
  switch (seed % 4) {
    case 0:
      return MakeRandomCsp(rng, 14, 9, 2, 4);
    case 1:
      return MakeRandomCq(rng, 10, 4, 0.35);
    case 2:
      return AddRandomChords(MakePath(7), rng, 3);
    default:
      return MakeHyperCycle(3 + static_cast<int>(seed % 5), 3, 1);
  }
}

class CrossSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossSolverTest, AllSolversAgreeAndHdsValidate) {
  const uint64_t seed = GetParam();
  Hypergraph graph = RandomInstance(seed);

  DetKDecomp det_k;
  LogKDecomp log_k;
  std::unique_ptr<HdSolver> hybrid =
      MakeHybridSolver(HybridMetric::kEdgeCount, /*threshold=*/5.0);

  Outcome previous = Outcome::kNo;
  for (int k = 1; k <= 4; ++k) {
    SolveResult det_result = det_k.Solve(graph, k);
    SolveResult log_result = log_k.Solve(graph, k);
    SolveResult hybrid_result = hybrid->Solve(graph, k);

    EXPECT_EQ(det_result.outcome, log_result.outcome)
        << "det-k vs log-k disagree, seed=" << seed << " k=" << k;
    EXPECT_EQ(det_result.outcome, hybrid_result.outcome)
        << "det-k vs hybrid disagree, seed=" << seed << " k=" << k;

    for (const SolveResult* result : {&det_result, &log_result, &hybrid_result}) {
      if (result->outcome == Outcome::kYes) {
        ASSERT_TRUE(result->decomposition.has_value());
        Validation validation = ValidateHdWithWidth(graph, *result->decomposition, k);
        EXPECT_TRUE(validation.ok)
            << validation.error << " seed=" << seed << " k=" << k;
      }
    }
    // Monotonicity: once solvable, stays solvable for larger k.
    if (previous == Outcome::kYes) {
      EXPECT_EQ(det_result.outcome, Outcome::kYes) << "seed=" << seed << " k=" << k;
    }
    previous = det_result.outcome;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverTest, ::testing::Range(0, 24));

class BasicAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BasicAgreementTest, BasicAlgorithmAgreesWithOptimised) {
  // Algorithm 1 is much slower; use the smallest instances.
  util::Rng rng(GetParam());
  Hypergraph graph = MakeRandomCsp(rng, 10, 6, 2, 3);
  LogKDecompBasic basic;
  LogKDecomp optimised;
  for (int k = 1; k <= 3; ++k) {
    EXPECT_EQ(basic.Solve(graph, k).outcome, optimised.Solve(graph, k).outcome)
        << "seed=" << GetParam() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasicAgreementTest, ::testing::Range(100, 110));

// The normal form (Definition 3.5) holds for det-k-decomp's output on
// connected instances: its construction is exactly the minimal-χ top-down
// normal-form construction.
class NormalFormTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormTest, DetKOutputIsNormalForm) {
  Hypergraph graph = MakeCycle(4 + GetParam());
  DetKDecomp solver;
  SolveResult result = solver.Solve(graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  Validation nf = CheckNormalForm(graph, *result.decomposition);
  EXPECT_TRUE(nf.ok) << nf.error;
}

INSTANTIATE_TEST_SUITE_P(CycleSizes, NormalFormTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace htd
