// Tests of the partition-simulation mode (SolveOptions::simulate_partition):
// the machinery behind the Figure 1 harness on single-core hosts.
#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "core/search_steps.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

double PartitionRatio(const Hypergraph& graph, int k, int threads) {
  SolveOptions options;
  options.num_threads = threads;
  options.simulate_partition = true;
  LogKDecomp solver(options);
  SolveResult result = solver.Solve(graph, k);
  EXPECT_NE(result.outcome, Outcome::kCancelled);
  EXPECT_GT(result.stats.work_total, 0);
  return static_cast<double>(result.stats.work_parallel) /
         static_cast<double>(result.stats.work_total);
}

TEST(SimulationTest, OneWorkerRatioIsOne) {
  EXPECT_DOUBLE_EQ(PartitionRatio(MakeGrid(4, 6), 2, 1), 1.0);
}

TEST(SimulationTest, RatioRespectsBrentBound) {
  // The modelled makespan can never beat work/T.
  for (int threads : {2, 4, 8}) {
    double ratio = PartitionRatio(MakeGrid(4, 6), 2, threads);
    EXPECT_GE(ratio, 1.0 / threads - 1e-9) << "threads " << threads;
    EXPECT_LE(ratio, 1.0 + 1e-9);
  }
}

TEST(SimulationTest, RefutationPartitionsWell) {
  // Negative instances explore the full candidate space: the partition
  // should be close to ideal (the paper's linear-scaling case).
  Hypergraph grid = MakeGrid(4, 8);
  double r2 = PartitionRatio(grid, 2, 2);
  double r4 = PartitionRatio(grid, 2, 4);
  EXPECT_LT(r2, 0.75);  // clearly better than sequential
  EXPECT_LT(r4, r2);    // and improving with more workers
}

TEST(SimulationTest, SimulationDoesNotChangeOutcomes) {
  util::Rng rng(9);
  Hypergraph graph = MakeRandomCsp(rng, 18, 12, 2, 4);
  for (int k = 1; k <= 3; ++k) {
    LogKDecomp plain;
    SolveOptions options;
    options.num_threads = 4;
    options.simulate_partition = true;
    LogKDecomp simulated(options);
    EXPECT_EQ(simulated.Solve(graph, k).outcome, plain.Solve(graph, k).outcome)
        << "k=" << k;
  }
}

TEST(SimulationTest, SimulationRunsNoRealThreads) {
  // In simulation mode the search must stay on the calling thread: the
  // thread-local step counter of this thread sees all the work.
  long before = CurrentSearchSteps();
  SolveOptions options;
  options.num_threads = 4;
  options.simulate_partition = true;
  LogKDecomp solver(options);
  SolveResult result = solver.Solve(MakeCycle(16), 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_EQ(CurrentSearchSteps() - before, result.stats.work_total);
}

TEST(SimulationTest, EffectiveWorkMonotoneInWorkers) {
  Hypergraph graph = MakeGrid(3, 8);
  double previous = 1.0 + 1e-9;
  for (int threads : {1, 2, 3, 4}) {
    double ratio = PartitionRatio(graph, 2, threads);
    EXPECT_LE(ratio, previous + 1e-9) << "threads " << threads;
    previous = ratio;
  }
}

}  // namespace
}  // namespace htd
