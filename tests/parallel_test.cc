// Tests of the parallel separator search: the chunk driver in isolation and
// the parallel log-k-decomp end to end.
#include "core/parallel_search.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "core/log_k_decomp.h"
#include "core/search_steps.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/executor.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(ThreadBudgetTest, ClaimAndRelease) {
  ThreadBudget budget(3);
  EXPECT_EQ(budget.Claim(2), 2);
  EXPECT_EQ(budget.Claim(2), 1);
  EXPECT_EQ(budget.Claim(2), 0);
  budget.Release(3);
  EXPECT_EQ(budget.Claim(5), 3);
}

TEST(ThreadBudgetTest, ZeroBudget) {
  ThreadBudget budget(0);
  EXPECT_EQ(budget.Claim(4), 0);
}

TEST(DriveCandidatesTest, SequentialExploresEverything) {
  StatsCounters stats;
  std::set<std::vector<int>> seen;
  SearchOutcome outcome = DriveCandidates(
      5, 2, 5, /*extra_workers=*/0, /*group=*/nullptr, /*simulate_workers=*/1,
      stats, [&](const std::vector<int>& subset) {
        AddSearchStep();
        seen.insert(subset);
        return SearchOutcome::NotFound();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kNotFound);
  EXPECT_EQ(seen.size(), 5u + 10u);  // C(5,1) + C(5,2)
  EXPECT_EQ(stats.work_total.load(), 15);
  EXPECT_EQ(stats.work_parallel.load(), 15);
}

TEST(DriveCandidatesTest, ParallelExploresEverything) {
  StatsCounters stats;
  std::mutex mutex;
  std::set<std::vector<int>> seen;
  util::Executor executor(4);
  util::TaskGroup group(executor);
  SearchOutcome outcome = DriveCandidates(
      6, 3, 6, /*extra_workers=*/3, &group, /*simulate_workers=*/1, stats,
      [&](const std::vector<int>& subset) {
        AddSearchStep();
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(subset);
        return SearchOutcome::NotFound();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kNotFound);
  EXPECT_EQ(seen.size(), 6u + 15u + 20u);
  EXPECT_EQ(stats.work_total.load(), 41);
  EXPECT_LE(stats.work_parallel.load(), stats.work_total.load());
}

TEST(DriveCandidatesTest, PartitionSimulationBalancesUniformWork) {
  // Sequential run with 4 simulated workers over uniform-cost candidates:
  // the simulated makespan must be close to total/4.
  StatsCounters stats;
  SearchOutcome outcome = DriveCandidates(
      10, 2, 10, /*extra_workers=*/0, /*group=*/nullptr, /*simulate_workers=*/4,
      stats,
      [&](const std::vector<int>&) {
        AddSearchStep();
        return SearchOutcome::NotFound();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kNotFound);
  long total = stats.work_total.load();
  long makespan = stats.work_parallel.load();
  EXPECT_EQ(total, 10 + 45);
  EXPECT_GE(makespan, (total + 3) / 4);
  EXPECT_LE(makespan, total / 3);  // clearly better than 3 workers' ideal
}

TEST(DriveCandidatesTest, FirstLimitRestrictsFirstElement) {
  StatsCounters stats;
  std::set<std::vector<int>> seen;
  DriveCandidates(5, 2, 2, 0, nullptr, 1, stats, [&](const std::vector<int>& subset) {
    seen.insert(subset);
    return SearchOutcome::NotFound();
  });
  for (const auto& subset : seen) {
    EXPECT_LT(subset[0], 2);
  }
  // {0},{1} + pairs starting with 0 or 1: 4 + 3 = 7 of them, plus 2 singles.
  EXPECT_EQ(seen.size(), 2u + 7u);
}

TEST(DriveCandidatesTest, FoundStopsSearch) {
  StatsCounters stats;
  Fragment marker;
  int node = marker.AddNode({0}, util::DynamicBitset(2));
  marker.SetRoot(node);
  std::atomic<int> calls{0};
  SearchOutcome outcome = DriveCandidates(
      8, 2, 8, 0, nullptr, 1, stats, [&](const std::vector<int>& subset) {
        calls.fetch_add(1);
        if (subset == std::vector<int>{1}) {
          Fragment copy = marker;
          return SearchOutcome::Found(std::move(copy));
        }
        return SearchOutcome::NotFound();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kFound);
  EXPECT_EQ(outcome.fragment.num_nodes(), 1);
  EXPECT_EQ(calls.load(), 2);  // {0} then {1} in deterministic order
}

TEST(DriveCandidatesTest, ParallelFindsResult) {
  StatsCounters stats;
  Fragment marker;
  int node = marker.AddNode({0}, util::DynamicBitset(2));
  marker.SetRoot(node);
  util::Executor executor(4);
  util::TaskGroup group(executor);
  SearchOutcome outcome = DriveCandidates(
      10, 2, 10, 3, &group, 1, stats, [&](const std::vector<int>& subset) {
        if (subset.size() == 2 && subset[0] == 4 && subset[1] == 7) {
          Fragment copy = marker;
          return SearchOutcome::Found(std::move(copy));
        }
        return SearchOutcome::NotFound();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kFound);
}

TEST(DriveCandidatesTest, StoppedPropagates) {
  StatsCounters stats;
  SearchOutcome outcome =
      DriveCandidates(5, 2, 5, 0, nullptr, 1, stats, [&](const std::vector<int>&) {
        return SearchOutcome::Stopped();
      });
  EXPECT_EQ(outcome.status, SearchStatus::kStopped);
}

TEST(DriveCandidatesTest, EmptySpace) {
  StatsCounters stats;
  SearchOutcome outcome = DriveCandidates(0, 2, 0, 0, nullptr, 1, stats,
                                          [&](const std::vector<int>&) {
                                            ADD_FAILURE() << "must not be called";
                                            return SearchOutcome::NotFound();
                                          });
  EXPECT_EQ(outcome.status, SearchStatus::kNotFound);
}

// End-to-end: parallel log-k-decomp agrees with sequential and produces
// valid HDs.
class ParallelLogKTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelLogKTest, ParallelMatchesSequential) {
  util::Rng rng(GetParam());
  Hypergraph graph = MakeRandomCsp(rng, 20, 14, 2, 4);

  LogKDecomp sequential;
  SolveOptions parallel_options;
  parallel_options.num_threads = 4;
  parallel_options.parallel_min_size = 4;  // force parallel paths
  LogKDecomp parallel(parallel_options);

  for (int k = 1; k <= 3; ++k) {
    Outcome expected = sequential.Solve(graph, k).outcome;
    SolveResult result = parallel.Solve(graph, k);
    EXPECT_EQ(result.outcome, expected) << "seed=" << GetParam() << " k=" << k;
    if (result.outcome == Outcome::kYes) {
      Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
      EXPECT_TRUE(validation.ok) << validation.error;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelLogKTest, ::testing::Range(0, 10));

TEST(ParallelLogKStatsTest, WorkAccountingIsConsistent) {
  SolveOptions options;
  options.num_threads = 4;
  options.parallel_min_size = 4;
  LogKDecomp solver(options);
  SolveResult result = solver.Solve(MakeGrid(3, 4), 2);
  EXPECT_GT(result.stats.work_total, 0);
  EXPECT_GT(result.stats.work_parallel, 0);
  EXPECT_LE(result.stats.work_parallel, result.stats.work_total);
}

}  // namespace
}  // namespace htd
