// net/shard_router.h end to end: a two-shard fleet of real
// DecompositionServers behind a router — deterministic fingerprint routing,
// async job-id prefixing, stats aggregation, per-shard health/backoff, the
// single-hop loop guard, and the backends' shard-digest enforcement
// (DecompositionServerOptions::shard_map).
#include "net/shard_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hypergraph/generators.h"
#include "hypergraph/writer.h"
#include "net/decomposition_server.h"
#include "service/canonical.h"

namespace htd::net {
namespace {

service::ShardMap MustParse(const std::string& spec) {
  auto map = service::ShardMap::Parse(spec);
  EXPECT_TRUE(map.ok()) << map.status().message();
  return *map;
}

HttpRequest Request(const std::string& method, const std::string& target,
                    std::string body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  size_t q = target.find('?');
  request.path = target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = target.substr(q + 1);
    while (!query.empty()) {
      size_t amp = query.find('&');
      std::string pair = query.substr(0, amp);
      size_t eq = pair.find('=');
      request.query[pair.substr(0, eq)] =
          eq == std::string::npos ? "" : pair.substr(eq + 1);
      query = amp == std::string::npos ? "" : query.substr(amp + 1);
    }
  }
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

/// A live two-shard fleet on ephemeral ports plus a router over it.
struct Fleet {
  std::vector<std::unique_ptr<DecompositionServer>> shards;
  std::unique_ptr<ShardRouter> router;
  /// HyperBench instances owned by shard 0 / shard 1 respectively.
  std::string on_shard0, on_shard1;

  static Fleet Start() {
    Fleet fleet;
    // Two servers first (ephemeral ports), then the map naming them.
    for (int i = 0; i < 2; ++i) {
      DecompositionServerOptions options;
      options.http.port = 0;
      options.http.io_threads = 2;
      options.service.num_workers = 2;
      options.service.default_timeout_seconds = 30.0;
      auto server = DecompositionServer::Create(options);
      EXPECT_TRUE(server.ok()) << server.status().message();
      EXPECT_TRUE((*server)->Start().ok());
      fleet.shards.push_back(std::move(*server));
    }
    const std::string spec =
        "127.0.0.1:" + std::to_string(fleet.shards[0]->port()) + ",127.0.0.1:" +
        std::to_string(fleet.shards[1]->port());
    ShardRouterOptions router_options{MustParse(spec)};
    router_options.backoff_base_seconds = 0.05;
    fleet.router = std::make_unique<ShardRouter>(std::move(router_options));

    // Paths of growing length have ~uniform fingerprints; a few tries find
    // one instance per shard (30 misses in a row ~ 2^-30: not flaky).
    for (int length = 3; length < 33; ++length) {
      Hypergraph graph = MakePath(length);
      int owner = fleet.router->options().map.IndexFor(
          service::CanonicalFingerprint(graph));
      std::string& slot = owner == 0 ? fleet.on_shard0 : fleet.on_shard1;
      if (slot.empty()) slot = WriteHyperBench(graph);
      if (!fleet.on_shard0.empty() && !fleet.on_shard1.empty()) break;
    }
    EXPECT_FALSE(fleet.on_shard0.empty());
    EXPECT_FALSE(fleet.on_shard1.empty());
    return fleet;
  }

  void Stop() {
    for (auto& shard : shards) shard->Stop();
  }
};

TEST(ShardRouterTest, RoutesDeterministicallyAndWarmStateSplits) {
  Fleet fleet = Fleet::Start();

  // Cold solve, then a renamed-but-isomorphic resubmission: both land on
  // the owning shard, so the second is that shard's cache hit.
  for (const std::string* instance : {&fleet.on_shard0, &fleet.on_shard1}) {
    HttpResponse first =
        fleet.router->Handle(Request("POST", "/v1/decompose?k=2", *instance));
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_NE(first.body.find("\"cache_hit\": false"), std::string::npos);
    HttpResponse again =
        fleet.router->Handle(Request("POST", "/v1/decompose?k=2", *instance));
    ASSERT_EQ(again.status, 200);
    EXPECT_NE(again.body.find("\"cache_hit\": true"), std::string::npos)
        << "resubmission must reach the same shard's cache: " << again.body;
  }

  // The warm state is a partition: each shard solved and cached exactly one
  // of the two instances.
  for (auto& shard : fleet.shards) {
    EXPECT_EQ(shard->admission_stats().admitted, 2u);
    EXPECT_EQ(shard->decomposition_service().cache_stats().entries, 1u);
  }

  // Aggregated stats sum across the fleet.
  HttpResponse stats = fleet.router->Handle(Request("GET", "/v1/stats"));
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"role\": \"router\""), std::string::npos);
  EXPECT_NE(stats.body.find("\"admission_admitted\": 4"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"cache_entries\": 2"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"reachable\": 2"), std::string::npos) << stats.body;

  fleet.Stop();
}

TEST(ShardRouterTest, AsyncJobIdsCarryTheirShard) {
  Fleet fleet = Fleet::Start();

  HttpResponse admitted = fleet.router->Handle(
      Request("POST", "/v1/decompose?k=2&async=1", fleet.on_shard1));
  ASSERT_EQ(admitted.status, 202) << admitted.body;
  size_t pos = admitted.body.find("\"job\": \"s1r0.");
  ASSERT_NE(pos, std::string::npos)
      << "router job ids must carry shard AND replica: " << admitted.body;
  size_t start = pos + 8;  // skip `"job": "`
  std::string id =
      admitted.body.substr(start, admitted.body.find('"', start) - start);

  // Poll through the router until done (a tiny path solves instantly).
  HttpResponse job;
  for (int i = 0; i < 200; ++i) {
    job = fleet.router->Handle(Request("GET", "/v1/jobs/" + id));
    ASSERT_EQ(job.status, 200) << job.body;
    if (job.body.find("\"state\": \"done\"") != std::string::npos) break;
  }
  EXPECT_NE(job.body.find("\"state\": \"done\""), std::string::npos) << job.body;
  EXPECT_NE(job.body.find("\"job\": \"" + id + "\""), std::string::npos)
      << "polled id must echo back prefixed: " << job.body;

  EXPECT_EQ(fleet.router->Handle(Request("GET", "/v1/jobs/j7")).status, 404)
      << "unprefixed ids are not routable";
  EXPECT_EQ(fleet.router->Handle(Request("GET", "/v1/jobs/s9.j7")).status, 404)
      << "shard index outside the map";

  fleet.Stop();
}

TEST(ShardRouterTest, SingleHopLoopGuard) {
  Fleet fleet = Fleet::Start();
  HttpRequest forwarded = Request("POST", "/v1/decompose?k=2", fleet.on_shard0);
  forwarded.headers["x-htd-forwarded"] = "1";
  EXPECT_EQ(fleet.router->Handle(forwarded).status, 508);
  fleet.Stop();
}

TEST(ShardRouterTest, DeadShardBacksOffWith503) {
  // One-shard map pointing at a port nobody listens on: every request owns
  // that shard, the first pays a connect failure, the rest are shed from
  // the backoff window without touching the socket.
  ShardRouterOptions options{MustParse("127.0.0.1:1")};
  options.connect_timeout_seconds = 1.0;
  options.backoff_base_seconds = 30.0;
  ShardRouter router(std::move(options));

  std::string instance = WriteHyperBench(MakePath(4));
  HttpResponse first =
      router.Handle(Request("POST", "/v1/decompose?k=2", instance));
  EXPECT_EQ(first.status, 503) << first.body;
  bool has_retry_after = false;
  for (const auto& [key, value] : first.headers) {
    has_retry_after |= key == "Retry-After";
  }
  EXPECT_TRUE(has_retry_after);

  HttpResponse second =
      router.Handle(Request("POST", "/v1/decompose?k=2", instance));
  EXPECT_EQ(second.status, 503);
  auto stats = router.shard_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].transport_errors, 1u) << "second request must not retry";
  EXPECT_EQ(stats[0].backoff_shed, 1u);
  EXPECT_TRUE(stats[0].backing_off);

  // /healthz stays local and honest about the fleet.
  HttpResponse health = router.Handle(Request("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"backing_off\": 1"), std::string::npos)
      << health.body;
}

TEST(ShardRouterTest, RouterRejectsGarbageBeforeForwarding) {
  ShardRouterOptions options{MustParse("127.0.0.1:1")};  // dead shard
  ShardRouter router(std::move(options));
  EXPECT_EQ(router.Handle(Request("POST", "/v1/decompose?k=2", "")).status, 400);
  EXPECT_EQ(router.Handle(Request("POST", "/v1/decompose?k=2", "((((")).status,
            400);
  EXPECT_EQ(router.Handle(Request("GET", "/v1/decompose?k=2")).status, 405);
  EXPECT_EQ(router.Handle(Request("GET", "/nope")).status, 404);
  auto stats = router.shard_stats();
  EXPECT_EQ(stats[0].forwarded, 0u)
      << "bad requests must be refused without a forward";
}

TEST(ShardRouterTest, BackendRejectsMismatchedDigestWith421) {
  // A backend configured as its instance's OWNING shard of map A receives a
  // request hashed against map B: refused, counted, never admitted.
  Hypergraph graph = MakePath(4);
  std::string instance = WriteHyperBench(graph);
  DecompositionServerOptions options;
  options.http.port = 0;
  options.service.num_workers = 1;
  options.shard_map = MustParse("127.0.0.1:1001,127.0.0.1:1002");
  const int owner =
      options.shard_map->IndexFor(service::CanonicalFingerprint(graph));
  options.shard_index = owner;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  HttpRequest stale = Request("POST", "/v1/decompose?k=2", instance);
  stale.headers["x-htd-shard-digest"] =
      MustParse("127.0.0.1:1001,127.0.0.1:1002,127.0.0.1:1003").DigestHex();
  HttpResponse refused = (*server)->Handle(stale);
  EXPECT_EQ(refused.status, 421) << refused.body;
  EXPECT_EQ((*server)->admission_stats().misrouted, 1u);
  EXPECT_EQ((*server)->admission_stats().admitted, 0u);

  // The matching digest is served.
  HttpRequest fresh = Request("POST", "/v1/decompose?k=2", instance);
  fresh.headers["x-htd-shard-digest"] = options.shard_map->DigestHex();
  EXPECT_EQ((*server)->Handle(fresh).status, 200);

  // A fingerprint header outside this shard's range is misrouted too.
  service::Fingerprint outside;
  outside.hi = owner == 0 ? ~0ULL : 0;  // the OTHER shard's half
  HttpRequest misrouted = Request("POST", "/v1/decompose?k=2", instance);
  misrouted.headers["x-htd-shard-fingerprint"] = outside.ToHex();
  EXPECT_EQ((*server)->Handle(misrouted).status, 421);
  EXPECT_EQ((*server)->admission_stats().misrouted, 2u);
}

TEST(ShardRouterTest, BackendSelfEnforcesItsRangeOnDirectRequests) {
  // No X-HTD-Shard-* headers at all (a client talking to the shard
  // directly): the backend fingerprints the instance itself and refuses
  // foreign ranges — silently admitting would warm state the next
  // range-filtered snapshot drops.
  DecompositionServerOptions options;
  options.http.port = 0;
  options.service.num_workers = 1;
  options.shard_map = MustParse("127.0.0.1:1001,127.0.0.1:1002");
  options.shard_index = 0;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  std::string owned, foreign;
  for (int length = 3; length < 33 && (owned.empty() || foreign.empty());
       ++length) {
    Hypergraph graph = MakePath(length);
    std::string& slot =
        options.shard_map->IndexFor(service::CanonicalFingerprint(graph)) == 0
            ? owned
            : foreign;
    if (slot.empty()) slot = WriteHyperBench(graph);
  }
  ASSERT_FALSE(owned.empty());
  ASSERT_FALSE(foreign.empty());

  EXPECT_EQ((*server)->Handle(Request("POST", "/v1/decompose?k=2", owned)).status,
            200);
  HttpResponse refused =
      (*server)->Handle(Request("POST", "/v1/decompose?k=2", foreign));
  EXPECT_EQ(refused.status, 421) << refused.body;
  EXPECT_NE(refused.body.find("belongs to shard 1"), std::string::npos)
      << refused.body;
  EXPECT_EQ((*server)->admission_stats().misrouted, 1u);
  EXPECT_EQ((*server)->admission_stats().admitted, 1u);

  // A crafted in-range fingerprint header WITHOUT the digest header proves
  // nothing: the backend still fingerprints the instance itself, so the
  // foreign instance is refused rather than silently warming this shard.
  service::Fingerprint in_range;
  in_range.hi = 1;  // squarely in shard 0's half
  HttpRequest crafted = Request("POST", "/v1/decompose?k=2", foreign);
  crafted.headers["x-htd-shard-fingerprint"] = in_range.ToHex();
  EXPECT_EQ((*server)->Handle(crafted).status, 421)
      << "fingerprint header alone must not be trusted";
  EXPECT_EQ((*server)->admission_stats().misrouted, 2u);
  EXPECT_EQ((*server)->admission_stats().admitted, 1u);
}

TEST(ShardRouterTest, ServerRejectsShardConfigWithoutValidIndex) {
  DecompositionServerOptions options;
  options.shard_map = MustParse("a:1,b:2");
  options.shard_index = 2;
  EXPECT_FALSE(DecompositionServer::Create(options).ok());
  options.shard_index = -1;
  EXPECT_FALSE(DecompositionServer::Create(options).ok());
}

}  // namespace
}  // namespace htd::net
