#include "util/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace htd::util {
namespace {

TEST(BitsetTest, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.Count(), 0);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  EXPECT_EQ(b.FindFirst(), -1);
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2);
}

TEST(BitsetTest, SetAllRespectsUniverse) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70);
  b.Clear();
  EXPECT_EQ(b.Count(), 0);
}

TEST(BitsetTest, SetAllOnWordBoundary) {
  DynamicBitset b(128);
  b.SetAll();
  EXPECT_EQ(b.Count(), 128);
}

TEST(BitsetTest, FromIndices) {
  auto b = DynamicBitset::FromIndices(10, {1, 3, 7});
  EXPECT_EQ(b.ToVector(), (std::vector<int>{1, 3, 7}));
}

TEST(BitsetTest, SubsetAndIntersects) {
  auto a = DynamicBitset::FromIndices(100, {5, 50, 99});
  auto b = DynamicBitset::FromIndices(100, {5, 50, 99, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  auto c = DynamicBitset::FromIndices(100, {1, 2});
  EXPECT_FALSE(a.Intersects(c));
  DynamicBitset empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BitsetTest, BooleanOperators) {
  auto a = DynamicBitset::FromIndices(80, {1, 2, 3, 70});
  auto b = DynamicBitset::FromIndices(80, {3, 4, 70});
  EXPECT_EQ((a | b).ToVector(), (std::vector<int>{1, 2, 3, 4, 70}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<int>{3, 70}));
  EXPECT_EQ((a - b).ToVector(), (std::vector<int>{1, 2}));
}

TEST(BitsetTest, EqualityAndOrdering) {
  auto a = DynamicBitset::FromIndices(64, {1});
  auto b = DynamicBitset::FromIndices(64, {1});
  auto c = DynamicBitset::FromIndices(64, {2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(BitsetTest, FindNextWalksSetBits) {
  auto b = DynamicBitset::FromIndices(200, {0, 63, 64, 128, 199});
  std::vector<int> seen;
  for (int i = b.FindFirst(); i != -1; i = b.FindNext(i)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{0, 63, 64, 128, 199}));
}

TEST(BitsetTest, ForEachMatchesToVector) {
  auto b = DynamicBitset::FromIndices(150, {3, 77, 149});
  std::vector<int> seen;
  b.ForEach([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, b.ToVector());
}

TEST(BitsetTest, GrowUniverseKeepsBits) {
  auto b = DynamicBitset::FromIndices(10, {2, 9});
  b.GrowUniverse(300);
  EXPECT_EQ(b.size_bits(), 300);
  EXPECT_TRUE(b.Test(2));
  EXPECT_TRUE(b.Test(9));
  EXPECT_EQ(b.Count(), 2);
  b.Set(299);
  EXPECT_EQ(b.Count(), 3);
}

TEST(BitsetTest, HashDistinguishesTypicalSets) {
  auto a = DynamicBitset::FromIndices(64, {1, 2});
  auto b = DynamicBitset::FromIndices(64, {1, 3});
  EXPECT_NE(a.Hash(), b.Hash());
  auto a2 = DynamicBitset::FromIndices(64, {1, 2});
  EXPECT_EQ(a.Hash(), a2.Hash());
}

TEST(BitsetTest, ToStringRendersElements) {
  auto b = DynamicBitset::FromIndices(10, {1, 4});
  EXPECT_EQ(b.ToString(), "{1, 4}");
  EXPECT_EQ(DynamicBitset(5).ToString(), "{}");
}

TEST(BitsetTest, ZeroSizedUniverse) {
  DynamicBitset b(0);
  EXPECT_EQ(b.Count(), 0);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.FindFirst(), -1);
}

// Property sweep: random sets behave like std::set under union/intersection.
class BitsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetPropertyTest, MatchesReferenceSets) {
  Rng rng(GetParam());
  const int universe = 1 + rng.UniformInt(1, 190);
  std::set<int> ref_a, ref_b;
  DynamicBitset a(universe), b(universe);
  for (int i = 0; i < universe / 2; ++i) {
    int x = rng.UniformInt(0, universe - 1);
    int y = rng.UniformInt(0, universe - 1);
    ref_a.insert(x);
    ref_b.insert(y);
    a.Set(x);
    b.Set(y);
  }
  std::set<int> ref_union = ref_a, ref_inter, ref_diff;
  ref_union.insert(ref_b.begin(), ref_b.end());
  std::set_intersection(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                        std::inserter(ref_inter, ref_inter.begin()));
  std::set_difference(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                      std::inserter(ref_diff, ref_diff.begin()));
  auto as_vector = [](const std::set<int>& s) {
    return std::vector<int>(s.begin(), s.end());
  };
  EXPECT_EQ((a | b).ToVector(), as_vector(ref_union));
  EXPECT_EQ((a & b).ToVector(), as_vector(ref_inter));
  EXPECT_EQ((a - b).ToVector(), as_vector(ref_diff));
  EXPECT_EQ(a.Intersects(b), !ref_inter.empty());
  EXPECT_EQ(a.IsSubsetOf(b), ref_diff.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace htd::util
