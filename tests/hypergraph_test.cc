#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "hypergraph/metrics.h"

namespace htd {
namespace {

TEST(HypergraphTest, EmptyGraph) {
  Hypergraph graph;
  EXPECT_EQ(graph.num_vertices(), 0);
  EXPECT_EQ(graph.num_edges(), 0);
  EXPECT_FALSE(graph.HasIsolatedVertices());
}

TEST(HypergraphTest, GetOrAddVertexDeduplicates) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("X");
  int b = graph.GetOrAddVertex("Y");
  int a2 = graph.GetOrAddVertex("X");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(graph.num_vertices(), 2);
  EXPECT_EQ(graph.vertex_name(a), "X");
}

TEST(HypergraphTest, AddEdgeBasics) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  auto e = graph.AddEdge("R", {x, y});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.edge_name(*e), "R");
  EXPECT_EQ(graph.edge_vertex_list(*e), (std::vector<int>{x, y}));
  EXPECT_TRUE(graph.edge_vertices(*e).Test(x));
  EXPECT_TRUE(graph.edge_vertices(*e).Test(y));
}

TEST(HypergraphTest, EmptyEdgeRejected) {
  Hypergraph graph;
  auto e = graph.AddEdge("bad", {});
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(HypergraphTest, UnknownVertexRejected) {
  Hypergraph graph;
  graph.GetOrAddVertex("x");
  auto e = graph.AddEdge("bad", {5});
  EXPECT_FALSE(e.ok());
}

TEST(HypergraphTest, DuplicateVerticesCollapsed) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  auto e = graph.AddEdge("R", {x, y, x, y, x});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(graph.edge_vertex_list(*e).size(), 2u);
}

TEST(HypergraphTest, EdgeBitsetsGrowWithVertexUniverse) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  ASSERT_TRUE(graph.AddEdge("R1", {x, y}).ok());
  // Add more vertices after the first edge, then another edge.
  int z = graph.GetOrAddVertex("z");
  ASSERT_TRUE(graph.AddEdge("R2", {y, z}).ok());
  // The first edge's bitset must span the new universe for set algebra.
  EXPECT_EQ(graph.edge_vertices(0).size_bits(), graph.num_vertices());
  EXPECT_TRUE(graph.edge_vertices(0).Intersects(graph.edge_vertices(1)));
}

TEST(HypergraphTest, IncidenceLists) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  int z = graph.GetOrAddVertex("z");
  ASSERT_TRUE(graph.AddEdge("R1", {x, y}).ok());
  ASSERT_TRUE(graph.AddEdge("R2", {y, z}).ok());
  EXPECT_EQ(graph.edges_of_vertex(y), (std::vector<int>{0, 1}));
  EXPECT_EQ(graph.edges_of_vertex(x), (std::vector<int>{0}));
}

TEST(HypergraphTest, FindByName) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  ASSERT_TRUE(graph.AddEdge("R", {x}).ok());
  EXPECT_EQ(graph.FindVertex("x"), x);
  EXPECT_EQ(graph.FindVertex("nope"), -1);
  EXPECT_EQ(graph.FindEdge("R"), 0);
  EXPECT_EQ(graph.FindEdge("nope"), -1);
}

TEST(HypergraphTest, UnionOfEdges) {
  Hypergraph graph;
  int x = graph.GetOrAddVertex("x");
  int y = graph.GetOrAddVertex("y");
  int z = graph.GetOrAddVertex("z");
  ASSERT_TRUE(graph.AddEdge("R1", {x, y}).ok());
  ASSERT_TRUE(graph.AddEdge("R2", {y, z}).ok());
  auto u = graph.UnionOfEdges(std::vector<int>{0, 1});
  EXPECT_EQ(u.Count(), 3);
  auto via_bitset = graph.UnionOfEdges(graph.AllEdges());
  EXPECT_EQ(u, via_bitset);
}

TEST(HypergraphTest, IsolatedVertexDetection) {
  Hypergraph graph;
  graph.GetOrAddVertex("lonely");
  EXPECT_TRUE(graph.HasIsolatedVertices());
  int x = graph.GetOrAddVertex("x");
  int lonely = graph.FindVertex("lonely");
  ASSERT_TRUE(graph.AddEdge("R", {x, lonely}).ok());
  EXPECT_FALSE(graph.HasIsolatedVertices());
}

TEST(HypergraphTest, AnonymousVerticesAndEdges) {
  Hypergraph graph;
  int v = graph.AddVertex();
  EXPECT_EQ(v, 0);
  auto e = graph.AddEdge({v});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(graph.edge_name(*e), "e0");
}

TEST(MetricsTest, ComputeStats) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  int c = graph.GetOrAddVertex("c");
  ASSERT_TRUE(graph.AddEdge("R1", {a, b}).ok());
  ASSERT_TRUE(graph.AddEdge("R2", {a, b, c}).ok());
  HypergraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.num_vertices, 3);
  EXPECT_EQ(stats.num_edges, 2);
  EXPECT_EQ(stats.max_arity, 3);
  EXPECT_DOUBLE_EQ(stats.avg_arity, 2.5);
  EXPECT_EQ(stats.max_degree, 2);
}

TEST(MetricsTest, EmptyGraphStats) {
  Hypergraph graph;
  HypergraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.num_edges, 0);
  EXPECT_DOUBLE_EQ(stats.avg_arity, 0.0);
}

}  // namespace
}  // namespace htd
