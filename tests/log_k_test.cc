#include "core/log_k_decomp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/log_k_decomp_basic.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace htd {
namespace {

SolveOptions Validated() {
  SolveOptions options;
  options.validate_result = true;
  return options;
}

TEST(LogKTest, PathHasWidthOne) {
  LogKDecomp solver(Validated());
  EXPECT_EQ(solver.Solve(MakePath(9), 1).outcome, Outcome::kYes);
}

TEST(LogKTest, CycleWidths) {
  LogKDecomp solver(Validated());
  for (int n : {3, 4, 6, 10, 16}) {
    Hypergraph cycle = MakeCycle(n);
    EXPECT_EQ(solver.Solve(cycle, 1).outcome, Outcome::kNo) << "cycle " << n;
    EXPECT_EQ(solver.Solve(cycle, 2).outcome, Outcome::kYes) << "cycle " << n;
  }
}

TEST(LogKTest, PaperExampleCycle10) {
  // Section B walks log-k-decomp through the 10-cycle with k = 2.
  LogKDecomp solver(Validated());
  Hypergraph cycle = MakeCycle(10);
  SolveResult result = solver.Solve(cycle, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  ASSERT_TRUE(result.decomposition.has_value());
  Validation validation = ValidateHdWithWidth(cycle, *result.decomposition, 2);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(LogKTest, ProducedHdsAreValidOnVariedFamilies) {
  LogKDecomp solver;
  util::Rng rng(77);
  std::vector<Hypergraph> graphs;
  graphs.push_back(MakeGrid(3, 4));
  graphs.push_back(MakeClique(5));
  graphs.push_back(MakeHyperCycle(7, 4, 2));
  graphs.push_back(MakeRandomCsp(rng, 18, 12, 2, 4));
  graphs.push_back(MakeRandomCq(rng, 14, 4, 0.3));
  for (const Hypergraph& graph : graphs) {
    for (int k = 1; k <= 4; ++k) {
      SolveResult result = solver.Solve(graph, k);
      if (result.outcome == Outcome::kYes) {
        ASSERT_TRUE(result.decomposition.has_value());
        Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
        EXPECT_TRUE(validation.ok)
            << validation.error << " (|E|=" << graph.num_edges() << ", k=" << k << ")";
      }
    }
  }
}

TEST(LogKTest, RecursionDepthIsLogarithmic) {
  // Theorem 4.1: the Decomp recursion depth is O(log |E|). With the explicit
  // balancedness re-check, every recursive call at least halves the
  // subproblem, so depth <= ceil(log2 m) + 1.
  LogKDecomp solver;
  for (int n : {8, 16, 32, 64}) {
    Hypergraph cycle = MakeCycle(n);
    SolveResult result = solver.Solve(cycle, 2);
    ASSERT_EQ(result.outcome, Outcome::kYes) << "cycle " << n;
    int bound = static_cast<int>(std::ceil(std::log2(n))) + 1;
    EXPECT_LE(result.stats.max_recursion_depth, bound)
        << "cycle " << n << ": depth " << result.stats.max_recursion_depth;
  }
}

TEST(LogKTest, RecursionDepthLogarithmicOnNegativeInstances) {
  LogKDecomp solver;
  Hypergraph grid = MakeGrid(3, 5);
  SolveResult result = solver.Solve(grid, 1);
  ASSERT_EQ(result.outcome, Outcome::kNo);
  int bound = static_cast<int>(std::ceil(std::log2(grid.num_edges()))) + 1;
  EXPECT_LE(result.stats.max_recursion_depth, bound);
}

TEST(LogKTest, EmptyAndTinyInstances) {
  LogKDecomp solver(Validated());
  Hypergraph empty;
  EXPECT_EQ(solver.Solve(empty, 1).outcome, Outcome::kYes);

  Hypergraph single;
  int a = single.GetOrAddVertex("a");
  ASSERT_TRUE(single.AddEdge("R", {a}).ok());
  SolveResult result = solver.Solve(single, 1);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  EXPECT_EQ(result.decomposition->Width(), 1);
}

TEST(LogKTest, CancellationPropagates) {
  util::CancelToken cancel;
  cancel.RequestStop();
  SolveOptions options;
  options.cancel = &cancel;
  LogKDecomp solver(options);
  EXPECT_EQ(solver.Solve(MakeGrid(4, 4), 2).outcome, Outcome::kCancelled);
}

TEST(LogKTest, TimeoutEventuallyCancels) {
  util::CancelToken cancel;
  cancel.SetTimeout(std::chrono::duration<double>(0.02));
  SolveOptions options;
  options.cancel = &cancel;
  LogKDecomp solver(options);
  // A clique of 13 at k=3 is far too hard for 20ms.
  SolveResult result = solver.Solve(MakeClique(13), 3);
  EXPECT_EQ(result.outcome, Outcome::kCancelled);
}

TEST(LogKTest, DepthOfHdTreeMayExceedRecursionDepth) {
  // The paper stresses that the log bound is on the recursion, not the HD
  // tree: long cycles still produce deep HDs.
  LogKDecomp solver;
  Hypergraph cycle = MakeCycle(32);
  SolveResult result = solver.Solve(cycle, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_GT(result.decomposition->Depth(), result.stats.max_recursion_depth);
}

TEST(LogKBasicTest, AgreesOnFamilies) {
  LogKDecompBasic basic;
  LogKDecomp optimised;
  std::vector<Hypergraph> graphs;
  graphs.push_back(MakePath(6));
  graphs.push_back(MakeCycle(6));
  graphs.push_back(MakeStar(5));
  graphs.push_back(MakeClique(4));
  util::Rng rng(5);
  graphs.push_back(MakeRandomCsp(rng, 12, 8, 2, 3));
  for (const Hypergraph& graph : graphs) {
    for (int k = 1; k <= 3; ++k) {
      Outcome expected = optimised.Solve(graph, k).outcome;
      Outcome actual = basic.Solve(graph, k).outcome;
      EXPECT_EQ(actual, expected)
          << "|E|=" << graph.num_edges() << " k=" << k;
    }
  }
}

TEST(LogKBasicTest, IsDecisionOnly) {
  LogKDecompBasic basic;
  SolveResult result = basic.Solve(MakeCycle(6), 2);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  EXPECT_FALSE(result.decomposition.has_value());
}

TEST(LogKTest, SolverNameReflectsHybrid) {
  EXPECT_EQ(LogKDecomp().name(), "log-k-decomp");
  SolveOptions hybrid;
  hybrid.hybrid_metric = HybridMetric::kWeightedCount;
  EXPECT_EQ(LogKDecomp(hybrid).name(), "log-k-hybrid(WeightedCount)");
}

}  // namespace
}  // namespace htd
