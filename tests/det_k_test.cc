#include "baselines/det_k_decomp.h"

#include <gtest/gtest.h>

#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace htd {
namespace {

SolveOptions Validated() {
  SolveOptions options;
  options.validate_result = true;
  return options;
}

TEST(DetKTest, PathHasWidthOne) {
  DetKDecomp solver(Validated());
  Hypergraph path = MakePath(8);
  EXPECT_EQ(solver.Solve(path, 1).outcome, Outcome::kYes);
}

TEST(DetKTest, StarHasWidthOne) {
  DetKDecomp solver(Validated());
  EXPECT_EQ(solver.Solve(MakeStar(7), 1).outcome, Outcome::kYes);
}

TEST(DetKTest, CycleHasWidthTwo) {
  DetKDecomp solver(Validated());
  for (int n : {3, 4, 5, 8, 12}) {
    Hypergraph cycle = MakeCycle(n);
    EXPECT_EQ(solver.Solve(cycle, 1).outcome, Outcome::kNo) << "cycle " << n;
    SolveResult result = solver.Solve(cycle, 2);
    EXPECT_EQ(result.outcome, Outcome::kYes) << "cycle " << n;
    ASSERT_TRUE(result.decomposition.has_value());
    EXPECT_LE(result.decomposition->Width(), 2);
  }
}

TEST(DetKTest, ProducedHdIsValid) {
  DetKDecomp solver;  // validation off; check explicitly
  Hypergraph cycle = MakeCycle(10);
  SolveResult result = solver.Solve(cycle, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  ASSERT_TRUE(result.decomposition.has_value());
  Validation validation = ValidateHd(cycle, *result.decomposition);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(DetKTest, CliqueWidths) {
  DetKDecomp solver(Validated());
  // K4 has hw 2: a single node with λ = {ab, cd} covers every edge.
  EXPECT_EQ(solver.Solve(MakeClique(4), 1).outcome, Outcome::kNo);
  EXPECT_EQ(solver.Solve(MakeClique(4), 2).outcome, Outcome::kYes);
}

TEST(DetKTest, HigherKStaysYes) {
  DetKDecomp solver(Validated());
  Hypergraph cycle = MakeCycle(7);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(solver.Solve(cycle, k).outcome, Outcome::kYes) << "k=" << k;
  }
}

TEST(DetKTest, EmptyHypergraph) {
  DetKDecomp solver;
  Hypergraph empty;
  SolveResult result = solver.Solve(empty, 1);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  ASSERT_TRUE(result.decomposition.has_value());
  EXPECT_EQ(result.decomposition->num_nodes(), 0);
}

TEST(DetKTest, SingleEdge) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("R", {a, b}).ok());
  DetKDecomp solver(Validated());
  SolveResult result = solver.Solve(graph, 1);
  EXPECT_EQ(result.outcome, Outcome::kYes);
  EXPECT_EQ(result.decomposition->num_nodes(), 1);
}

TEST(DetKTest, CancellationReturnsCancelled) {
  util::CancelToken cancel;
  cancel.RequestStop();
  SolveOptions options;
  options.cancel = &cancel;
  DetKDecomp solver(options);
  EXPECT_EQ(solver.Solve(MakeCycle(12), 2).outcome, Outcome::kCancelled);
}

TEST(DetKTest, NegativeCacheIsExercised) {
  // Grids need several failing subtrees at small k; the (component, Conn)
  // cache must record them.
  DetKDecomp solver;
  SolveResult result = solver.Solve(MakeGrid(3, 3), 1);
  EXPECT_EQ(result.outcome, Outcome::kNo);
  EXPECT_GT(result.stats.cache_hits + result.stats.separators_tried, 0);
}

TEST(DetKTest, DecompositionCoversDisconnectedGraphs) {
  // Two disjoint paths: the root's components are handled independently.
  Hypergraph graph;
  std::vector<int> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(graph.GetOrAddVertex("x" + std::to_string(i)));
  }
  ASSERT_TRUE(graph.AddEdge("a", {v[0], v[1]}).ok());
  ASSERT_TRUE(graph.AddEdge("b", {v[1], v[2]}).ok());
  ASSERT_TRUE(graph.AddEdge("c", {v[3], v[4]}).ok());
  ASSERT_TRUE(graph.AddEdge("d", {v[4], v[5]}).ok());
  DetKDecomp solver(Validated());
  EXPECT_EQ(solver.Solve(graph, 1).outcome, Outcome::kYes);
}

TEST(DetKTest, StatsArePopulated) {
  DetKDecomp solver;
  SolveResult result = solver.Solve(MakeCycle(8), 2);
  EXPECT_GT(result.stats.recursive_calls, 0);
  EXPECT_GT(result.stats.separators_tried, 0);
  EXPECT_GE(result.stats.seconds, 0.0);
}

// Width of hypercycles: arity-a edges around a cycle always admit width 2
// (two "opposite" edges separate the cycle), never width 1 (cyclic).
class DetKHyperCycleTest : public ::testing::TestWithParam<int> {};

TEST_P(DetKHyperCycleTest, HyperCycleWidthTwo) {
  Hypergraph hc = MakeHyperCycle(GetParam(), 3, 1);
  DetKDecomp solver(Validated());
  EXPECT_EQ(solver.Solve(hc, 1).outcome, Outcome::kNo);
  EXPECT_EQ(solver.Solve(hc, 2).outcome, Outcome::kYes);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DetKHyperCycleTest, ::testing::Values(4, 5, 6, 8));

}  // namespace
}  // namespace htd
