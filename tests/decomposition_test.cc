#include "decomp/decomposition.h"

#include <gtest/gtest.h>

#include "hypergraph/generators.h"

namespace htd {
namespace {

TEST(DecompositionTest, EmptyDecomposition) {
  Decomposition decomp;
  EXPECT_EQ(decomp.num_nodes(), 0);
  EXPECT_EQ(decomp.root(), -1);
  EXPECT_EQ(decomp.Width(), 0);
  EXPECT_EQ(decomp.Depth(), 0);
}

TEST(DecompositionTest, SingleNode) {
  Decomposition decomp;
  int root = decomp.AddNode({0, 1}, util::DynamicBitset::FromIndices(4, {0, 1}), -1);
  EXPECT_EQ(decomp.root(), root);
  EXPECT_EQ(decomp.Width(), 2);
  EXPECT_EQ(decomp.Depth(), 1);
  EXPECT_TRUE(decomp.node(root).children.empty());
}

TEST(DecompositionTest, ParentChildLinks) {
  Decomposition decomp;
  int root = decomp.AddNode({0}, util::DynamicBitset::FromIndices(4, {0}), -1);
  int child = decomp.AddNode({1}, util::DynamicBitset::FromIndices(4, {1}), root);
  int grandchild =
      decomp.AddNode({2, 3}, util::DynamicBitset::FromIndices(4, {2}), child);
  EXPECT_EQ(decomp.node(child).parent, root);
  EXPECT_EQ(decomp.node(root).children, (std::vector<int>{child}));
  EXPECT_EQ(decomp.node(grandchild).parent, child);
  EXPECT_EQ(decomp.Depth(), 3);
  EXPECT_EQ(decomp.Width(), 2);
}

TEST(DecompositionTest, LambdaIsSortedOnInsert) {
  Decomposition decomp;
  int node = decomp.AddNode({3, 1, 2}, util::DynamicBitset(4), -1);
  EXPECT_EQ(decomp.node(node).lambda, (std::vector<int>{1, 2, 3}));
}

TEST(DecompositionTest, ToStringMentionsLabels) {
  Hypergraph graph = MakePath(3);  // edges R1={x0,x1}, R2={x1,x2}
  Decomposition decomp;
  decomp.AddNode({0}, graph.edge_vertices(0), -1);
  std::string rendered = decomp.ToString(graph);
  EXPECT_NE(rendered.find("R1"), std::string::npos);
  EXPECT_NE(rendered.find("x0"), std::string::npos);
}

}  // namespace
}  // namespace htd
