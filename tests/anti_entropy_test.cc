// service/anti_entropy.h + the sweep in net/decomposition_server.h:
// digest construction (order/stats/fragment-byte independence, dominance
// normal form), the strict wire format under truncation and bit flips,
// merge convergence properties (idempotent, commutative, order-independent
// across simulated replicas), cross-k dominance lookups, and the live sweep
// end to end over real sockets — including a corrupt sibling that must
// never dent the local store.
#include "service/anti_entropy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "decomp/fragment_codec.h"
#include "hypergraph/generators.h"
#include "hypergraph/writer.h"
#include "net/decomposition_server.h"
#include "net/http.h"
#include "net/server.h"
#include "service/persistence.h"
#include "service/result_cache.h"
#include "service/shard_map.h"
#include "service/subproblem_store.h"
#include "util/rng.h"
#include "util/socket.h"

namespace htd {
namespace {

using service::CacheKey;
using service::ComputeDigestSummary;
using service::DigestSummary;
using service::Fingerprint;
using service::FingerprintRange;
using service::ParseDigestSummary;
using service::RenderDigestSummary;
using service::ResultCache;
using service::SplitRange;
using service::SubproblemStore;

constexpr uint64_t kConfig = 0x1234;

const FingerprintRange kFullRange{};  // 0 .. ~0

SolveResult TrivialResult(uint64_t seed) {
  SolveResult result;
  result.outcome = seed % 2 == 0 ? Outcome::kYes : Outcome::kNo;
  result.stats.separators_tried = seed;  // deliberately replica-dependent
  result.stats.seconds = static_cast<double>(seed % 97) / 10.0;
  return result;
}

/// Positive variant whose fragment bytes are a pure function of
/// (fingerprint, k, traces): replicas that record "the same knowledge"
/// then hold byte-identical variants, which keeps the convergence fixpoint
/// byte-comparable (the digest itself never looks at fragment bytes).
SubproblemStore::ExportedPositive DeterministicPositive(
    const Fingerprint& fp, int k, std::vector<std::vector<int>> traces) {
  SubproblemStore::ExportedPositive positive;
  positive.traces = std::move(traces);
  PortableFragmentNode node;
  node.lambda = {0};
  node.chi = {0, 1 + static_cast<int>((fp.lo ^ static_cast<uint64_t>(k)) % 5)};
  positive.fragment.nodes.push_back(std::move(node));
  positive.fragment.root = 0;
  return positive;
}

// ---------------------------------------------------------------------------
// SplitRange

TEST(SplitRangeTest, PartitionsContiguouslyAndCoversTheRange) {
  util::Rng rng(101);
  for (int round = 0; round < 200; ++round) {
    uint64_t a = rng.Next64(), b = rng.Next64();
    FingerprintRange range{std::min(a, b), std::max(a, b)};
    int slices = rng.UniformInt(1, 9);
    auto parts = SplitRange(range, slices);
    ASSERT_GE(parts.size(), 1u);
    ASSERT_LE(parts.size(), static_cast<size_t>(slices));
    EXPECT_EQ(parts.front().first_hi, range.first_hi);
    EXPECT_EQ(parts.back().last_hi, range.last_hi);
    for (size_t i = 0; i < parts.size(); ++i) {
      EXPECT_LE(parts[i].first_hi, parts[i].last_hi);
      if (i > 0) EXPECT_EQ(parts[i].first_hi, parts[i - 1].last_hi + 1);
    }
  }
}

TEST(SplitRangeTest, FullRangeAndDegenerateRanges) {
  auto one = SplitRange(kFullRange, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first_hi, 0u);
  EXPECT_EQ(one[0].last_hi, ~0ULL);

  auto many = SplitRange(kFullRange, 16);
  ASSERT_EQ(many.size(), 16u);
  EXPECT_EQ(many.front().first_hi, 0u);
  EXPECT_EQ(many.back().last_hi, ~0ULL);

  // Fewer hi values than slices: trailing empties are dropped.
  FingerprintRange tiny{100, 102};
  auto parts = SplitRange(tiny, 8);
  ASSERT_EQ(parts.size(), 3u);
  for (size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].first_hi, 100 + i);
    EXPECT_EQ(parts[i].last_hi, 100 + i);
  }
}

// ---------------------------------------------------------------------------
// Digest semantics

TEST(DigestTest, CacheDigestIgnoresInsertionOrderAndSolveStats) {
  std::vector<CacheKey> keys;
  util::Rng rng(7);
  for (int i = 0; i < 24; ++i) {
    keys.push_back(CacheKey{Fingerprint{rng.Next64(), rng.Next64()},
                            rng.UniformInt(1, 5), kConfig});
  }
  ResultCache a(64, 4), b(64, 4);
  for (const CacheKey& key : keys) a.Insert(key, TrivialResult(key.fingerprint.lo));
  std::vector<CacheKey> reversed(keys.rbegin(), keys.rend());
  // Different order AND different values (a replica that solved the same
  // instances itself holds different SolveStats).
  for (const CacheKey& key : reversed) {
    b.Insert(key, TrivialResult(key.fingerprint.hi * 3 + 1));
  }
  EXPECT_EQ(ComputeDigestSummary(&a, nullptr, kConfig, kFullRange, 8).slices,
            ComputeDigestSummary(&b, nullptr, kConfig, kFullRange, 8).slices);
}

TEST(DigestTest, DifferingEntryIsLocalisedToItsSlice) {
  ResultCache a(64, 4), b(64, 4);
  CacheKey shared{Fingerprint{42, 42}, 2, kConfig};
  a.Insert(shared, TrivialResult(1));
  b.Insert(shared, TrivialResult(2));
  // hi = 2^63: lands in the upper half of every power-of-two slicing.
  CacheKey extra{Fingerprint{uint64_t{1} << 63, 9}, 2, kConfig};
  b.Insert(extra, TrivialResult(3));

  DigestSummary da = ComputeDigestSummary(&a, nullptr, kConfig, kFullRange, 8);
  DigestSummary db = ComputeDigestSummary(&b, nullptr, kConfig, kFullRange, 8);
  ASSERT_EQ(da.slices.size(), db.slices.size());
  int differing = 0;
  for (size_t i = 0; i < da.slices.size(); ++i) {
    if (!(da.slices[i] == db.slices[i])) {
      ++differing;
      EXPECT_TRUE(da.slices[i].range.Contains(extra.fingerprint))
          << "difference must be localised to the slice owning the extra key";
    }
  }
  EXPECT_EQ(differing, 1);
}

TEST(DigestTest, StoreDigestIgnoresFragmentBytes) {
  Fingerprint fp{77, 78};
  SubproblemStore a, b;
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = fp;
  entry.k = 2;
  entry.positives.push_back(DeterministicPositive(fp, 2, {{0}, {1}}));
  ASSERT_TRUE(a.Import(entry));
  // Same traces, different decomposition bytes: knowledge-equal.
  entry.positives[0].fragment.nodes[0].chi = {0, 3, 7};
  ASSERT_TRUE(b.Import(entry));
  EXPECT_EQ(ComputeDigestSummary(nullptr, &a, kConfig, kFullRange, 4).slices,
            ComputeDigestSummary(nullptr, &b, kConfig, kFullRange, 4).slices);
}

TEST(DigestTest, StoreDigestIgnoresCrossKDominatedVariants) {
  Fingerprint fp{500, 1};
  // a: only the dominating variants. b: the same plus dominated ones.
  SubproblemStore a, b;
  SubproblemStore::ExportedEntry dominating;
  dominating.fingerprint = fp;
  dominating.k = 3;
  dominating.negatives = {{{0}, {1}}};
  ASSERT_TRUE(a.Import(dominating));
  ASSERT_TRUE(b.Import(dominating));
  SubproblemStore::ExportedEntry dominated;
  dominated.fingerprint = fp;
  dominated.k = 2;  // {{0}} failed at k=2: implied by {{0},{1}} failing at k=3
  dominated.negatives = {{{0}}};
  ASSERT_TRUE(b.Import(dominated));

  Fingerprint fq{501, 1};
  SubproblemStore::ExportedEntry base;
  base.fingerprint = fq;
  base.k = 2;
  base.positives.push_back(DeterministicPositive(fq, 2, {{0}}));
  ASSERT_TRUE(a.Import(base));
  ASSERT_TRUE(b.Import(base));
  SubproblemStore::ExportedEntry wider;
  wider.fingerprint = fq;
  wider.k = 3;  // a k=2 fragment over {{0}} already answers this
  wider.positives.push_back(DeterministicPositive(fq, 3, {{0}, {1}}));
  ASSERT_TRUE(b.Import(wider));

  EXPECT_EQ(ComputeDigestSummary(nullptr, &a, kConfig, kFullRange, 4).slices,
            ComputeDigestSummary(nullptr, &b, kConfig, kFullRange, 4).slices)
      << "a compacted replica must digest equal to an uncompacted one";
}

// ---------------------------------------------------------------------------
// Wire format

DigestSummary SampleSummary() {
  ResultCache cache(32, 2);
  SubproblemStore store;
  util::Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    cache.Insert(CacheKey{Fingerprint{rng.Next64(), rng.Next64()}, 2, kConfig},
                 TrivialResult(i));
  }
  for (int i = 0; i < 6; ++i) {
    SubproblemStore::ExportedEntry entry;
    entry.fingerprint = Fingerprint{rng.Next64(), rng.Next64()};
    entry.k = rng.UniformInt(1, 4);
    entry.negatives = {{{0}}};
    store.Import(entry);
  }
  return ComputeDigestSummary(&cache, &store, kConfig, kFullRange, 8);
}

TEST(DigestWireTest, RenderParseRoundTrips) {
  DigestSummary summary = SampleSummary();
  std::string text = RenderDigestSummary(summary);
  auto parsed = ParseDigestSummary(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->config_digest, summary.config_digest);
  EXPECT_EQ(parsed->slices, summary.slices);
  EXPECT_EQ(RenderDigestSummary(*parsed), text);
}

TEST(DigestWireTest, RejectsTruncationAtEveryLength) {
  std::string text = RenderDigestSummary(SampleSummary());
  for (size_t len = 0; len < text.size(); ++len) {
    auto parsed = ParseDigestSummary(text.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(DigestWireTest, BitFlipsFailOrStayCanonical) {
  // A flipped hex digit can still be a VALID summary (a different digest
  // value is indistinguishable from honest content) — what must never
  // happen is an accepted response that is not in canonical form: every
  // accepted parse re-renders to exactly its input, so nothing structurally
  // odd (bad spacing, overlap, count drift) gets through.
  std::string text = RenderDigestSummary(SampleSummary());
  util::Rng rng(13);
  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupt = text;
    size_t pos = rng.Next64() % corrupt.size();
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (trial % 8)));
    if (corrupt == text) continue;
    auto parsed = ParseDigestSummary(corrupt);
    if (parsed.ok()) {
      EXPECT_EQ(RenderDigestSummary(*parsed), corrupt)
          << "accepted mutants must be canonical (flip at " << pos << ")";
    }
  }
}

TEST(DigestWireTest, RejectsStructuralLies) {
  DigestSummary summary = SampleSummary();
  std::string text = RenderDigestSummary(summary);
  EXPECT_FALSE(ParseDigestSummary("").ok());
  EXPECT_FALSE(ParseDigestSummary("HTDDIGEST2" + text.substr(10)).ok());
  EXPECT_FALSE(ParseDigestSummary(text + "junk\n").ok());
  EXPECT_FALSE(ParseDigestSummary(text + "\n").ok());

  // Drop one slice line without fixing the count.
  size_t first_eol = text.find('\n');
  size_t second_eol = text.find('\n', first_eol + 1);
  std::string missing_line =
      text.substr(0, first_eol + 1) + text.substr(second_eol + 1);
  EXPECT_FALSE(ParseDigestSummary(missing_line).ok());

  // Uppercase hex is not canonical.
  std::string upper = text;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  EXPECT_FALSE(ParseDigestSummary(upper).ok());

  // Non-contiguous slices: shift one boundary.
  DigestSummary gap = summary;
  ASSERT_GE(gap.slices.size(), 2u);
  gap.slices[1].range.first_hi += 1;
  EXPECT_FALSE(ParseDigestSummary(RenderDigestSummary(gap)).ok());

  DigestSummary descending = summary;
  std::swap(descending.slices[0], descending.slices[1]);
  EXPECT_FALSE(ParseDigestSummary(RenderDigestSummary(descending)).ok());
}

// ---------------------------------------------------------------------------
// Merge convergence properties

/// One recorded outcome; the unit of replication in the property tests.
struct Op {
  Fingerprint fp;
  int k = 0;
  bool positive = false;
  std::vector<std::vector<int>> traces;
};

std::vector<Op> RandomOps(util::Rng& rng, int count) {
  // Small pools on purpose: heavy key collisions across k and polarity are
  // where dominance pruning and antichain maintenance actually fire. Trace
  // variants are non-empty subsets of three singleton traces (at most 7
  // distinct variants per polarity), so the per-key variant cap (8) never
  // triggers — cap eviction is LRU-order-dependent by design and would
  // break order-independence.
  std::vector<Fingerprint> fps;
  for (uint64_t i = 0; i < 5; ++i) fps.push_back(Fingerprint{i * 1000 + 3, i});
  std::vector<Op> ops;
  for (int i = 0; i < count; ++i) {
    Op op;
    op.fp = fps[static_cast<size_t>(rng.UniformInt(0, 4))];
    op.k = rng.UniformInt(1, 4);
    op.positive = rng.Chance(0.4);
    for (int t = 0; t < 3; ++t) {
      if (rng.Chance(0.5)) op.traces.push_back({t});
    }
    if (op.traces.empty()) op.traces.push_back({0});
    ops.push_back(std::move(op));
  }
  return ops;
}

void Apply(SubproblemStore* store, const Op& op) {
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = op.fp;
  entry.k = op.k;
  if (op.positive) {
    entry.positives.push_back(DeterministicPositive(op.fp, op.k, op.traces));
  } else {
    entry.negatives.push_back(op.traces);
  }
  store->Import(entry);
}

/// One anti-entropy pull, as the sweep performs it: the compacted export of
/// `from` merged into `into` through the dominance-checked import path.
void Merge(SubproblemStore* into, SubproblemStore* from) {
  auto exported = from->Export();
  SubproblemStore::CompactExported(&exported);
  for (const auto& entry : exported) into->Import(entry);
}

uint64_t StoreDigest(SubproblemStore* store) {
  DigestSummary summary =
      ComputeDigestSummary(nullptr, store, kConfig, kFullRange, 1);
  return summary.slices.empty() ? 0 : summary.slices[0].digest;
}

TEST(MergePropertyTest, MergeIsIdempotent) {
  util::Rng rng(21);
  for (int round = 0; round < 10; ++round) {
    util::Rng fork = rng.Fork();
    std::vector<Op> ops = RandomOps(fork, 30);
    SubproblemStore source, target;
    for (size_t i = 0; i < ops.size(); ++i) {
      Apply(i % 2 == 0 ? &source : &target, ops[i]);
    }
    Merge(&target, &source);
    const uint64_t once = StoreDigest(&target);
    const size_t entries_once = target.num_entries();
    Merge(&target, &source);
    EXPECT_EQ(StoreDigest(&target), once);
    EXPECT_EQ(target.num_entries(), entries_once)
        << "re-merging an already-merged sibling must change nothing";
  }
}

TEST(MergePropertyTest, MergeIsCommutative) {
  util::Rng rng(22);
  for (int round = 0; round < 10; ++round) {
    util::Rng fork = rng.Fork();
    std::vector<Op> ops_a = RandomOps(fork, 20);
    std::vector<Op> ops_b = RandomOps(fork, 20);

    SubproblemStore a1, b1;  // a then b's content
    for (const Op& op : ops_a) Apply(&a1, op);
    for (const Op& op : ops_b) Apply(&b1, op);
    Merge(&a1, &b1);

    SubproblemStore a2, b2;  // b then a's content
    for (const Op& op : ops_a) Apply(&a2, op);
    for (const Op& op : ops_b) Apply(&b2, op);
    Merge(&b2, &a2);

    EXPECT_EQ(StoreDigest(&a1), StoreDigest(&b2))
        << "A merged with B must hold the same knowledge as B merged with A";
  }
}

TEST(MergePropertyTest, ReplicasConvergeRegardlessOfSweepOrder) {
  util::Rng rng(23);
  for (int round = 0; round < 6; ++round) {
    util::Rng fork = rng.Fork();
    std::vector<Op> ops = RandomOps(fork, 45);

    // Three sweep schedules over the same initial replica contents: ring
    // order, reverse ring, and a star (everyone pulls from replica 0 and
    // replica 0 pulls from everyone). All must reach the same fixpoint.
    std::vector<std::vector<std::pair<int, int>>> schedules = {
        {{0, 1}, {1, 2}, {2, 0}, {0, 1}, {1, 2}, {2, 0}},
        {{2, 1}, {1, 0}, {0, 2}, {2, 1}, {1, 0}, {0, 2}},
        {{0, 1}, {0, 2}, {1, 0}, {2, 0}, {1, 0}, {2, 0}, {0, 1}, {0, 2}},
    };
    std::vector<uint64_t> final_digests;
    for (const auto& schedule : schedules) {
      SubproblemStore replicas[3];
      for (size_t i = 0; i < ops.size(); ++i) {
        Apply(&replicas[i % 3], ops[i]);
      }
      for (auto [into, from] : schedule) {
        Merge(&replicas[into], &replicas[from]);
      }
      const uint64_t d0 = StoreDigest(&replicas[0]);
      EXPECT_EQ(d0, StoreDigest(&replicas[1]));
      EXPECT_EQ(d0, StoreDigest(&replicas[2]));
      final_digests.push_back(d0);

      // Converged replicas are byte-identical in compacted-export space
      // (fragments are deterministic in (fp, k, traces) here).
      auto normalise = [](SubproblemStore& store) {
        auto exported = store.Export();
        SubproblemStore::CompactExported(&exported);
        std::vector<std::string> lines;
        for (const auto& entry : exported) {
          for (auto negatives : entry.negatives) {
            std::string line = std::to_string(entry.fingerprint.hi) + "/" +
                               std::to_string(entry.k) + "/neg";
            std::sort(negatives.begin(), negatives.end());
            for (const auto& trace : negatives) {
              for (int v : trace) line += ":" + std::to_string(v);
              line += ";";
            }
            lines.push_back(std::move(line));
          }
          for (const auto& positive : entry.positives) {
            std::string line = std::to_string(entry.fingerprint.hi) + "/" +
                               std::to_string(entry.k) + "/pos";
            for (const auto& trace : positive.traces) {
              for (int v : trace) line += ":" + std::to_string(v);
              line += ";";
            }
            for (const auto& node : positive.fragment.nodes) {
              for (int v : node.chi) line += "," + std::to_string(v);
            }
            lines.push_back(std::move(line));
          }
        }
        std::sort(lines.begin(), lines.end());
        return lines;
      };
      EXPECT_EQ(normalise(replicas[0]), normalise(replicas[1]));
      EXPECT_EQ(normalise(replicas[0]), normalise(replicas[2]));
    }
    EXPECT_EQ(final_digests[0], final_digests[1]);
    EXPECT_EQ(final_digests[0], final_digests[2])
        << "the fixpoint must not depend on the sweep schedule";
  }
}

TEST(MergePropertyTest, CacheMergeConvergesThroughSnapshotCodec) {
  util::Rng rng(24);
  std::vector<CacheKey> keys;
  for (int i = 0; i < 18; ++i) {
    keys.push_back(CacheKey{Fingerprint{rng.Next64(), rng.Next64()},
                            rng.UniformInt(1, 4), kConfig});
  }
  ResultCache a(64, 4), b(64, 4);
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 2 == 0 ? a : b).Insert(keys[i], TrivialResult(i));
  }
  // Pull b's content into a and vice versa, the way the sweep does.
  auto pull = [](ResultCache* into, ResultCache* from) {
    std::string blob = service::EncodeSnapshot(from, nullptr, kConfig);
    ASSERT_TRUE(service::DecodeSnapshot(blob, into, nullptr).ok());
  };
  pull(&a, &b);
  pull(&b, &a);
  EXPECT_EQ(ComputeDigestSummary(&a, nullptr, kConfig, kFullRange, 8).slices,
            ComputeDigestSummary(&b, nullptr, kConfig, kFullRange, 8).slices);
  for (const CacheKey& key : keys) {
    EXPECT_TRUE(a.Lookup(key).has_value());
    EXPECT_TRUE(b.Lookup(key).has_value());
  }
}

// ---------------------------------------------------------------------------
// Cross-k dominance lookups (the width-dominance half of the merge rules)

TEST(CrossKLookupTest, NegativeRecordedAtHigherKServesLowerK) {
  SubproblemStore store;
  Fingerprint fp{900, 1};
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = fp;
  entry.k = 3;
  entry.negatives = {{{0}, {1}}};
  ASSERT_TRUE(store.Import(entry));

  Hypergraph graph = MakeCycle(4);
  SubproblemStore::Key key;
  key.fingerprint = fp;
  key.k = 2;  // smaller k, subset allowed set: implied failure
  key.allowed_traces = {{0}};
  EXPECT_EQ(store.Lookup(key, graph, nullptr), SubproblemStore::Hit::kNegative);
  EXPECT_EQ(store.GetStats().cross_k_negative_hits, 1u);

  key.k = 4;  // larger k: the recorded failure proves nothing
  EXPECT_EQ(store.Lookup(key, graph, nullptr), SubproblemStore::Hit::kMiss);

  key.k = 2;  // superset allowed set: not dominated either
  key.allowed_traces = {{0}, {1}, {2}};
  EXPECT_EQ(store.Lookup(key, graph, nullptr), SubproblemStore::Hit::kMiss);
}

TEST(CrossKLookupTest, PositiveRecordedAtLowerKServesHigherK) {
  SubproblemStore store;
  Fingerprint fp{901, 1};
  SubproblemStore::ExportedEntry entry;
  entry.fingerprint = fp;
  entry.k = 2;
  entry.positives.push_back(DeterministicPositive(fp, 2, {{0}}));
  ASSERT_TRUE(store.Import(entry));

  Hypergraph graph = MakeCycle(4);
  SubproblemStore::Key key;
  key.fingerprint = fp;
  key.k = 3;  // wider budget, superset allowed set: the fragment still fits
  key.allowed_traces = {{0}, {1}};
  EXPECT_EQ(store.Lookup(key, graph, nullptr), SubproblemStore::Hit::kPositive);
  EXPECT_EQ(store.GetStats().cross_k_positive_hits, 1u);

  key.k = 1;  // narrower budget: a width-2 fragment does not fit
  EXPECT_EQ(store.Lookup(key, graph, nullptr), SubproblemStore::Hit::kMiss);
}

// ---------------------------------------------------------------------------
// The live sweep, end to end over real sockets

struct WireResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

WireResponse Exchange(int port, const std::string& method,
                      const std::string& target, const std::string& body = "") {
  WireResponse out;
  auto sock = util::ConnectTcp("127.0.0.1", port, /*timeout_seconds=*/120.0);
  EXPECT_TRUE(sock.ok()) << sock.status().message();
  if (!sock.ok()) return out;
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n" + body;
  EXPECT_TRUE(util::SendAll(sock->fd(), request));
  std::string blob;
  char buffer[8192];
  while (true) {
    long n = util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  EXPECT_TRUE(
      net::ParseHttpResponseBlob(blob, &out.status, &out.headers, &out.body))
      << "unparseable response: " << blob;
  return out;
}

int FreePort() {
  auto listener = util::ListenTcp("127.0.0.1", 0, 1);
  EXPECT_TRUE(listener.ok());
  return util::LocalPort(listener->fd());
}

service::ShardMap MustParse(const std::string& spec) {
  auto map = service::ShardMap::Parse(spec);
  EXPECT_TRUE(map.ok()) << map.status().message();
  return *map;
}

std::unique_ptr<net::DecompositionServer> StartReplica(
    int port, const service::ShardMap& map, int index) {
  net::DecompositionServerOptions options;
  options.http.port = port;
  options.http.io_threads = 2;
  options.service.num_workers = 2;
  options.service.default_timeout_seconds = 30.0;
  options.service.enable_subproblem_store = true;
  options.shard_map = map;
  options.shard_index = index;
  options.anti_entropy_self = "127.0.0.1:" + std::to_string(port);
  options.anti_entropy_slices = 4;
  auto server = net::DecompositionServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  EXPECT_TRUE((*server)->Start().ok());
  return std::move(*server);
}

TEST(SweepTest, PullsSiblingWarmStateAndConverges) {
  const int pa = FreePort(), pb = FreePort();
  const service::ShardMap map =
      MustParse("127.0.0.1:" + std::to_string(pa) + "*2,127.0.0.1:" +
                std::to_string(pb));
  auto a = StartReplica(pa, map, 0);
  auto b = StartReplica(pb, map, 0);

  // Solve on A only — B stays cold (nobody routed it this instance).
  const std::string instance = WriteHyperBench(MakeCycle(6));
  ASSERT_EQ(Exchange(pa, "POST", "/v1/decompose?k=2", instance).status, 200);

  WireResponse digest = Exchange(pa, "GET", "/v1/admin/digest");
  ASSERT_EQ(digest.status, 200);
  EXPECT_EQ(digest.body.rfind("HTDDIGEST1 ", 0), 0u) << digest.body;

  // One forced sweep on B pulls A's cache entry and store keys.
  WireResponse swept = Exchange(pb, "POST", "/v1/admin/antientropy");
  ASSERT_EQ(swept.status, 200) << swept.body;
  EXPECT_NE(swept.body.find("\"siblings\": 1"), std::string::npos) << swept.body;
  EXPECT_NE(swept.body.find("\"errors\": 0"), std::string::npos) << swept.body;
  EXPECT_NE(swept.body.find("\"cache_entries\": 1"), std::string::npos)
      << swept.body;

  // B now answers the instance from its (replicated) cache.
  WireResponse replay = Exchange(pb, "POST", "/v1/decompose?k=2", instance);
  ASSERT_EQ(replay.status, 200);
  EXPECT_NE(replay.body.find("\"cache_hit\": true"), std::string::npos)
      << "a swept replica must serve its sibling's solves warm: " << replay.body;

  // Converged: the next round compares digests and pulls nothing.
  WireResponse again = Exchange(pb, "POST", "/v1/admin/antientropy");
  ASSERT_EQ(again.status, 200) << again.body;
  EXPECT_NE(again.body.find("\"slices_pulled\": 0"), std::string::npos)
      << "equal digests must not trigger pulls: " << again.body;

  WireResponse stats = Exchange(pb, "GET", "/v1/stats");
  EXPECT_NE(stats.body.find("\"anti_entropy\""), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("\"rounds_ok\": 2"), std::string::npos) << stats.body;
  EXPECT_EQ(b->anti_entropy_stats().rounds_ok, 2u);
  EXPECT_GE(b->anti_entropy_stats().bytes_pulled, 1u);

  a->Stop();
  b->Stop();
}

TEST(SweepTest, UnreplicatedRangeSkipsAndUnshardedIs412) {
  // Unsharded server: the route exists but has nothing to reconcile with.
  net::DecompositionServerOptions plain;
  plain.http.port = 0;
  plain.http.io_threads = 2;
  plain.service.num_workers = 1;
  auto server = net::DecompositionServer::Create(plain);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_EQ(Exchange((*server)->port(), "POST", "/v1/admin/antientropy").status,
            412);
  (*server)->Stop();

  // Sharded but unreplicated: a sweep round is a counted no-op.
  const int p0 = FreePort(), p1 = FreePort();
  const service::ShardMap map =
      MustParse("127.0.0.1:" + std::to_string(p0) + ",127.0.0.1:" +
                std::to_string(p1));
  auto lone = StartReplica(p0, map, 0);
  WireResponse swept = Exchange(p0, "POST", "/v1/admin/antientropy");
  ASSERT_EQ(swept.status, 200) << swept.body;
  EXPECT_NE(swept.body.find("\"siblings\": 0"), std::string::npos) << swept.body;
  EXPECT_EQ(lone->anti_entropy_stats().rounds_skipped, 1u);
  lone->Stop();

  // The background interval without a shard map is refused at Create.
  net::DecompositionServerOptions bad;
  bad.http.port = 0;
  bad.anti_entropy_interval_seconds = 0.5;
  EXPECT_FALSE(net::DecompositionServer::Create(bad).ok());
}

TEST(SweepTest, CorruptSiblingAbortsCleanlyWithoutTouchingTheStore) {
  const int pa = FreePort(), pb = FreePort();
  const service::ShardMap map =
      MustParse("127.0.0.1:" + std::to_string(pa) + "*2,127.0.0.1:" +
                std::to_string(pb));
  auto b = StartReplica(pb, map, 0);

  // Warm B so there is live state a corrupt exchange could damage.
  const std::string instance = WriteHyperBench(MakeCycle(6));
  ASSERT_EQ(Exchange(pb, "POST", "/v1/decompose?k=2", instance).status, 200);

  // The "sibling" at pa is an impostor: its digest response is garbage in
  // phase one, then a well-formed summary whose slices all differ — but
  // every export blob it serves is corrupt.
  std::atomic<bool> honest_digest{false};
  service::FingerprintRange full;
  service::DigestSummary lying;
  lying.config_digest = 0;  // patched below once B's digest is known
  net::HttpServer::Options impostor_options;
  impostor_options.host = "127.0.0.1";
  impostor_options.port = pa;
  impostor_options.io_threads = 2;
  net::HttpServer impostor(
      impostor_options, [&](const net::HttpRequest& request) {
        net::HttpResponse response;
        if (request.path == "/v1/admin/digest") {
          response.body = honest_digest.load()
                              ? RenderDigestSummary(lying)
                              : "HTDDIGEST1 zz not-a-digest\ngarbage\n";
        } else {
          response.body = "HTDSNAP1 but then garbage follows";
        }
        return response;
      });
  ASSERT_TRUE(impostor.Start().ok());

  // Phase one: unparseable digest. The round errors before any pull.
  WireResponse swept = Exchange(pb, "POST", "/v1/admin/antientropy");
  ASSERT_EQ(swept.status, 502) << swept.body;
  EXPECT_NE(swept.body.find("\"errors\": 1"), std::string::npos) << swept.body;
  EXPECT_NE(swept.body.find("\"slices_pulled\": 0"), std::string::npos)
      << "a corrupt digest must abort before pulling: " << swept.body;
  EXPECT_NE(swept.body.find("\"cache_entries\": 0"), std::string::npos);

  // Phase two: a valid digest advertising differences, but corrupt blobs.
  // The pull happens, the decode rejects it, nothing merges.
  auto b_digest = ParseDigestSummary(
      Exchange(pb, "GET", "/v1/admin/digest?slices=4").body);
  ASSERT_TRUE(b_digest.ok()) << b_digest.status().message();
  lying = *b_digest;
  for (auto& slice : lying.slices) slice.digest ^= 0xdeadbeefULL;
  honest_digest.store(true);
  WireResponse swept2 = Exchange(pb, "POST", "/v1/admin/antientropy");
  ASSERT_EQ(swept2.status, 502) << swept2.body;
  EXPECT_NE(swept2.body.find("\"cache_entries\": 0"), std::string::npos)
      << "corrupt blobs must merge nothing: " << swept2.body;
  EXPECT_EQ(b->anti_entropy_stats().rounds_error, 2u);
  EXPECT_EQ(b->anti_entropy_stats().merged_cache_entries, 0u);
  EXPECT_EQ(b->anti_entropy_stats().merged_store_entries, 0u);

  // B's own warm state is intact: the replay still hits.
  WireResponse replay = Exchange(pb, "POST", "/v1/decompose?k=2", instance);
  ASSERT_EQ(replay.status, 200);
  EXPECT_NE(replay.body.find("\"cache_hit\": true"), std::string::npos)
      << replay.body;

  impostor.Stop();
  b->Stop();
}

TEST(SweepTest, MigrationInFlightSkipsTheRound) {
  const int pa = FreePort(), pb = FreePort(), pc = FreePort();
  const service::ShardMap map =
      MustParse("127.0.0.1:" + std::to_string(pa) + "*2,127.0.0.1:" +
                std::to_string(pb));
  auto a = StartReplica(pa, map, 0);

  const std::string new_spec = "127.0.0.1:" + std::to_string(pa) +
                               "*2,127.0.0.1:" + std::to_string(pb) +
                               ",127.0.0.1:" + std::to_string(pc);
  WireResponse prepared = Exchange(
      pa, "POST", "/v1/admin/migrate?prepare=1&new_index=0", new_spec);
  ASSERT_EQ(prepared.status, 200) << prepared.body;

  WireResponse swept = Exchange(pa, "POST", "/v1/admin/antientropy");
  EXPECT_EQ(swept.status, 412) << swept.body;
  EXPECT_EQ(a->anti_entropy_stats().rounds_skipped, 1u);
  a->Stop();
}

TEST(SweepTest, BackgroundLoopConvergesWithoutOperatorAction) {
  const int pa = FreePort(), pb = FreePort();
  const service::ShardMap map =
      MustParse("127.0.0.1:" + std::to_string(pa) + "*2,127.0.0.1:" +
                std::to_string(pb));
  auto a = StartReplica(pa, map, 0);

  const std::string instance = WriteHyperBench(MakeCycle(6));
  ASSERT_EQ(Exchange(pa, "POST", "/v1/decompose?k=2", instance).status, 200);

  // B runs the background loop at a short interval; no one ever posts
  // /v1/admin/antientropy to it.
  net::DecompositionServerOptions options;
  options.http.port = pb;
  options.http.io_threads = 2;
  options.service.num_workers = 2;
  options.service.enable_subproblem_store = true;
  options.shard_map = map;
  options.shard_index = 0;
  options.anti_entropy_self = "127.0.0.1:" + std::to_string(pb);
  options.anti_entropy_slices = 4;
  options.anti_entropy_interval_seconds = 0.05;
  auto b = net::DecompositionServer::Create(options);
  ASSERT_TRUE(b.ok()) << b.status().message();
  ASSERT_TRUE((*b)->Start().ok());

  bool warm = false;
  for (int i = 0; i < 500 && !warm; ++i) {
    warm = (*b)->anti_entropy_stats().merged_cache_entries > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(warm) << "the background loop must pull the sibling's state";
  WireResponse replay = Exchange(pb, "POST", "/v1/decompose?k=2", instance);
  ASSERT_EQ(replay.status, 200);
  EXPECT_NE(replay.body.find("\"cache_hit\": true"), std::string::npos)
      << replay.body;

  (*b)->Stop();  // must join the loop promptly
  a->Stop();
}

}  // namespace
}  // namespace htd
