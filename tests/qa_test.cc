// Tests for the query-answering subsystem: the HTDQUERY1 wire codec (strict
// parse/render, fuzzed like HTDDIGEST1 in anti_entropy_test.cc), the scored
// decomposition portfolio, and the decompose-and-execute QueryEngine running
// through a real DecompositionService.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "qa/portfolio.h"
#include "qa/query_engine.h"
#include "qa/wire.h"
#include "service/canonical.h"
#include "service/service.h"
#include "util/rng.h"

namespace htd::qa {
namespace {

cq::Database SampleDatabase() {
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 2}, {4, 5}}});
  db.AddRelation({"S", 2, {{2, 7}, {2, 8}, {5, 9}}});
  return db;
}

std::string SampleRequestText() {
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  HTD_CHECK(query.ok());
  auto text = RenderQueryRequest(*query, SampleDatabase());
  HTD_CHECK(text.ok());
  return *text;
}

TEST(QueryWireTest, RenderParseRoundTrips) {
  std::string text = SampleRequestText();
  auto parsed = ParseQueryRequest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->query.atoms.size(), 2u);
  auto rerendered = RenderQueryRequest(parsed->query, parsed->db);
  ASSERT_TRUE(rerendered.ok());
  EXPECT_EQ(*rerendered, text);
}

TEST(QueryWireTest, DuplicateTuplesRenderCanonically) {
  auto query = cq::ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  cq::Database messy;
  messy.AddRelation({"R", 2, {{3, 4}, {1, 2}, {3, 4}, {1, 2}}});
  cq::Database tidy;
  tidy.AddRelation({"R", 2, {{1, 2}, {3, 4}}});
  auto a = RenderQueryRequest(*query, messy);
  auto b = RenderQueryRequest(*query, tidy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // set semantics: logically equal inputs, one rendering
}

TEST(QueryWireTest, RejectsTruncationAtEveryLength) {
  std::string text = SampleRequestText();
  for (size_t len = 0; len < text.size(); ++len) {
    auto parsed = ParseQueryRequest(text.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(QueryWireTest, BitFlipsFailOrStayCanonical) {
  // A flipped byte can still spell a VALID request (a different constant in
  // a tuple is indistinguishable from honest content) — what must never
  // happen is an accepted parse that is not canonical: every accepted
  // mutant re-renders byte-identically, so nothing structurally odd (count
  // drift, order violations, spacing) gets through.
  std::string text = SampleRequestText();
  util::Rng rng(17);
  for (int trial = 0; trial < 600; ++trial) {
    std::string corrupt = text;
    size_t pos = rng.Next64() % corrupt.size();
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (trial % 8)));
    if (corrupt == text) continue;
    auto parsed = ParseQueryRequest(corrupt);
    if (parsed.ok()) {
      auto rerendered = RenderQueryRequest(parsed->query, parsed->db);
      ASSERT_TRUE(rerendered.ok());
      EXPECT_EQ(*rerendered, corrupt)
          << "accepted mutants must be canonical (flip at " << pos << ")";
    }
  }
}

TEST(QueryWireTest, RejectsStructuralLies) {
  std::string text = SampleRequestText();
  EXPECT_FALSE(ParseQueryRequest("").ok());
  EXPECT_FALSE(ParseQueryRequest("HTDQUERY2" + text.substr(9)).ok());
  EXPECT_FALSE(ParseQueryRequest(text + "x").ok());          // trailing bytes
  EXPECT_FALSE(ParseQueryRequest(text + "\n").ok());         // extra line
  EXPECT_FALSE(
      ParseQueryRequest(text.substr(0, text.size() - 1)).ok());  // no final \n

  // Tuples out of ascending order.
  std::string swapped = text;
  size_t a = swapped.find("1 2\n");
  ASSERT_NE(a, std::string::npos);
  swapped.replace(a, 4, "3 2\n");
  size_t b = swapped.find("3 2\n", a + 4);
  ASSERT_NE(b, std::string::npos);
  swapped.replace(b, 4, "1 2\n");
  EXPECT_FALSE(ParseQueryRequest(swapped).ok());

  // Duplicate tuple (count patched to match, so only ordering can object).
  std::string duplicated = text;
  duplicated.replace(duplicated.find("3 2\n"), 4, "1 2\n");
  EXPECT_FALSE(ParseQueryRequest(duplicated).ok());

  // Non-canonical integer spelling.
  std::string padded = text;
  padded.replace(padded.find("1 2\n"), 4, "01 2\n");
  EXPECT_FALSE(ParseQueryRequest(padded).ok());

  // Relation count lies.
  std::string miscounted = text;
  miscounted.replace(miscounted.find("HTDQUERY1 2"), 11, "HTDQUERY1 3");
  EXPECT_FALSE(ParseQueryRequest(miscounted).ok());
}

TEST(QueryWireTest, RenderRejectsInvalidRequests) {
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  cq::Database missing;  // no S
  missing.AddRelation({"R", 2, {{1, 2}}});
  EXPECT_FALSE(RenderQueryRequest(*query, missing).ok());

  cq::Database wrong_arity;
  wrong_arity.AddRelation({"R", 2, {{1, 2}}});
  wrong_arity.AddRelation({"S", 3, {{1, 2, 3}}});
  EXPECT_FALSE(RenderQueryRequest(*query, wrong_arity).ok());

  auto mixed = cq::ParseQuery("R(X,Y), R(X,Y,Z).");
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(RenderQueryRequest(*mixed, SampleDatabase()).ok());
}

// ---------------------------------------------------------------------------
// Portfolio.

struct Solved {
  Hypergraph graph;
  service::Fingerprint fingerprint;
  Decomposition first;  // width-1 chain decomposition
  Decomposition wide;   // a k=2 solve of the same graph
};

Solved SolveChain() {
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z), T(Z,W).");
  HTD_CHECK(query.ok());
  Solved out{cq::QueryHypergraph(*query), {}, {}, {}};
  out.fingerprint = service::CanonicalFingerprint(out.graph);
  LogKDecomp solver;
  SolveResult narrow = solver.Solve(out.graph, 1);
  HTD_CHECK(narrow.outcome == Outcome::kYes);
  out.first = *narrow.decomposition;
  SolveResult wide = solver.Solve(out.graph, 2);
  HTD_CHECK(wide.outcome == Outcome::kYes);
  out.wide = *wide.decomposition;
  return out;
}

TEST(PortfolioTest, InsertDedupsIdenticalShapes) {
  Solved s = SolveChain();
  DecompositionPortfolio portfolio;
  EXPECT_TRUE(portfolio.Insert(s.fingerprint, s.graph, s.first));
  EXPECT_FALSE(portfolio.Insert(s.fingerprint, s.graph, s.first));
  EXPECT_EQ(portfolio.CandidateCount(s.fingerprint, s.graph), 1);
}

TEST(PortfolioTest, FirstFoundBaselineSurvivesCapacityEviction) {
  Solved s = SolveChain();
  PortfolioOptions options;
  options.capacity_per_key = 1;
  DecompositionPortfolio portfolio(options);
  // Insert the WIDE tree first so a quality-based eviction would want to
  // replace it with the narrower one — slot 0 must survive regardless.
  ASSERT_TRUE(portfolio.Insert(s.fingerprint, s.graph, s.wide));
  EXPECT_FALSE(portfolio.Insert(s.fingerprint, s.graph, s.first));
  std::vector<Decomposition> kept = portfolio.Candidates(s.fingerprint, s.graph);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].Width(), s.wide.Width());
}

TEST(PortfolioTest, RejectsDecompositionOfADifferentGraph) {
  Solved s = SolveChain();
  auto other_query = cq::ParseQuery("R(X,Y), S(Y,Z), T(Z,W), U(W,V).");
  ASSERT_TRUE(other_query.ok());
  Hypergraph other = cq::QueryHypergraph(*other_query);
  DecompositionPortfolio portfolio;
  LogKDecomp solver;
  SolveResult run = solver.Solve(other, 1);
  ASSERT_EQ(run.outcome, Outcome::kYes);
  // A 5-vertex decomposition is not a decomposition of the 4-vertex chain:
  // its χ sets reference vertices outside every edge of s.graph.
  EXPECT_FALSE(portfolio.Insert(s.fingerprint, s.graph, *run.decomposition));
  EXPECT_EQ(portfolio.CandidateCount(s.fingerprint, s.graph), 0);
}

TEST(PortfolioTest, KeysSeparateLabelledGraphs) {
  Solved s = SolveChain();
  auto longer = cq::ParseQuery("R(X,Y), S(Y,Z), T(Z,W), U(W,V).");
  ASSERT_TRUE(longer.ok());
  Hypergraph other = cq::QueryHypergraph(*longer);
  EXPECT_NE(LabelledGraphDigest(s.graph), LabelledGraphDigest(other));
  EXPECT_EQ(LabelledGraphDigest(s.graph), LabelledGraphDigest(s.graph));

  DecompositionPortfolio portfolio;
  ASSERT_TRUE(portfolio.Insert(s.fingerprint, s.graph, s.first));
  EXPECT_EQ(portfolio.num_keys(), 1u);
  EXPECT_FALSE(portfolio.PickBest(s.fingerprint, other, {}).has_value());
}

TEST(PortfolioTest, PickBestMinimisesEstimatedCost) {
  Solved s = SolveChain();
  DecompositionPortfolio portfolio;
  ASSERT_TRUE(portfolio.Insert(s.fingerprint, s.graph, s.first));
  portfolio.Insert(s.fingerprint, s.graph, s.wide);
  // Whatever the candidate set is, PickBest never costs more than PickFirst
  // and reports a coherent (index, size) pair.
  std::vector<uint64_t> cardinalities = {1000, 3, 1000};
  auto best = portfolio.PickBest(s.fingerprint, s.graph, cardinalities);
  auto first = portfolio.PickFirst(s.fingerprint, s.graph, cardinalities);
  ASSERT_TRUE(best.has_value());
  ASSERT_TRUE(first.has_value());
  EXPECT_LE(best->estimated_cost, first->estimated_cost);
  EXPECT_EQ(first->candidate_index, 0);
  EXPECT_GE(best->num_candidates, 1);
  EXPECT_LT(best->candidate_index, best->num_candidates);
}

// ---------------------------------------------------------------------------
// QueryEngine against a real service.

service::ServiceOptions SmallService() {
  service::ServiceOptions options;
  options.num_workers = 2;
  return options;
}

TEST(QueryEngineTest, AnswersWithVerifiedWitnessAndCount) {
  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  cq::Database db = SampleDatabase();

  auto answer = engine.Answer(*query, db, /*timeout_seconds=*/0);
  ASSERT_TRUE(answer.ok()) << answer.status().message();
  EXPECT_EQ(answer->outcome, QueryOutcome::kSatisfiable);
  ASSERT_TRUE(answer->counted);
  EXPECT_EQ(answer->count.value, 5ull);
  EXPECT_FALSE(answer->count.saturated);
  EXPECT_GE(answer->width, 1);
  EXPECT_GE(answer->portfolio_size, 1);
  EXPECT_FALSE(answer->decompose_cache_hit);  // cold service
  for (const cq::Atom& atom : query->atoms) {
    const cq::Relation* rel = db.Find(atom.relation);
    ASSERT_NE(rel, nullptr);
    cq::Tuple expected;
    for (const auto& variable : atom.variables) {
      expected.push_back(answer->witness.at(variable));
    }
    EXPECT_NE(std::find(rel->tuples.begin(), rel->tuples.end(), expected),
              rel->tuples.end());
  }

  // Second ask: every decomposition probe (the k-sweep AND the diversity
  // probes) is answered from the result cache.
  auto warm = engine.Answer(*query, db, 0);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->decompose_cache_hit);
  EXPECT_EQ(warm->count.value, 5ull);
}

TEST(QueryEngineTest, UnsatisfiableQueryCountsZero) {
  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{3, 4}}});
  auto answer = engine.Answer(*query, db, 0);
  ASSERT_TRUE(answer.ok()) << answer.status().message();
  EXPECT_EQ(answer->outcome, QueryOutcome::kUnsatisfiable);
  EXPECT_TRUE(answer->counted);
  EXPECT_EQ(answer->count.value, 0ull);
}

TEST(QueryEngineTest, CountOverrideSkipsCounting) {
  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto query = cq::ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  auto answer = engine.Answer(*query, db, 0, {}, /*count_override=*/false);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->outcome, QueryOutcome::kSatisfiable);
  EXPECT_FALSE(answer->counted);
}

TEST(QueryEngineTest, WidthBeyondMaxKIsNoDecomposition) {
  service::DecompositionService service(SmallService());
  QueryEngineOptions options;
  options.max_k = 1;  // a triangle needs width 2
  QueryEngine engine(&service, options);
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{2, 3}}});
  db.AddRelation({"T", 2, {{3, 1}}});
  auto answer = engine.Answer(*query, db, 0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->outcome, QueryOutcome::kNoDecomposition);
}

TEST(QueryEngineTest, SchemaErrorsAreInvalidArgument) {
  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  cq::Database db;
  db.AddRelation({"R", 2, {{1, 2}}});  // S missing
  auto missing = engine.Answer(*query, db, 0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kInvalidArgument);

  db.AddRelation({"S", 3, {{1, 2, 3}}});  // wrong arity
  auto arity = engine.Answer(*query, db, 0);
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, ExpiredDeadlineIsDeadlineOutcome) {
  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto query = cq::ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  auto answer = engine.Answer(*query, SampleDatabase(), /*timeout_seconds=*/1e-12);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->outcome, QueryOutcome::kDeadline);
}

// End-to-end property sweep: random queries and databases through the full
// engine (service, portfolio, executor) agree with the brute-force oracles.
class QueryEnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryEnginePropertyTest, AgreesWithBruteForce) {
  util::Rng rng(GetParam() + 9000);
  std::string text;
  int atoms = rng.UniformInt(3, 5);
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) text += ", ";
    text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
            std::to_string(i + 1) + ")";
  }
  text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 2)) + ").";
  auto query = cq::ParseQuery(text);
  ASSERT_TRUE(query.ok());
  cq::Database db = cq::RandomDatabase(rng, *query, /*domain_size=*/4,
                                       /*tuples_per_relation=*/6,
                                       /*satisfiable_bias=*/0.5);
  // Round-trip the request through the wire first: the engine must answer
  // the decoded request identically.
  auto wire = RenderQueryRequest(*query, db);
  ASSERT_TRUE(wire.ok()) << wire.status().message();
  auto decoded = ParseQueryRequest(*wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();

  service::DecompositionService service(SmallService());
  QueryEngine engine(&service);
  auto answer = engine.Answer(decoded->query, decoded->db, 0);
  ASSERT_TRUE(answer.ok()) << answer.status().message();

  auto oracle = cq::EvaluateBruteForce(*query, db);
  auto oracle_count = cq::CountSolutionsBruteForce(*query, db);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle_count.ok());
  if (oracle->satisfiable) {
    EXPECT_EQ(answer->outcome, QueryOutcome::kSatisfiable) << "seed " << GetParam();
  } else {
    EXPECT_EQ(answer->outcome, QueryOutcome::kUnsatisfiable) << "seed " << GetParam();
  }
  ASSERT_TRUE(answer->counted);
  EXPECT_EQ(answer->count.value, *oracle_count) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEnginePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace htd::qa
