#include "decomp/simplify.h"

#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(SimplifyTest, ContractsSubsetBags) {
  // Root {x0,x1,x2} with a redundant child {x0,x1} that carries the real
  // leaf {x1,x2} below it: the middle node must be contracted.
  Hypergraph graph = MakePath(3);  // edges {0,1},{1,2}
  Decomposition decomp;
  int root = decomp.AddNode({0, 1}, util::DynamicBitset::FromIndices(3, {0, 1, 2}), -1);
  int middle = decomp.AddNode({1}, util::DynamicBitset::FromIndices(3, {1, 2}), root);
  decomp.AddNode({1}, util::DynamicBitset::FromIndices(3, {1, 2}), middle);
  ASSERT_TRUE(ValidateHd(graph, decomp).ok);

  Decomposition simplified = SimplifyDecomposition(graph, decomp);
  EXPECT_LT(simplified.num_nodes(), decomp.num_nodes());
  Validation validation = ValidateHd(graph, simplified);
  EXPECT_TRUE(validation.ok) << validation.error;
  // In fact everything collapses into the root here (child bags are subsets
  // or cover nothing exclusively).
  EXPECT_EQ(simplified.num_nodes(), 1);
}

TEST(SimplifyTest, KeepsNecessaryNodes) {
  // The paper's width-2 HD of the 10-cycle has no redundant nodes.
  Hypergraph graph = MakeCycle(10);
  Decomposition decomp;
  int parent = -1;
  for (int i = 0; i < 8; ++i) {
    parent = decomp.AddNode({0, i + 1},
                            util::DynamicBitset::FromIndices(10, {0, i + 1, i + 2}),
                            parent);
  }
  Decomposition simplified = SimplifyDecomposition(graph, decomp);
  EXPECT_EQ(simplified.num_nodes(), 8);
  EXPECT_TRUE(ValidateHd(graph, simplified).ok);
}

TEST(SimplifyTest, EmptyDecomposition) {
  Hypergraph empty;
  Decomposition decomp;
  EXPECT_EQ(SimplifyDecomposition(empty, decomp).num_nodes(), 0);
}

// Property: simplification preserves HD validity and never increases width
// or node count, across solvers and families.
class SimplifyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyPropertyTest, PreservesValidityAndWidth) {
  util::Rng rng(GetParam());
  Hypergraph graph = GetParam() % 2 == 0 ? MakeRandomCsp(rng, 16, 11, 2, 4)
                                         : MakeRandomCq(rng, 12, 4, 0.3);
  for (int k = 1; k <= 4; ++k) {
    for (int solver_kind = 0; solver_kind < 2; ++solver_kind) {
      std::unique_ptr<HdSolver> solver;
      if (solver_kind == 0) {
        solver = std::make_unique<DetKDecomp>();
      } else {
        solver = std::make_unique<LogKDecomp>();
      }
      SolveResult result = solver->Solve(graph, k);
      if (result.outcome != Outcome::kYes) continue;
      Decomposition simplified = SimplifyDecomposition(graph, *result.decomposition);
      Validation validation = ValidateHd(graph, simplified);
      EXPECT_TRUE(validation.ok)
          << validation.error << " seed=" << GetParam() << " k=" << k;
      EXPECT_LE(simplified.Width(), result.decomposition->Width());
      EXPECT_LE(simplified.num_nodes(), result.decomposition->num_nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htd
