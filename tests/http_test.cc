// net/http.h: incremental request parsing, limits, serialisation, and the
// client-side response-blob parser. Pure byte-level tests — no sockets.
#include "net/http.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>

namespace htd::net {
namespace {

using State = HttpRequestParser::State;

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/v1/stats");
  EXPECT_EQ(parser.request().path, "/v1/stats");
  EXPECT_EQ(parser.request().headers.at("host"), "x");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  std::string request =
      "POST /v1/decompose?k=3&timeout=1.5 HTTP/1.1\r\n"
      "Content-Length: 11\r\n\r\n"
      "e1(a,b,c).\n";
  EXPECT_EQ(parser.Consume(request), State::kDone);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/v1/decompose");
  EXPECT_EQ(parser.request().QueryOr("k", ""), "3");
  EXPECT_EQ(parser.request().QueryOr("timeout", ""), "1.5");
  EXPECT_EQ(parser.request().QueryOr("absent", "d"), "d");
  EXPECT_EQ(parser.request().body, "e1(a,b,c).\n");
}

TEST(HttpParserTest, AcceptsByteAtATimeDelivery) {
  std::string request =
      "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpRequestParser parser;
  State state = State::kNeedMore;
  for (char c : request) {
    ASSERT_NE(state, State::kError);
    state = parser.Consume(std::string_view(&c, 1));
  }
  EXPECT_EQ(state, State::kDone);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParserTest, KeepAlivePipelining) {
  HttpRequestParser parser;
  // Two requests arrive in one read; Reset keeps the tail buffered.
  std::string both =
      "GET /first HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\n\r\n";
  EXPECT_EQ(parser.Consume(both), State::kDone);
  EXPECT_EQ(parser.request().path, "/first");
  parser.Reset();
  EXPECT_EQ(parser.Continue(), State::kDone);
  EXPECT_EQ(parser.request().path, "/second");
}

TEST(HttpParserTest, UrlDecoding) {
  EXPECT_EQ(UrlDecode("a%20b+c%2Fd"), "a b c/d");
  EXPECT_EQ(UrlDecode("no-escapes"), "no-escapes");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // invalid escape kept verbatim
  EXPECT_EQ(UrlDecode("truncated%2"), "truncated%2");
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("NONSENSE\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsNonHttpVersion) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET / SPDY/99\r\n\r\n"), State::kError);
}

TEST(HttpParserTest, RejectsChunkedTransferEncoding) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("POST /x HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsOversizedBody) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  EXPECT_EQ(parser.Consume("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, RejectsOversizedHead) {
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 64;
  HttpRequestParser parser(limits);
  std::string head = "GET /" + std::string(256, 'a');  // never terminated
  EXPECT_EQ(parser.Consume(head), State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, RejectsMalformedContentLength) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n"),
            State::kError);
}

TEST(HttpParserTest, ToleratesBareLfSeparators) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET /lf HTTP/1.1\nHost: y\n\n"), State::kDone);
  EXPECT_EQ(parser.request().headers.at("host"), "y");
}

TEST(HttpResponseTest, SerializeAndReparse) {
  HttpResponse response;
  response.status = 202;
  response.body = "{\"job\": \"j1\"}\n";
  response.headers.emplace_back("Retry-After", "1");
  std::string wire = SerializeResponse(response, "close");

  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
  ASSERT_TRUE(ParseHttpResponseBlob(wire, &status, &headers, &body));
  EXPECT_EQ(status, 202);
  EXPECT_EQ(headers.at("retry-after"), "1");
  EXPECT_EQ(headers.at("connection"), "close");
  EXPECT_EQ(body, response.body);
}

TEST(HttpResponseTest, BlobParserRejectsGarbage) {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
  EXPECT_FALSE(ParseHttpResponseBlob("not http at all", &status, &headers, &body));
  EXPECT_FALSE(ParseHttpResponseBlob("HTTP/1.1 abc\r\n\r\n", &status, &headers, &body));
  // Body shorter than Content-Length promises: truncated response.
  EXPECT_FALSE(ParseHttpResponseBlob(
      "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc", &status, &headers, &body));
}

TEST(HttpParserTest, ConnectionCloseSemantics) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"),
            State::kDone);
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().WantsClose()) << "header values are case-insensitive";

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n"), State::kDone);
  EXPECT_FALSE(parser.request().WantsClose()) << "HTTP/1.1 defaults to keep-alive";

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.0\r\n\r\n"), State::kDone);
  EXPECT_TRUE(parser.request().WantsClose()) << "HTTP/1.0 defaults to close";

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"),
            State::kDone);
  EXPECT_FALSE(parser.request().WantsClose());
}

TEST(HttpParserTest, ConnectionTokenLists) {
  // RFC 7230 §6.1: the Connection header is a comma-separated token list.
  // An HTTP/1.0 client sending "keep-alive, upgrade" used to fall through
  // to the version default and get its connection closed mid-stream.
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET / HTTP/1.0\r\n"
                           "Connection: keep-alive, upgrade\r\n\r\n"),
            State::kDone);
  EXPECT_FALSE(parser.request().WantsClose());

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\n"
                           "Connection: Upgrade , Close\r\n\r\n"),
            State::kDone);
  EXPECT_TRUE(parser.request().WantsClose())
      << "close anywhere in the list closes, case-insensitively";

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.0\r\n"
                           "Connection: close, keep-alive\r\n\r\n"),
            State::kDone);
  EXPECT_TRUE(parser.request().WantsClose()) << "close wins over keep-alive";

  parser.Reset();
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\n"
                           "Connection: upgrade\r\n\r\n"),
            State::kDone);
  EXPECT_FALSE(parser.request().WantsClose())
      << "unrecognised tokens only: fall back to the version default";
}

TEST(HttpResponseTest, HandlerHeadersNeverDuplicateFixedOnes) {
  // SerializeResponse owns Content-Type / Content-Length / Connection; a
  // handler that also sets them (e.g. a proxy copying upstream headers)
  // used to produce a duplicate-header response.
  HttpResponse response;
  response.body = "ok";
  response.headers.emplace_back("content-length", "999");
  response.headers.emplace_back("Content-Type", "text/plain");
  response.headers.emplace_back("CONNECTION", "keep-alive");
  response.headers.emplace_back("Retry-After", "2");
  std::string wire = SerializeResponse(response, "close");

  auto count = [&wire](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = wire.find(needle); pos != std::string::npos;
         pos = wire.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  // Lower-case the wire once so the count is case-insensitive.
  for (char& c : wire) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  EXPECT_EQ(count("content-length:"), 1u) << wire;
  EXPECT_EQ(count("content-type:"), 1u) << wire;
  EXPECT_EQ(count("connection:"), 1u) << wire;
  EXPECT_EQ(count("retry-after:"), 1u) << "non-colliding headers still pass";

  // The serialiser's values (not the handler's stale copies) are the ones
  // on the wire.
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
  ASSERT_TRUE(ParseHttpResponseBlob(SerializeResponse(response, "close"),
                                    &status, &headers, &body));
  EXPECT_EQ(headers.at("content-length"), "2");
  EXPECT_EQ(headers.at("connection"), "close");
  EXPECT_EQ(body, "ok");
}

TEST(HttpParserTest, AsciiIEquals) {
  EXPECT_TRUE(AsciiIEquals("Close", "close"));
  EXPECT_TRUE(AsciiIEquals("", ""));
  EXPECT_FALSE(AsciiIEquals("close", "clos"));
  EXPECT_FALSE(AsciiIEquals("keep-alive", "keepalive"));
}

TEST(HttpResponseTest, StatusReasons) {
  EXPECT_EQ(StatusReason(200), "OK");
  EXPECT_EQ(StatusReason(429), "Too Many Requests");
  EXPECT_EQ(StatusReason(777), "Unknown");
}

}  // namespace
}  // namespace htd::net
