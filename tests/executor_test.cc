// The fleet-wide work-stealing executor (util/executor.h): steal fairness,
// task groups (nesting, cancellation, exception propagation, peak width),
// and priority-lane starvation freedom. Everything here also runs under the
// TSan CI job — the executor is the one component every solve shares.
#include "util/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace htd::util {
namespace {

using namespace std::chrono_literals;

/// Spin until `done()` or the deadline; test-local so a broken executor
/// fails an EXPECT instead of hanging the suite.
bool SpinUntil(const std::function<bool()>& done,
               std::chrono::milliseconds budget = 5000ms) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(ExecutorTest, RunsSubmittedTasksAndGoesIdle) {
  Executor executor(3);
  EXPECT_EQ(executor.num_workers(), 3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    executor.Submit([&ran] { ran.fetch_add(1); });
  }
  ASSERT_TRUE(SpinUntil([&] { return ran.load() == 64; }));
  ASSERT_TRUE(SpinUntil([&] { return executor.workers_busy() == 0; }));
  EXPECT_EQ(executor.queue_depth(), 0u);
}

TEST(ExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Executor executor(2);
    for (int i = 0; i < 128; ++i) {
      executor.Submit([&ran] { ran.fetch_add(1); });
    }
    // No wait: the destructor must run every task before joining.
  }
  EXPECT_EQ(ran.load(), 128);
}

TEST(ExecutorTest, IdleWorkersStealFromALoadedDeque) {
  // One worker seeds its own deque with many tasks (worker-side Submit goes
  // to the private deque, not a lane); the other workers must steal them —
  // the whole fleet participates and the steal counter moves.
  Executor executor(4);
  constexpr int kTasks = 256;
  std::atomic<int> ran{0};
  std::mutex mutex;
  std::set<std::thread::id> runners;
  executor.Submit([&] {
    for (int i = 0; i < kTasks; ++i) {
      executor.Submit([&] {
        {
          std::lock_guard<std::mutex> lock(mutex);
          runners.insert(std::this_thread::get_id());
        }
        // Enough work that the seeding worker cannot drain its own deque
        // before the thieves wake up.
        std::this_thread::sleep_for(1ms);
        ran.fetch_add(1);
      });
    }
  });
  ASSERT_TRUE(SpinUntil([&] { return ran.load() == kTasks; }));
  EXPECT_GT(executor.steals_total(), 0u);
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_GE(runners.size(), 2u)
      << "256 sleeping tasks on one deque must get stolen by siblings";
}

TEST(ExecutorTest, BackgroundLaneIsNotStarvedByASyncFlood) {
  // Single worker, deep sync lane, one background task behind it. Strict
  // priority would run all 1000 sync tasks first; the every-64th-pick
  // reverse scan must get the background task in far earlier.
  Executor executor(1);
  std::atomic<int> sync_done{0};
  std::atomic<int> background_saw{-1};
  std::atomic<bool> gate{false};
  // Hold the worker so the lanes fill before anything is picked.
  executor.Submit([&gate] {
    while (!gate.load()) std::this_thread::sleep_for(1ms);
  });
  constexpr int kSyncTasks = 1000;
  for (int i = 0; i < kSyncTasks; ++i) {
    executor.Submit([&sync_done] { sync_done.fetch_add(1); },
                    Executor::Lane::kSync);
  }
  executor.Submit(
      [&] { background_saw.store(sync_done.load()); },
      Executor::Lane::kBackground);
  gate.store(true);
  ASSERT_TRUE(SpinUntil([&] { return background_saw.load() >= 0; }));
  EXPECT_LT(background_saw.load(), 500)
      << "the background task waited behind " << background_saw.load()
      << " of " << kSyncTasks << " sync tasks";
  ASSERT_TRUE(SpinUntil([&] { return sync_done.load() == kSyncTasks; }));
}

TEST(TaskGroupTest, WaitRunsEverySpawnedTaskAtAnyWorkerCount) {
  for (int workers : {1, 4}) {
    Executor executor(workers);
    TaskGroup group(executor);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      group.Spawn([&ran] { ran.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(ran.load(), 100) << workers << " workers";
    EXPECT_GE(group.peak_width(), 1);
    EXPECT_LE(group.peak_width(), workers);
  }
}

TEST(TaskGroupTest, NestedGroupsShareTheRootsWidthAccounting) {
  Executor executor(4);
  TaskGroup root(executor);
  std::atomic<int> leaves{0};
  constexpr int kBranches = 4;
  constexpr int kLeaves = 8;
  for (int b = 0; b < kBranches; ++b) {
    root.Spawn([&root, &leaves] {
      TaskGroup child(root);
      for (int l = 0; l < kLeaves; ++l) {
        child.Spawn([&leaves] {
          leaves.fetch_add(1);
          std::this_thread::sleep_for(1ms);
        });
      }
      child.Wait();
    });
  }
  root.Wait();
  EXPECT_EQ(leaves.load(), kBranches * kLeaves);
  // Width is recorded against the root: with 4 workers chewing the tree the
  // peak must exceed one thread, and a thread running a branch plus its
  // leaves inline is counted once, never per nesting level. The +1 is the
  // main thread, which participates whenever Wait() drains bag work inline.
  EXPECT_GT(root.peak_width(), 1);
  EXPECT_LE(root.peak_width(), 4 + 1);
}

TEST(TaskGroupTest, CancellationReachesTasksMidFlight) {
  // Long tasks spread over the fleet (some stolen, some lane-claimed); one
  // RequestStop must end them all, and Wait() must return promptly.
  Executor executor(4);
  CancelToken token;
  TaskGroup group(executor, &token);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  for (int i = 0; i < 16; ++i) {
    group.Spawn([&] {
      started.fetch_add(1);
      while (!group.cancelled()) std::this_thread::sleep_for(1ms);
      finished.fetch_add(1);
    });
  }
  ASSERT_TRUE(SpinUntil([&] { return started.load() >= 4; }));
  token.RequestStop();
  group.Wait();
  EXPECT_TRUE(group.cancelled());
  EXPECT_EQ(finished.load(), started.load())
      << "every task that started must have observed the stop and exited";
}

TEST(TaskGroupTest, NestedGroupInheritsCancellation) {
  Executor executor(2);
  CancelToken token;
  TaskGroup root(executor, &token);
  TaskGroup child(root);
  EXPECT_FALSE(child.cancelled());
  token.RequestStop();
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.cancel_token(), &token);
}

TEST(TaskGroupTest, WaitRethrowsTheFirstTaskException) {
  Executor executor(2);
  TaskGroup group(executor);
  std::atomic<int> ran{0};
  group.Spawn([] { throw std::runtime_error("chunk failed"); });
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Like the scheduler's promise path: the error surfaces only after every
  // task has finished, and a failed group reports cancelled().
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(group.cancelled());
  group.Wait();  // the error was consumed; a second Wait is clean
}

TEST(TaskGroupTest, PeakWidthSaturatesTheFleetUnderABarrier) {
  // All four workers must be inside the group at once for the barrier to
  // release — the property threads_used reporting is built on.
  constexpr int kWidth = 4;
  Executor executor(kWidth);
  TaskGroup group(executor);
  std::atomic<int> arrived{0};
  auto chunk = [&arrived] {
    arrived.fetch_add(1);
    while (arrived.load() < kWidth) std::this_thread::sleep_for(1ms);
  };
  for (int i = 1; i < kWidth; ++i) group.Spawn(chunk);
  group.Run(chunk);
  group.Wait();
  EXPECT_EQ(group.peak_width(), kWidth);
}

TEST(TaskGroupTest, HelpWhileWaitingRunsLaneWorkOnTheCaller) {
  // A single-worker executor whose worker is pinned: the main thread's
  // HelpWhileWaiting must pick up the sync-lane task itself, and must NOT
  // touch the background lane.
  Executor executor(1);
  std::atomic<bool> pinned_started{false};
  std::atomic<bool> pinned_release{false};
  executor.Submit([&pinned_started, &pinned_release] {
    pinned_started.store(true);
    while (!pinned_release.load()) std::this_thread::sleep_for(1ms);
  });
  // The worker must own the pinning task before anything else is queued —
  // otherwise the helping main thread could claim it and spin in it.
  ASSERT_TRUE(SpinUntil([&] { return pinned_started.load(); }));
  std::atomic<bool> sync_ran{false};
  std::atomic<bool> background_ran{false};
  executor.Submit([&sync_ran] { sync_ran.store(true); },
                  Executor::Lane::kSync);
  executor.Submit([&background_ran] { background_ran.store(true); },
                  Executor::Lane::kBackground);
  executor.HelpWhileWaiting([&] { return sync_ran.load(); });
  EXPECT_TRUE(sync_ran.load());
  EXPECT_FALSE(background_ran.load())
      << "helping must never run background tasks (they can block on solves)";
  pinned_release.store(true);
  ASSERT_TRUE(SpinUntil([&] { return background_ran.load(); }));
}

}  // namespace
}  // namespace htd::util
