// Live resharding end to end: /v1/admin/migrate streaming warm state to new
// owners over real sockets, the transitioning acceptance rules (both
// digests, both ranges, imports mid-migration), dominance-checked imports
// never duplicating store variants, the router's double-routing (no 421
// escapes mid-handover), and replica round-robin/failover.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hypergraph/generators.h"
#include "hypergraph/parser.h"
#include "hypergraph/writer.h"
#include "net/decomposition_server.h"
#include "net/shard_router.h"
#include "service/canonical.h"
#include "service/persistence.h"
#include "service/subproblem_store.h"
#include "util/socket.h"

namespace htd::net {
namespace {

service::ShardMap MustParse(const std::string& spec) {
  auto map = service::ShardMap::Parse(spec);
  EXPECT_TRUE(map.ok()) << map.status().message();
  return *map;
}

HttpRequest Request(const std::string& method, const std::string& target,
                    std::string body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  size_t q = target.find('?');
  request.path = target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = target.substr(q + 1);
    while (!query.empty()) {
      size_t amp = query.find('&');
      std::string pair = query.substr(0, amp);
      size_t eq = pair.find('=');
      request.query[pair.substr(0, eq)] =
          eq == std::string::npos ? "" : pair.substr(eq + 1);
      query = amp == std::string::npos ? "" : query.substr(amp + 1);
    }
  }
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

/// Reserves an ephemeral port (bind + close; the tiny reuse race is
/// acceptable in tests, same pattern as tools/server_smoke.py).
int FreePort() {
  auto listener = util::ListenTcp("127.0.0.1", 0, 1);
  EXPECT_TRUE(listener.ok());
  return util::LocalPort(listener->fd());
}

std::unique_ptr<DecompositionServer> StartBackend(int port,
                                                  const service::ShardMap& map,
                                                  int index) {
  DecompositionServerOptions options;
  options.http.port = port;
  options.http.io_threads = 2;
  options.service.num_workers = 2;
  options.service.default_timeout_seconds = 30.0;
  options.shard_map = map;
  options.shard_index = index;
  auto server = DecompositionServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  EXPECT_TRUE((*server)->Start().ok());
  return std::move(*server);
}

/// A decompose request the backend treats as correctly routed.
HttpRequest RoutedDecompose(const std::string& instance,
                            const service::ShardMap& map) {
  auto parsed = ParseAuto(instance);
  EXPECT_TRUE(parsed.ok());
  HttpRequest request = Request("POST", "/v1/decompose?k=2", instance);
  request.headers["x-htd-shard-digest"] = map.DigestHex();
  request.headers["x-htd-shard-fingerprint"] =
      service::CanonicalFingerprint(*parsed).ToHex();
  return request;
}

TEST(ReshardTest, MigrationMovesWarmStateToNewOwners) {
  const int p0 = FreePort(), p1 = FreePort(), p2 = FreePort();
  const std::string host = "127.0.0.1:";
  const service::ShardMap old_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1));
  const service::ShardMap new_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1) +
                "," + host + std::to_string(p2));

  std::vector<std::unique_ptr<DecompositionServer>> backends;
  backends.push_back(StartBackend(p0, old_map, 0));
  backends.push_back(StartBackend(p1, old_map, 1));
  backends.push_back(StartBackend(p2, new_map, 2));  // joins cold, new map

  // Warm the OLD fleet: find instances covering both old ranges, and at
  // least one whose owner CHANGES under the new map (that one must migrate
  // to survive as a warm hit).
  struct Warmed {
    std::string instance;
    int old_owner;
    int new_owner;
  };
  std::vector<Warmed> warmed;
  bool have_mover = false;
  for (int length = 3; length < 64; ++length) {
    Hypergraph graph = MakePath(length);
    const service::Fingerprint fp = service::CanonicalFingerprint(graph);
    Warmed entry{WriteHyperBench(graph), old_map.IndexFor(fp),
                 new_map.IndexFor(fp)};
    const bool mover = entry.old_owner != entry.new_owner;
    if (warmed.size() < 6 || (mover && !have_mover)) {
      have_mover = have_mover || mover;
      warmed.push_back(std::move(entry));
    }
    if (warmed.size() >= 6 && have_mover) break;
  }
  ASSERT_TRUE(have_mover) << "no instance changes owner in a 2->3 reshard?";
  for (const Warmed& entry : warmed) {
    HttpResponse first = backends[static_cast<size_t>(entry.old_owner)]->Handle(
        RoutedDecompose(entry.instance, old_map));
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_NE(first.body.find("\"cache_hit\": false"), std::string::npos);
  }

  // Prepare BOTH old backends first (each must accept the new digest before
  // a peer pushes at it), then migrate — pushes go over the real sockets of
  // the other two — then finalise.
  for (int index = 0; index < 2; ++index) {
    HttpResponse prepared = backends[static_cast<size_t>(index)]->Handle(
        Request("POST", "/v1/admin/migrate?prepare=1&new_index=" +
                            std::to_string(index),
                new_map.Serialise()));
    ASSERT_EQ(prepared.status, 200) << prepared.body;
  }
  for (int index = 0; index < 2; ++index) {
    HttpResponse migrated = backends[static_cast<size_t>(index)]->Handle(
        Request("POST", "/v1/admin/migrate?new_index=" + std::to_string(index),
                new_map.Serialise()));
    ASSERT_EQ(migrated.status, 200) << migrated.body;
    EXPECT_NE(migrated.body.find("\"transitioning\": true"), std::string::npos);
  }
  for (int index = 0; index < 2; ++index) {
    HttpResponse finalised = backends[static_cast<size_t>(index)]->Handle(
        Request("POST", "/v1/admin/migrate?finalise=1"));
    ASSERT_EQ(finalised.status, 200) << finalised.body;
  }

  // Every pre-reshard entry is a warm hit on its NEW owner: migration moved
  // the movers, and stayers never left.
  uint64_t movers = 0;
  for (const Warmed& entry : warmed) {
    HttpResponse hit = backends[static_cast<size_t>(entry.new_owner)]->Handle(
        RoutedDecompose(entry.instance, new_map));
    ASSERT_EQ(hit.status, 200) << hit.body;
    EXPECT_NE(hit.body.find("\"cache_hit\": true"), std::string::npos)
        << "entry lost in migration: " << hit.body;
    if (entry.old_owner != entry.new_owner) ++movers;
  }
  EXPECT_GT(movers, 0u);

  // The counters agree: donors pushed, receivers imported.
  uint64_t out = 0, in = 0;
  for (auto& backend : backends) {
    out += backend->migration_stats().migrated_out_entries;
    in += backend->migration_stats().imported_cache_entries +
          backend->migration_stats().imported_store_entries;
  }
  EXPECT_GE(out, movers);
  EXPECT_GE(in, movers);

  for (auto& backend : backends) backend->Stop();
}

TEST(ReshardTest, TransitioningBackendAcceptsBothTopologies) {
  // No real pushes happen here (the backend is cold), so the map endpoints
  // can be fictitious: this test is about the acceptance rules.
  const service::ShardMap old_map = MustParse("a:1001,b:1002");
  const service::ShardMap new_map = MustParse("a:1001,b:1002,c:1003");
  DecompositionServerOptions options;
  options.http.port = 0;
  options.service.num_workers = 1;
  options.shard_map = old_map;
  options.shard_index = 0;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  // An instance owned by shard 0 under BOTH maps (old range [0,2^63),
  // new range [0, ~2^63/... first third) — i.e. hi in the first third).
  std::string stayer, newcomer;
  for (int length = 3; length < 64 && (stayer.empty() || newcomer.empty());
       ++length) {
    Hypergraph graph = MakePath(length);
    const service::Fingerprint fp = service::CanonicalFingerprint(graph);
    if (old_map.IndexFor(fp) == 0 && new_map.IndexFor(fp) == 0 &&
        stayer.empty()) {
      stayer = WriteHyperBench(graph);
    }
    // Arrives mid-migration for the NEW range but outside the old one: only
    // possible when shard 0's slice GROWS; in 2->3 it shrinks, so instead
    // pick one that is outside BOTH (owned by new shard 2) to prove the 421.
    if (old_map.IndexFor(fp) == 1 && new_map.IndexFor(fp) == 2 &&
        newcomer.empty()) {
      newcomer = WriteHyperBench(graph);
    }
  }
  ASSERT_FALSE(stayer.empty());
  ASSERT_FALSE(newcomer.empty());

  // Before the migration: new-digest requests are refused.
  HttpRequest early = RoutedDecompose(stayer, new_map);
  EXPECT_EQ((*server)->Handle(early).status, 421)
      << "the new topology must not be accepted before migrate";

  HttpResponse begun = (*server)->Handle(
      Request("POST", "/v1/admin/migrate?new_index=0", new_map.Serialise()));
  ASSERT_EQ(begun.status, 200) << begun.body;
  ASSERT_TRUE((*server)->shard_state()->transitioning());

  // Mid-migration: BOTH digests are accepted for in-range instances…
  EXPECT_EQ((*server)->Handle(RoutedDecompose(stayer, old_map)).status, 200);
  EXPECT_EQ((*server)->Handle(RoutedDecompose(stayer, new_map)).status, 200);
  // …an unrelated topology still 421s…
  HttpRequest stale = RoutedDecompose(stayer, old_map);
  stale.headers["x-htd-shard-digest"] = MustParse("z:9999").DigestHex();
  EXPECT_EQ((*server)->Handle(stale).status, 421);
  // …and an instance belonging to NEITHER of this backend's ranges is
  // misrouted even when sent with an accepted digest.
  HttpRequest foreign = RoutedDecompose(newcomer, new_map);
  EXPECT_EQ((*server)->Handle(foreign).status, 421) << "owned by new shard 2";

  // An entry arriving via import mid-migration lands in the covering range.
  service::ResultCache donor_cache(16);
  service::CacheKey key;
  key.fingerprint = service::Fingerprint{1, 1};  // hi=1: shard 0 either way
  key.k = 2;
  SolveResult yes;
  yes.outcome = Outcome::kYes;
  donor_cache.Insert(key, yes);
  HttpRequest import = Request("POST", "/v1/admin/import",
                               service::EncodeSnapshot(&donor_cache, nullptr,
                                                       /*config_digest=*/0));
  import.headers["x-htd-shard-digest"] = new_map.DigestHex();
  HttpResponse imported = (*server)->Handle(import);
  EXPECT_EQ(imported.status, 200) << imported.body;
  EXPECT_NE(imported.body.find("\"cache_entries\": 1"), std::string::npos)
      << imported.body;

  // Finalise: the old digest is now stale and refused.
  EXPECT_EQ((*server)
                ->Handle(Request("POST", "/v1/admin/migrate?finalise=1"))
                .status,
            200);
  EXPECT_FALSE((*server)->shard_state()->transitioning());
  EXPECT_EQ((*server)->Handle(RoutedDecompose(stayer, old_map)).status, 421)
      << "after finalise only the new topology routes here";
  EXPECT_EQ((*server)->Handle(RoutedDecompose(stayer, new_map)).status, 200);
}

TEST(ReshardTest, ImportOfDominatedVariantDoesNotDuplicate) {
  // Store level: re-importing an entry whose variants are already dominated
  // must not grow the store (the antichain sees equal trace sets as
  // dominated in both polarities).
  service::SubproblemStore store;
  service::SubproblemStore::ExportedEntry entry;
  entry.fingerprint = service::Fingerprint{42, 7};
  entry.k = 2;
  entry.negatives.push_back({{0, 1}, {1, 2}});
  ASSERT_TRUE(store.Import(entry));
  const auto before = store.GetStats();
  ASSERT_EQ(before.entries, 1u);

  ASSERT_TRUE(store.Import(entry)) << "in-range import always 'succeeds'";
  const auto after = store.GetStats();
  EXPECT_EQ(after.entries, 1u);
  EXPECT_EQ(after.bytes, before.bytes) << "dominated re-import grew the store";
  EXPECT_GT(after.rejected_inserts, before.rejected_inserts)
      << "the duplicate must be rejected as dominated, not stored twice";
  auto exported = store.Export();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].negatives.size(), 1u) << "one variant, not two";

  // Endpoint level: importing the same blob twice leaves the second pass a
  // no-op (cache inserts are idempotent overwrites, store variants
  // dominance-rejected).
  DecompositionServerOptions options;
  options.http.port = 0;
  options.service.num_workers = 1;
  options.service.enable_subproblem_store = true;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok());
  service::SubproblemStore donor;
  ASSERT_TRUE(donor.Import(entry));
  const std::string blob =
      service::EncodeSnapshot(nullptr, &donor, /*config_digest=*/0);
  for (int round = 0; round < 2; ++round) {
    HttpResponse imported =
        (*server)->Handle(Request("POST", "/v1/admin/import", blob));
    ASSERT_EQ(imported.status, 200) << imported.body;
  }
  EXPECT_EQ(
      (*server)->decomposition_service().subproblem_store()->num_entries(), 1u);
}

TEST(ReshardTest, ExportedRangeRoundTripsThroughImport) {
  DecompositionServerOptions options;
  options.http.port = 0;
  options.service.num_workers = 1;
  auto server = DecompositionServer::Create(options);
  ASSERT_TRUE(server.ok());
  const std::string instance = WriteHyperBench(MakePath(5));
  ASSERT_EQ((*server)->Handle(Request("POST", "/v1/decompose?k=2", instance))
                .status,
            200);

  HttpResponse everything =
      (*server)->Handle(Request("GET", "/v1/admin/export"));
  ASSERT_EQ(everything.status, 200);
  EXPECT_EQ(everything.content_type, "application/octet-stream");
  HttpResponse none = (*server)->Handle(Request(
      "GET", "/v1/admin/export?range=0000000000000000-0000000000000000"));
  ASSERT_EQ(none.status, 200);
  EXPECT_LT(none.body.size(), everything.body.size())
      << "an empty range must export an empty snapshot";
  EXPECT_EQ((*server)
                ->Handle(Request("GET", "/v1/admin/export?range=zz-11"))
                .status,
            400);

  // The exported blob restores into a second, cold server as a cache hit.
  auto receiver = DecompositionServer::Create(options);
  ASSERT_TRUE(receiver.ok());
  HttpResponse imported = (*receiver)->Handle(
      Request("POST", "/v1/admin/import", everything.body));
  ASSERT_EQ(imported.status, 200) << imported.body;
  HttpResponse hit =
      (*receiver)->Handle(Request("POST", "/v1/decompose?k=2", instance));
  ASSERT_EQ(hit.status, 200);
  EXPECT_NE(hit.body.find("\"cache_hit\": true"), std::string::npos) << hit.body;
}

TEST(ReshardTest, RouterDoubleRoutesSoNo421EscapesMidMigration) {
  const int p0 = FreePort(), p1 = FreePort(), p2 = FreePort();
  const std::string host = "127.0.0.1:";
  const service::ShardMap old_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1));
  const service::ShardMap new_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1) +
                "," + host + std::to_string(p2));

  std::vector<std::unique_ptr<DecompositionServer>> backends;
  backends.push_back(StartBackend(p0, old_map, 0));
  backends.push_back(StartBackend(p1, old_map, 1));
  backends.push_back(StartBackend(p2, new_map, 2));

  ShardRouterOptions router_options{old_map};
  router_options.backoff_base_seconds = 0.05;
  ShardRouter router(std::move(router_options));
  ASSERT_TRUE(router.BeginTransition(new_map).ok());

  // An instance whose old owner is backend 1 but whose NEW owner is the
  // fresh backend 2.
  std::string mover;
  int mover_old = -1;
  for (int length = 3; length < 64 && mover.empty(); ++length) {
    Hypergraph graph = MakePath(length);
    const service::Fingerprint fp = service::CanonicalFingerprint(graph);
    if (new_map.IndexFor(fp) == 2) {
      mover = WriteHyperBench(graph);
      mover_old = old_map.IndexFor(fp);
    }
  }
  ASSERT_FALSE(mover.empty());

  // Mid-transition, BEFORE the donor migrates: the old owner still serves.
  HttpResponse before =
      router.Handle(Request("POST", "/v1/decompose?k=2", mover));
  ASSERT_EQ(before.status, 200) << before.body;

  // The donor migrates and finalises EARLY (before the router flips): the
  // old-map forward now 421s, and the router must recover by retrying the
  // new owner — the client sees 200, never 421.
  auto& donor = backends[static_cast<size_t>(mover_old)];
  ASSERT_EQ(donor
                ->Handle(Request("POST",
                                 "/v1/admin/migrate?new_index=" +
                                     std::to_string(mover_old),
                                 new_map.Serialise()))
                .status,
            200);
  ASSERT_EQ(donor->Handle(Request("POST", "/v1/admin/migrate?finalise=1"))
                .status,
            200);
  HttpResponse after = router.Handle(Request("POST", "/v1/decompose?k=2", mover));
  ASSERT_EQ(after.status, 200)
      << "double-routing must hide the 421: " << after.body;
  EXPECT_NE(after.body.find("\"cache_hit\": true"), std::string::npos)
      << "the migrated entry must hit on the new owner: " << after.body;

  // Flip the router: the new map is now the only map.
  ASSERT_TRUE(router.CompleteTransition().ok());
  EXPECT_FALSE(router.transitioning());
  HttpResponse flipped =
      router.Handle(Request("POST", "/v1/decompose?k=2", mover));
  EXPECT_EQ(flipped.status, 200) << flipped.body;

  for (auto& backend : backends) backend->Stop();
}

TEST(ReshardTest, MigrationWarmsNewSiblingReplicasOfTheDonorsOwnRange) {
  // The new map keeps the donor's range but REPLICATES it onto a joining
  // process: the donor must push its retained slice to the new sibling
  // (skipping itself, identified by the `self` query parameter) or the
  // sibling comes up cold and round-robined traffic loses warm hits.
  const int p0 = FreePort(), p1 = FreePort(), p2 = FreePort();
  const std::string host = "127.0.0.1:";
  const service::ShardMap old_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1));
  const service::ShardMap new_map =
      MustParse(host + std::to_string(p0) + "*2," + host + std::to_string(p2) +
                "," + host + std::to_string(p1));
  ASSERT_EQ(new_map.num_shards(), 2);

  std::vector<std::unique_ptr<DecompositionServer>> backends;
  backends.push_back(StartBackend(p0, old_map, 0));  // donor
  backends.push_back(StartBackend(p1, old_map, 1));
  backends.push_back(StartBackend(p2, new_map, 0));  // joining sibling

  // Warm the donor with a couple of its own instances (both maps have two
  // ranges, so the donor's slice is unchanged — nothing "leaves").
  std::vector<std::string> warmed;
  for (int length = 3; length < 64 && warmed.size() < 2; ++length) {
    Hypergraph graph = MakePath(length);
    if (old_map.IndexFor(service::CanonicalFingerprint(graph)) == 0) {
      warmed.push_back(WriteHyperBench(graph));
    }
  }
  ASSERT_EQ(warmed.size(), 2u);
  for (const std::string& instance : warmed) {
    ASSERT_EQ(
        backends[0]->Handle(RoutedDecompose(instance, old_map)).status, 200);
  }

  // ':' is legal raw in a query string (RFC 3986); hdreshard sends it raw.
  const std::string self = "self=127.0.0.1:" + std::to_string(p0);
  HttpResponse migrated = backends[0]->Handle(
      Request("POST", "/v1/admin/migrate?new_index=0&" + self,
              new_map.Serialise()));
  ASSERT_EQ(migrated.status, 200) << migrated.body;
  EXPECT_EQ(migrated.body.find("127.0.0.1:" + std::to_string(p0) + "\""),
            std::string::npos)
      << "the donor must not push to itself: " << migrated.body;
  ASSERT_EQ(
      backends[0]->Handle(Request("POST", "/v1/admin/migrate?finalise=1"))
          .status,
      200);

  // The sibling now serves the donor's warm entries as cache hits.
  for (const std::string& instance : warmed) {
    HttpResponse hit = backends[2]->Handle(RoutedDecompose(instance, new_map));
    ASSERT_EQ(hit.status, 200) << hit.body;
    EXPECT_NE(hit.body.find("\"cache_hit\": true"), std::string::npos)
        << "sibling replica came up cold: " << hit.body;
  }

  for (auto& backend : backends) backend->Stop();
}

TEST(ReshardTest, AsyncJobsAdmittedBeforeTheFlipStayPollable) {
  // Job ids encode a range index under the map that minted them. This new
  // map SHIFTS every range to a different endpoint (p2 joins at the front),
  // so after the flip the id's range resolves to the wrong process — the
  // router must keep one generation of retired map and fall through to it.
  const int p0 = FreePort(), p1 = FreePort(), p2 = FreePort();
  const std::string host = "127.0.0.1:";
  const service::ShardMap old_map =
      MustParse(host + std::to_string(p0) + "," + host + std::to_string(p1));
  const service::ShardMap new_map =
      MustParse(host + std::to_string(p2) + "," + host + std::to_string(p0) +
                "," + host + std::to_string(p1));

  std::vector<std::unique_ptr<DecompositionServer>> backends;
  backends.push_back(StartBackend(p0, old_map, 0));
  backends.push_back(StartBackend(p1, old_map, 1));
  // p2 is intentionally never started: polling must survive the new map's
  // range endpoint being dead AND wrong.

  ShardRouterOptions router_options{old_map};
  router_options.connect_timeout_seconds = 1.0;
  ShardRouter router(std::move(router_options));

  const std::string instance = WriteHyperBench(MakePath(5));
  HttpResponse admitted =
      router.Handle(Request("POST", "/v1/decompose?k=2&async=1", instance));
  ASSERT_EQ(admitted.status, 202) << admitted.body;
  size_t start = admitted.body.find("\"job\": \"") + 8;
  const std::string id =
      admitted.body.substr(start, admitted.body.find('"', start) - start);

  ASSERT_TRUE(router.BeginTransition(new_map).ok());
  ASSERT_TRUE(router.CompleteTransition().ok());

  HttpResponse job;
  for (int i = 0; i < 200; ++i) {
    job = router.Handle(Request("GET", "/v1/jobs/" + id));
    ASSERT_EQ(job.status, 200)
        << "a pre-flip job id must stay pollable: " << job.body;
    if (job.body.find("\"state\": \"done\"") != std::string::npos) break;
  }
  EXPECT_NE(job.body.find("\"state\": \"done\""), std::string::npos) << job.body;

  for (auto& backend : backends) backend->Stop();
}

TEST(ReshardTest, ReplicatedRangeRoundRobinsAndSurvivesReplicaDeath) {
  const int pa = FreePort(), pb = FreePort();
  const std::string host = "127.0.0.1:";
  // One range, two replicas: both processes serve the full space as index 0.
  const service::ShardMap map = MustParse(host + std::to_string(pa) + "*2," +
                                          host + std::to_string(pb));
  std::vector<std::unique_ptr<DecompositionServer>> replicas;
  replicas.push_back(StartBackend(pa, map, 0));
  replicas.push_back(StartBackend(pb, map, 0));

  ShardRouterOptions router_options{map};
  router_options.backoff_base_seconds = 5.0;  // long: one failure sticks
  router_options.connect_timeout_seconds = 1.0;
  ShardRouter router(std::move(router_options));

  // Round-robin: two identical requests land on BOTH replicas (each solves
  // once — the second is NOT a cache hit because it hit the other replica).
  const std::string instance = WriteHyperBench(MakePath(6));
  for (int round = 0; round < 2; ++round) {
    HttpResponse response =
        router.Handle(Request("POST", "/v1/decompose?k=2", instance));
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"cache_hit\": false"), std::string::npos)
        << "round-robin must alternate replicas: " << response.body;
  }
  EXPECT_EQ(replicas[0]->admission_stats().admitted, 1u);
  EXPECT_EQ(replicas[1]->admission_stats().admitted, 1u);

  // Async jobs round-robin too, and each replica mints its OWN counter, so
  // the router's id prefix must name the replica — polling "s0.j1" on the
  // wrong replica would return a DIFFERENT client's job.
  const std::string other = WriteHyperBench(MakeCycle(7));
  std::vector<std::pair<std::string, std::string>> jobs;  // id -> instance
  for (const std::string* body : {&instance, &other}) {
    HttpResponse admitted =
        router.Handle(Request("POST", "/v1/decompose?k=2&async=1", *body));
    ASSERT_EQ(admitted.status, 202) << admitted.body;
    size_t start = admitted.body.find("\"job\": \"") + 8;
    jobs.emplace_back(
        admitted.body.substr(start, admitted.body.find('"', start) - start),
        *body);
  }
  EXPECT_NE(jobs[0].first.substr(0, jobs[0].first.find('.')),
            jobs[1].first.substr(0, jobs[1].first.find('.')))
      << "round-robined async jobs must carry distinct replica prefixes";
  for (const auto& [id, body] : jobs) {
    auto parsed = ParseAuto(body);
    ASSERT_TRUE(parsed.ok());
    const std::string fp_hex =
        service::CanonicalFingerprint(*parsed).ToHex();
    HttpResponse job;
    for (int i = 0; i < 200; ++i) {
      job = router.Handle(Request("GET", "/v1/jobs/" + id));
      ASSERT_EQ(job.status, 200) << job.body;
      if (job.body.find("\"state\": \"done\"") != std::string::npos) break;
    }
    EXPECT_NE(job.body.find("\"fingerprint\": \"" + fp_hex + "\""),
              std::string::npos)
        << "poll of " << id << " must return ITS job, not a sibling's: "
        << job.body;
  }

  // Kill one replica: the next request pays one transport failure, fails
  // over to the survivor, and serves its warm entry — a 200 cache hit, not
  // a 503 and not a cold start.
  replicas[0]->Stop();
  for (int round = 0; round < 2; ++round) {
    HttpResponse response =
        router.Handle(Request("POST", "/v1/decompose?k=2", instance));
    ASSERT_EQ(response.status, 200)
        << "replica death must not surface: " << response.body;
    EXPECT_NE(response.body.find("\"cache_hit\": true"), std::string::npos)
        << response.body;
  }
  auto stats = router.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t transport_errors = 0;
  for (const auto& endpoint : stats) transport_errors += endpoint.transport_errors;
  EXPECT_GE(transport_errors, 1u);

  replicas[1]->Stop();
}

}  // namespace
}  // namespace htd::net
