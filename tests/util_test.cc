// Tests for rng, stats, cancel token and thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace htd::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SampleDistinctIsSortedAndDistinct) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleDistinct(10, 30, 7);
    ASSERT_EQ(sample.size(), 7u);
    for (size_t i = 0; i < sample.size(); ++i) {
      EXPECT_GE(sample[i], 10);
      EXPECT_LE(sample[i], 30);
      if (i > 0) {
        EXPECT_LT(sample[i - 1], sample[i]);
      }
    }
  }
}

TEST(RngTest, SampleDistinctFullUniverse) {
  Rng rng(13);
  auto sample = rng.SampleDistinct(0, 4, 5);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ForkDiverges) {
  Rng rng(5);
  Rng child = rng.Fork();
  EXPECT_NE(rng.Next64(), child.Next64());
}

TEST(StatsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Max(), 0.0);
  EXPECT_EQ(stats.StdDev(), 0.0);
}

TEST(StatsTest, MeanMaxStdDev) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.Count(), 8);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_NEAR(stats.StdDev(), 2.0, 1e-9);  // classic textbook data set
}

TEST(StatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.5);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
}

TEST(CancelTest, ManualStop) {
  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  token.RequestStop();
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTest, DeadlineInThePast) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTest, DeadlineInTheFuture) {
  CancelToken token;
  token.SetTimeout(std::chrono::duration<double>(60.0));
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancelTest, StopFromAnotherThread) {
  CancelToken token;
  std::thread stopper([&] { token.RequestStop(); });
  stopper.join();
  EXPECT_TRUE(token.ShouldStop());
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 5; ++i) pool.Submit([&] { counter.fetch_add(1); });
  });
  // Wait until nested submissions settle.
  for (int i = 0; i < 100 && counter.load() < 5; ++i) pool.WaitIdle();
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&] { counter.fetch_add(1); });
  }
  pool.SubmitBatch(std::move(tasks));
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitBatchEmptyIsANoOp) {
  ThreadPool pool(2);
  pool.SubmitBatch({});
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPoolTest, TaskExceptionsAreRecordedNotFatal) {
  // Single worker: tasks run in submission order, so "first failure" is
  // deterministically the recorded exception.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("first failure"); });
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Submit([] { throw std::runtime_error("second failure"); });
  pool.WaitIdle();
  // Workers survived the throws and kept executing tasks.
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(pool.exception_count(), 2u);

  std::exception_ptr first = pool.TakeException();
  ASSERT_TRUE(first != nullptr);
  try {
    std::rethrow_exception(first);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first failure");
  }
  // Taking clears the stored exception but not the count.
  EXPECT_TRUE(pool.TakeException() == nullptr);
  EXPECT_EQ(pool.exception_count(), 2u);
}

TEST(ThreadPoolTest, NoExceptionsMeansEmptyRecord) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.WaitIdle();
  EXPECT_EQ(pool.exception_count(), 0u);
  EXPECT_TRUE(pool.TakeException() == nullptr);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace htd::util
