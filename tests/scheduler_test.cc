// BatchScheduler: single-flight dedup under concurrent identical
// submissions, deadline/cancellation behaviour, cache integration, and
// batch fan-out. Uses instrumented fake solvers so the tests control
// timing precisely.
#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hypergraph/generators.h"
#include "service/result_cache.h"
#include "util/executor.h"

namespace htd::service {
namespace {

using namespace std::chrono_literals;

/// Counts Solve() calls; optionally blocks until released or cancelled.
class FakeSolver : public HdSolver {
 public:
  struct Control {
    std::atomic<int> solve_calls{0};
    std::atomic<bool> release{true};  ///< false: spin until released/cancelled
    Outcome outcome = Outcome::kYes;
  };

  FakeSolver(Control* control, const SolveOptions& options)
      : control_(control), options_(options) {}

  SolveResult Solve(const Hypergraph&, int) override {
    control_->solve_calls.fetch_add(1);
    SolveResult result;
    while (!control_->release.load()) {
      if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
        result.outcome = Outcome::kCancelled;
        return result;
      }
      std::this_thread::sleep_for(1ms);
    }
    result.outcome = control_->outcome;
    return result;
  }

  std::string name() const override { return "fake"; }

 private:
  Control* control_;
  SolveOptions options_;
};

SolverFactoryFn FakeFactory(FakeSolver::Control* control) {
  return [control](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<FakeSolver>(control, options);
  };
}

JobSpec SpecFor(const Hypergraph& graph, int k, double timeout = 0.0) {
  JobSpec spec;
  spec.graph = &graph;
  spec.k = k;
  spec.timeout_seconds = timeout;
  return spec;
}

TEST(SchedulerTest, SolvesAndFulfillsFuture) {
  util::Executor executor(2);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           /*cache=*/nullptr, /*config_digest=*/1);
  Hypergraph graph = MakeCycle(6);
  JobResult job = scheduler.Submit(SpecFor(graph, 2)).get();
  EXPECT_EQ(job.result.outcome, Outcome::kYes);
  EXPECT_FALSE(job.cache_hit);
  EXPECT_FALSE(job.deduplicated);
  EXPECT_EQ(control.solve_calls.load(), 1);
  EXPECT_EQ(job.fingerprint, CanonicalFingerprint(graph));
}

TEST(SchedulerTest, SingleFlightDeduplicatesConcurrentIdenticalJobs) {
  util::Executor executor(4);
  FakeSolver::Control control;
  control.release.store(false);  // hold the flight open while duplicates pile up
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph graph = MakeCycle(8);

  constexpr int kJobs = 16;
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(scheduler.Submit(SpecFor(graph, 2)));
  }
  // Wait until the leader is actually running, then let it finish.
  while (control.solve_calls.load() == 0) std::this_thread::sleep_for(1ms);
  control.release.store(true);

  int dedup_count = 0;
  for (auto& future : futures) {
    JobResult job = future.get();
    EXPECT_EQ(job.result.outcome, Outcome::kYes);
    dedup_count += job.deduplicated ? 1 : 0;
  }
  EXPECT_EQ(control.solve_calls.load(), 1);
  EXPECT_EQ(dedup_count, kJobs - 1);

  BatchScheduler::Stats stats = scheduler.GetStats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.dedup_joins, static_cast<uint64_t>(kJobs - 1));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kJobs));
}

TEST(SchedulerTest, DistinctJobsAreNotDeduplicated) {
  util::Executor executor(4);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph cycle = MakeCycle(8);
  Hypergraph path = MakePath(8);
  auto f1 = scheduler.Submit(SpecFor(cycle, 2));
  auto f2 = scheduler.Submit(SpecFor(path, 2));
  auto f3 = scheduler.Submit(SpecFor(cycle, 3));  // same graph, different k
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(control.solve_calls.load(), 3);
}

TEST(SchedulerTest, DeadlineCancelsRunningJob) {
  util::Executor executor(2);
  FakeSolver::Control control;
  control.release.store(false);  // solver only exits via its cancel token
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph graph = MakeCycle(8);
  JobResult job =
      scheduler.Submit(SpecFor(graph, 2, /*timeout=*/0.05)).get();
  EXPECT_EQ(job.result.outcome, Outcome::kCancelled);
}

TEST(SchedulerTest, CancelAllStopsInFlightWork) {
  util::Executor executor(2);
  FakeSolver::Control control;
  control.release.store(false);
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph graph = MakeCycle(8);
  auto future = scheduler.Submit(SpecFor(graph, 2));
  while (control.solve_calls.load() == 0) std::this_thread::sleep_for(1ms);
  scheduler.CancelAll();
  EXPECT_EQ(future.get().result.outcome, Outcome::kCancelled);
}

TEST(SchedulerTest, CancelledResultsAreNotCached) {
  util::Executor executor(2);
  ResultCache cache(16, 2);
  FakeSolver::Control control;
  control.release.store(false);
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{}, &cache, 1);
  Hypergraph graph = MakeCycle(8);
  scheduler.Submit(SpecFor(graph, 2, 0.05)).get();
  EXPECT_EQ(cache.num_entries(), 0u);

  // A later submission re-solves (and, released, caches the kYes).
  control.release.store(true);
  JobResult job = scheduler.Submit(SpecFor(graph, 2)).get();
  EXPECT_EQ(job.result.outcome, Outcome::kYes);
  EXPECT_FALSE(job.cache_hit);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(SchedulerTest, CompletedResultsHitTheCache) {
  util::Executor executor(2);
  ResultCache cache(16, 2);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{}, &cache, 1);
  Hypergraph graph = MakeCycle(8);

  JobResult first = scheduler.Submit(SpecFor(graph, 2)).get();
  EXPECT_FALSE(first.cache_hit);
  JobResult second = scheduler.Submit(SpecFor(graph, 2)).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.outcome, Outcome::kYes);
  EXPECT_EQ(control.solve_calls.load(), 1);
  EXPECT_EQ(scheduler.GetStats().cache_hits, 1u);
}

TEST(SchedulerTest, SubmitBatchAlignsFuturesWithSpecs) {
  util::Executor executor(4);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph cycle = MakeCycle(8);
  Hypergraph path = MakePath(5);
  std::vector<JobSpec> specs = {SpecFor(cycle, 2), SpecFor(path, 1),
                                SpecFor(cycle, 2)};
  auto futures = scheduler.SubmitBatch(specs);
  ASSERT_EQ(futures.size(), 3u);
  JobResult a = futures[0].get();
  JobResult b = futures[1].get();
  JobResult c = futures[2].get();
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_NE(a.fingerprint, b.fingerprint);
  // The duplicate either joined the first flight or hit nothing (no cache
  // attached), but it must not have answered wrongly.
  EXPECT_LE(control.solve_calls.load(), 3);
  EXPECT_EQ(scheduler.GetStats().completed, 3u);
}

TEST(SchedulerTest, DrainWaitsForAllFlights) {
  util::Executor executor(2);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           nullptr, 1);
  Hypergraph graph = MakeCycle(8);
  std::vector<std::future<JobResult>> futures;
  for (int k = 1; k <= 4; ++k) {
    futures.push_back(scheduler.Submit(SpecFor(graph, k)));
  }
  scheduler.Drain();
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(0s), std::future_status::ready);
  }
}

TEST(SchedulerTest, HammeredWithConcurrentSubmitters) {
  // Stress the admission path from many threads; also the TSan target.
  util::Executor executor(4);
  ResultCache cache(128, 8);
  FakeSolver::Control control;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           &cache, 1);
  std::vector<Hypergraph> graphs;
  for (int n = 4; n < 10; ++n) graphs.push_back(MakeCycle(n));

  constexpr int kSubmitters = 6;
  constexpr int kPerThread = 40;
  std::vector<std::thread> submitters;
  std::atomic<int> yes_count{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Hypergraph& graph = graphs[(t + i) % graphs.size()];
        JobResult job = scheduler.Submit(SpecFor(graph, 2)).get();
        if (job.result.outcome == Outcome::kYes) yes_count.fetch_add(1);
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(yes_count.load(), kSubmitters * kPerThread);
  // Every (graph, k) pair needs at most a handful of real solves; the rest
  // must come from dedup or the cache.
  EXPECT_LE(control.solve_calls.load(), static_cast<int>(graphs.size()) * 2);
  BatchScheduler::Stats stats = scheduler.GetStats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kSubmitters * kPerThread));
}

// ---------------------------------------------------------------------------
// Adaptive width (SolveOptions::num_threads == 0) on the work-stealing
// executor. There is no admission-time pick any more: the scheduler resolves
// the 0 hint to the executor width, the solve offers that many chunk tasks,
// and threads_used reports the peak number of workers that were genuinely
// inside the flight's task group at once.

/// Records the num_threads each constructed solver was handed.
SolverFactoryFn RecordingFactory(FakeSolver::Control* control,
                                 std::mutex* mutex, std::vector<int>* seen) {
  return [control, mutex, seen](const SolveOptions& options) {
    {
      std::lock_guard<std::mutex> lock(*mutex);
      seen->push_back(options.num_threads);
    }
    return std::make_unique<FakeSolver>(control, options);
  };
}

/// Spawns num_threads - 1 chunk tasks into the flight's task group and runs
/// one inline, all meeting at a barrier: Solve() completes only once that
/// many workers were concurrently running its chunks — the executor-era
/// observable for "the job really got N threads".
class BarrierSolver : public HdSolver {
 public:
  explicit BarrierSolver(const SolveOptions& options) : options_(options) {}

  SolveResult Solve(const Hypergraph&, int) override {
    const int width = options_.num_threads;
    auto arrived = std::make_shared<std::atomic<int>>(0);
    auto chunk = [arrived, width] {
      arrived->fetch_add(1);
      while (arrived->load() < width) std::this_thread::sleep_for(1ms);
    };
    util::TaskGroup group(*options_.task_group);
    for (int i = 1; i < width; ++i) group.Spawn(chunk);
    group.Run(chunk);
    group.Wait();
    SolveResult result;
    result.outcome = Outcome::kYes;
    return result;
  }

  std::string name() const override { return "barrier"; }

 private:
  SolveOptions options_;
};

SolverFactoryFn BarrierFactory() {
  return [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<BarrierSolver>(options);
  };
}

TEST(AdaptiveWidthTest, LoneJobWidensToTheWholeFleet) {
  util::Executor executor(4);
  SolveOptions options;
  options.num_threads = 0;  // adaptive
  BatchScheduler scheduler(executor, BarrierFactory(), options,
                           /*cache=*/nullptr, /*config_digest=*/1);
  Hypergraph graph = MakeCycle(6);
  JobResult job = scheduler.Submit(SpecFor(graph, 2)).get();
  EXPECT_EQ(job.result.outcome, Outcome::kYes);
  EXPECT_EQ(job.threads_used, 4)
      << "a lone flight on an idle fleet must widen to every worker";
}

TEST(AdaptiveWidthTest, LoneBigSolveWidensAfterTheQueueDrains) {
  // The regression the refactor exists for: a big solve admitted while the
  // queue is deep starts narrow, then widens mid-flight as the small jobs
  // drain — with a static admission-time split it would stay at width 1
  // forever. Two schedulers share one executor so the small flights and the
  // big one compete for the same workers.
  util::Executor executor(4);
  FakeSolver::Control control;
  control.release.store(false);  // park the small flights on their workers
  BatchScheduler small_scheduler(executor, FakeFactory(&control),
                                 SolveOptions{}, /*cache=*/nullptr,
                                 /*config_digest=*/1);
  SolveOptions adaptive;
  adaptive.num_threads = 0;
  BatchScheduler big_scheduler(executor, BarrierFactory(), adaptive,
                               /*cache=*/nullptr, /*config_digest=*/2);

  std::vector<Hypergraph> graphs;
  for (int n = 4; n < 7; ++n) graphs.push_back(MakeCycle(n));
  std::vector<std::future<JobResult>> small_futures;
  for (const Hypergraph& graph : graphs) {
    small_futures.push_back(small_scheduler.Submit(SpecFor(graph, 2)));
  }
  // Three workers pinned; the big flight starts on the fourth but its chunk
  // tasks can only queue — nothing is free to steal them.
  while (control.solve_calls.load() < 3) std::this_thread::sleep_for(1ms);
  Hypergraph big = MakeCycle(12);
  auto big_future = big_scheduler.Submit(SpecFor(big, 2));
  std::this_thread::sleep_for(20ms);  // let the big flight reach its barrier
  control.release.store(true);  // drain the queue; freed workers steal chunks
  for (auto& future : small_futures) {
    EXPECT_EQ(future.get().threads_used, 1)
        << "a parked flight under a deep queue must not have widened";
  }
  JobResult big_job = big_future.get();
  EXPECT_EQ(big_job.result.outcome, Outcome::kYes);
  EXPECT_EQ(big_job.threads_used, 4)
      << "the drained fleet must converge on the lone straggler";
}

TEST(AdaptiveWidthTest, ConfiguredThreadCountIsUntouched) {
  util::Executor executor(4);
  FakeSolver::Control control;
  std::mutex mutex;
  std::vector<int> seen;
  SolveOptions options;
  options.num_threads = 3;  // explicit: the 0-resolution must not engage
  BatchScheduler scheduler(executor, RecordingFactory(&control, &mutex, &seen),
                           options, /*cache=*/nullptr, /*config_digest=*/1);
  Hypergraph graph = MakeCycle(6);
  JobResult job = scheduler.Submit(SpecFor(graph, 2)).get();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 3);
  // threads_used reports the measured peak width, not the hint: a solver
  // that never spawns into its group ran exactly one worker.
  EXPECT_EQ(job.threads_used, 1);
}

TEST(AdaptiveWidthTest, QueueDepthTracksFlights) {
  util::Executor executor(2);
  FakeSolver::Control control;
  control.release = false;
  BatchScheduler scheduler(executor, FakeFactory(&control), SolveOptions{},
                           /*cache=*/nullptr, /*config_digest=*/1);
  EXPECT_EQ(scheduler.queue_depth(), 0);
  EXPECT_EQ(scheduler.outstanding_jobs(), 0u);

  Hypergraph cycle = MakeCycle(8);
  Hypergraph path = MakePath(8);
  auto f1 = scheduler.Submit(SpecFor(cycle, 2));
  auto f2 = scheduler.Submit(SpecFor(path, 2));
  auto f3 = scheduler.Submit(SpecFor(cycle, 2));  // dedup join, not a flight
  EXPECT_EQ(scheduler.queue_depth(), 2);
  EXPECT_EQ(scheduler.outstanding_jobs(), 3u);

  control.release = true;
  f1.get();
  f2.get();
  f3.get();
  scheduler.Drain();
  EXPECT_EQ(scheduler.queue_depth(), 0);
  EXPECT_EQ(scheduler.outstanding_jobs(), 0u);
}

}  // namespace
}  // namespace htd::service
