// End-to-end pipeline tests: the full production path a downstream user
// would run — parse, preprocess, solve, lift, normalize, serialise, parse
// back, validate — composed in one flow on messy inputs.
#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "decomp/decomp_reader.h"
#include "decomp/decomp_writer.h"
#include "decomp/normal_form.h"
#include "decomp/simplify.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "prep/prep_solver.h"
#include "util/rng.h"

namespace htd {
namespace {

class PipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTest, FullProductionPathOnMessyInstances) {
  const uint64_t seed = GetParam();
  util::Rng gen_rng(seed);
  Hypergraph base = (seed % 2 == 0) ? MakeRandomCsp(gen_rng, 10, 7, 2, 4)
                                    : MakeRandomCq(gen_rng, 8, 4, 0.3);
  util::Rng redundancy_rng(seed + 1000);
  Hypergraph graph = AddRedundancy(base, redundancy_rng, 3, 2);

  // 1. Preprocess + solve + lift.
  LogKDecomp inner;
  PreprocessingSolver solver(inner, {}, /*validate_result=*/true);
  OptimalRun run = FindOptimalWidth(solver, graph, /*max_k=*/6);
  ASSERT_EQ(run.outcome, Outcome::kYes) << "seed=" << seed;
  ASSERT_TRUE(run.decomposition.has_value());

  // 2. Normalize the lifted HD (Theorem 3.6 applies to any valid HD,
  //    including stitched/lifted ones).
  auto normalized = NormalizeHd(graph, *run.decomposition);
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString() << " seed=" << seed;
  EXPECT_LE(normalized->Width(), run.width) << "seed=" << seed;
  Validation nf = CheckNormalForm(graph, *normalized);
  EXPECT_TRUE(nf.ok) << nf.error << " seed=" << seed;

  // 3. Contract redundant nodes; still a valid HD of the same width class.
  Decomposition simplified = SimplifyDecomposition(graph, *normalized);
  Validation still_valid = ValidateHdWithWidth(graph, simplified, run.width);
  EXPECT_TRUE(still_valid.ok) << still_valid.error << " seed=" << seed;

  // 4. Serialise, parse back, re-validate: the wire format carries
  //    everything the validator needs.
  std::string json = WriteDecompositionJson(graph, simplified);
  auto reparsed = ParseDecompositionJson(graph, json);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << " seed=" << seed;
  Validation after_roundtrip = ValidateHdWithWidth(graph, *reparsed, run.width);
  EXPECT_TRUE(after_roundtrip.ok) << after_roundtrip.error << " seed=" << seed;
  EXPECT_EQ(reparsed->Width(), simplified.Width());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htd
