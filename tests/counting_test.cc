// Tests for CountSolutions: tractable CQ answer counting over HDs.
#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "util/rng.h"

namespace htd::cq {
namespace {

Decomposition Decompose(const Query& query) {
  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(query), 10);
  HTD_CHECK(run.outcome == Outcome::kYes);
  return std::move(*run.decomposition);
}

TEST(CountingTest, SimpleChainCount) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  // R: (1,2),(3,2),(4,5); S: (2,7),(2,8),(5,9).
  db.AddRelation({"R", 2, {{1, 2}, {3, 2}, {4, 5}}});
  db.AddRelation({"S", 2, {{2, 7}, {2, 8}, {5, 9}}});
  // Join: (1,2,7),(1,2,8),(3,2,7),(3,2,8),(4,5,9) -> 5 answers.
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok()) << count.status().message();
  EXPECT_EQ(count->value, 5ull);
  EXPECT_FALSE(count->saturated);
}

TEST(CountingTest, UnsatisfiableCountsZero) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{3, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 0ull);
  EXPECT_FALSE(count->saturated);
}

TEST(CountingTest, TriangleCount) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  // Two triangles 1-2-3 and 4-5-6 plus noise.
  db.AddRelation({"R", 2, {{1, 2}, {4, 5}, {1, 9}}});
  db.AddRelation({"S", 2, {{2, 3}, {5, 6}, {9, 9}}});
  db.AddRelation({"T", 2, {{3, 1}, {6, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 2ull);
}

TEST(CountingTest, DuplicateTuplesAreSetSemantics) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {1, 2}, {1, 2}, {3, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 2ull);  // duplicates collapse
}

TEST(CountingTest, RepeatedVariableAtom) {
  auto query = ParseQuery("R(X,X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 3, {{1, 1, 2}, {1, 2, 3}, {4, 4, 4}, {4, 4, 5}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 3ull);  // (1,2), (4,4), (4,5)
}

TEST(CountingTest, MissingRelationReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  EXPECT_FALSE(CountSolutions(*query, db, Decompose(*query)).ok());
}

TEST(CountingTest, CartesianProductCount) {
  // Disconnected query: count multiplies across components.
  auto query = ParseQuery("R(X,Y), S(U,V).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 4}, {5, 6}}});
  db.AddRelation({"S", 2, {{7, 8}, {9, 10}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 6ull);
}

// Boundary regression for the saturating 128-bit accumulator: four
// independent unary atoms multiply to n^4. n = 65535 -> n^4 = (n^2)^2 just
// fits in 64 bits and must be exact; n = 65536 -> 2^64 overflows and must
// come back saturated at ULLONG_MAX instead of silently wrapping to 0.
Decomposition FourUnaryDecomposition() {
  Decomposition decomp;
  int root = decomp.AddNode({0}, util::DynamicBitset::FromIndices(4, {0}), -1);
  for (int i = 1; i < 4; ++i) {
    decomp.AddNode({i}, util::DynamicBitset::FromIndices(4, {i}), root);
  }
  return decomp;
}

Database FourUnaryDatabase(int64_t n) {
  Database db;
  for (int i = 0; i < 4; ++i) {
    Relation relation{"R" + std::to_string(i), 1, {}};
    relation.tuples.reserve(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) relation.tuples.push_back({v});
    db.AddRelation(std::move(relation));
  }
  return db;
}

TEST(CountingTest, LargestExactCountJustUnderOverflow) {
  auto query = ParseQuery("R0(A), R1(B), R2(C), R3(D).");
  ASSERT_TRUE(query.ok());
  auto count =
      CountSolutions(*query, FourUnaryDatabase(65535), FourUnaryDecomposition());
  ASSERT_TRUE(count.ok()) << count.status().message();
  const unsigned long long n2 = 65535ull * 65535ull;
  EXPECT_EQ(count->value, n2 * n2);  // 65535^4 < 2^64: exact
  EXPECT_FALSE(count->saturated);
}

TEST(CountingTest, OverflowSaturatesInsteadOfWrapping) {
  auto query = ParseQuery("R0(A), R1(B), R2(C), R3(D).");
  ASSERT_TRUE(query.ok());
  auto count =
      CountSolutions(*query, FourUnaryDatabase(65536), FourUnaryDecomposition());
  ASSERT_TRUE(count.ok()) << count.status().message();
  // 65536^4 == 2^64: one past what uint64 holds. A wrapping accumulator
  // would report 0 here — the exact bug the saturated flag exists to catch.
  EXPECT_EQ(count->value, ~0ull);
  EXPECT_TRUE(count->saturated);
}

// Property: the HD-guided count equals the brute-force count on random
// queries and databases, and matches EvaluateWithDecomposition on
// satisfiability.
class CountingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingPropertyTest, AgreesWithBruteForce) {
  util::Rng rng(GetParam() + 1000);
  std::string text;
  int atoms = rng.UniformInt(3, 5);
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) text += ", ";
    text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
            std::to_string(i + 1) + ")";
  }
  text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 2)) + ").";
  auto query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  Database db = RandomDatabase(rng, *query, /*domain_size=*/4,
                               /*tuples_per_relation=*/7,
                               /*satisfiable_bias=*/0.5);
  Decomposition decomp = Decompose(*query);

  auto fast = CountSolutions(*query, db, decomp);
  auto slow = CountSolutionsBruteForce(*query, db);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->value, *slow) << "seed " << GetParam();
  EXPECT_FALSE(fast->saturated);

  auto boolean = EvaluateWithDecomposition(*query, db, decomp);
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ(boolean->satisfiable, fast->value > 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace htd::cq
