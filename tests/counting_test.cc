// Tests for CountSolutions: tractable CQ answer counting over HDs.
#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "util/rng.h"

namespace htd::cq {
namespace {

Decomposition Decompose(const Query& query) {
  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, QueryHypergraph(query), 10);
  HTD_CHECK(run.outcome == Outcome::kYes);
  return std::move(*run.decomposition);
}

TEST(CountingTest, SimpleChainCount) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  // R: (1,2),(3,2),(4,5); S: (2,7),(2,8),(5,9).
  db.AddRelation({"R", 2, {{1, 2}, {3, 2}, {4, 5}}});
  db.AddRelation({"S", 2, {{2, 7}, {2, 8}, {5, 9}}});
  // Join: (1,2,7),(1,2,8),(3,2,7),(3,2,8),(4,5,9) -> 5 answers.
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok()) << count.status().message();
  EXPECT_EQ(*count, 5ull);
}

TEST(CountingTest, UnsatisfiableCountsZero) {
  auto query = ParseQuery("R(X,Y), S(Y,Z).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}}});
  db.AddRelation({"S", 2, {{3, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0ull);
}

TEST(CountingTest, TriangleCount) {
  auto query = ParseQuery("R(X,Y), S(Y,Z), T(Z,X).");
  ASSERT_TRUE(query.ok());
  Database db;
  // Two triangles 1-2-3 and 4-5-6 plus noise.
  db.AddRelation({"R", 2, {{1, 2}, {4, 5}, {1, 9}}});
  db.AddRelation({"S", 2, {{2, 3}, {5, 6}, {9, 9}}});
  db.AddRelation({"T", 2, {{3, 1}, {6, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2ull);
}

TEST(CountingTest, DuplicateTuplesAreSetSemantics) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {1, 2}, {1, 2}, {3, 4}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2ull);  // duplicates collapse
}

TEST(CountingTest, RepeatedVariableAtom) {
  auto query = ParseQuery("R(X,X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 3, {{1, 1, 2}, {1, 2, 3}, {4, 4, 4}, {4, 4, 5}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3ull);  // (1,2), (4,4), (4,5)
}

TEST(CountingTest, MissingRelationReported) {
  auto query = ParseQuery("R(X,Y).");
  ASSERT_TRUE(query.ok());
  Database db;
  EXPECT_FALSE(CountSolutions(*query, db, Decompose(*query)).ok());
}

TEST(CountingTest, CartesianProductCount) {
  // Disconnected query: count multiplies across components.
  auto query = ParseQuery("R(X,Y), S(U,V).");
  ASSERT_TRUE(query.ok());
  Database db;
  db.AddRelation({"R", 2, {{1, 2}, {3, 4}, {5, 6}}});
  db.AddRelation({"S", 2, {{7, 8}, {9, 10}}});
  auto count = CountSolutions(*query, db, Decompose(*query));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6ull);
}

// Property: the HD-guided count equals the brute-force count on random
// queries and databases, and matches EvaluateWithDecomposition on
// satisfiability.
class CountingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingPropertyTest, AgreesWithBruteForce) {
  util::Rng rng(GetParam() + 1000);
  std::string text;
  int atoms = rng.UniformInt(3, 5);
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) text += ", ";
    text += "R" + std::to_string(i) + "(V" + std::to_string(i) + ",V" +
            std::to_string(i + 1) + ")";
  }
  text += ", C(V0,V" + std::to_string(rng.UniformInt(1, 2)) + ").";
  auto query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  Database db = RandomDatabase(rng, *query, /*domain_size=*/4,
                               /*tuples_per_relation=*/7,
                               /*satisfiable_bias=*/0.5);
  Decomposition decomp = Decompose(*query);

  auto fast = CountSolutions(*query, db, decomp);
  auto slow = CountSolutionsBruteForce(*query, db);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(*fast, *slow) << "seed " << GetParam();

  auto boolean = EvaluateWithDecomposition(*query, db, decomp);
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ(boolean->satisfiable, *fast > 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace htd::cq
