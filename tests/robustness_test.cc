// Failure injection and robustness: malformed inputs never crash, timeouts
// fire at every stage, and solvers behave sanely on degenerate hypergraphs.
#include <gtest/gtest.h>

#include "baselines/balsep_ghd.h"
#include "baselines/det_k_decomp.h"
#include "baselines/opt_solver.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(RobustnessTest, ParserSurvivesGarbage) {
  // None of these may crash; all must return a Status, parse or not.
  const char* inputs[] = {
      ")",     "(((",   "a(b,c)extra(",  "1 2 3\n4 5 6",
      "p htd", "p htd -1 -1\n",          "p htd 2 1\n1 1 2\n1 1 2\n",
      ",,,",   "R(,)",  "R(x,,y).",      "\0x",
      "R(x)R(y)",       "%%%%",          "p htd 1000000000 2\n",
  };
  for (const char* input : inputs) {
    auto result = ParseAuto(input);
    (void)result.ok();  // either outcome is fine; no crash allowed
  }
}

TEST(RobustnessTest, ParserFuzzRandomStrings) {
  util::Rng rng(123);
  const char alphabet[] = "abcXY(),.% \n\t0123_:-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    int length = rng.UniformInt(0, 60);
    for (int i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.UniformInt(0, sizeof(alphabet) - 2)]);
    }
    auto result = ParseAuto(input);
    if (result.ok()) {
      EXPECT_GT(result->num_edges(), 0);
    }
  }
}

TEST(RobustnessTest, SelfLoopEdges) {
  // Single-vertex edges are legal hypergraph edges.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("loop", {a}).ok());
  ASSERT_TRUE(graph.AddEdge("r", {a, b}).ok());
  LogKDecomp solver;
  SolveResult result = solver.Solve(graph, 1);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_TRUE(ValidateHd(graph, *result.decomposition).ok);
}

TEST(RobustnessTest, DuplicateEdges) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("r1", {a, b}).ok());
  ASSERT_TRUE(graph.AddEdge("r2", {a, b}).ok());
  ASSERT_TRUE(graph.AddEdge("r3", {b, a}).ok());
  for (int k = 1; k <= 2; ++k) {
    LogKDecomp solver;
    SolveResult result = solver.Solve(graph, k);
    EXPECT_EQ(result.outcome, Outcome::kYes) << "k=" << k;
    EXPECT_TRUE(ValidateHd(graph, *result.decomposition).ok);
  }
}

TEST(RobustnessTest, EdgeEqualToWholeVertexSet) {
  Hypergraph graph = MakeCycle(6);
  // Recreate with an extra covering edge.
  Hypergraph covered;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    covered.GetOrAddVertex(graph.vertex_name(v));
  }
  for (int e = 0; e < graph.num_edges(); ++e) {
    ASSERT_TRUE(covered.AddEdge(graph.edge_name(e), graph.edge_vertex_list(e)).ok());
  }
  std::vector<int> all;
  for (int v = 0; v < covered.num_vertices(); ++v) all.push_back(v);
  ASSERT_TRUE(covered.AddEdge("everything", all).ok());
  LogKDecomp solver;
  SolveResult result = solver.Solve(covered, 1);
  ASSERT_EQ(result.outcome, Outcome::kYes);  // the big edge covers it all
  EXPECT_TRUE(ValidateHd(covered, *result.decomposition).ok);
}

TEST(RobustnessTest, TimeoutsFireAcrossSolvers) {
  Hypergraph hard = MakeClique(14);
  for (int variant = 0; variant < 4; ++variant) {
    util::CancelToken cancel;
    cancel.SetTimeout(std::chrono::duration<double>(0.02));
    SolveOptions options;
    options.cancel = &cancel;
    std::unique_ptr<HdSolver> solver;
    switch (variant) {
      case 0:
        solver = std::make_unique<LogKDecomp>(options);
        break;
      case 1:
        solver = std::make_unique<DetKDecomp>(options);
        break;
      case 2:
        solver = MakeDefaultHybrid(options);
        break;
      default:
        solver = std::make_unique<BalSepGhd>(options);
        break;
    }
    EXPECT_EQ(solver->Solve(hard, 4).outcome, Outcome::kCancelled)
        << solver->name();
  }
}

TEST(RobustnessTest, CancelDuringParallelSearch) {
  util::CancelToken cancel;
  cancel.SetTimeout(std::chrono::duration<double>(0.02));
  SolveOptions options;
  options.cancel = &cancel;
  options.num_threads = 4;
  options.parallel_min_size = 4;
  LogKDecomp solver(options);
  EXPECT_EQ(solver.Solve(MakeClique(14), 4).outcome, Outcome::kCancelled);
}

TEST(RobustnessTest, ZeroWidthRequestRejectedGracefully) {
  // k must be >= 1; the solver CHECKs in debug builds, so only probe k >= 1
  // here and assert k == 1 behaves on an empty-ish instance.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  ASSERT_TRUE(graph.AddEdge("r", {a}).ok());
  LogKDecomp solver;
  EXPECT_EQ(solver.Solve(graph, 1).outcome, Outcome::kYes);
}

TEST(RobustnessTest, LargeAritySingleEdge) {
  Hypergraph graph;
  std::vector<int> vertices;
  for (int i = 0; i < 200; ++i) {
    vertices.push_back(graph.GetOrAddVertex("v" + std::to_string(i)));
  }
  ASSERT_TRUE(graph.AddEdge("wide", vertices).ok());
  OptimalSolver solver;
  OptimalRun run = solver.FindOptimal(graph);
  ASSERT_EQ(run.outcome, Outcome::kYes);
  EXPECT_EQ(run.width, 1);
}

TEST(RobustnessTest, ManyDisconnectedComponents) {
  Hypergraph graph;
  for (int c = 0; c < 30; ++c) {
    int a = graph.GetOrAddVertex("a" + std::to_string(c));
    int b = graph.GetOrAddVertex("b" + std::to_string(c));
    ASSERT_TRUE(graph.AddEdge("e" + std::to_string(c), {a, b}).ok());
  }
  LogKDecomp solver;
  SolveResult result = solver.Solve(graph, 1);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  Validation validation = ValidateHdWithWidth(graph, *result.decomposition, 1);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(RobustnessTest, RepeatedSolvesAreIndependent) {
  // Solver objects are reusable; runs must not leak state across calls.
  LogKDecomp solver;
  Hypergraph cycle = MakeCycle(8);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(solver.Solve(cycle, 1).outcome, Outcome::kNo);
    EXPECT_EQ(solver.Solve(cycle, 2).outcome, Outcome::kYes);
  }
}

}  // namespace
}  // namespace htd
