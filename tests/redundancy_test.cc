// AddRedundancy generator: the injected projection atoms and payload columns
// must be exactly the kind of redundancy preprocessing removes, and must
// never change the optimal hypertree width.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "prep/prep_solver.h"
#include "prep/preprocess.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(AddRedundancyTest, PayloadColumnsAreTwins) {
  Hypergraph base = MakeCycle(6);
  util::Rng rng(3);
  Hypergraph messy = AddRedundancy(base, rng, /*subsumed_edges=*/0,
                                   /*twin_vertices=*/3);
  EXPECT_EQ(messy.num_vertices(), base.num_vertices() + 3);
  EXPECT_EQ(messy.num_edges(), base.num_edges());

  PreprocessedInstance instance = Preprocess(messy);
  EXPECT_EQ(instance.stats().twin_vertices_contracted, 3);
  ASSERT_EQ(instance.components().size(), 1u);
  EXPECT_EQ(instance.components()[0].graph.num_vertices(), base.num_vertices());
}

TEST(AddRedundancyTest, ProjectionAtomsAreSubsumed) {
  util::Rng gen_rng(5);
  Hypergraph base = MakeRandomCsp(gen_rng, 10, 6, 3, 4);
  util::Rng rng(7);
  Hypergraph messy = AddRedundancy(base, rng, /*subsumed_edges=*/4,
                                   /*twin_vertices=*/0);
  EXPECT_GT(messy.num_edges(), base.num_edges());

  PreprocessedInstance instance = Preprocess(messy);
  EXPECT_EQ(instance.ReducedEdgeCount(), base.num_edges());
}

class RedundancyWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(RedundancyWidthTest, RedundancyNeverChangesOptimalWidth) {
  const uint64_t seed = GetParam();
  util::Rng gen_rng(seed);
  Hypergraph base = (seed % 2 == 0) ? MakeRandomCsp(gen_rng, 11, 7, 2, 4)
                                    : MakeRandomCq(gen_rng, 9, 4, 0.3);
  util::Rng rng(seed * 17 + 1);
  Hypergraph messy =
      AddRedundancy(base, rng, base.num_edges() / 2, /*twin_vertices=*/3);

  DetKDecomp solver;
  OptimalRun base_run = FindOptimalWidth(solver, base, 6);
  OptimalRun messy_run = FindOptimalWidth(solver, messy, 6);
  ASSERT_EQ(base_run.outcome, Outcome::kYes) << "seed=" << seed;
  ASSERT_EQ(messy_run.outcome, Outcome::kYes) << "seed=" << seed;
  EXPECT_EQ(base_run.width, messy_run.width) << "seed=" << seed;

  // And the preprocessed solve of the messy instance agrees too.
  DetKDecomp inner;
  PreprocessingSolver prepped(inner, {}, /*validate_result=*/true);
  OptimalRun prep_run = FindOptimalWidth(prepped, messy, 6);
  ASSERT_EQ(prep_run.outcome, Outcome::kYes) << "seed=" << seed;
  EXPECT_EQ(prep_run.width, base_run.width) << "seed=" << seed;
  Validation validation =
      ValidateHdWithWidth(messy, *prep_run.decomposition, prep_run.width);
  EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyWidthTest, ::testing::Range(0, 14));

}  // namespace
}  // namespace htd
