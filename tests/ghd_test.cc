#include "baselines/balsep_ghd.h"

#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(GhdTest, PathWidthOne) {
  BalSepGhd solver;
  SolveResult result = solver.Solve(MakePath(8), 1);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  Validation validation = ValidateGhd(MakePath(8), *result.decomposition);
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_LE(result.decomposition->Width(), 1);
}

TEST(GhdTest, CycleWidthTwo) {
  BalSepGhd solver;
  for (int n : {4, 6, 8, 10}) {
    Hypergraph cycle = MakeCycle(n);
    SolveResult result = solver.Solve(cycle, 2);
    ASSERT_EQ(result.outcome, Outcome::kYes) << "cycle " << n;
    Validation validation = ValidateGhd(cycle, *result.decomposition);
    EXPECT_TRUE(validation.ok) << validation.error;
  }
}

TEST(GhdTest, SoundOnRandomInstances) {
  // Whatever the solver returns must be a valid GHD of width <= k.
  for (uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeRandomCsp(rng, 14, 9, 2, 4);
    BalSepGhd solver;
    for (int k = 1; k <= 3; ++k) {
      SolveResult result = solver.Solve(graph, k);
      if (result.outcome == Outcome::kYes) {
        ASSERT_TRUE(result.decomposition.has_value());
        Validation validation = ValidateGhd(graph, *result.decomposition);
        EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;
        EXPECT_LE(result.decomposition->Width(), k);
      }
    }
  }
}

TEST(GhdTest, MonotoneInK) {
  util::Rng rng(3);
  Hypergraph graph = MakeRandomCsp(rng, 12, 8, 2, 4);
  BalSepGhd solver;
  bool seen_yes = false;
  for (int k = 1; k <= 5; ++k) {
    Outcome outcome = solver.Solve(graph, k).outcome;
    if (seen_yes) {
      EXPECT_EQ(outcome, Outcome::kYes) << "k=" << k;
    }
    seen_yes = seen_yes || outcome == Outcome::kYes;
  }
  EXPECT_TRUE(seen_yes);
}

TEST(GhdTest, GhwNeverBeatsHwOnBenchFamilies) {
  // Reproduces the §5.2 observation in miniature: on instances where both
  // solvers succeed, the GHD width found is never smaller than the optimal
  // hw (the extra generality of GHDs buys nothing here).
  for (uint64_t seed = 20; seed < 30; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeRandomCq(rng, 9, 3, 0.3);
    int hw = -1;
    DetKDecomp det_k;
    for (int k = 1; k <= 4 && hw < 0; ++k) {
      if (det_k.Solve(graph, k).outcome == Outcome::kYes) hw = k;
    }
    ASSERT_GT(hw, 0);
    BalSepGhd ghd;
    for (int k = 1; k < hw; ++k) {
      EXPECT_NE(ghd.Solve(graph, k).outcome, Outcome::kYes)
          << "ghd found width " << k << " below hw " << hw << " (seed " << seed
          << ")";
    }
  }
}

TEST(GhdTest, HwWithinThreeGhwPlusOne) {
  // §5.2 cites hw ≤ 3·ghw + 1 [2] as the best known bound. Our GHD search
  // only yields upper bounds on ghw, which makes the check conservative:
  // hw ≤ 3·ghw_found + 1 must certainly hold.
  for (uint64_t seed = 40; seed < 50; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = (seed % 2 == 0) ? MakeRandomCsp(rng, 11, 7, 2, 4)
                                       : MakeRandomCq(rng, 9, 4, 0.3);
    DetKDecomp det_k;
    OptimalRun hw_run = FindOptimalWidth(det_k, graph, 6);
    ASSERT_EQ(hw_run.outcome, Outcome::kYes) << "seed=" << seed;

    int ghw_found = -1;
    BalSepGhd ghd;
    for (int k = 1; k <= 6 && ghw_found < 0; ++k) {
      if (ghd.Solve(graph, k).outcome == Outcome::kYes) ghw_found = k;
    }
    ASSERT_GT(ghw_found, 0) << "seed=" << seed;
    EXPECT_LE(hw_run.width, 3 * ghw_found + 1) << "seed=" << seed;
  }
}

TEST(GhdTest, CancellationWorks) {
  util::CancelToken cancel;
  cancel.RequestStop();
  SolveOptions options;
  options.cancel = &cancel;
  BalSepGhd solver(options);
  EXPECT_EQ(solver.Solve(MakeClique(8), 2).outcome, Outcome::kCancelled);
}

TEST(GhdTest, EmptyGraph) {
  BalSepGhd solver;
  Hypergraph empty;
  EXPECT_EQ(solver.Solve(empty, 1).outcome, Outcome::kYes);
}

}  // namespace
}  // namespace htd
