#include "hypergraph/generators.h"

#include <gtest/gtest.h>

#include "hypergraph/gyo.h"

namespace htd {
namespace {

TEST(GeneratorsTest, PathShape) {
  Hypergraph path = MakePath(5);
  EXPECT_EQ(path.num_vertices(), 5);
  EXPECT_EQ(path.num_edges(), 4);
  EXPECT_FALSE(path.HasIsolatedVertices());
}

TEST(GeneratorsTest, CycleShape) {
  Hypergraph cycle = MakeCycle(10);
  EXPECT_EQ(cycle.num_vertices(), 10);
  EXPECT_EQ(cycle.num_edges(), 10);
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(cycle.edges_of_vertex(v).size(), 2u);
  }
}

TEST(GeneratorsTest, StarShape) {
  Hypergraph star = MakeStar(6);
  EXPECT_EQ(star.num_vertices(), 7);
  EXPECT_EQ(star.num_edges(), 6);
  EXPECT_EQ(star.edges_of_vertex(0).size(), 6u);  // centre added first
}

TEST(GeneratorsTest, GridShape) {
  Hypergraph grid = MakeGrid(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12);
  // Horizontal: 3*3, vertical: 2*4.
  EXPECT_EQ(grid.num_edges(), 17);
}

TEST(GeneratorsTest, CliqueShape) {
  Hypergraph clique = MakeClique(5);
  EXPECT_EQ(clique.num_vertices(), 5);
  EXPECT_EQ(clique.num_edges(), 10);
}

TEST(GeneratorsTest, HyperCycleShape) {
  Hypergraph hc = MakeHyperCycle(6, 4, 2);
  EXPECT_EQ(hc.num_edges(), 6);
  EXPECT_EQ(hc.num_vertices(), 12);  // 6 * (4 - 2)
  for (int e = 0; e < hc.num_edges(); ++e) {
    EXPECT_EQ(hc.edge_vertex_list(e).size(), 4u);
  }
  EXPECT_FALSE(hc.HasIsolatedVertices());
}

TEST(GeneratorsTest, CycleBundleShape) {
  Hypergraph bundle = MakeCycleBundle(3, 5);
  EXPECT_EQ(bundle.num_edges(), 15);
  EXPECT_EQ(bundle.num_vertices(), 1 + 3 * 4);
  EXPECT_FALSE(bundle.HasIsolatedVertices());
}

TEST(GeneratorsTest, AcyclicQueryIsAcyclic) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    Hypergraph query = MakeAcyclicQuery(rng, 12, 4);
    EXPECT_EQ(query.num_edges(), 12);
    EXPECT_TRUE(IsAlphaAcyclic(query)) << "seed " << seed;
    EXPECT_FALSE(query.HasIsolatedVertices());
  }
}

TEST(GeneratorsTest, RandomCqDeterministicPerSeed) {
  util::Rng rng1(99), rng2(99);
  Hypergraph a = MakeRandomCq(rng1, 20, 4, 0.3);
  Hypergraph b = MakeRandomCq(rng2, 20, 4, 0.3);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (int e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_vertex_list(e), b.edge_vertex_list(e));
  }
}

TEST(GeneratorsTest, RandomCqIsConnectedChain) {
  util::Rng rng(5);
  Hypergraph cq = MakeRandomCq(rng, 15, 4, 0.2);
  EXPECT_EQ(cq.num_edges(), 15);
  EXPECT_FALSE(cq.HasIsolatedVertices());
  // Consecutive atoms share a variable (chain backbone).
  for (int e = 0; e + 1 < cq.num_edges(); ++e) {
    EXPECT_TRUE(cq.edge_vertices(e).Intersects(cq.edge_vertices(e + 1)))
        << "edges " << e << " and " << e + 1;
  }
}

TEST(GeneratorsTest, RandomCspRespectsArityBounds) {
  util::Rng rng(17);
  Hypergraph csp = MakeRandomCsp(rng, 40, 25, 2, 5);
  EXPECT_EQ(csp.num_vertices(), 40);
  EXPECT_GE(csp.num_edges(), 25);  // plus isolated-vertex fixups
  for (int e = 0; e < 25; ++e) {
    size_t arity = csp.edge_vertex_list(e).size();
    EXPECT_GE(arity, 2u);
    EXPECT_LE(arity, 5u);
  }
  EXPECT_FALSE(csp.HasIsolatedVertices());
}

TEST(GeneratorsTest, AddRandomChordsGrowsEdgeCount) {
  util::Rng rng(3);
  Hypergraph base = MakePath(8);
  Hypergraph chorded = AddRandomChords(base, rng, 4);
  EXPECT_EQ(chorded.num_edges(), base.num_edges() + 4);
  EXPECT_EQ(chorded.num_vertices(), base.num_vertices());
}

TEST(GyoTest, PathIsAcyclic) {
  EXPECT_TRUE(IsAlphaAcyclic(MakePath(10)));
}

TEST(GyoTest, StarIsAcyclic) {
  EXPECT_TRUE(IsAlphaAcyclic(MakeStar(8)));
}

TEST(GyoTest, CycleIsCyclic) {
  for (int n : {3, 4, 5, 10, 25}) {
    EXPECT_FALSE(IsAlphaAcyclic(MakeCycle(n))) << "cycle " << n;
  }
}

TEST(GyoTest, TriangleWithCoveringEdgeIsAcyclic) {
  // {a,b},{b,c},{c,a},{a,b,c}: the big edge absorbs the triangle.
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  int c = graph.GetOrAddVertex("c");
  ASSERT_TRUE(graph.AddEdge("ab", {a, b}).ok());
  ASSERT_TRUE(graph.AddEdge("bc", {b, c}).ok());
  ASSERT_TRUE(graph.AddEdge("ca", {c, a}).ok());
  ASSERT_TRUE(graph.AddEdge("abc", {a, b, c}).ok());
  EXPECT_TRUE(IsAlphaAcyclic(graph));
}

TEST(GyoTest, GridIsCyclic) {
  EXPECT_FALSE(IsAlphaAcyclic(MakeGrid(3, 3)));
}

TEST(GyoTest, SingleEdgeIsAcyclic) {
  Hypergraph graph;
  int a = graph.GetOrAddVertex("a");
  int b = graph.GetOrAddVertex("b");
  ASSERT_TRUE(graph.AddEdge("R", {a, b}).ok());
  EXPECT_TRUE(IsAlphaAcyclic(graph));
  EXPECT_TRUE(BuildJoinTree(graph).has_value());
}

TEST(GyoTest, JoinTreeExistsIffAcyclic) {
  EXPECT_TRUE(BuildJoinTree(MakePath(6)).has_value());
  EXPECT_FALSE(BuildJoinTree(MakeCycle(6)).has_value());
}

TEST(GyoTest, JoinTreeHasSingleRoot) {
  auto tree = BuildJoinTree(MakePath(6));
  ASSERT_TRUE(tree.has_value());
  int roots = 0;
  for (int p : tree->parent) {
    if (p == -1) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

}  // namespace
}  // namespace htd
