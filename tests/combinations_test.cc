#include "util/combinations.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace htd::util {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialCapped(5, 0), 1);
  EXPECT_EQ(BinomialCapped(5, 1), 5);
  EXPECT_EQ(BinomialCapped(5, 2), 10);
  EXPECT_EQ(BinomialCapped(5, 5), 1);
  EXPECT_EQ(BinomialCapped(5, 6), 0);
  EXPECT_EQ(BinomialCapped(0, 0), 1);
  EXPECT_EQ(BinomialCapped(52, 5), 2598960);
}

TEST(BinomialTest, SaturatesInsteadOfOverflowing) {
  EXPECT_GT(BinomialCapped(200, 100), 0);
}

TEST(SubsetEnumeratorTest, EnumeratesAllSizes) {
  SubsetEnumerator en(4, 1, 2);
  std::vector<std::vector<int>> all;
  while (en.Next()) all.push_back(en.indices());
  // 4 singletons + 6 pairs, sizes ascending, lexicographic within size.
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0], (std::vector<int>{0}));
  EXPECT_EQ(all[3], (std::vector<int>{3}));
  EXPECT_EQ(all[4], (std::vector<int>{0, 1}));
  EXPECT_EQ(all[9], (std::vector<int>{2, 3}));
}

TEST(SubsetEnumeratorTest, SizeLargerThanUniverse) {
  SubsetEnumerator en(2, 1, 5);
  int count = 0;
  while (en.Next()) ++count;
  EXPECT_EQ(count, 3);  // {0},{1},{0,1}
}

TEST(SubsetEnumeratorTest, EmptyUniverse) {
  SubsetEnumerator en(0, 1, 3);
  EXPECT_FALSE(en.Next());
}

TEST(SubsetEnumeratorTest, MinSizeZeroYieldsEmptySetFirst) {
  SubsetEnumerator en(3, 0, 1);
  ASSERT_TRUE(en.Next());
  EXPECT_TRUE(en.indices().empty());
  ASSERT_TRUE(en.Next());
  EXPECT_EQ(en.indices(), (std::vector<int>{0}));
}

TEST(FixedFirstEnumeratorTest, PinsFirstElement) {
  FixedFirstEnumerator en(5, 2, 1);
  std::vector<std::vector<int>> all;
  while (en.Next()) all.push_back(en.indices());
  EXPECT_EQ(all, (std::vector<std::vector<int>>{{1, 2}, {1, 3}, {1, 4}}));
}

TEST(FixedFirstEnumeratorTest, SingletonSize) {
  FixedFirstEnumerator en(3, 1, 2);
  ASSERT_TRUE(en.Next());
  EXPECT_EQ(en.indices(), (std::vector<int>{2}));
  EXPECT_FALSE(en.Next());
}

TEST(FixedFirstEnumeratorTest, NoRoomForSubset) {
  FixedFirstEnumerator en(4, 3, 2);  // needs {2,3,?}: impossible
  EXPECT_FALSE(en.Next());
}

TEST(ChunksTest, ChunksPartitionTheSubsetSpace) {
  const int n = 7, k = 3, limit = 4;
  std::set<std::vector<int>> from_chunks;
  for (const SubsetChunk& chunk : MakeSubsetChunks(n, k, limit)) {
    FixedFirstEnumerator en(n, chunk.size, chunk.first);
    while (en.Next()) {
      EXPECT_TRUE(from_chunks.insert(en.indices()).second)
          << "duplicate subset across chunks";
    }
  }
  // Reference: all subsets of size 1..k whose minimum is < limit.
  SubsetEnumerator en(n, 1, k);
  std::set<std::vector<int>> reference;
  while (en.Next()) {
    if (en.indices()[0] < limit) reference.insert(en.indices());
  }
  EXPECT_EQ(from_chunks, reference);
}

TEST(ChunksTest, FirstLimitZeroMeansNoChunks) {
  EXPECT_TRUE(MakeSubsetChunks(5, 2, 0).empty());
}

TEST(ChunksTest, CountMatchesBinomials) {
  // With limit == n, chunk enumeration covers all subsets of sizes 1..k.
  const int n = 9, k = 4;
  long count = 0;
  for (const SubsetChunk& chunk : MakeSubsetChunks(n, k, n)) {
    FixedFirstEnumerator en(n, chunk.size, chunk.first);
    while (en.Next()) ++count;
  }
  long expected = 0;
  for (int s = 1; s <= k; ++s) expected += BinomialCapped(n, s);
  EXPECT_EQ(count, expected);
}

}  // namespace
}  // namespace htd::util
