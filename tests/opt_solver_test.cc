#include "baselines/opt_solver.h"

#include <gtest/gtest.h>

#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace htd {
namespace {

TEST(OptSolverTest, AcyclicFamiliesHaveWidthOne) {
  OptimalSolver solver;
  for (const Hypergraph& graph : {MakePath(10), MakeStar(7)}) {
    OptimalRun run = solver.FindOptimal(graph);
    ASSERT_EQ(run.outcome, Outcome::kYes);
    EXPECT_EQ(run.width, 1);
    ASSERT_TRUE(run.decomposition.has_value());
    Validation validation = ValidateHdWithWidth(graph, *run.decomposition, 1);
    EXPECT_TRUE(validation.ok) << validation.error;
  }
}

TEST(OptSolverTest, AcyclicQueryJoinTreeHd) {
  OptimalSolver solver;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeAcyclicQuery(rng, 15, 4);
    OptimalRun run = solver.FindOptimal(graph);
    ASSERT_EQ(run.outcome, Outcome::kYes) << "seed " << seed;
    EXPECT_EQ(run.width, 1);
    Validation validation = ValidateHdWithWidth(graph, *run.decomposition, 1);
    EXPECT_TRUE(validation.ok) << validation.error << " seed " << seed;
  }
}

TEST(OptSolverTest, CycleOptimalWidthTwo) {
  OptimalSolver solver;
  OptimalRun run = solver.FindOptimal(MakeCycle(9));
  ASSERT_EQ(run.outcome, Outcome::kYes);
  EXPECT_EQ(run.width, 2);
}

TEST(OptSolverTest, CliqueWidthsMatchTheory) {
  // hw(K_n) = ceil(n/2): one bag of all vertices built from ceil(n/2)
  // disjoint edges is optimal for cliques.
  OptimalSolver solver;
  EXPECT_EQ(solver.FindOptimal(MakeClique(4)).width, 2);
  EXPECT_EQ(solver.FindOptimal(MakeClique(5)).width, 3);
  EXPECT_EQ(solver.FindOptimal(MakeClique(6)).width, 3);
}

TEST(OptSolverTest, AgreesWithLogKProtocol) {
  for (uint64_t seed = 40; seed < 50; ++seed) {
    util::Rng rng(seed);
    Hypergraph graph = MakeRandomCsp(rng, 12, 8, 2, 4);
    OptimalSolver exact;
    OptimalRun exact_run = exact.FindOptimal(graph);
    LogKDecomp log_k;
    OptimalRun protocol_run = FindOptimalWidth(log_k, graph, 10);
    ASSERT_EQ(exact_run.outcome, Outcome::kYes);
    ASSERT_EQ(protocol_run.outcome, Outcome::kYes);
    EXPECT_EQ(exact_run.width, protocol_run.width) << "seed " << seed;
  }
}

TEST(OptSolverTest, EmptyGraphWidthZero) {
  OptimalSolver solver;
  Hypergraph empty;
  OptimalRun run = solver.FindOptimal(empty);
  EXPECT_EQ(run.outcome, Outcome::kYes);
  EXPECT_EQ(run.width, 0);
}

TEST(OptSolverTest, RespectsMaxK) {
  OptimalSolver solver;
  OptimalRun run = solver.FindOptimal(MakeClique(8), /*max_k=*/2);
  EXPECT_EQ(run.outcome, Outcome::kNo);  // hw(K8) = 4 > 2
}

TEST(OptSolverTest, CancellationPropagates) {
  util::CancelToken cancel;
  cancel.RequestStop();
  SolveOptions options;
  options.cancel = &cancel;
  OptimalSolver solver(options);
  OptimalRun run = solver.FindOptimal(MakeClique(10));
  EXPECT_EQ(run.outcome, Outcome::kCancelled);
}

TEST(FindOptimalWidthTest, ProtocolProvesOptimality) {
  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, MakeCycle(8), 10);
  ASSERT_EQ(run.outcome, Outcome::kYes);
  EXPECT_EQ(run.width, 2);  // k=1 probed and refuted first
  ASSERT_TRUE(run.decomposition.has_value());
  EXPECT_LE(run.decomposition->Width(), 2);
}

TEST(FindOptimalWidthTest, ExceedingMaxKReportsNo) {
  LogKDecomp solver;
  OptimalRun run = FindOptimalWidth(solver, MakeClique(8), 2);
  EXPECT_EQ(run.outcome, Outcome::kNo);
}

}  // namespace
}  // namespace htd
