// Integration tests built directly on the paper's worked material:
// the Appendix B walkthrough (10-cycle at k = 2) and the claims of §4.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "decomp/components.h"
#include "decomp/validation.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"

namespace htd {
namespace {

// The hypergraph of Appendix B, in the exact notation of the paper.
util::StatusOr<Hypergraph> PaperHypergraph() {
  return ParseHyperBench(
      "R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5), R5(x5,x6),"
      "R6(x6,x7), R7(x7,x8), R8(x8,x9), R9(x9,x10), R10(x10,x1).");
}

TEST(PaperExampleTest, HypergraphShape) {
  auto graph = PaperHypergraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 10);
  EXPECT_EQ(graph->num_edges(), 10);
}

TEST(PaperExampleTest, EverySolverFindsWidthTwo) {
  auto graph = PaperHypergraph();
  ASSERT_TRUE(graph.ok());
  DetKDecomp det_k;
  LogKDecomp log_k;
  LogKDecompBasic basic;
  std::unique_ptr<HdSolver> hybrid = MakeDefaultHybrid();
  for (HdSolver* solver :
       std::vector<HdSolver*>{&det_k, &log_k, &basic, hybrid.get()}) {
    EXPECT_EQ(solver->Solve(*graph, 1).outcome, Outcome::kNo) << solver->name();
    EXPECT_EQ(solver->Solve(*graph, 2).outcome, Outcome::kYes) << solver->name();
  }
}

TEST(PaperExampleTest, Call1ComponentStructure) {
  // Call 1 of Appendix B: λp = {R1, R5} splits H' = {R3..R10} into
  // c1 = {R3, R4} and c2 = {R6..R10}; the walkthrough then picks c2 as
  // comp_down (the oversized component of the paper's discussion).
  auto graph = PaperHypergraph();
  ASSERT_TRUE(graph.ok());
  SpecialEdgeRegistry registry(graph->num_vertices());
  ExtendedSubhypergraph sub;
  sub.edges = util::DynamicBitset(graph->num_edges());
  for (int e = 2; e <= 9; ++e) sub.edges.Set(e);  // R3..R10
  sub.edge_count = 8;

  util::DynamicBitset separator =
      graph->edge_vertices(0) | graph->edge_vertices(4);  // ⋃{R1, R5}
  ComponentSplit split = SplitComponents(*graph, registry, sub, separator);
  ASSERT_EQ(split.components.size(), 2u);
  int big = split.components[0].size() > split.components[1].size() ? 0 : 1;
  EXPECT_EQ(split.components[big].size(), 5);      // {R6..R10}
  EXPECT_EQ(split.components[1 - big].size(), 2);  // {R3, R4}
  // R5 is covered by the separator; R6..R10 are the oversized side only if
  // measured against H' of size 8: 5 * 2 > 8 holds.
  EXPECT_EQ(split.FindOversized(sub.size()), big);
}

TEST(PaperExampleTest, LogRecursionBoundOfTheorem41) {
  // Theorem 4.1 bounds the recursion depth by O(log |E|); our halving
  // re-check makes ceil(log2 m) + 1 a hard bound.
  auto graph = PaperHypergraph();
  ASSERT_TRUE(graph.ok());
  LogKDecomp solver;
  SolveResult result = solver.Solve(*graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_LE(result.stats.max_recursion_depth, 5);  // ceil(log2 10) + 1 = 5
}

TEST(PaperExampleTest, WidthTwoHdHasPaperStructure) {
  // The paper's HD (Figure 2a) has 8 nodes of width 2. Ours may differ in
  // shape but must match in width and validate, and no node may be wider
  // than 2.
  auto graph = PaperHypergraph();
  ASSERT_TRUE(graph.ok());
  LogKDecomp solver;
  SolveResult result = solver.Solve(*graph, 2);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  const Decomposition& decomp = *result.decomposition;
  Validation validation = ValidateHd(*graph, decomp);
  ASSERT_TRUE(validation.ok) << validation.error;
  EXPECT_EQ(decomp.Width(), 2);
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    EXPECT_LE(decomp.node(u).lambda.size(), 2u);
    EXPECT_GE(decomp.node(u).lambda.size(), 1u);
  }
}

TEST(PaperExampleTest, GrowingCyclesKeepWidthTwoAndLogDepth) {
  LogKDecomp solver;
  for (int n : {20, 40, 80}) {
    Hypergraph cycle = MakeCycle(n);
    SolveResult result = solver.Solve(cycle, 2);
    ASSERT_EQ(result.outcome, Outcome::kYes) << n;
    int bound = 1;
    while ((1 << bound) < n) ++bound;  // ceil(log2 n)
    EXPECT_LE(result.stats.max_recursion_depth, bound + 1) << n;
  }
}

}  // namespace
}  // namespace htd
