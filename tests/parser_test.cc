#include "hypergraph/parser.h"

#include <gtest/gtest.h>

#include "hypergraph/writer.h"

namespace htd {
namespace {

TEST(HyperBenchParserTest, BasicQuery) {
  auto result = ParseHyperBench("R1(x1,x2),\nR2(x2,x3).\n");
  ASSERT_TRUE(result.ok()) << result.status().message();
  const Hypergraph& graph = *result;
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.num_vertices(), 3);
  EXPECT_EQ(graph.edge_name(0), "R1");
  EXPECT_EQ(graph.FindVertex("x2"), 1);
}

TEST(HyperBenchParserTest, SharedVerticesAreMerged) {
  auto result = ParseHyperBench("a(x,y), b(y,z), c(z,x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_vertices(), 3);
  EXPECT_EQ(result->num_edges(), 3);
}

TEST(HyperBenchParserTest, CommentsAndWhitespace) {
  auto result = ParseHyperBench(
      "% a comment line\n"
      "  R1 ( x1 , x2 ) ,  % trailing comment\n"
      "R2(x2,x3).");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->num_edges(), 2);
}

TEST(HyperBenchParserTest, NewlineSeparatedEdgesWithoutCommas) {
  auto result = ParseHyperBench("R1(x,y)\nR2(y,z)\n");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->num_edges(), 2);
}

TEST(HyperBenchParserTest, RichIdentifiers) {
  auto result = ParseHyperBench("rel:sub-1.2(VAR_A,VAR['x']).");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->num_edges(), 1);
  EXPECT_EQ(result->edge_vertex_list(0).size(), 2u);
}

TEST(HyperBenchParserTest, ErrorMissingParen) {
  auto result = ParseHyperBench("R1 x1,x2).");
  EXPECT_FALSE(result.ok());
}

TEST(HyperBenchParserTest, ErrorEmptyInput) {
  EXPECT_FALSE(ParseHyperBench("").ok());
  EXPECT_FALSE(ParseHyperBench("% only comments\n").ok());
}

TEST(HyperBenchParserTest, ErrorUnclosedEdge) {
  EXPECT_FALSE(ParseHyperBench("R1(x1,x2").ok());
}

TEST(HyperBenchParserTest, ErrorTrailingGarbageAfterDot) {
  EXPECT_FALSE(ParseHyperBench("R1(x). R2(y).").ok());
}

TEST(HyperBenchParserTest, EmptyParensRejected) {
  // An edge with no vertices violates the non-empty-edge assumption.
  EXPECT_FALSE(ParseHyperBench("R1().").ok());
}

TEST(PaceParserTest, BasicInstance) {
  auto result = ParsePace(
      "c example instance\n"
      "p htd 4 3\n"
      "1 1 2\n"
      "2 2 3\n"
      "3 3 4\n");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->num_vertices(), 4);
  EXPECT_EQ(result->num_edges(), 3);
  // PACE is 1-based; internal ids are 0-based.
  EXPECT_TRUE(result->edge_vertices(0).Test(0));
  EXPECT_TRUE(result->edge_vertices(0).Test(1));
}

TEST(PaceParserTest, ErrorMissingHeader) {
  EXPECT_FALSE(ParsePace("1 1 2\n").ok());
}

TEST(PaceParserTest, ErrorVertexOutOfRange) {
  EXPECT_FALSE(ParsePace("p htd 2 1\n1 1 5\n").ok());
}

TEST(PaceParserTest, ErrorEdgeCountMismatch) {
  EXPECT_FALSE(ParsePace("p htd 3 2\n1 1 2\n").ok());
}

TEST(PaceParserTest, ErrorBadFormatTag) {
  EXPECT_FALSE(ParsePace("p tw 3 2\n1 1 2\n2 2 3\n").ok());
}

TEST(AutoParserTest, DetectsPace) {
  auto result = ParseAuto("p htd 2 1\n1 1 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 1);
}

TEST(AutoParserTest, DetectsHyperBench) {
  auto result = ParseAuto("R(x,y).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 1);
}

TEST(ParseFileTest, MissingFile) {
  auto result = ParseFile("/nonexistent/path/to/instance.hg");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(WriterTest, HyperBenchRoundTrip) {
  auto original = ParseHyperBench("R1(a,b),R2(b,c,d),R3(d,a).");
  ASSERT_TRUE(original.ok());
  auto reparsed = ParseHyperBench(WriteHyperBench(*original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->num_edges(), original->num_edges());
  EXPECT_EQ(reparsed->num_vertices(), original->num_vertices());
  for (int e = 0; e < original->num_edges(); ++e) {
    EXPECT_EQ(reparsed->edge_name(e), original->edge_name(e));
    EXPECT_EQ(reparsed->edge_vertex_list(e).size(),
              original->edge_vertex_list(e).size());
  }
}

TEST(WriterTest, PaceRoundTrip) {
  auto original = ParseHyperBench("R1(a,b),R2(b,c,d).");
  ASSERT_TRUE(original.ok());
  auto reparsed = ParsePace(WritePace(*original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->num_edges(), 2);
  EXPECT_EQ(reparsed->num_vertices(), 4);
}

}  // namespace
}  // namespace htd
