// FHD solver (fractional/fhd_solver.*): soundness (valid GHDs within the
// fractional budget), the K5 witness where fhw < hw, and monotonicity.
#include <gtest/gtest.h>

#include "baselines/det_k_decomp.h"
#include "decomp/validation.h"
#include "fractional/cover.h"
#include "fractional/fhd_solver.h"
#include "hypergraph/generators.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace htd::fractional {
namespace {

constexpr double kTol = 1e-6;

FhdOptions Validated() {
  FhdOptions options;
  options.base.validate_result = true;
  return options;
}

TEST(FhdSolverTest, CliqueK5BeatsIntegralWidth) {
  // fhw(K5) = 5/2 via the single bag V(K5); hw(K5) = 3. The FHD solver must
  // accept w = 2.5 where every integral solver needs k = 3.
  Hypergraph clique = MakeClique(5);

  DetKDecomp integral;
  EXPECT_EQ(integral.Solve(clique, 2).outcome, Outcome::kNo);
  EXPECT_EQ(integral.Solve(clique, 3).outcome, Outcome::kYes);

  FhdSolver solver(Validated());
  FhdResult result = solver.Solve(clique, 2.5);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_NEAR(result.fractional_width, 2.5, kTol);
  Validation validation = ValidateGhd(clique, *result.decomposition);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(FhdSolverTest, CliqueRejectsBelowHalfN) {
  Hypergraph clique = MakeClique(5);
  FhdSolver solver(Validated());
  // Any bag covering an edge {u, v} plus the connecting structure forces
  // rho* >= ... in particular w = 2 is infeasible for K5 within any bag
  // family: fhw(K5) = 2.5.
  EXPECT_EQ(solver.Solve(clique, 2.0).outcome, Outcome::kNo);
}

TEST(FhdSolverTest, OddCycleNeedsWidthTwo) {
  Hypergraph cycle = MakeCycle(9);
  FhdSolver solver(Validated());
  // Bags that split a long cycle contain two disjoint binary edges: rho* = 2.
  // (The base case does not apply: rho*(V(C9)) = 4.5.)
  EXPECT_EQ(solver.Solve(cycle, 1.5).outcome, Outcome::kNo);
  FhdResult result = solver.Solve(cycle, 2.0);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_LE(result.fractional_width, 2.0 + kTol);
}

TEST(FhdSolverTest, AcyclicInstanceIsWidthOne) {
  Hypergraph path = MakePath(8);
  FhdSolver solver(Validated());
  FhdResult result = solver.Solve(path, 1.0);
  ASSERT_EQ(result.outcome, Outcome::kYes);
  EXPECT_NEAR(result.fractional_width, 1.0, kTol);
}

TEST(FhdSolverTest, EdgelessGraphTrivial) {
  Hypergraph empty;
  FhdSolver solver;
  FhdResult result = solver.Solve(empty, 1.0);
  EXPECT_EQ(result.outcome, Outcome::kYes);
}

TEST(FhdSolverTest, CancellationStopsSearch) {
  Hypergraph clique = MakeClique(9);
  util::CancelToken token;
  token.RequestStop();
  FhdOptions options;
  options.base.cancel = &token;
  FhdSolver solver(options);
  EXPECT_EQ(solver.Solve(clique, 2.0).outcome, Outcome::kCancelled);
}

TEST(FhdSolverTest, RespectsExplicitLambdaBound) {
  // With max_lambda = 1 only single-edge bags (plus the base case) exist:
  // the cycle C6 cannot be decomposed that way at width 1.
  Hypergraph cycle = MakeCycle(6);
  FhdOptions options;
  options.max_lambda = 1;
  FhdSolver narrow(options);
  EXPECT_EQ(narrow.Solve(cycle, 1.0).outcome, Outcome::kNo);
}

class FhdPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FhdPropertyTest, SoundMonotoneAndBelowIntegralWidth) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  Hypergraph graph = (seed % 2 == 0) ? MakeRandomCsp(rng, 11, 7, 2, 4)
                                     : MakeRandomCq(rng, 8, 4, 0.3);

  DetKDecomp integral;
  OptimalRun run = FindOptimalWidth(integral, graph, 6);
  ASSERT_EQ(run.outcome, Outcome::kYes) << "seed=" << seed;

  // The integral optimum is always fractionally feasible.
  FhdSolver solver(Validated());
  FhdResult at_hw = solver.Solve(graph, static_cast<double>(run.width));
  ASSERT_EQ(at_hw.outcome, Outcome::kYes) << "seed=" << seed;
  EXPECT_LE(at_hw.fractional_width, run.width + kTol) << "seed=" << seed;
  Validation validation = ValidateGhd(graph, *at_hw.decomposition);
  EXPECT_TRUE(validation.ok) << validation.error << " seed=" << seed;

  // Monotonicity: a half-unit more budget cannot flip yes into no.
  FhdResult wider = solver.Solve(graph, run.width + 0.5);
  EXPECT_EQ(wider.outcome, Outcome::kYes) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FhdPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htd::fractional
