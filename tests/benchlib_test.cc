#include "benchlib/corpus.h"

#include <gtest/gtest.h>

#include <map>

#include "benchlib/runner.h"
#include "benchlib/table.h"
#include "core/log_k_decomp.h"
#include "hypergraph/generators.h"

namespace htd::bench {
namespace {

TEST(CorpusTest, DeterministicAcrossBuilds) {
  CorpusConfig config;
  auto a = BuildHyperBenchLikeCorpus(config);
  auto b = BuildHyperBenchLikeCorpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].graph.num_edges(), b[i].graph.num_edges());
    EXPECT_EQ(a[i].graph.num_vertices(), b[i].graph.num_vertices());
  }
}

TEST(CorpusTest, StratificationMatchesHyperBenchShape) {
  auto corpus = BuildHyperBenchLikeCorpus({});
  std::map<std::pair<Origin, SizeBin>, int> cells;
  for (const auto& instance : corpus) {
    ++cells[{instance.origin, BinForEdgeCount(instance.graph.num_edges())}];
  }
  // Every Table 1 group except Application/>100 must be populated
  // (HyperBench has no application instances above 100 edges).
  for (Origin origin : {Origin::kApplication, Origin::kSynthetic}) {
    for (SizeBin bin : {SizeBin::kUpTo10, SizeBin::k10To50, SizeBin::k50To75,
                        SizeBin::k75To100}) {
      EXPECT_GT((cells[{origin, bin}]), 0)
          << OriginName(origin) << " / " << SizeBinName(bin);
    }
  }
  EXPECT_GT((cells[{Origin::kSynthetic, SizeBin::kOver100}]), 0);
  EXPECT_EQ((cells[{Origin::kApplication, SizeBin::kOver100}]), 0);
}

TEST(CorpusTest, KnownWidthsAreCorrectWhereStated) {
  auto corpus = BuildHyperBenchLikeCorpus({});
  LogKDecomp solver;
  int checked = 0;
  for (const auto& instance : corpus) {
    if (!instance.known_width.has_value() || instance.graph.num_edges() > 40) {
      continue;
    }
    OptimalRun run = FindOptimalWidth(solver, instance.graph, 10);
    ASSERT_EQ(run.outcome, Outcome::kYes) << instance.name;
    EXPECT_EQ(run.width, *instance.known_width) << instance.name;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(CorpusTest, ScaleMultipliesInstances) {
  CorpusConfig small, large;
  large.scale = 2;
  EXPECT_EQ(BuildHyperBenchLikeCorpus(large).size(),
            2 * BuildHyperBenchLikeCorpus(small).size());
}

TEST(CorpusTest, NoIsolatedVertices) {
  for (const auto& instance : BuildHyperBenchLikeCorpus({})) {
    EXPECT_FALSE(instance.graph.HasIsolatedVertices()) << instance.name;
  }
}

TEST(CorpusTest, SelectLargeSubsetFilters) {
  auto corpus = BuildHyperBenchLikeCorpus({});
  std::vector<int> widths(corpus.size(), -1);
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].known_width.has_value()) widths[i] = *corpus[i].known_width;
  }
  auto selected = SelectLargeSubset(corpus, widths);
  EXPECT_FALSE(selected.empty());
  for (int i : selected) {
    EXPECT_GT(corpus[i].graph.num_edges(), 50);
    ASSERT_GE(widths[i], 1);
    EXPECT_LE(widths[i], 6);
  }
}

TEST(RunnerTest, SolvesEasyInstanceWithinTimeout) {
  RunConfig config;
  config.timeout_seconds = 10.0;
  RunRecord record = RunOptimalWithTimeout(
      [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
        return std::make_unique<LogKDecomp>(options);
      },
      MakeCycle(8), config);
  EXPECT_TRUE(record.solved);
  EXPECT_EQ(record.width, 2);
  EXPECT_LT(record.seconds, config.timeout_seconds);
}

TEST(RunnerTest, TimesOutOnHardInstance) {
  RunConfig config;
  config.timeout_seconds = 0.05;
  config.max_width = 10;
  RunRecord record = RunOptimalWithTimeout(
      [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
        return std::make_unique<LogKDecomp>(options);
      },
      MakeClique(14), config);
  EXPECT_FALSE(record.solved);
  EXPECT_FALSE(record.decided_no);
}

TEST(RunnerTest, DecisionRun) {
  RunConfig config;
  config.timeout_seconds = 10.0;
  auto factory = [](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
    return std::make_unique<LogKDecomp>(options);
  };
  EXPECT_EQ(RunDecisionWithTimeout(factory, MakeCycle(8), 2, config), Outcome::kYes);
  EXPECT_EQ(RunDecisionWithTimeout(factory, MakeCycle(8), 1, config), Outcome::kNo);
}

TEST(RunnerTest, ExactSolverRun) {
  RunConfig config;
  config.timeout_seconds = 10.0;
  RunRecord record = RunExactWithTimeout(MakeCycle(9), config);
  EXPECT_TRUE(record.solved);
  EXPECT_EQ(record.width, 2);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable table;
  table.AddRow({"method", "#solved", "avg"});
  table.AddRow({"log-k", "3102", "30.5"});
  std::string rendered = table.Render();
  EXPECT_NE(rendered.find("method"), std::string::npos);
  EXPECT_NE(rendered.find("3102"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(TableTest, Fmt1Rounds) {
  EXPECT_EQ(Fmt1(30.46), "30.5");
  EXPECT_EQ(Fmt1(0.0), "0.0");
}

}  // namespace
}  // namespace htd::bench
