#include "decomp/fragment.h"

#include <gtest/gtest.h>

#include "hypergraph/generators.h"

namespace htd {
namespace {

TEST(FragmentTest, AddNodesAndConvert) {
  Fragment fragment;
  int root = fragment.AddNode({0}, util::DynamicBitset::FromIndices(4, {0, 1}));
  int child = fragment.AddNode({1}, util::DynamicBitset::FromIndices(4, {1, 2}));
  fragment.SetRoot(root);
  fragment.AddChild(root, child);
  Decomposition decomp = fragment.ToDecomposition();
  EXPECT_EQ(decomp.num_nodes(), 2);
  EXPECT_EQ(decomp.node(decomp.root()).children.size(), 1u);
}

TEST(FragmentTest, SpecialLeafBookkeeping) {
  Fragment fragment;
  int root = fragment.AddNode({0}, util::DynamicBitset::FromIndices(4, {0, 1}));
  int leaf = fragment.AddSpecialLeaf(7, util::DynamicBitset::FromIndices(4, {1}));
  fragment.SetRoot(root);
  fragment.AddChild(root, leaf);
  EXPECT_EQ(fragment.CountSpecialLeaves(), 1);
  EXPECT_EQ(fragment.FindSpecialLeaf(7), leaf);
  EXPECT_EQ(fragment.FindSpecialLeaf(8), -1);
  fragment.ReplaceSpecialLeaf(leaf, {2, 1});
  EXPECT_EQ(fragment.CountSpecialLeaves(), 0);
  EXPECT_EQ(fragment.node(leaf).lambda, (std::vector<int>{1, 2}));
}

TEST(FragmentTest, GraftCopiesSubtree) {
  Fragment target;
  int root = target.AddNode({0}, util::DynamicBitset::FromIndices(4, {0}));
  target.SetRoot(root);

  Fragment other;
  int oroot = other.AddNode({1}, util::DynamicBitset::FromIndices(4, {1}));
  int ochild = other.AddNode({2}, util::DynamicBitset::FromIndices(4, {2}));
  other.SetRoot(oroot);
  other.AddChild(oroot, ochild);

  int new_root = target.Graft(other, root);
  EXPECT_EQ(target.num_nodes(), 3);
  EXPECT_EQ(target.node(root).children, (std::vector<int>{new_root}));
  ASSERT_EQ(target.node(new_root).children.size(), 1u);
  int new_child = target.node(new_root).children[0];
  EXPECT_EQ(target.node(new_child).lambda, (std::vector<int>{2}));
}

TEST(FragmentTest, TruncateRollsBack) {
  Fragment fragment;
  int root = fragment.AddNode({0}, util::DynamicBitset(4));
  fragment.SetRoot(root);
  int checkpoint = fragment.num_nodes();
  int extra = fragment.AddNode({1}, util::DynamicBitset(4));
  fragment.AddChild(root, extra);
  fragment.TruncateTo(checkpoint);
  EXPECT_EQ(fragment.num_nodes(), 1);
  EXPECT_TRUE(fragment.node(root).children.empty());
  EXPECT_EQ(fragment.root(), root);
}

TEST(FragmentTest, TruncateClearsRootIfDropped) {
  Fragment fragment;
  int root = fragment.AddNode({0}, util::DynamicBitset(4));
  fragment.SetRoot(root);
  fragment.TruncateTo(0);
  EXPECT_EQ(fragment.root(), -1);
  EXPECT_EQ(fragment.num_nodes(), 0);
}

TEST(FragmentTest, MaterializeSpecialLeavesUsesWitness) {
  SpecialEdgeRegistry registry(5);
  int s = registry.Add(util::DynamicBitset::FromIndices(5, {1, 2}), {3, 1});
  Fragment fragment;
  int root = fragment.AddNode({0}, util::DynamicBitset::FromIndices(5, {0, 1, 2}));
  int leaf = fragment.AddSpecialLeaf(s, registry.vertices(s));
  fragment.SetRoot(root);
  fragment.AddChild(root, leaf);
  fragment.MaterializeSpecialLeaves(registry);
  EXPECT_EQ(fragment.CountSpecialLeaves(), 0);
  EXPECT_EQ(fragment.node(leaf).lambda, (std::vector<int>{1, 3}));
}

TEST(FragmentTest, RerootPreservesTreeShape) {
  // Path root - a - b; reroot at b: children lists reverse.
  Fragment fragment;
  int r = fragment.AddNode({0}, util::DynamicBitset(4));
  int a = fragment.AddNode({1}, util::DynamicBitset(4));
  int b = fragment.AddNode({2}, util::DynamicBitset(4));
  fragment.SetRoot(r);
  fragment.AddChild(r, a);
  fragment.AddChild(a, b);
  fragment.RerootAt(b);
  EXPECT_EQ(fragment.root(), b);
  EXPECT_EQ(fragment.node(b).children, (std::vector<int>{a}));
  EXPECT_EQ(fragment.node(a).children, (std::vector<int>{r}));
  EXPECT_TRUE(fragment.node(r).children.empty());
  // Still convertible: 3 nodes, depth 3.
  Decomposition decomp = fragment.ToDecomposition();
  EXPECT_EQ(decomp.Depth(), 3);
}

TEST(FragmentTest, RerootAtCurrentRootIsNoOp) {
  Fragment fragment;
  int r = fragment.AddNode({0}, util::DynamicBitset(4));
  int a = fragment.AddNode({1}, util::DynamicBitset(4));
  fragment.SetRoot(r);
  fragment.AddChild(r, a);
  fragment.RerootAt(r);
  EXPECT_EQ(fragment.root(), r);
  EXPECT_EQ(fragment.node(r).children, (std::vector<int>{a}));
}

}  // namespace
}  // namespace htd
