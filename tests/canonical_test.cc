// Canonical-form invariance: renaming vertices, permuting edges, and
// reordering vertices inside edges must not change the fingerprint, while
// structurally different hypergraphs must separate.
#include "service/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hypergraph/generators.h"
#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace htd::service {
namespace {

// Builds a hypergraph from named edge lists, adding vertices in first-use
// order — so permuting the edge list also permutes the vertex numbering.
Hypergraph FromEdges(const std::vector<std::vector<std::string>>& edges) {
  Hypergraph graph;
  for (const auto& edge : edges) {
    std::vector<int> ids;
    for (const auto& name : edge) ids.push_back(graph.GetOrAddVertex(name));
    auto added = graph.AddEdge(ids);
    EXPECT_TRUE(added.ok());
  }
  return graph;
}

// Rebuilds `graph` with vertices renamed via `rename`, edges visited in
// `edge_order`, and each edge's vertex list rotated.
Hypergraph Scramble(const Hypergraph& graph,
                    const std::vector<std::string>& rename,
                    const std::vector<int>& edge_order) {
  Hypergraph out;
  for (int e : edge_order) {
    std::vector<int> members = graph.edge_vertex_list(e);
    std::rotate(members.begin(), members.begin() + members.size() / 2,
                members.end());
    std::vector<int> ids;
    for (int v : members) ids.push_back(out.GetOrAddVertex(rename[v]));
    auto added = out.AddEdge(ids);
    EXPECT_TRUE(added.ok());
  }
  return out;
}

std::vector<std::string> ShuffledNames(int n, uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back("w" + std::to_string(i));
  util::Rng rng(seed);
  for (int i = n - 1; i > 0; --i) {
    std::swap(names[i], names[rng.UniformInt(0, i)]);
  }
  return names;
}

std::vector<int> ShuffledOrder(int m, uint64_t seed) {
  std::vector<int> order(m);
  for (int i = 0; i < m; ++i) order[i] = i;
  util::Rng rng(seed);
  for (int i = m - 1; i > 0; --i) {
    std::swap(order[i], order[rng.UniformInt(0, i)]);
  }
  return order;
}

TEST(CanonicalTest, FingerprintIsDeterministic) {
  Hypergraph a = MakeCycle(10);
  Hypergraph b = MakeCycle(10);
  EXPECT_EQ(CanonicalFingerprint(a), CanonicalFingerprint(b));
  EXPECT_EQ(CanonicalString(ComputeCanonicalForm(a)),
            CanonicalString(ComputeCanonicalForm(b)));
}

TEST(CanonicalTest, InvariantUnderVertexRenaming) {
  Hypergraph graph = FromEdges({{"a", "b", "c"}, {"c", "d"}, {"d", "e", "a"}});
  std::vector<int> identity = {0, 1, 2};
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Hypergraph renamed =
        Scramble(graph, ShuffledNames(graph.num_vertices(), seed), identity);
    EXPECT_EQ(CanonicalFingerprint(graph), CanonicalFingerprint(renamed))
        << "seed " << seed;
  }
}

TEST(CanonicalTest, InvariantUnderEdgePermutation) {
  Hypergraph graph = MakeGrid(3, 4);
  std::vector<std::string> identity;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    identity.push_back(graph.vertex_name(v));
  }
  for (uint64_t seed : {5u, 6u, 7u}) {
    Hypergraph permuted =
        Scramble(graph, identity, ShuffledOrder(graph.num_edges(), seed));
    EXPECT_EQ(CanonicalFingerprint(graph), CanonicalFingerprint(permuted))
        << "seed " << seed;
  }
}

TEST(CanonicalTest, InvariantUnderFullScramble) {
  util::Rng rng(20220612);
  for (int trial = 0; trial < 10; ++trial) {
    Hypergraph graph = MakeRandomCq(rng, 12, 4, 0.3);
    Hypergraph scrambled = Scramble(
        graph, ShuffledNames(graph.num_vertices(), 100 + trial),
        ShuffledOrder(graph.num_edges(), 200 + trial));
    EXPECT_EQ(CanonicalFingerprint(graph), CanonicalFingerprint(scrambled))
        << "trial " << trial;
    EXPECT_EQ(CanonicalString(ComputeCanonicalForm(graph)),
              CanonicalString(ComputeCanonicalForm(scrambled)))
        << "trial " << trial;
  }
}

TEST(CanonicalTest, SymmetricGraphsScrambleToSameForm) {
  // Every vertex of a cycle is automorphic; individualisation must produce
  // the same form no matter which representative the scramble promotes.
  Hypergraph cycle = MakeCycle(12);
  Hypergraph scrambled = Scramble(cycle, ShuffledNames(12, 99),
                                  ShuffledOrder(cycle.num_edges(), 77));
  EXPECT_EQ(CanonicalString(ComputeCanonicalForm(cycle)),
            CanonicalString(ComputeCanonicalForm(scrambled)));
}

TEST(CanonicalTest, SeparatesDifferentStructures) {
  std::vector<Fingerprint> prints = {
      CanonicalFingerprint(MakePath(8)),    CanonicalFingerprint(MakeCycle(8)),
      CanonicalFingerprint(MakeCycle(9)),   CanonicalFingerprint(MakeStar(8)),
      CanonicalFingerprint(MakeGrid(2, 4)), CanonicalFingerprint(MakeClique(5)),
  };
  for (size_t i = 0; i < prints.size(); ++i) {
    for (size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
    }
  }
}

TEST(CanonicalTest, DuplicateEdgeChangesForm) {
  Hypergraph once = FromEdges({{"a", "b"}, {"b", "c"}});
  Hypergraph twice = FromEdges({{"a", "b"}, {"b", "c"}, {"b", "c"}});
  EXPECT_NE(CanonicalFingerprint(once), CanonicalFingerprint(twice));
  EXPECT_EQ(ComputeCanonicalForm(twice).num_edges, 3);
}

TEST(CanonicalTest, CanonicalFormShape) {
  CanonicalForm form = ComputeCanonicalForm(MakeCycle(5));
  EXPECT_EQ(form.num_vertices, 5);
  EXPECT_EQ(form.num_edges, 5);
  ASSERT_EQ(form.edges.size(), 5u);
  EXPECT_TRUE(std::is_sorted(form.edges.begin(), form.edges.end()));
  for (const auto& edge : form.edges) {
    EXPECT_TRUE(std::is_sorted(edge.begin(), edge.end()));
    for (int v : edge) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 5);
    }
  }
}

TEST(CanonicalTest, HexRendering) {
  Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(fp.ToHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(CanonicalFingerprint(MakeCycle(4)).ToHex().size(), 32u);
}

}  // namespace
}  // namespace htd::service
