// Quickstart: decompose the paper's running example (Appendix B) — a cycle
// of length 10 — with log-k-decomp at width 2, validate the result and print
// the tree.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/parser.h"

int main() {
  // The hypergraph of Appendix B: R1(x1,x2), ..., R10(x10,x1).
  auto parsed = htd::ParseHyperBench(
      "R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5), R5(x5,x6),"
      "R6(x6,x7), R7(x7,x8), R8(x8,x9), R9(x9,x10), R10(x10,x1).");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().message().c_str());
    return 1;
  }
  const htd::Hypergraph& graph = *parsed;
  std::printf("%s\n", graph.ToString().c_str());

  // Is hw(H) <= 1? (No: the cycle is not alpha-acyclic.)
  htd::LogKDecomp solver;
  std::printf("hw <= 1? %s\n",
              solver.Solve(graph, 1).outcome == htd::Outcome::kYes ? "yes" : "no");

  // Find a width-2 hypertree decomposition.
  htd::SolveResult result = solver.Solve(graph, 2);
  if (result.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "unexpected: no width-2 HD found\n");
    return 1;
  }
  std::printf("hw <= 2? yes -- decomposition:\n%s\n",
              result.decomposition->ToString(graph).c_str());

  htd::Validation validation = htd::ValidateHdWithWidth(graph, *result.decomposition, 2);
  std::printf("validation: %s\n", validation.ok ? "OK" : validation.error.c_str());
  std::printf("stats: %ld separators tried, recursion depth %d (log2(10) ~ 3.3)\n",
              result.stats.separators_tried, result.stats.max_recursion_depth);
  return validation.ok ? 0 : 1;
}
