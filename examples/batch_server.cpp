// batch_server: drive the DecompositionService over a directory or manifest
// of hypergraph instances at configurable concurrency.
//
// DEPRECATED as a serving path: the one server code path is now
// tools/hdserver.cc — the out-of-process HTTP front-end with admission
// control and warm-state persistence (docs/SERVER.md). This example remains
// as an in-process *batch driver* (load a corpus, submit it as batches,
// print throughput); anything that should accept work from other processes
// belongs on hdserver.
//
//   $ ./build/batch_server --corpus                 # built-in synthetic corpus
//   $ ./build/batch_server --dir instances/ --k 3 --workers 8 --passes 2
//   $ ./build/batch_server --manifest jobs.txt --solver hybrid --timeout 5
//
// A manifest is one instance file path per line ('#' comments allowed).
// Instances are parsed with the auto-detecting parser (HyperBench and PACE
// formats). Every pass submits the full set as one batch; with --passes 2
// (the default) the second pass demonstrates the result cache: identical
// instances — even renamed ones — are served from memory without a solve.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchlib/corpus.h"
#include "hypergraph/parser.h"
#include "service/service.h"
#include "util/timer.h"

namespace {

struct Args {
  std::string dir;
  std::string manifest;
  bool use_corpus = false;
  int k = 3;
  int workers = 4;
  int solve_threads = 1;
  int passes = 2;
  double timeout_seconds = 10.0;
  std::string solver = "logk";
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--dir PATH | --manifest FILE | --corpus) [options]\n"
      "  --k N            decision width per job (default 3)\n"
      "  --workers N      scheduler worker threads (default 4)\n"
      "  --threads N      intra-solve threads per job (default 1)\n"
      "  --passes N       times to submit the full set (default 2)\n"
      "  --timeout SECS   per-job deadline, 0 = none (default 10)\n"
      "  --solver NAME    logk | logk-basic | detk | hybrid | balsep-ghd\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--dir") {
      const char* v = next("--dir");
      if (v == nullptr) return false;
      args.dir = v;
    } else if (flag == "--manifest") {
      const char* v = next("--manifest");
      if (v == nullptr) return false;
      args.manifest = v;
    } else if (flag == "--corpus") {
      args.use_corpus = true;
    } else if (flag == "--k") {
      const char* v = next("--k");
      if (v == nullptr) return false;
      args.k = std::atoi(v);
    } else if (flag == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      args.workers = std::atoi(v);
    } else if (flag == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      args.solve_threads = std::atoi(v);
    } else if (flag == "--passes") {
      const char* v = next("--passes");
      if (v == nullptr) return false;
      args.passes = std::atoi(v);
    } else if (flag == "--timeout") {
      const char* v = next("--timeout");
      if (v == nullptr) return false;
      args.timeout_seconds = std::atof(v);
    } else if (flag == "--solver") {
      const char* v = next("--solver");
      if (v == nullptr) return false;
      args.solver = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  int sources = (!args.dir.empty() ? 1 : 0) + (!args.manifest.empty() ? 1 : 0) +
                (args.use_corpus ? 1 : 0);
  if (sources != 1 || args.k < 1 || args.workers < 1 || args.passes < 1) {
    return false;
  }
  return true;
}

struct NamedInstance {
  std::string name;
  htd::Hypergraph graph;
};

bool LoadFile(const std::string& path, std::vector<NamedInstance>& out) {
  auto parsed = htd::ParseFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "skipping %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return false;
  }
  out.push_back(NamedInstance{path, std::move(*parsed)});
  return true;
}

std::vector<NamedInstance> LoadInstances(const Args& args) {
  std::vector<NamedInstance> instances;
  if (args.use_corpus) {
    for (auto& instance : htd::bench::BuildHyperBenchLikeCorpus()) {
      instances.push_back(
          NamedInstance{instance.name, std::move(instance.graph)});
    }
  } else if (!args.dir.empty()) {
    std::error_code ec;
    std::filesystem::directory_iterator dir_it(args.dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s: %s\n", args.dir.c_str(),
                   ec.message().c_str());
      return instances;
    }
    std::vector<std::string> paths;
    for (const auto& entry : dir_it) {
      if (entry.is_regular_file()) paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) LoadFile(path, instances);
  } else {
    std::ifstream manifest(args.manifest);
    if (!manifest) {
      std::fprintf(stderr, "cannot open manifest %s\n", args.manifest.c_str());
      return instances;
    }
    std::string line;
    while (std::getline(manifest, line)) {
      size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      size_t end = line.find_last_not_of(" \t\r");
      LoadFile(line.substr(start, end - start + 1), instances);
    }
  }
  return instances;
}

const char* OutcomeName(htd::Outcome outcome) {
  switch (outcome) {
    case htd::Outcome::kYes:
      return "yes";
    case htd::Outcome::kNo:
      return "no";
    case htd::Outcome::kCancelled:
      return "cancelled";
    case htd::Outcome::kError:
      return "error";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    Usage(argv[0]);
    return 2;
  }

  std::vector<NamedInstance> instances = LoadInstances(args);
  if (instances.empty()) {
    std::fprintf(stderr, "no instances loaded\n");
    return 1;
  }

  htd::service::ServiceOptions options;
  options.solver_name = args.solver;
  options.num_workers = args.workers;
  options.solve.num_threads = args.solve_threads;
  options.cache_capacity = 4 * instances.size();
  auto service = htd::service::DecompositionService::Create(options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().message().c_str());
    return 2;
  }

  std::printf("batch_server: %zu instances, k = %d, solver = %s, %d workers\n",
              instances.size(), args.k, args.solver.c_str(), args.workers);
  std::fprintf(stderr,
               "note: batch_server is an in-process batch driver; the network "
               "server is ./build/hdserver (docs/SERVER.md)\n");

  uint64_t last_hits = 0;
  uint64_t last_joins = 0;
  for (int pass = 1; pass <= args.passes; ++pass) {
    std::vector<htd::service::JobSpec> specs;
    specs.reserve(instances.size());
    for (const NamedInstance& instance : instances) {
      htd::service::JobSpec spec;
      spec.graph = &instance.graph;
      spec.k = args.k;
      spec.timeout_seconds = args.timeout_seconds;
      specs.push_back(spec);
    }
    htd::util::WallTimer timer;
    auto futures = (*service)->SubmitBatch(specs);
    int counts[4] = {0, 0, 0, 0};
    for (auto& future : futures) {
      htd::service::JobResult job = future.get();
      counts[static_cast<int>(job.result.outcome)]++;
    }
    double seconds = timer.ElapsedSeconds();

    auto scheduler_stats = (*service)->scheduler_stats();
    uint64_t pass_hits = scheduler_stats.cache_hits - last_hits;
    uint64_t pass_joins = scheduler_stats.dedup_joins - last_joins;
    last_hits = scheduler_stats.cache_hits;
    last_joins = scheduler_stats.dedup_joins;

    std::printf(
        "pass %d: %zu jobs in %.3fs (%.1f jobs/s) | yes %d, no %d, "
        "cancelled %d, error %d | cache hits %llu, dedup joins %llu\n",
        pass, instances.size(), seconds,
        seconds > 0 ? instances.size() / seconds : 0.0,
        counts[static_cast<int>(htd::Outcome::kYes)],
        counts[static_cast<int>(htd::Outcome::kNo)],
        counts[static_cast<int>(htd::Outcome::kCancelled)],
        counts[static_cast<int>(htd::Outcome::kError)],
        static_cast<unsigned long long>(pass_hits),
        static_cast<unsigned long long>(pass_joins));
  }

  auto cache_stats = (*service)->cache_stats();
  std::printf(
      "cache: %zu/%zu entries, %llu hits, %llu misses, %llu evictions\n",
      cache_stats.entries, cache_stats.capacity,
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(cache_stats.evictions));
  return 0;
}
