// Parallel scaling demo: the paper's headline property on one instance.
//
// log-k-decomp partitions the balanced-separator search space over worker
// threads with no inter-thread communication (§D.1). This example refutes
// "hw ≤ 2" on a hard negative instance — the workload Figure 1 shows scales
// best ("instances where the search for separators dominates") — once per
// worker count and reports the scaling the partition achieves.
//
// On a single-core container, wall-clock cannot drop; pass the partition-
// simulation flag instead (default here) to report the modelled critical
// path of the same chunk schedule; run with HTD_EXAMPLE_REAL_THREADS=1 on a
// multicore machine for real wall-clock numbers.
//
//   $ ./build/examples/parallel_scaling
#include <cstdio>
#include <cstdlib>

#include "core/log_k_decomp.h"
#include "hypergraph/generators.h"

int main() {
  const bool real_threads = std::getenv("HTD_EXAMPLE_REAL_THREADS") != nullptr;

  // A deep refutation: K5 at k = 2 exhausts ~3*10^5 separator candidates
  // through many recursion levels — the workload Figure 1 scales best on.
  htd::Hypergraph graph = htd::MakeClique(5);

  std::printf("refuting hw <= 2 on K5, |E| = %d (%s mode)\n\n",
              graph.num_edges(), real_threads ? "real threads" : "simulation");
  std::printf("workers  time (ms)  speedup\n");

  double base_ms = 0.0;
  for (int workers = 1; workers <= 6; ++workers) {
    htd::SolveOptions options;
    options.num_threads = workers;
    options.simulate_partition = !real_threads;
    options.parallel_min_size = 4;
    htd::LogKDecomp solver(options);
    htd::SolveResult result = solver.Solve(graph, 2);
    if (result.outcome != htd::Outcome::kNo) {
      std::fprintf(stderr, "unexpected outcome\n");
      return 1;
    }
    double ms = result.stats.seconds * 1000.0;
    if (workers == 1) base_ms = ms;
    if (!real_threads && result.stats.work_total > 0) {
      // Simulation mode: the chunk schedule's modelled critical path, priced
      // with the measured one-worker wall time so run-to-run timing noise
      // does not masquerade as speedup (DESIGN.md §4.3).
      ms = base_ms * static_cast<double>(result.stats.work_parallel) /
           static_cast<double>(result.stats.work_total);
    }
    std::printf("%7d  %9.1f  %6.2fx\n", workers, ms,
                ms > 0 ? base_ms / ms : 0.0);
  }
  std::printf("\n(%s)\n", real_threads
                              ? "wall-clock with genuine worker threads"
                              : "modelled critical path; see bench/figure1_scaling "
                                "for the full study");
  return 0;
}
