// decompose_tool: command-line hypertree decomposition, mirroring the
// original log-k-decomp release's CLI.
//
//   decompose_tool [FILE] [-k WIDTH] [-a logk|detk|hybrid|basic|ghd|opt]
//                  [-t THREADS] [--timeout SECONDS] [-o text|gml|json]
//                  [--prep] [--cache] [--normalize]
//
// FILE may be in HyperBench ("R(x,y),...") or PACE ("p htd n m") format;
// without arguments a built-in demo instance is decomposed. With -a opt the
// width parameter is ignored and the optimal width is computed. --prep
// applies the width-preserving reductions before solving, --cache enables
// the negative subproblem cache, --normalize post-processes the HD into the
// paper's minimal-χ normal form (Theorem 3.6).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/balsep_ghd.h"
#include "decomp/decomp_writer.h"
#include "baselines/det_k_decomp.h"
#include "baselines/opt_solver.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "decomp/normal_form.h"
#include "decomp/validation.h"
#include "hypergraph/parser.h"
#include "prep/prep_solver.h"
#include "util/cancel.h"

namespace {

constexpr const char* kDemo =
    "% demo: 2x4 grid\n"
    "h1(a,b), h2(b,c), h3(c,d), h4(e,f), h5(f,g), h6(g,h),"
    "v1(a,e), v2(b,f), v3(c,g), v4(d,h).";

void Usage() {
  std::printf(
      "usage: decompose_tool [FILE] [-k WIDTH] [-a logk|detk|hybrid|basic|ghd|opt]\n"
      "                      [-t THREADS] [--timeout SECONDS] [-o text|gml|json]\n"
      "                      [--prep] [--cache] [--normalize]\n"
      "Without FILE, a built-in demo instance is used.\n\n");
}

std::string Render(const std::string& format, const htd::Hypergraph& graph,
                   const htd::Decomposition& decomp) {
  if (format == "gml") return htd::WriteDecompositionGml(graph, decomp);
  if (format == "json") return htd::WriteDecompositionJson(graph, decomp) + "\n";
  return decomp.ToString(graph);
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string algo = "logk";
  std::string output_format = "text";
  int k = 2;
  int threads = 1;
  double timeout = 0;
  bool use_prep = false;
  bool use_cache = false;
  bool normalize = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-k") {
      k = std::atoi(next());
    } else if (arg == "-a") {
      algo = next();
    } else if (arg == "-t") {
      threads = std::atoi(next());
    } else if (arg == "-o") {
      output_format = next();
    } else if (arg == "--timeout") {
      timeout = std::atof(next());
    } else if (arg == "--prep") {
      use_prep = true;
    } else if (arg == "--cache") {
      use_cache = true;
    } else if (arg == "--normalize") {
      normalize = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      file = arg;
    }
  }
  if (k < 1 || threads < 1) {
    std::fprintf(stderr, "invalid -k or -t value\n");
    return 2;
  }

  auto parsed = file.empty() ? htd::ParseAuto(kDemo) : htd::ParseFile(file);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return 1;
  }
  const htd::Hypergraph& graph = *parsed;
  if (file.empty()) {
    Usage();
    std::printf("decomposing built-in demo (2x4 grid, 10 edges):\n");
  }
  std::printf("instance: |V| = %d, |E| = %d\n", graph.num_vertices(),
              graph.num_edges());

  htd::util::CancelToken cancel;
  if (timeout > 0) cancel.SetTimeout(std::chrono::duration<double>(timeout));
  htd::SolveOptions options;
  options.num_threads = threads;
  options.cancel = timeout > 0 ? &cancel : nullptr;
  options.enable_cache = use_cache;

  if (algo == "opt") {
    htd::OptimalSolver solver(options);
    htd::OptimalRun run = solver.FindOptimal(graph);
    if (run.outcome != htd::Outcome::kYes) {
      std::printf("result: %s\n",
                  run.outcome == htd::Outcome::kCancelled ? "timeout" : "width > 64");
      return 1;
    }
    std::printf("optimal hypertree width: %d (%.3fs)\n%s", run.width, run.seconds,
                Render(output_format, graph, *run.decomposition).c_str());
    return 0;
  }

  std::unique_ptr<htd::HdSolver> solver;
  if (algo == "logk") {
    solver = std::make_unique<htd::LogKDecomp>(options);
  } else if (algo == "detk") {
    solver = std::make_unique<htd::DetKDecomp>(options);
  } else if (algo == "hybrid") {
    solver = htd::MakeDefaultHybrid(options);
  } else if (algo == "basic") {
    solver = std::make_unique<htd::LogKDecompBasic>(options);
  } else if (algo == "ghd") {
    solver = std::make_unique<htd::BalSepGhd>(options);
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  if (use_prep) solver = htd::MakePreprocessingSolver(std::move(solver));

  std::printf("algorithm: %s, k = %d, threads = %d\n", solver->name().c_str(), k,
              threads);
  htd::SolveResult result = solver->Solve(graph, k);
  if (normalize && result.outcome == htd::Outcome::kYes &&
      result.decomposition.has_value() && algo != "ghd") {
    auto normal = htd::NormalizeHd(graph, *result.decomposition);
    if (normal.ok()) {
      result.decomposition = std::move(normal).value();
      std::printf("(normalized into minimal-chi normal form, Def. 3.5)\n");
    } else {
      std::fprintf(stderr, "normalization failed: %s\n",
                   normal.status().message().c_str());
    }
  }
  switch (result.outcome) {
    case htd::Outcome::kYes: {
      std::printf("result: width <= %d HOLDS (%.3fs, %ld separators tried)\n", k,
                  result.stats.seconds, result.stats.separators_tried);
      if (result.decomposition.has_value()) {
        std::printf("%s", Render(output_format, graph, *result.decomposition).c_str());
        htd::Validation validation =
            algo == "ghd" ? htd::ValidateGhd(graph, *result.decomposition)
                          : htd::ValidateHdWithWidth(graph, *result.decomposition, k);
        std::printf("validation: %s\n",
                    validation.ok ? "OK" : validation.error.c_str());
        return validation.ok ? 0 : 1;
      }
      return 0;
    }
    case htd::Outcome::kNo:
      std::printf("result: no decomposition of width <= %d exists%s\n", k,
                  algo == "ghd" ? " in the balanced search space" : "");
      return 0;
    case htd::Outcome::kCancelled:
      std::printf("result: timeout\n");
      return 1;
    default:
      std::printf("result: internal error\n");
      return 1;
  }
}
