// Preprocessing pipeline: the width-preserving reductions every production
// HD system applies before searching (subsumed edges, twin vertices,
// connected components), and what they buy.
//
// The example builds a deliberately messy conjunctive-query hypergraph —
// redundant atoms, duplicated join variables, an unrelated second query in
// the same batch — then decomposes it twice: raw, and through the
// PreprocessingSolver wrapper. Both give the same width; the reduced search
// is far smaller.
//
//   $ ./build/examples/preprocessing
#include <cstdio>

#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/parser.h"
#include "prep/prep_solver.h"

int main() {
  // A star-join with a redundant projection atom (subsumed), wide fact-table
  // atoms whose payload columns never join (twins), and a detached
  // two-atom query processed in the same batch (second component).
  auto parsed = htd::ParseHyperBench(
      "Fact(order_id, cust, item, qty, price, ts),"
      "Cust(cust, region, segment),"
      "Item(item, brand, cat),"
      "Proj(order_id, cust),"  // subsumed by Fact
      "Cycle1(cust, region),"  // closes a small cycle with Cust
      "Audit(log_id, actor), AuditDetail(log_id, actor).");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().message().c_str());
    return 1;
  }
  const htd::Hypergraph& graph = *parsed;
  std::printf("raw input: %d vertices, %d edges\n", graph.num_vertices(),
              graph.num_edges());

  htd::PreprocessedInstance instance = htd::Preprocess(graph);
  const htd::PreprocessStats& stats = instance.stats();
  std::printf("reductions: -%d subsumed edge(s), -%d twin vertex(es), "
              "%d connected component(s), %d fixpoint round(s)\n",
              stats.subsumed_edges_removed, stats.twin_vertices_contracted,
              stats.num_components, stats.fixpoint_rounds);
  for (const htd::ReducedComponent& component : instance.components()) {
    std::printf("  component: %d vertices, %d edges\n",
                component.graph.num_vertices(), component.graph.num_edges());
  }

  // Decompose raw vs preprocessed; identical width, smaller search.
  htd::LogKDecomp raw;
  htd::LogKDecomp inner;
  htd::PreprocessingSolver prepped(inner, {}, /*validate_result=*/true);

  htd::OptimalRun raw_run = htd::FindOptimalWidth(raw, graph, /*max_k=*/4);
  htd::OptimalRun prep_run = htd::FindOptimalWidth(prepped, graph, /*max_k=*/4);
  if (raw_run.outcome != htd::Outcome::kYes ||
      prep_run.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "unexpected: optimum not found\n");
    return 1;
  }
  std::printf("\nraw solve:          hw = %d, %ld separators tried\n",
              raw_run.width, raw_run.stats.separators_tried);
  std::printf("preprocessed solve: hw = %d, %ld separators tried\n",
              prep_run.width, prep_run.stats.separators_tried);

  // The lifted decomposition is an HD of the ORIGINAL hypergraph.
  htd::Validation validation =
      htd::ValidateHdWithWidth(graph, *prep_run.decomposition, prep_run.width);
  std::printf("lifted HD validates on the raw input: %s\n",
              validation.ok ? "OK" : validation.error.c_str());
  return validation.ok && raw_run.width == prep_run.width ? 0 : 1;
}
