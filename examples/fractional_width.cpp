// Fractional widths: ρ* edge covers and the fhw ≤ ghw ≤ hw chain.
//
// The paper's evaluation notes that the compared implementations "include
// the capability to compute GHDs or FHDs". This example shows the fractional
// side of that capability in this library: exact fractional edge covers via
// the in-house simplex, and the fractional width of the decompositions our
// solvers produce.
//
//   $ ./build/examples/fractional_width
#include <cstdio>

#include "baselines/det_k_decomp.h"
#include "fractional/cover.h"
#include "fractional/fhd_solver.h"
#include "hypergraph/generators.h"
#include "hypergraph/hypergraph.h"

namespace {

void ReportCover(const char* name, const htd::Hypergraph& graph) {
  htd::fractional::FractionalCover cover =
      htd::fractional::FractionalEdgeCover(graph, graph.AllVertices());
  std::vector<int> integral =
      htd::fractional::GreedyIntegralCover(graph, graph.AllVertices());
  std::printf("%-14s |V|=%2d |E|=%2d   rho*(V) = %5.3f   greedy integral = %zu\n",
              name, graph.num_vertices(), graph.num_edges(), cover.weight,
              integral.size());
}

}  // namespace

int main() {
  std::printf("== fractional edge covers (rho*) ==\n");
  ReportCover("clique K6", htd::MakeClique(6));       // n/2 = 3
  ReportCover("odd cycle C9", htd::MakeCycle(9));     // n/2 = 4.5
  ReportCover("star S5", htd::MakeStar(5));           // every leaf edge: 5

  // The Fano plane: rho* = 7/3, strictly below the best integral cover (3).
  htd::Hypergraph fano;
  const int lines[7][3] = {{0, 1, 2}, {0, 3, 4}, {0, 5, 6}, {1, 3, 5},
                           {1, 4, 6}, {2, 3, 6}, {2, 4, 5}};
  for (int v = 0; v < 7; ++v) fano.GetOrAddVertex("p" + std::to_string(v));
  for (const auto& line : lines) {
    if (!fano.AddEdge({line[0], line[1], line[2]}).ok()) return 1;
  }
  ReportCover("Fano plane", fano);

  // Fractional width of an actual HD: max_u rho*(chi(u)) <= width, because
  // every lambda-label is an integral cover of its bag.
  std::printf("\n== fractional width of computed HDs ==\n");
  htd::util::Rng rng(42);
  htd::Hypergraph csp = htd::MakeRandomCsp(rng, 14, 9, 2, 4);
  htd::DetKDecomp solver;
  htd::OptimalRun run = htd::FindOptimalWidth(solver, csp, /*max_k=*/6);
  if (run.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "unexpected: CSP instance not solved\n");
    return 1;
  }
  double fractional = htd::fractional::FractionalWidth(csp, *run.decomposition);
  std::printf("random CSP: hw = %d, fractional width of the same tree = %.3f\n",
              run.width, fractional);

  // The FHD solver exploits that gap: K5 has hw = 3 but fhw = 5/2.
  std::printf("\n== FHD search: fractional width strictly below hw ==\n");
  htd::Hypergraph k5 = htd::MakeClique(5);
  htd::OptimalRun k5_run = htd::FindOptimalWidth(solver, k5, 4);
  htd::fractional::FhdSolver fhd;
  htd::fractional::FhdResult fhd_result = fhd.Solve(k5, 2.5);
  if (k5_run.outcome != htd::Outcome::kYes ||
      fhd_result.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "unexpected: K5 runs failed\n");
    return 1;
  }
  std::printf("clique K5: hw = %d, FHD found at fractional width %.2f\n",
              k5_run.width, fhd_result.fractional_width);
  return 0;
}
