// csp_solver: structural CSP solving via hypertree decompositions (the
// paper's second motivating application). A graph-colouring CSP is encoded
// as constraint relations; the constraint hypergraph is decomposed and the
// CSP solved by HD-guided join evaluation.
//
//   $ ./build/examples/csp_solver
#include <cstdio>
#include <string>

#include "core/hybrid.h"
#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"

namespace {

// Builds the "neq" relation over a colour domain: all (a, b) with a != b.
htd::cq::Relation NotEqualRelation(const std::string& name, int colours) {
  htd::cq::Relation relation;
  relation.name = name;
  relation.arity = 2;
  for (int a = 0; a < colours; ++a) {
    for (int b = 0; b < colours; ++b) {
      if (a != b) relation.tuples.push_back({a, b});
    }
  }
  return relation;
}

}  // namespace

int main() {
  // CSP: properly 3-colour a wheel-like graph — a cycle x0..x7 plus two hub
  // vertices each adjacent to half the cycle. Every edge is a "neq"
  // constraint between adjacent vertices.
  const int kColours = 3;
  std::string csp;
  for (int i = 0; i < 8; ++i) {
    if (!csp.empty()) csp += ", ";
    csp += "neq(X" + std::to_string(i) + ",X" + std::to_string((i + 1) % 8) + ")";
  }
  for (int i = 0; i < 4; ++i) {
    csp += ", neq(H0,X" + std::to_string(i) + ")";
    csp += ", neq(H1,X" + std::to_string(i + 4) + ")";
  }
  csp += ", neq(H0,H1).";

  auto query = htd::cq::ParseQuery(csp);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n", query.status().message().c_str());
    return 1;
  }
  std::printf("CSP: %zu binary neq-constraints over 10 variables, %d colours\n",
              query->atoms.size(), kColours);

  htd::cq::Database db;
  db.AddRelation(NotEqualRelation("neq", kColours));

  // Decompose the constraint hypergraph with the hybrid solver.
  htd::Hypergraph graph = htd::cq::QueryHypergraph(*query);
  std::unique_ptr<htd::HdSolver> solver = htd::MakeDefaultHybrid();
  htd::OptimalRun run = htd::FindOptimalWidth(*solver, graph, 10);
  if (run.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "decomposition failed\n");
    return 1;
  }
  std::printf("constraint hypergraph: |V| = %d, |E| = %d, hypertree width = %d\n",
              graph.num_vertices(), graph.num_edges(), run.width);

  auto result = htd::cq::EvaluateWithDecomposition(*query, db, *run.decomposition);
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n", result.status().message().c_str());
    return 1;
  }
  if (!result->satisfiable) {
    std::printf("CSP is unsatisfiable with %d colours\n", kColours);
    return 0;
  }
  std::printf("solution found:\n");
  for (const auto& [variable, value] : result->witness) {
    std::printf("  %s = colour %lld\n", variable.c_str(),
                static_cast<long long>(value));
  }
  // Sanity: verify every constraint.
  for (const htd::cq::Atom& atom : query->atoms) {
    if (result->witness.at(atom.variables[0]) ==
        result->witness.at(atom.variables[1])) {
      std::fprintf(stderr, "constraint violated!\n");
      return 1;
    }
  }
  std::printf("all %zu constraints verified\n", query->atoms.size());
  return 0;
}
