// query_planner: the paper's §1 motivation end to end — evaluate a cyclic
// conjunctive query by (1) computing a hypertree decomposition of its
// hypergraph, (2) reducing to an acyclic instance along the decomposition,
// (3) running Yannakakis' algorithm; compared against brute-force join.
//
//   $ ./build/examples/query_planner
#include <cstdio>

#include "core/log_k_decomp.h"
#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  // A 6-cycle join query: the classic worst case for join-order optimisers.
  // The atoms are deliberately listed in a hostile order (R1, R3, R5 share no
  // variables): a syntax-order backtracking join starts with a cartesian
  // product, while decomposition-guided evaluation is immune to atom order.
  auto query = htd::cq::ParseQuery(
      "R1(A,B), R3(C,D), R5(E,F), R2(B,C), R4(D,E), R6(F,A).");
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n", query.status().message().c_str());
    return 1;
  }
  std::printf("query: 6-cycle join over relations R1..R6 (hostile atom order)\n");

  // Step 1: decompose the query hypergraph (done once, reused per database).
  htd::Hypergraph graph = htd::cq::QueryHypergraph(*query);
  htd::LogKDecomp solver;
  htd::OptimalRun run = htd::FindOptimalWidth(solver, graph, 10);
  if (run.outcome != htd::Outcome::kYes) {
    std::fprintf(stderr, "decomposition failed\n");
    return 1;
  }
  std::printf("hypertree width: %d, decomposition with %d nodes\n\n", run.width,
              run.decomposition->num_nodes());

  // Two random databases; with the hostile atom order the backtracking join
  // pays a near-cartesian prefix either way, while Yannakakis' cost depends
  // only on the decomposition.
  for (bool planted : {true, false}) {
    htd::util::Rng rng(planted ? 2022 : 2023);
    htd::cq::Database db = htd::cq::RandomDatabase(
        rng, *query, /*domain_size=*/60, /*tuples_per_relation=*/150,
        /*satisfiable_bias=*/planted ? 1.0 : 0.0);
    std::printf("database %s (150 tuples/relation, domain 60):\n",
                planted ? "with planted answer" : "fully random");

    htd::util::WallTimer fast_timer;
    auto fast = htd::cq::EvaluateWithDecomposition(*query, db, *run.decomposition);
    double fast_seconds = fast_timer.ElapsedSeconds();
    if (!fast.ok()) {
      std::fprintf(stderr, "evaluation error: %s\n",
                   fast.status().message().c_str());
      return 1;
    }
    htd::util::WallTimer slow_timer;
    auto slow = htd::cq::EvaluateBruteForce(*query, db);
    double slow_seconds = slow_timer.ElapsedSeconds();

    std::printf("  HD-guided Yannakakis: %s in %.4fs\n",
                fast->satisfiable ? "satisfiable" : "unsatisfiable", fast_seconds);
    std::printf("  brute-force join:     %s in %.4fs\n",
                slow->satisfiable ? "satisfiable" : "unsatisfiable", slow_seconds);
    if (fast->satisfiable != slow->satisfiable) {
      std::fprintf(stderr, "MISMATCH between evaluators!\n");
      return 1;
    }
    if (fast->satisfiable) {
      std::printf("  witness:");
      for (const char* var : {"A", "B", "C", "D", "E", "F"}) {
        std::printf(" %s=%lld", var, static_cast<long long>(fast->witness.at(var)));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
