// validate_tool: check a decomposition produced by ANY system against a
// hypergraph — the library as an independent HD referee.
//
//   $ ./build/examples/validate_tool query.hg decomposition.json [--ghd]
//
// Reads a HyperBench-format hypergraph and a decomposition in this
// library's JSON format (decompose_tool emits it; see decomp_reader.h),
// validates every HD condition — or only the GHD conditions with --ghd —
// and reports width and fractional width. Exit code 0 iff valid.
//
// With no arguments it runs a built-in demo on the Appendix-B cycle.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/log_k_decomp.h"
#include "decomp/decomp_reader.h"
#include "decomp/decomp_writer.h"
#include "decomp/validation.h"
#include "fractional/cover.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"

namespace {

int Validate(const htd::Hypergraph& graph, const htd::Decomposition& decomp,
             bool ghd_only) {
  htd::Validation validation = ghd_only ? htd::ValidateGhd(graph, decomp)
                                        : htd::ValidateHd(graph, decomp);
  std::printf("nodes: %d, depth: %d\n", decomp.num_nodes(), decomp.Depth());
  std::printf("width: %d, fractional width: %.3f\n", decomp.Width(),
              htd::fractional::FractionalWidth(graph, decomp));
  if (validation.ok) {
    std::printf("RESULT: valid %s\n", ghd_only ? "GHD" : "HD");
    return 0;
  }
  std::printf("RESULT: INVALID — %s\n", validation.error.c_str());
  return 1;
}

int Demo() {
  std::printf("(demo mode: validating a freshly computed HD of the cycle C_10;\n"
              " pass <graph.hg> <decomp.json> [--ghd] to check your own)\n\n");
  htd::Hypergraph cycle = htd::MakeCycle(10);
  htd::LogKDecomp solver;
  htd::SolveResult result = solver.Solve(cycle, 2);
  if (result.outcome != htd::Outcome::kYes) return 1;

  // Round-trip through the JSON wire format, exactly as an external tool
  // would hand us a decomposition.
  std::string json = htd::WriteDecompositionJson(cycle, *result.decomposition);
  auto parsed = htd::ParseDecompositionJson(cycle, json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "round-trip failed: %s\n",
                 parsed.status().message().c_str());
    return 1;
  }
  return Validate(cycle, *parsed, /*ghd_only=*/false);
}

htd::util::StatusOr<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return htd::util::Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Demo();

  bool ghd_only = argc > 3 && std::strcmp(argv[3], "--ghd") == 0;

  auto graph_text = ReadFile(argv[1]);
  if (!graph_text.ok()) {
    std::fprintf(stderr, "%s\n", graph_text.status().message().c_str());
    return 2;
  }
  auto graph = htd::ParseHyperBench(*graph_text);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph parse error: %s\n",
                 graph.status().message().c_str());
    return 2;
  }

  auto decomp_text = ReadFile(argv[2]);
  if (!decomp_text.ok()) {
    std::fprintf(stderr, "%s\n", decomp_text.status().message().c_str());
    return 2;
  }
  auto decomp = htd::ParseDecompositionJson(*graph, *decomp_text);
  if (!decomp.ok()) {
    std::fprintf(stderr, "decomposition parse error: %s\n",
                 decomp.status().message().c_str());
    return 2;
  }
  return Validate(*graph, *decomp, ghd_only);
}
