// Threaded blocking HTTP/1.1 server.
//
// One acceptor thread polls the listening socket; each accepted connection
// is served on the IO thread pool (util::ThreadPool) with keep-alive and a
// per-read idle timeout. The server is transport only — it knows nothing
// about decompositions; the application routes live in
// net/decomposition_server.{h,cc} behind the Handler callback.
//
// Shutdown: Stop() closes the listener, shuts down every live connection
// socket (unblocking threads parked in recv), and joins the acceptor. It is
// idempotent and called from the destructor.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "net/http.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace htd::net {

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (tests); read it back via port().
    int port = 0;
    int backlog = 64;
    /// Connection-serving threads. Requests block these for their full
    /// duration (including synchronous solves), so size ≥ the expected
    /// concurrent client count.
    int io_threads = 8;
    /// Live-connection bound: connections accepted beyond it are answered
    /// 503 + Retry-After and closed on the acceptor thread, WITHOUT queueing
    /// an IO task. This is the transport-level half of load shedding — it is
    /// what keeps a flood of *synchronous* requests from parking unboundedly
    /// in the IO pool's queue (the application-level queue bound only sees
    /// jobs once a handler thread runs).
    int max_connections = 64;
    /// Retry-After value on connection-level 503s.
    int retry_after_seconds = 1;
    /// Keep-alive connections idle longer than this are closed.
    double idle_timeout_seconds = 30.0;
    HttpRequestParser::Limits limits;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor thread.
  util::Status Start();
  /// Stops accepting, tears down live connections, joins the acceptor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }
  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections refused with 503 because max_connections was reached.
  uint64_t connections_shed() const {
    return connections_shed_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  Handler handler_;
  util::Socket listener_;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> io_pool_;

  std::mutex live_mutex_;
  std::unordered_set<int> live_fds_;  // guarded by live_mutex_
};

}  // namespace htd::net
