// Event-driven HTTP/1.1 server: epoll readiness loop, non-blocking sockets.
//
// Connection I/O never blocks a thread. One acceptor thread polls the
// listening socket, sheds past max_connections (503 + Retry-After), and
// hands accepted fds round-robin to a small worker ring of event loops —
// each loop owns an epoll set, a timer wheel, and the per-connection state
// machines (incremental request parse on readable, buffered partial writes
// on writable). Slow clients therefore cost memory, not threads: tens of
// thousands of idle keep-alive connections hold fds and parser buffers
// while loop_threads stays at a handful.
//
// Handlers still BLOCK — a synchronous decompose runs for seconds — so a
// parsed request is dispatched to the io_threads pool (util::ThreadPool)
// exactly as in the thread-per-connection design; only the connection's
// bytes moved into the loop. While a request is dispatched its connection
// is quiescent in epoll; the handler's completion posts the serialised
// response back to the owning loop through an eventfd-woken queue.
//
// Write interest (EPOLLOUT, level-triggered) is armed only while a response
// is partially flushed and disarmed the moment the buffer drains, so idle
// keep-alive connections never spin the loop.
//
// Timeouts run on a per-loop timer wheel instead of SO_RCVTIMEO (nothing
// blocks in recv any more):
//   - idle_timeout_seconds    keep-alive connection with no request bytes
//   - header_timeout_seconds  mid-request (slow-loris drip): reaped with 408
//   - write_timeout_seconds   response partially flushed to a stalled
//                             reader: abandoned, slot freed
//
// Shutdown: Stop() stops the acceptor, closes idle connections, lets
// dispatched handlers finish and FLUSHES their in-flight responses (bounded
// by the write timeout), then joins the loops. Idempotent; called from the
// destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace htd::net {

namespace internal {
class EventLoop;
}  // namespace internal

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (tests); read it back via port().
    int port = 0;
    int backlog = 64;
    /// Handler-executing threads (the IO pool). A synchronous request
    /// blocks one for its full duration (including solves), so size ≥ the
    /// expected concurrent REQUEST count. Idle connections no longer pin
    /// these — connection count is bounded by max_connections alone.
    int io_threads = 8;
    /// Event-loop worker ring: threads running epoll sets. Connection I/O
    /// is cheap; a few loops drive tens of thousands of sockets.
    int loop_threads = 2;
    /// Live-connection bound: connections accepted beyond it are answered
    /// 503 + Retry-After and closed on the acceptor thread. This is the
    /// transport-level half of load shedding — independent of io_threads
    /// since the epoll core stopped pinning a thread per connection.
    int max_connections = 64;
    /// Retry-After value on connection-level 503s.
    int retry_after_seconds = 1;
    /// Keep-alive connections idle (no request bytes) longer than this are
    /// closed.
    double idle_timeout_seconds = 30.0;
    /// A connection mid-request-head or mid-body making no progress past
    /// this is reaped with 408 (slow-loris guard). 0 = use idle timeout.
    double header_timeout_seconds = 10.0;
    /// A partially-flushed response stalled longer than this (peer not
    /// reading) is abandoned and the connection closed.
    double write_timeout_seconds = 30.0;
    HttpRequestParser::Limits limits;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Live-connection states, sampled for the htd_connections{state=} gauges.
  struct ConnectionCounts {
    uint64_t idle = 0;        ///< keep-alive, between requests
    uint64_t reading = 0;     ///< request bytes partially received
    uint64_t dispatched = 0;  ///< handler running on the IO pool
    uint64_t writing = 0;     ///< response partially flushed
    uint64_t total() const { return idle + reading + dispatched + writing; }
  };

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, starts the loop ring and the acceptor thread.
  util::Status Start();
  /// Stops accepting, drains in-flight responses, joins loops + acceptor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }
  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections refused with 503 because max_connections was reached.
  uint64_t connections_shed() const {
    return connections_shed_.load(std::memory_order_relaxed);
  }
  /// Connections reaped by a timeout (idle, header/slow-loris, or write).
  uint64_t connections_reaped() const {
    return connections_reaped_.load(std::memory_order_relaxed);
  }
  /// accept() failures after a readable poll (EMFILE under fd exhaustion is
  /// the classic); each costs one acceptor backoff instead of a spin.
  uint64_t accept_failures() const {
    return accept_failures_.load(std::memory_order_relaxed);
  }
  /// Current per-state connection counts across the loop ring.
  ConnectionCounts connection_counts() const;

 private:
  friend class internal::EventLoop;

  void AcceptLoop();
  /// Called by a loop when a connection closes (frees an admission slot).
  void OnConnectionClosed();

  Options options_;
  Handler handler_;
  util::Socket listener_;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  std::atomic<uint64_t> accept_failures_{0};
  /// Live connections: incremented by the acceptor before hand-off,
  /// decremented by the owning loop on close. The shed check reads it.
  std::atomic<int64_t> live_connections_{0};
  std::thread acceptor_;
  std::vector<std::unique_ptr<internal::EventLoop>> loops_;
  std::unique_ptr<util::ThreadPool> io_pool_;
};

}  // namespace htd::net
