// Tiny JSON response helpers shared by the HTTP front-ends
// (net/decomposition_server.cc and net/shard_router.cc), so error bodies
// and escaping behave identically on both sides of a proxy hop.
#pragma once

#include <string>

#include "net/http.h"

namespace htd::net {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters as \uXXXX).
std::string JsonEscape(const std::string& text);

/// The canonical error body: {"error": "<message>"} with the given status.
HttpResponse JsonErrorResponse(int status, const std::string& message);

/// Extracts `"key": <number>` from the flat object `"section": {...}` of a
/// fleet-rendered JSON body. The bodies this reads are the fleet's OWN
/// (net/decomposition_server.cc renders them: two levels, flat numeric
/// sections, exactly one space after the colon), so plain string search is
/// exact here — this is not a general JSON parser, and every consumer
/// (router aggregation, hdreshard verify) shares this one implementation so
/// a renderer change cannot break them apart.
bool FindJsonNumber(const std::string& body, const std::string& section,
                    const std::string& key, double* out);

/// As above for a key at any position in the body (top-level fields like
/// the migrate response's "entries_out").
bool FindJsonNumber(const std::string& body, const std::string& key,
                    double* out);

}  // namespace htd::net
