// Tiny JSON response helpers shared by the HTTP front-ends
// (net/decomposition_server.cc and net/shard_router.cc), so error bodies
// and escaping behave identically on both sides of a proxy hop.
#pragma once

#include <string>

#include "net/http.h"

namespace htd::net {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters as \uXXXX).
std::string JsonEscape(const std::string& text);

/// The canonical error body: {"error": "<message>"} with the given status.
HttpResponse JsonErrorResponse(int status, const std::string& message);

}  // namespace htd::net
