// Minimal HTTP/1.1 message handling for the decomposition server.
//
// Implements exactly the slice the wire protocol (docs/SERVER.md) needs and
// nothing more: request parsing with Content-Length bodies, response
// serialisation, and client-side response parsing (net/http_client,
// tools/hdclient.cc). No chunked transfer encoding (rejected with 501 by
// the server), no TLS, no multipart. Both parsers are incremental and
// socket-agnostic — they consume byte chunks from any source, which is what
// the epoll readiness loop in net/server.cc drives them with and what keeps
// them unit-testable without a network (tests/http_test.cc,
// tests/http_incremental_test.cc).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htd::net {

struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string target;  ///< raw request target, e.g. "/v1/decompose?k=3"
  std::string path;    ///< target up to '?', percent-decoded
  std::string version; ///< as sent, e.g. "HTTP/1.1"
  std::map<std::string, std::string> query;    ///< decoded query parameters
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;

  /// Query parameter lookup with a default.
  std::string QueryOr(const std::string& key, const std::string& fallback) const;

  /// True when the sender expects the connection to close after the
  /// response: an explicit `Connection: close` (case-insensitive, RFC 9110
  /// §7.6.1) or HTTP/1.0 without `Connection: keep-alive`.
  bool WantsClose() const;
};

/// ASCII case-insensitive equality (header values are operator/client input).
bool AsciiIEquals(std::string_view a, std::string_view b);

struct HttpResponse {
  int status = 200;
  /// Extra headers; Content-Length and Connection are added by the
  /// serialiser / server.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits.
std::string_view StatusReason(int status);

/// Serialises a response, adding Content-Type, Content-Length, and the given
/// Connection header value ("keep-alive" or "close").
std::string SerializeResponse(const HttpResponse& response,
                              std::string_view connection);

/// Percent-decodes %XX escapes and '+' (as space). Invalid escapes are kept
/// verbatim rather than rejected — query strings are operator input here.
std::string UrlDecode(std::string_view text);

/// Incremental request parser: feed Consume() whatever the socket yields
/// until it stops returning kNeedMore. One parser instance handles one
/// request; call Reset() between keep-alive requests (bytes beyond the first
/// request are retained and re-examined after Reset).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  struct Limits {
    size_t max_head_bytes = 64 * 1024;
    size_t max_body_bytes = 64 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  State Consume(std::string_view bytes);
  /// Re-examines already-buffered bytes without new input (used after Reset
  /// when the previous read pulled in the start of the next request).
  State Continue() { return Consume({}); }

  /// Bytes buffered but not yet turned into a parsed request. Non-zero
  /// after Reset() when the previous read pulled in pipelined bytes; the
  /// readiness loop uses it to tell an idle connection (nothing received)
  /// from one mid-request (header timeout applies).
  size_t buffered_bytes() const { return buffer_.size(); }

  const HttpRequest& request() const { return request_; }
  /// Moves the parsed request out (valid in state kDone) — the readiness
  /// loop hands it to the handler pool without copying a large body. The
  /// parser's own request is left moved-from; call Reset() before reuse.
  HttpRequest TakeRequest() { return std::move(request_); }
  /// Human-readable parse failure; meaningful in state kError.
  const std::string& error() const { return error_; }
  /// Suggested response status for a parse failure (400 or 413 or 501).
  int error_status() const { return error_status_; }

  /// Clears the parsed request but keeps unconsumed buffered bytes (HTTP
  /// pipelining / back-to-back keep-alive requests).
  void Reset();

 private:
  State Fail(int status, std::string message);
  bool ParseHead(std::string_view head);

  Limits limits_;
  std::string buffer_;
  bool head_done_ = false;
  /// Position the head-terminator scan resumes from, so byte-at-a-time
  /// delivery costs O(total) rather than re-scanning the whole buffer per
  /// chunk (the epoll loop feeds the parser arbitrarily fragmented reads).
  size_t head_scan_ = 0;
  size_t body_expected_ = 0;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
  State state_ = State::kNeedMore;
};

/// Incremental HTTP/1.x RESPONSE parser, the client-side mirror of
/// HttpRequestParser: feed Consume() whatever the socket yields. A response
/// carrying Content-Length completes as soon as that many body bytes arrive
/// — the caller need not wait for the server to close the connection.
/// Responses without Content-Length are framed by connection close: call
/// Finish() at orderly EOF to terminate the body.
class HttpResponseParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  State Consume(std::string_view bytes);
  /// Orderly EOF from the transport. Completes a close-framed body;
  /// an EOF mid-head or short of a promised Content-Length is an error
  /// (truncated response).
  State Finish();

  int status() const { return status_; }
  /// Header keys lower-cased.
  const std::map<std::string, std::string>& headers() const { return headers_; }
  const std::string& body() const { return body_; }
  const std::string& error() const { return error_; }

 private:
  State Fail(std::string message);
  bool ParseHead(std::string_view head);

  std::string buffer_;
  size_t head_scan_ = 0;
  bool head_done_ = false;
  bool have_length_ = false;
  size_t body_expected_ = 0;
  int status_ = 0;
  std::map<std::string, std::string> headers_;
  std::string body_;
  std::string error_;
  State state_ = State::kNeedMore;
};

/// Parses a complete serialised response (status line, headers, body) as
/// read by a Connection: close client. Returns false on malformed input.
/// If Content-Length is present, the body is truncated/validated against it;
/// otherwise everything after the blank line is the body.
bool ParseHttpResponseBlob(std::string_view blob, int* status,
                           std::map<std::string, std::string>* headers,
                           std::string* body);

}  // namespace htd::net
