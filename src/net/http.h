// Minimal HTTP/1.1 message handling for the decomposition server.
//
// Implements exactly the slice the wire protocol (docs/SERVER.md) needs and
// nothing more: request parsing with Content-Length bodies, response
// serialisation, and client-side response parsing for tools/hdclient.cc.
// No chunked transfer encoding (rejected with 501 by the server), no TLS,
// no multipart. The parser is incremental and socket-agnostic — it consumes
// byte chunks from any source, which keeps it unit-testable without a
// network (tests/http_test.cc).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htd::net {

struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string target;  ///< raw request target, e.g. "/v1/decompose?k=3"
  std::string path;    ///< target up to '?', percent-decoded
  std::string version; ///< as sent, e.g. "HTTP/1.1"
  std::map<std::string, std::string> query;    ///< decoded query parameters
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;

  /// Query parameter lookup with a default.
  std::string QueryOr(const std::string& key, const std::string& fallback) const;

  /// True when the sender expects the connection to close after the
  /// response: an explicit `Connection: close` (case-insensitive, RFC 9110
  /// §7.6.1) or HTTP/1.0 without `Connection: keep-alive`.
  bool WantsClose() const;
};

/// ASCII case-insensitive equality (header values are operator/client input).
bool AsciiIEquals(std::string_view a, std::string_view b);

struct HttpResponse {
  int status = 200;
  /// Extra headers; Content-Length and Connection are added by the
  /// serialiser / server.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits.
std::string_view StatusReason(int status);

/// Serialises a response, adding Content-Type, Content-Length, and the given
/// Connection header value ("keep-alive" or "close").
std::string SerializeResponse(const HttpResponse& response,
                              std::string_view connection);

/// Percent-decodes %XX escapes and '+' (as space). Invalid escapes are kept
/// verbatim rather than rejected — query strings are operator input here.
std::string UrlDecode(std::string_view text);

/// Incremental request parser: feed Consume() whatever the socket yields
/// until it stops returning kNeedMore. One parser instance handles one
/// request; call Reset() between keep-alive requests (bytes beyond the first
/// request are retained and re-examined after Reset).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  struct Limits {
    size_t max_head_bytes = 64 * 1024;
    size_t max_body_bytes = 64 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  State Consume(std::string_view bytes);
  /// Re-examines already-buffered bytes without new input (used after Reset
  /// when the previous read pulled in the start of the next request).
  State Continue() { return Consume({}); }

  const HttpRequest& request() const { return request_; }
  /// Human-readable parse failure; meaningful in state kError.
  const std::string& error() const { return error_; }
  /// Suggested response status for a parse failure (400 or 413 or 501).
  int error_status() const { return error_status_; }

  /// Clears the parsed request but keeps unconsumed buffered bytes (HTTP
  /// pipelining / back-to-back keep-alive requests).
  void Reset();

 private:
  State Fail(int status, std::string message);
  bool ParseHead(std::string_view head);

  Limits limits_;
  std::string buffer_;
  bool head_done_ = false;
  size_t body_expected_ = 0;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
  State state_ = State::kNeedMore;
};

/// Parses a complete serialised response (status line, headers, body) as
/// read by a Connection: close client. Returns false on malformed input.
/// If Content-Length is present, the body is truncated/validated against it;
/// otherwise everything after the blank line is the body.
bool ParseHttpResponseBlob(std::string_view blob, int* status,
                           std::map<std::string, std::string>* headers,
                           std::string* body);

}  // namespace htd::net
