#include "net/shard_router.h"

#include <algorithm>
#include <cstdlib>

#include "hypergraph/parser.h"
#include "net/json.h"
#include "service/canonical.h"
#include "util/cli.h"
#include "util/socket.h"

namespace htd::net {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  return JsonErrorResponse(status, message);
}

/// Extracts `"key": <number>` from the flat object `"section": {...}` of a
/// stats body. The stats JSON is the server's own (two levels, flat numeric
/// sections — net/decomposition_server.cc renders it), so plain string
/// search is exact here; this is not a general JSON parser.
bool FindJsonNumber(const std::string& body, const std::string& section,
                    const std::string& key, double* out) {
  size_t section_pos = body.find("\"" + section + "\": {");
  if (section_pos == std::string::npos) return false;
  size_t section_end = body.find('}', section_pos);
  if (section_end == std::string::npos) return false;
  size_t key_pos = body.find("\"" + key + "\": ", section_pos);
  if (key_pos == std::string::npos || key_pos > section_end) return false;
  *out = std::strtod(body.c_str() + key_pos + key.size() + 4, nullptr);
  return true;
}

/// Trailing-'\n'-free copy of a forwarded JSON body, for embedding.
std::string Embed(const std::string& body) {
  std::string out = body;
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "null" : out;
}

}  // namespace

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)),
      health_(static_cast<size_t>(options_.map.num_shards())) {}

std::vector<ShardRouter::ShardStats> ShardRouter::shard_stats() const {
  std::vector<ShardStats> out(health_.size());
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (size_t i = 0; i < health_.size(); ++i) {
    out[i].forwarded = health_[i].forwarded;
    out[i].transport_errors = health_[i].transport_errors;
    out[i].backoff_shed = health_[i].backoff_shed;
    out[i].consecutive_failures = health_[i].consecutive_failures;
    out[i].backing_off = health_[i].retry_at > now;
  }
  return out;
}

bool ShardRouter::InBackoff(int index) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  ShardHealth& health = health_[index];
  if (health.retry_at > std::chrono::steady_clock::now()) {
    ++health.backoff_shed;
    return true;
  }
  return false;
}

void ShardRouter::RecordSuccess(int index) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  health_[index].consecutive_failures = 0;
  health_[index].retry_at = {};
}

void ShardRouter::RecordFailure(int index) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  ShardHealth& health = health_[index];
  ++health.transport_errors;
  health.consecutive_failures =
      std::min(health.consecutive_failures + 1, 30);  // cap the shift below
  const double backoff =
      std::min(options_.backoff_max_seconds,
               options_.backoff_base_seconds *
                   static_cast<double>(1ULL << (health.consecutive_failures - 1)));
  health.retry_at = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(backoff * 1e6));
}

HttpResponse ShardRouter::Forward(int index, const std::string& method,
                                  const std::string& target,
                                  const std::string& body,
                                  const std::string& fingerprint_hex,
                                  double read_timeout_seconds) {
  const service::ShardEndpoint& endpoint = options_.map.endpoint(index);
  if (InBackoff(index)) {
    HttpResponse response = ErrorResponse(
        503, "shard " + std::to_string(index) + " (" + endpoint.host + ":" +
                 std::to_string(endpoint.port) +
                 ") is backing off after transport failures; retry later");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    ++health_[index].forwarded;
  }

  // read_timeout 0 = wait indefinitely (a sync solve with ?timeout=0 has no
  // deadline); SetRecvTimeout cannot unset a timeout, so connect untimed too.
  auto sock = util::ConnectTcp(
      endpoint.host, endpoint.port,
      read_timeout_seconds == 0 ? 0 : options_.connect_timeout_seconds);
  if (!sock.ok()) {
    RecordFailure(index);
    HttpResponse response = ErrorResponse(
        503, "shard " + std::to_string(index) + " (" + endpoint.host + ":" +
                 std::to_string(endpoint.port) +
                 ") unreachable: " + sock.status().message());
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }
  if (read_timeout_seconds > 0) {
    util::SetRecvTimeout(sock->fd(), read_timeout_seconds);
  }

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + endpoint.host + "\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  // Single-hop marker: a router receiving this answers 508, never forwards.
  wire += "X-HTD-Forwarded: 1\r\n";
  wire += "X-HTD-Shard-Digest: " + options_.map.DigestHex() + "\r\n";
  if (!fingerprint_hex.empty()) {
    wire += "X-HTD-Shard-Fingerprint: " + fingerprint_hex + "\r\n";
  }
  wire += "Connection: close\r\n\r\n";
  wire += body;
  if (!util::SendAll(sock->fd(), wire)) {
    RecordFailure(index);
    return ErrorResponse(502, "send to shard " + std::to_string(index) + " failed");
  }

  std::string blob;
  char buffer[16 * 1024];
  while (true) {
    long n = util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n == 0) break;  // orderly close: response complete
    if (n < 0) {
      RecordFailure(index);
      return ErrorResponse(n == -2 ? 504 : 502,
                           "shard " + std::to_string(index) +
                               (n == -2 ? " response timed out" : " recv failed"));
    }
    blob.append(buffer, static_cast<size_t>(n));
  }

  int status = 0;
  std::map<std::string, std::string> headers;
  std::string response_body;
  if (!ParseHttpResponseBlob(blob, &status, &headers, &response_body)) {
    RecordFailure(index);
    return ErrorResponse(502, "shard " + std::to_string(index) +
                                  " sent a malformed HTTP response");
  }
  RecordSuccess(index);

  // Pass the shard's answer through verbatim — status (incl. its own 429/503
  // load shedding), Retry-After, and body; the client's backoff logic works
  // unchanged behind the router.
  HttpResponse response;
  response.status = status;
  response.body = std::move(response_body);
  auto content_type = headers.find("content-type");
  if (content_type != headers.end()) response.content_type = content_type->second;
  auto retry_after = headers.find("retry-after");
  if (retry_after != headers.end()) {
    response.headers.emplace_back("Retry-After", retry_after->second);
  }
  return response;
}

std::vector<HttpResponse> ShardRouter::ForwardAll(const std::string& method,
                                                  const std::string& target,
                                                  double read_timeout_seconds) {
  // Concurrent fan-out: the per-shard exchanges are independent, and doing
  // them sequentially would serialise the connect timeouts of every
  // not-yet-backing-off down shard (k dead shards = k * connect_timeout per
  // stats call, on a router IO thread decompose forwards also need).
  const int n = options_.map.num_shards();
  std::vector<HttpResponse> responses(static_cast<size_t>(n));
  constexpr int kMaxFanOutThreads = 16;
  const int num_threads = std::min(n, kMaxFanOutThreads);
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        responses[static_cast<size_t>(i)] =
            Forward(i, method, target, "", "", read_timeout_seconds);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return responses;
}

HttpResponse ShardRouter::Handle(const HttpRequest& request) {
  if (request.headers.count("x-htd-forwarded") != 0) {
    return ErrorResponse(
        508, "routing loop: this router received an already-forwarded request "
             "(is a router listed in its own --route-to map?)");
  }
  if (request.path == "/healthz") {
    auto stats = shard_stats();
    int backing_off = 0;
    for (const ShardStats& shard : stats) backing_off += shard.backing_off ? 1 : 0;
    HttpResponse response;
    response.body = "{\"ok\": true, \"role\": \"router\", \"shards\": " +
                    std::to_string(options_.map.num_shards()) +
                    ", \"backing_off\": " + std::to_string(backing_off) + "}\n";
    return response;
  }
  if (request.path == "/v1/decompose") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/decompose");
    }
    return HandleDecompose(request);
  }
  if (request.path.rfind("/v1/jobs/", 0) == 0) {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/jobs/<id>");
    }
    return HandleJob(request);
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/stats");
    }
    return HandleStats();
  }
  if (request.path == "/v1/admin/snapshot") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/snapshot");
    }
    return HandleSnapshot();
  }
  return ErrorResponse(404, "unknown route (router): " + request.path);
}

HttpResponse ShardRouter::HandleDecompose(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected a hypergraph in "
                              "HyperBench or PACE format");
  }
  // The router pays one parse + canonicalisation per request to learn the
  // routing key. The shard parses again — the body crosses a process
  // boundary either way, and re-deriving beats trusting a proxy's bytes.
  auto parsed = ParseAuto(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(400,
                         "cannot parse hypergraph: " + parsed.status().message());
  }
  const service::Fingerprint fp = service::CanonicalFingerprint(*parsed);
  const int shard = options_.map.IndexFor(fp);

  const bool async = request.QueryOr("async", "0") == "1";
  double read_timeout = options_.read_timeout_seconds;
  if (!async) {
    // A synchronous solve legitimately runs for the job's own deadline; the
    // forward must outlast it (same policy as hdclient's transport timeout).
    double job_timeout;
    if (util::ParseDoubleFlag(request.QueryOr("timeout", ""), 0.0, &job_timeout)) {
      read_timeout =
          job_timeout == 0 ? 0 : std::max(read_timeout, job_timeout + 60.0);
    }
  }

  HttpResponse response =
      Forward(shard, request.method, request.target, request.body, fp.ToHex(),
              read_timeout);
  if (async && response.status == 202) {
    // Prefix the job id with its shard ("j7" -> "s1.j7") so a later
    // GET /v1/jobs/<id> can route statelessly.
    const std::string marker = "\"job\": \"";
    size_t pos = response.body.find(marker);
    if (pos != std::string::npos) {
      response.body.insert(pos + marker.size(),
                           "s" + std::to_string(shard) + ".");
    }
  }
  return response;
}

HttpResponse ShardRouter::HandleJob(const HttpRequest& request) {
  // Job ids minted through the router are "s<shard>.<id on that shard>".
  std::string id = request.path.substr(sizeof("/v1/jobs/") - 1);
  if (id.size() < 3 || id[0] != 's') {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (router job ids look like s0.j7)");
  }
  size_t dot = id.find('.');
  if (dot == std::string::npos || dot == 1) {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (router job ids look like s0.j7)");
  }
  char* end = nullptr;
  long shard = std::strtol(id.c_str() + 1, &end, 10);
  if (end != id.c_str() + dot || shard < 0 ||
      shard >= options_.map.num_shards()) {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (no such shard in the map)");
  }
  const std::string remote_id = id.substr(dot + 1);
  HttpResponse response =
      Forward(static_cast<int>(shard), "GET", "/v1/jobs/" + remote_id, "", "",
              options_.read_timeout_seconds);
  if (response.status == 200) {
    // Re-prefix the id in the shard's answer so clients can keep polling
    // the value they read back.
    const std::string marker = "\"job\": \"";
    size_t pos = response.body.find(marker);
    if (pos != std::string::npos) {
      response.body.insert(pos + marker.size(),
                           "s" + std::to_string(shard) + ".");
    }
  }
  return response;
}

HttpResponse ShardRouter::HandleStats() {
  // Aggregated keys summed across reachable shards; chosen to cover what
  // operators and the smoke test assert on.
  struct Field {
    const char* section;
    const char* key;
    double sum = 0;
  };
  Field fields[] = {
      {"scheduler", "submitted"}, {"scheduler", "solves"},
      {"scheduler", "cache_hits"}, {"scheduler", "outstanding"},
      {"cache", "hits"}, {"cache", "misses"}, {"cache", "entries"},
      {"subproblem_store", "entries"}, {"admission", "admitted"},
      {"admission", "shed"}, {"admission", "misrouted"},
      {"snapshot", "restored_cache_entries"},
      {"snapshot", "restored_store_entries"},
  };

  // Full read timeout, not the connect timeout: a backend whose IO threads
  // are pinned by long solves answers stats slowly, and timing it out here
  // would RecordFailure a healthy shard into backoff — shedding live
  // decompose traffic because an operator looked at a dashboard.
  std::vector<HttpResponse> responses =
      ForwardAll("GET", "/v1/stats", options_.read_timeout_seconds);
  auto router_stats = shard_stats();
  int reachable = 0;
  std::string shards_json;
  for (int i = 0; i < options_.map.num_shards(); ++i) {
    const service::ShardEndpoint& endpoint = options_.map.endpoint(i);
    HttpResponse& shard_response = responses[static_cast<size_t>(i)];
    if (!shards_json.empty()) shards_json += ", ";
    shards_json += "{\"index\": " + std::to_string(i);
    shards_json += ", \"endpoint\": \"" + JsonEscape(endpoint.host) + ":" +
                   std::to_string(endpoint.port) + "\"";
    shards_json += ", \"forwarded\": " + std::to_string(router_stats[i].forwarded);
    shards_json += ", \"transport_errors\": " +
                   std::to_string(router_stats[i].transport_errors);
    shards_json +=
        ", \"backoff_shed\": " + std::to_string(router_stats[i].backoff_shed);
    if (shard_response.status == 200) {
      ++reachable;
      for (Field& field : fields) {
        double value = 0;
        if (FindJsonNumber(shard_response.body, field.section, field.key, &value)) {
          field.sum += value;
        }
      }
      shards_json += ", \"reachable\": true, \"stats\": " +
                     Embed(shard_response.body);
    } else {
      shards_json += ", \"reachable\": false, \"status\": " +
                     std::to_string(shard_response.status);
    }
    shards_json += "}";
  }

  std::string body = "{\"role\": \"router\"";
  body += ", \"shard_count\": " + std::to_string(options_.map.num_shards());
  body += ", \"reachable\": " + std::to_string(reachable);
  body += ", \"map_digest\": \"" + options_.map.DigestHex() + "\"";
  body += ", \"aggregate\": {";
  bool first = true;
  for (const Field& field : fields) {
    if (!first) body += ", ";
    first = false;
    body += "\"" + std::string(field.section) + "_" + field.key + "\": " +
            std::to_string(static_cast<long long>(field.sum));
  }
  body += "}, \"shards\": [" + shards_json + "]}\n";

  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse ShardRouter::HandleSnapshot() {
  std::vector<HttpResponse> responses =
      ForwardAll("POST", "/v1/admin/snapshot", options_.read_timeout_seconds);
  bool all_saved = true;
  std::string shards_json;
  for (int i = 0; i < options_.map.num_shards(); ++i) {
    HttpResponse& shard_response = responses[static_cast<size_t>(i)];
    if (!shards_json.empty()) shards_json += ", ";
    shards_json += "{\"index\": " + std::to_string(i);
    shards_json += ", \"status\": " + std::to_string(shard_response.status);
    shards_json += ", \"response\": " + Embed(shard_response.body) + "}";
    if (shard_response.status != 200) all_saved = false;
  }
  HttpResponse response;
  // Partial success is a gateway-level failure: some shard's warm state is
  // NOT on disk, and the operator must know before trusting a restart.
  response.status = all_saved ? 200 : 502;
  response.body = std::string("{\"saved\": ") + (all_saved ? "true" : "false") +
                  ", \"shards\": [" + shards_json + "]}\n";
  return response;
}

}  // namespace htd::net
