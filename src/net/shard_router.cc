#include "net/shard_router.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "hypergraph/parser.h"
#include "net/http_client.h"
#include "net/json.h"
#include "net/trace_json.h"
#include "qa/wire.h"
#include "service/canonical.h"
#include "util/cli.h"
#include "util/timer.h"

namespace htd::net {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  return JsonErrorResponse(status, message);
}

/// Route label for the router's per-route latency histogram (closed set,
/// same rationale as the backend's).
const char* RouteLabel(const std::string& path) {
  if (path == "/v1/decompose") return "decompose";
  if (path == "/v1/query") return "query";
  if (path.rfind("/v1/jobs/", 0) == 0) return "jobs";
  if (path == "/v1/stats") return "stats";
  if (path == "/v1/metrics") return "metrics";
  if (path == "/v1/trace") return "trace";
  if (path.rfind("/v1/admin/", 0) == 0) return "admin";
  if (path == "/healthz") return "healthz";
  return "other";
}

/// Trailing-'\n'-free copy of a forwarded JSON body, for embedding.
std::string Embed(const std::string& body) {
  std::string out = body;
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "null" : out;
}

/// Inserts `prefix` in front of the job id in a 202/200 job body.
void PrefixJobIdRaw(HttpResponse* response, const std::string& prefix) {
  const std::string marker = "\"job\": \"";
  size_t pos = response->body.find(marker);
  if (pos != std::string::npos) {
    response->body.insert(pos + marker.size(), prefix);
  }
}

/// Prefixes the job id in a 202 body with the shard AND replica that minted
/// it ("j7" -> "s1r0.j7") so a later GET /v1/jobs/<id> can route statelessly
/// to the exact process. The replica matters: backends mint their own local
/// counters, so "j7" on replica 0 and "j7" on replica 1 are DIFFERENT jobs.
void PrefixJobId(HttpResponse* response, int shard, int replica) {
  PrefixJobIdRaw(response,
                 "s" + std::to_string(shard) + "r" + std::to_string(replica) +
                     ".");
}

}  // namespace

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)) {
  auto maps = std::make_shared<Maps>(options_.map);
  maps->digest_hex = maps->map.DigestHex();
  maps_ = std::move(maps);
  metrics_.SetHelp("htd_router_request_seconds",
                   "Router HTTP request latency by route (includes the "
                   "forwarded exchange).");
}

std::shared_ptr<const ShardRouter::Maps> ShardRouter::maps() const {
  std::lock_guard<std::mutex> lock(maps_mutex_);
  return maps_;
}

bool ShardRouter::transitioning() const {
  return maps()->new_map.has_value();
}

service::ShardMap ShardRouter::current_map() const { return maps()->map; }

util::Status ShardRouter::BeginTransition(const service::ShardMap& new_map) {
  std::lock_guard<std::mutex> lock(maps_mutex_);
  if (new_map.DigestHex() == maps_->digest_hex) {
    return util::Status::InvalidArgument(
        "new map equals the current map (digest " + maps_->digest_hex +
        "); nothing to transition to");
  }
  if (maps_->new_map.has_value()) {
    if (maps_->new_digest_hex == new_map.DigestHex()) {
      return util::Status::Ok();  // idempotent re-announce
    }
    return util::Status::FailedPrecondition(
        "a different transition is already in flight (to digest " +
        maps_->new_digest_hex + "); complete or abort it first");
  }
  auto next = std::make_shared<Maps>(*maps_);
  next->new_map = new_map;
  next->new_digest_hex = new_map.DigestHex();
  maps_ = std::move(next);
  return util::Status::Ok();
}

util::Status ShardRouter::CompleteTransition() {
  std::lock_guard<std::mutex> lock(maps_mutex_);
  if (!maps_->new_map.has_value()) {
    return util::Status::FailedPrecondition("no transition in flight");
  }
  auto next = std::make_shared<Maps>(*maps_->new_map);
  next->digest_hex = maps_->new_digest_hex;
  // Retire the old map into the job-polling history (see Maps::prev_map).
  next->prev_map = maps_->map;
  next->prev_digest_hex = maps_->digest_hex;
  maps_ = std::move(next);
  return util::Status::Ok();
}

util::Status ShardRouter::AbortTransition() {
  std::lock_guard<std::mutex> lock(maps_mutex_);
  if (!maps_->new_map.has_value()) {
    return util::Status::FailedPrecondition("no transition in flight");
  }
  auto next = std::make_shared<Maps>(maps_->map);
  next->digest_hex = maps_->digest_hex;
  next->prev_map = maps_->prev_map;
  next->prev_digest_hex = maps_->prev_digest_hex;
  maps_ = std::move(next);
  return util::Status::Ok();
}

std::vector<ShardRouter::AddressedEndpoint> ShardRouter::AddressedEndpoints(
    const Maps& maps) {
  std::vector<AddressedEndpoint> out;
  std::set<std::string> seen;
  for (int index = 0; index < maps.map.num_shards(); ++index) {
    for (int r = 0; r < maps.map.num_replicas(index); ++r) {
      AddressedEndpoint target;
      target.endpoint = maps.map.replica(index, r);
      target.range = index;
      target.replica = r;
      target.digest_hex = maps.digest_hex;
      seen.insert(HealthKey(target.endpoint));
      out.push_back(std::move(target));
    }
  }
  if (maps.new_map.has_value()) {
    for (int index = 0; index < maps.new_map->num_shards(); ++index) {
      for (int r = 0; r < maps.new_map->num_replicas(index); ++r) {
        AddressedEndpoint target;
        target.endpoint = maps.new_map->replica(index, r);
        if (!seen.insert(HealthKey(target.endpoint)).second) continue;
        target.range = index;
        target.replica = r;
        target.new_map_only = true;
        target.digest_hex = maps.new_digest_hex;
        out.push_back(std::move(target));
      }
    }
  }
  return out;
}

std::vector<ShardRouter::ShardStats> ShardRouter::shard_stats() const {
  return StatsForTargets(AddressedEndpoints(*maps()));
}

std::vector<ShardRouter::ShardStats> ShardRouter::StatsForTargets(
    const std::vector<AddressedEndpoint>& targets) const {
  std::vector<ShardStats> out;
  out.reserve(targets.size());
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (const AddressedEndpoint& target : targets) {
    ShardStats stats;
    stats.host = target.endpoint.host;
    stats.port = target.endpoint.port;
    stats.range = target.range;
    stats.replica = target.replica;
    stats.new_map_only = target.new_map_only;
    auto it = health_.find(HealthKey(target.endpoint));
    if (it != health_.end()) {
      stats.forwarded = it->second.forwarded;
      stats.transport_errors = it->second.transport_errors;
      stats.backoff_shed = it->second.backoff_shed;
      stats.consecutive_failures = it->second.consecutive_failures;
      stats.backing_off = it->second.retry_at > now;
    }
    out.push_back(std::move(stats));
  }
  return out;
}

bool ShardRouter::InBackoff(const std::string& key) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  EndpointHealth& health = health_[key];
  if (health.retry_at > std::chrono::steady_clock::now()) {
    ++health.backoff_shed;
    return true;
  }
  return false;
}

void ShardRouter::RecordSuccess(const std::string& key) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  health_[key].consecutive_failures = 0;
  health_[key].retry_at = {};
}

void ShardRouter::RecordFailure(const std::string& key) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  EndpointHealth& health = health_[key];
  ++health.transport_errors;
  health.consecutive_failures =
      std::min(health.consecutive_failures + 1, 30);  // cap the shift below
  const double backoff =
      std::min(options_.backoff_max_seconds,
               options_.backoff_base_seconds *
                   static_cast<double>(1ULL << (health.consecutive_failures - 1)));
  health.retry_at = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(backoff * 1e6));
}

HttpResponse ShardRouter::ForwardToEndpoint(
    const service::ShardEndpoint& endpoint, const std::string& digest_hex,
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& fingerprint_hex,
    const std::string& request_id_hex, double read_timeout_seconds,
    bool* transport_failed) {
  const std::string key = HealthKey(endpoint);
  *transport_failed = true;
  if (InBackoff(key)) {
    HttpResponse response = ErrorResponse(
        503, "endpoint " + key +
                 " is backing off after transport failures; retry later");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    ++health_[key].forwarded;
  }

  std::vector<std::pair<std::string, std::string>> headers;
  // Single-hop marker: a router receiving this answers 508, never forwards.
  headers.emplace_back("X-HTD-Forwarded", "1");
  headers.emplace_back("X-HTD-Shard-Digest", digest_hex);
  if (!fingerprint_hex.empty()) {
    headers.emplace_back("X-HTD-Shard-Fingerprint", fingerprint_hex);
  }
  if (!request_id_hex.empty()) {
    // The backend adopts this as its root span id, stitching its trace onto
    // the router's "route" span under one request id.
    headers.emplace_back("X-HTD-Request-Id", request_id_hex);
  }
  FetchOptions fetch;
  fetch.connect_timeout_seconds = options_.connect_timeout_seconds;
  fetch.read_timeout_seconds = read_timeout_seconds;
  FetchResult result = HttpFetch(endpoint.host, endpoint.port, method, target,
                                 body, headers, fetch);
  if (!result.ok()) {
    RecordFailure(key);
    switch (result.transport) {
      case FetchResult::Transport::kConnectFailed: {
        HttpResponse response = ErrorResponse(
            503, "endpoint " + key + " unreachable: " + result.error);
        response.headers.emplace_back(
            "Retry-After", std::to_string(options_.retry_after_seconds));
        return response;
      }
      case FetchResult::Transport::kRecvTimeout:
        return ErrorResponse(504, "endpoint " + key + " response timed out");
      case FetchResult::Transport::kParseFailed:
        return ErrorResponse(502, "endpoint " + key +
                                      " sent a malformed HTTP response");
      default:
        return ErrorResponse(502, "exchange with endpoint " + key +
                                      " failed: " + result.error);
    }
  }
  RecordSuccess(key);
  *transport_failed = false;

  // Pass the endpoint's answer through verbatim — status (incl. its own
  // 429/503 load shedding), Retry-After, and body; the client's backoff
  // logic works unchanged behind the router.
  HttpResponse response;
  response.status = result.status;
  response.body = std::move(result.body);
  auto content_type = result.headers.find("content-type");
  if (content_type != result.headers.end()) {
    response.content_type = content_type->second;
  }
  auto retry_after = result.headers.find("retry-after");
  if (retry_after != result.headers.end()) {
    response.headers.emplace_back("Retry-After", retry_after->second);
  }
  // Observability headers pass through: the client sees the backend's stage
  // breakdown and the request id its trace is filed under.
  auto server_timing = result.headers.find("server-timing");
  if (server_timing != result.headers.end()) {
    response.headers.emplace_back("Server-Timing", server_timing->second);
  }
  auto echoed_id = result.headers.find("x-htd-request-id");
  if (echoed_id != result.headers.end()) {
    response.headers.emplace_back("X-HTD-Request-Id", echoed_id->second);
  }
  return response;
}

HttpResponse ShardRouter::ForwardToRange(
    const service::ShardMap& map, int index, const std::string& digest_hex,
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& fingerprint_hex,
    const std::string& request_id_hex, double read_timeout_seconds,
    util::TraceParent trace, int* served_replica) {
  // Round-robin over the range's replicas, failing over on transport-level
  // trouble (down or backing off). A replica's own HTTP answer — including
  // its 429/503 load shedding — is final: overload on one replica is not a
  // license to double the fleet-wide load by retrying siblings.
  const int replicas = map.num_replicas(index);
  const int start =
      static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<uint64_t>(replicas));
  HttpResponse last;
  bool answered = false;
  for (int attempt = 0; attempt < replicas; ++attempt) {
    const int r = (start + attempt) % replicas;
    bool transport_failed = false;
    // One span per attempt, tagged with the owning (range, replica) — a
    // trace of a failover shows every endpoint tried, not just the winner.
    util::TraceScope span(
        "forward", trace,
        (static_cast<uint64_t>(index) << 8) | static_cast<uint64_t>(r));
    HttpResponse response =
        ForwardToEndpoint(map.replica(index, r), digest_hex, method, target,
                          body, fingerprint_hex, request_id_hex,
                          read_timeout_seconds, &transport_failed);
    if (!transport_failed) {
      if (served_replica != nullptr) *served_replica = r;
      return response;
    }
    last = std::move(response);
    answered = true;
  }
  if (answered) return last;  // every replica down/backing off: best error
  HttpResponse response = ErrorResponse(
      503, "every replica of shard " + std::to_string(index) +
               " is backing off; retry later");
  response.headers.emplace_back("Retry-After",
                                std::to_string(options_.retry_after_seconds));
  return response;
}

std::vector<HttpResponse> ShardRouter::ForwardAll(
    const std::vector<AddressedEndpoint>& targets, const std::string& method,
    const std::string& target, double read_timeout_seconds) {
  // Concurrent fan-out: the per-endpoint exchanges are independent, and
  // doing them sequentially would serialise the connect timeouts of every
  // not-yet-backing-off down endpoint (k dead endpoints = k *
  // connect_timeout per stats call, on a router IO thread decompose
  // forwards also need).
  const int n = static_cast<int>(targets.size());
  std::vector<HttpResponse> responses(static_cast<size_t>(n));
  constexpr int kMaxFanOutThreads = 16;
  const int num_threads = std::min(n, kMaxFanOutThreads);
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        bool transport_failed = false;
        responses[static_cast<size_t>(i)] = ForwardToEndpoint(
            targets[static_cast<size_t>(i)].endpoint,
            targets[static_cast<size_t>(i)].digest_hex, method, target, "", "",
            "", read_timeout_seconds, &transport_failed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return responses;
}

HttpResponse ShardRouter::Handle(const HttpRequest& request) {
  util::WallTimer timer;
  HttpResponse response = Dispatch(request);
  metrics_
      .GetHistogram("htd_router_request_seconds",
                    std::string("route=\"") + RouteLabel(request.path) + "\"")
      .Observe(timer.ElapsedSeconds());
  return response;
}

HttpResponse ShardRouter::Dispatch(const HttpRequest& request) {
  if (request.headers.count("x-htd-forwarded") != 0) {
    return ErrorResponse(
        508, "routing loop: this router received an already-forwarded request "
             "(is a router listed in its own --route-to map?)");
  }
  if (request.path == "/healthz") {
    auto snapshot = maps();
    auto stats = StatsForTargets(AddressedEndpoints(*snapshot));
    int backing_off = 0;
    for (const ShardStats& endpoint : stats) {
      backing_off += endpoint.backing_off ? 1 : 0;
    }
    HttpResponse response;
    response.body =
        "{\"ok\": true, \"role\": \"router\", \"shards\": " +
        std::to_string(snapshot->map.num_shards()) +
        ", \"endpoints\": " + std::to_string(stats.size()) +
        ", \"backing_off\": " + std::to_string(backing_off) +
        ", \"transitioning\": " +
        (snapshot->new_map.has_value() ? "true" : "false") + "}\n";
    return response;
  }
  if (request.path == "/v1/decompose") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/decompose");
    }
    return HandleDecompose(request);
  }
  if (request.path == "/v1/query") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/query");
    }
    return HandleQuery(request);
  }
  if (request.path.rfind("/v1/jobs/", 0) == 0) {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/jobs/<id>");
    }
    return HandleJob(request);
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/stats");
    }
    return HandleStats();
  }
  if (request.path == "/v1/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/metrics");
    }
    return HandleMetrics();
  }
  if (request.path == "/v1/trace") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/trace");
    }
    return HandleTrace(request);
  }
  if (request.path == "/v1/admin/snapshot") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/snapshot");
    }
    return HandleSnapshot();
  }
  if (request.path == "/v1/admin/transition") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/transition");
    }
    return HandleTransition(request);
  }
  return ErrorResponse(404, "unknown route (router): " + request.path);
}

HttpResponse ShardRouter::HandleDecompose(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected a hypergraph in "
                              "HyperBench or PACE format");
  }
  // The router pays one parse + canonicalisation per request to learn the
  // routing key. The shard parses again — the body crosses a process
  // boundary either way, and re-deriving beats trusting a proxy's bytes.
  auto parsed = ParseAuto(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(400,
                         "cannot parse hypergraph: " + parsed.status().message());
  }
  return RouteByFingerprint(request, service::CanonicalFingerprint(*parsed));
}

HttpResponse ShardRouter::HandleQuery(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected an HTDQUERY1 query "
                              "request (docs/QUERIES.md)");
  }
  // The routing key is the fingerprint of the query's hypergraph — the same
  // key the backend decomposes under, so repeated queries (and their k-sweep
  // probes) warm exactly the shard this router will ask again.
  auto parsed = qa::ParseQueryRequest(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(
        400, "cannot parse query request: " + parsed.status().message());
  }
  return RouteByFingerprint(
      request, service::CanonicalFingerprint(cq::QueryHypergraph(parsed->query)));
}

HttpResponse ShardRouter::RouteByFingerprint(const HttpRequest& request,
                                             const service::Fingerprint& fp) {
  auto snapshot = maps();

  const bool async = request.QueryOr("async", "0") == "1";
  double read_timeout = options_.read_timeout_seconds;
  if (!async) {
    // A synchronous solve legitimately runs for the job's own deadline; the
    // forward must outlast it (same policy as hdclient's transport timeout).
    double job_timeout;
    if (util::ParseDoubleFlag(request.QueryOr("timeout", ""), 0.0, &job_timeout)) {
      read_timeout =
          job_timeout == 0 ? 0 : std::max(read_timeout, job_timeout + 60.0);
    }
  }

  // One request id for the whole fleet trip: the router's root span, every
  // forward attempt, and the backend's own trace all file under it, and the
  // client reads it back from X-HTD-Request-Id.
  const uint64_t request_id = util::TraceRegistry::Instance().NextId();
  const std::string request_id_hex = util::TraceIdHex(request_id);
  util::TraceScope root_span("route", util::TraceRootId{request_id});
  const util::TraceParent forward_trace{request_id, request_id};

  // Current owner first: during a live reshard the donor still holds the
  // warm entry, so routing by the old map preserves every cache hit until
  // the fleet flips.
  const int owner = snapshot->map.IndexFor(fp);
  root_span.set_tag(static_cast<uint64_t>(owner));
  int served_replica = 0;
  HttpResponse response =
      ForwardToRange(snapshot->map, owner, snapshot->digest_hex, request.method,
                     request.target, request.body, fp.ToHex(), request_id_hex,
                     read_timeout, forward_trace, &served_replica);
  int served_by = owner;
  if (snapshot->new_map.has_value() &&
      (response.status == 421 || response.status == 502 ||
       response.status == 503 || response.status == 504)) {
    // Double-route: the old owner already finalised onto the new map (421)
    // or is gone mid-handover — retry the NEW owner under the new digest so
    // the client never sees the topology change. Exception: when the new
    // owner is served by the SAME processes, a 5xx is that process's own
    // answer (its load shedding, its timeout) — re-sending the body there
    // would double the load on an endpoint that just asked us to back off.
    // A 421 still retries: it means "wrong digest", and the new digest is
    // exactly the cure.
    const int new_owner = snapshot->new_map->IndexFor(fp);
    std::set<std::string> old_keys, new_keys;
    for (int r = 0; r < snapshot->map.num_replicas(owner); ++r) {
      old_keys.insert(HealthKey(snapshot->map.replica(owner, r)));
    }
    for (int r = 0; r < snapshot->new_map->num_replicas(new_owner); ++r) {
      new_keys.insert(HealthKey(snapshot->new_map->replica(new_owner, r)));
    }
    if (response.status == 421 || new_keys != old_keys) {
      response = ForwardToRange(*snapshot->new_map, new_owner,
                                snapshot->new_digest_hex, request.method,
                                request.target, request.body, fp.ToHex(),
                                request_id_hex, read_timeout, forward_trace,
                                &served_replica);
      served_by = new_owner;
    }
  }
  if (async && response.status == 202) {
    PrefixJobId(&response, served_by, served_replica);
  }
  // A router-generated error (every replica down) never touched a backend,
  // so no echoed id passed through — attach ours so the client can still
  // find the router-side trace of the failed routing attempt.
  bool has_id = false;
  for (const auto& header : response.headers) {
    if (header.first == "X-HTD-Request-Id") has_id = true;
  }
  if (!has_id) {
    response.headers.emplace_back("X-HTD-Request-Id", request_id_hex);
  }
  return response;
}

HttpResponse ShardRouter::HandleJob(const HttpRequest& request) {
  // Job ids minted through the router are "s<shard>r<replica>.<id on that
  // process>" — backends mint their own local counters, so the replica slot
  // is part of the identity ("j7" on two replicas = two different jobs).
  // Bare "s<shard>.<id>" ids (pre-replication) poll every replica.
  std::string id = request.path.substr(sizeof("/v1/jobs/") - 1);
  if (id.size() < 3 || id[0] != 's') {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (router job ids look like s0r0.j7)");
  }
  size_t dot = id.find('.');
  if (dot == std::string::npos || dot == 1) {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (router job ids look like s0r0.j7)");
  }
  char* end = nullptr;
  long shard = std::strtol(id.c_str() + 1, &end, 10);
  long replica = -1;  // -1 = unqualified: poll every replica
  bool prefix_ok = end != id.c_str() + 1;
  if (prefix_ok && end != id.c_str() + dot) {
    if (*end == 'r') {
      char* replica_end = nullptr;
      replica = std::strtol(end + 1, &replica_end, 10);
      prefix_ok = replica_end == id.c_str() + dot && replica >= 0;
    } else {
      prefix_ok = false;
    }
  }
  auto snapshot = maps();
  // The job lives on whichever replica admitted it, under whichever map
  // minted the id: the current map, the incoming one mid-transition, or —
  // for a job admitted just before a flip — the map the last transition
  // retired. Poll every candidate until one recognises the id.
  std::vector<std::pair<const service::ShardMap*, const std::string*>>
      generations;
  generations.emplace_back(&snapshot->map, &snapshot->digest_hex);
  if (snapshot->new_map.has_value()) {
    generations.emplace_back(&*snapshot->new_map, &snapshot->new_digest_hex);
  }
  if (snapshot->prev_map.has_value()) {
    generations.emplace_back(&*snapshot->prev_map, &snapshot->prev_digest_hex);
  }
  bool in_some_map = false;
  for (const auto& [map, digest] : generations) {
    in_some_map = in_some_map || shard < map->num_shards();
  }
  if (!prefix_ok || shard < 0 || !in_some_map) {
    return ErrorResponse(404, "unknown job id: " + id +
                                  " (no such shard in the map)");
  }
  const std::string remote_id = id.substr(dot + 1);

  std::vector<std::pair<service::ShardEndpoint, std::string>> candidates;
  std::set<std::string> seen;
  for (const auto& [map, digest] : generations) {
    if (shard >= map->num_shards()) continue;
    for (int r = 0; r < map->num_replicas(static_cast<int>(shard)); ++r) {
      if (replica >= 0 && r != replica) continue;
      const service::ShardEndpoint& endpoint =
          map->replica(static_cast<int>(shard), r);
      if (seen.insert(HealthKey(endpoint)).second) {
        candidates.emplace_back(endpoint, *digest);
      }
    }
  }

  HttpResponse last = ErrorResponse(404, "unknown job id: " + id);
  for (const auto& [endpoint, digest_hex] : candidates) {
    bool transport_failed = false;
    HttpResponse response = ForwardToEndpoint(
        endpoint, digest_hex, "GET", "/v1/jobs/" + remote_id, "", "", "",
        options_.read_timeout_seconds, &transport_failed);
    if (!transport_failed && response.status != 404) {
      if (response.status == 200) {
        // Re-prefix the id in the shard's answer with the ORIGINAL prefix
        // so clients can keep polling the value they read back.
        PrefixJobIdRaw(&response, id.substr(0, dot + 1));
      }
      return response;
    }
    last = std::move(response);
  }
  return last;
}

HttpResponse ShardRouter::HandleStats() {
  // Aggregated keys summed across reachable endpoints; chosen to cover what
  // operators and the smoke test assert on.
  struct Field {
    const char* section;
    const char* key;
    double sum = 0;
  };
  Field fields[] = {
      {"scheduler", "submitted"}, {"scheduler", "solves"},
      {"scheduler", "cache_hits"}, {"scheduler", "outstanding"},
      {"cache", "hits"}, {"cache", "misses"}, {"cache", "entries"},
      {"subproblem_store", "entries"}, {"admission", "admitted"},
      {"admission", "shed"}, {"admission", "misrouted"},
      {"migration", "imported_cache_entries"},
      {"migration", "imported_store_entries"},
      {"migration", "migrated_out_entries"},
      {"snapshot", "restored_cache_entries"},
      {"snapshot", "restored_store_entries"},
  };

  auto snapshot = maps();
  std::vector<AddressedEndpoint> targets = AddressedEndpoints(*snapshot);
  // Full read timeout, not the connect timeout: a backend whose IO threads
  // are pinned by long solves answers stats slowly, and timing it out here
  // would RecordFailure a healthy endpoint into backoff — shedding live
  // decompose traffic because an operator looked at a dashboard.
  std::vector<HttpResponse> responses =
      ForwardAll(targets, "GET", "/v1/stats", options_.read_timeout_seconds);
  // Health rows for the SAME target list the fan-out used: re-enumerating
  // endpoints here could race a transition and misattribute counters.
  auto router_stats = StatsForTargets(targets);
  int reachable = 0;
  std::string shards_json;
  for (size_t i = 0; i < targets.size(); ++i) {
    const AddressedEndpoint& target = targets[i];
    HttpResponse& endpoint_response = responses[i];
    if (!shards_json.empty()) shards_json += ", ";
    shards_json += "{\"index\": " + std::to_string(target.range);
    shards_json += ", \"replica\": " + std::to_string(target.replica);
    shards_json += ", \"endpoint\": \"" + JsonEscape(target.endpoint.host) +
                   ":" + std::to_string(target.endpoint.port) + "\"";
    if (target.new_map_only) shards_json += ", \"new_map_only\": true";
    shards_json +=
        ", \"forwarded\": " + std::to_string(router_stats[i].forwarded);
    shards_json += ", \"transport_errors\": " +
                   std::to_string(router_stats[i].transport_errors);
    shards_json +=
        ", \"backoff_shed\": " + std::to_string(router_stats[i].backoff_shed);
    if (endpoint_response.status == 200) {
      ++reachable;
      for (Field& field : fields) {
        double value = 0;
        if (FindJsonNumber(endpoint_response.body, field.section, field.key,
                           &value)) {
          field.sum += value;
        }
      }
      shards_json += ", \"reachable\": true, \"stats\": " +
                     Embed(endpoint_response.body);
    } else {
      shards_json += ", \"reachable\": false, \"status\": " +
                     std::to_string(endpoint_response.status);
    }
    shards_json += "}";
  }

  std::string body = "{\"role\": \"router\"";
  body += ", \"shard_count\": " + std::to_string(snapshot->map.num_shards());
  body += ", \"endpoint_count\": " + std::to_string(targets.size());
  body += ", \"reachable\": " + std::to_string(reachable);
  body += ", \"map_digest\": \"" + snapshot->digest_hex + "\"";
  body += std::string(", \"transitioning\": ") +
          (snapshot->new_map.has_value() ? "true" : "false");
  if (snapshot->new_map.has_value()) {
    body += ", \"new_map_digest\": \"" + snapshot->new_digest_hex + "\"";
  }
  body += ", \"aggregate\": {";
  bool first = true;
  for (const Field& field : fields) {
    if (!first) body += ", ";
    first = false;
    body += "\"" + std::string(field.section) + "_" + field.key + "\": " +
            std::to_string(static_cast<long long>(field.sum));
  }
  body += "}, \"shards\": [" + shards_json + "]}\n";

  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse ShardRouter::HandleMetrics() {
  auto snapshot = maps();
  std::vector<AddressedEndpoint> targets = AddressedEndpoints(*snapshot);
  std::vector<HttpResponse> responses =
      ForwardAll(targets, "GET", "/v1/metrics", options_.read_timeout_seconds);

  // Aggregate the backend scrapes into one Prometheus page: identical
  // series (same name and label set) are SUMMED — counters add, histogram
  // bucket counts add, gauges add (entries/bytes gauges are fleet totals) —
  // while each family's first-seen HELP/TYPE lines are kept once. Family
  // grouping is preserved because the text format requires one contiguous
  // block per metric family.
  struct Family {
    std::vector<std::string> meta;          ///< "# HELP"/"# TYPE" lines
    std::vector<std::string> series_order;  ///< series keys, first seen first
    std::map<std::string, double> values;
  };
  std::vector<std::string> family_order;
  std::map<std::string, Family> families;
  auto family_of = [](const std::string& series) {
    size_t cut = series.find_first_of("{ ");
    return cut == std::string::npos ? series : series.substr(0, cut);
  };
  int scraped = 0;
  for (const HttpResponse& endpoint_response : responses) {
    if (endpoint_response.status != 200) continue;
    ++scraped;
    size_t pos = 0;
    const std::string& text = endpoint_response.body;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# HELP <name> ..." / "# TYPE <name> ...": third token = family.
        size_t name_start = line.find(' ', 2);
        if (name_start == std::string::npos) continue;
        ++name_start;
        size_t name_end = line.find(' ', name_start);
        const std::string family =
            line.substr(name_start, name_end == std::string::npos
                                        ? std::string::npos
                                        : name_end - name_start);
        if (families.find(family) == families.end()) {
          family_order.push_back(family);
        }
        Family& entry = families[family];
        bool seen = false;
        for (const std::string& meta : entry.meta) seen = seen || meta == line;
        if (!seen) entry.meta.push_back(line);
        continue;
      }
      size_t value_cut = line.rfind(' ');
      if (value_cut == std::string::npos) continue;
      const std::string key = line.substr(0, value_cut);
      char* end = nullptr;
      const std::string value_text = line.substr(value_cut + 1);
      double value = std::strtod(value_text.c_str(), &end);
      if (end != value_text.c_str() + value_text.size()) continue;
      const std::string family = family_of(key);
      if (families.find(family) == families.end()) {
        family_order.push_back(family);
      }
      Family& entry = families[family];
      if (entry.values.find(key) == entry.values.end()) {
        entry.series_order.push_back(key);
      }
      entry.values[key] += value;
    }
  }

  std::string body;
  body += "# HELP htd_fleet_endpoints_scraped Backends that answered this "
          "aggregated scrape.\n";
  body += "# TYPE htd_fleet_endpoints_scraped gauge\n";
  body += "htd_fleet_endpoints_scraped " + std::to_string(scraped) + "\n";
  body += "# HELP htd_fleet_endpoints Backends addressed by the router.\n";
  body += "# TYPE htd_fleet_endpoints gauge\n";
  body += "htd_fleet_endpoints " + std::to_string(targets.size()) + "\n";
  for (const std::string& family : family_order) {
    const Family& entry = families[family];
    for (const std::string& meta : entry.meta) body += meta + "\n";
    for (const std::string& key : entry.series_order) {
      body += key + " " + util::FormatMetricValue(entry.values.at(key)) + "\n";
    }
  }
  // Router-local series last; htd_router_* names never collide with the
  // summed backend families.
  body += metrics_.RenderPrometheus();

  HttpResponse response;
  // Prometheus text exposition format 0.0.4.
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.status = scraped > 0 || targets.empty() ? 200 : 502;
  response.body = std::move(body);
  return response;
}

HttpResponse ShardRouter::HandleTrace(const HttpRequest& request) {
  long n;
  if (!util::ParseIntFlag(request.QueryOr("n", "16"), 1, 256, &n)) {
    return ErrorResponse(400, "query parameter n must be an integer in [1, 256]");
  }
  HttpResponse response;
  response.body = RenderRecentTracesJson(static_cast<size_t>(n));
  return response;
}

HttpResponse ShardRouter::HandleSnapshot() {
  auto snapshot = maps();
  std::vector<AddressedEndpoint> targets = AddressedEndpoints(*snapshot);
  std::vector<HttpResponse> responses = ForwardAll(
      targets, "POST", "/v1/admin/snapshot", options_.read_timeout_seconds);
  bool all_saved = true;
  std::string shards_json;
  for (size_t i = 0; i < targets.size(); ++i) {
    HttpResponse& endpoint_response = responses[i];
    if (!shards_json.empty()) shards_json += ", ";
    shards_json += "{\"index\": " + std::to_string(targets[i].range);
    shards_json += ", \"replica\": " + std::to_string(targets[i].replica);
    shards_json += ", \"endpoint\": \"" +
                   JsonEscape(targets[i].endpoint.host) + ":" +
                   std::to_string(targets[i].endpoint.port) + "\"";
    shards_json += ", \"status\": " + std::to_string(endpoint_response.status);
    shards_json += ", \"response\": " + Embed(endpoint_response.body) + "}";
    if (endpoint_response.status != 200) all_saved = false;
  }
  HttpResponse response;
  // Partial success is a gateway-level failure: some process's warm state is
  // NOT on disk, and the operator must know before trusting a restart.
  response.status = all_saved ? 200 : 502;
  response.body = std::string("{\"saved\": ") + (all_saved ? "true" : "false") +
                  ", \"shards\": [" + shards_json + "]}\n";
  return response;
}

HttpResponse ShardRouter::HandleTransition(const HttpRequest& request) {
  if (request.QueryOr("complete", "0") == "1") {
    auto status = CompleteTransition();
    if (!status.ok()) return ErrorResponse(412, status.message());
    auto snapshot = maps();
    HttpResponse response;
    response.body = "{\"transitioning\": false, \"map_digest\": \"" +
                    snapshot->digest_hex + "\", \"completed\": true}\n";
    return response;
  }
  if (request.QueryOr("abort", "0") == "1") {
    auto status = AbortTransition();
    if (!status.ok()) return ErrorResponse(412, status.message());
    auto snapshot = maps();
    HttpResponse response;
    response.body = "{\"transitioning\": false, \"map_digest\": \"" +
                    snapshot->digest_hex + "\", \"aborted\": true}\n";
    return response;
  }
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected the new shard map spec "
                              "(host:port,host:port*2,...)");
  }
  std::string spec = request.body;
  while (!spec.empty() && (spec.back() == '\n' || spec.back() == '\r')) {
    spec.pop_back();
  }
  auto new_map = service::ShardMap::Parse(spec);
  if (!new_map.ok()) {
    return ErrorResponse(400, "cannot parse new shard map: " +
                                  new_map.status().message());
  }
  auto status = BeginTransition(*new_map);
  if (!status.ok()) {
    return ErrorResponse(
        status.code() == util::StatusCode::kFailedPrecondition ? 409 : 400,
        status.message());
  }
  auto snapshot = maps();
  HttpResponse response;
  response.body = "{\"transitioning\": true, \"map_digest\": \"" +
                  snapshot->digest_hex + "\", \"new_map_digest\": \"" +
                  snapshot->new_digest_hex + "\"}\n";
  return response;
}

}  // namespace htd::net
