#include "net/decomposition_server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "decomp/decomp_writer.h"
#include "hypergraph/parser.h"
#include "net/json.h"

namespace htd::net {

namespace {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kYes: return "yes";
    case Outcome::kNo: return "no";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kError: return "error";
  }
  return "?";
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  return JsonErrorResponse(status, message);
}

/// Strict non-negative integer parse; -1 on garbage.
int ParseInt(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || value < 0 || value > 1'000'000'000) {
    return -1;
  }
  return static_cast<int>(value);
}

double ParseSeconds(const std::string& text, double fallback) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || value < 0 || !(value < 1e9)) {
    return -1.0;
  }
  return value;
}

}  // namespace

DecompositionServer::DecompositionServer(DecompositionServerOptions options)
    : options_(std::move(options)) {}

util::StatusOr<std::unique_ptr<DecompositionServer>> DecompositionServer::Create(
    DecompositionServerOptions options) {
  if (options.max_queue_depth < 1) {
    return util::Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.max_k < 1) {
    return util::Status::InvalidArgument("max_k must be >= 1");
  }
  if (options.shard_map.has_value() &&
      (options.shard_index < 0 ||
       options.shard_index >= options.shard_map->num_shards())) {
    return util::Status::InvalidArgument(
        "shard_index must be in [0, " +
        std::to_string(options.shard_map->num_shards()) + ") for shard map " +
        options.shard_map->Serialise());
  }
  // One Retry-After story for both shedding layers (queue bound here,
  // connection bound in the transport).
  options.http.retry_after_seconds = options.retry_after_seconds;
  auto service = service::DecompositionService::Create(options.service);
  if (!service.ok()) return service.status();

  auto server = std::unique_ptr<DecompositionServer>(
      new DecompositionServer(std::move(options)));
  server->service_ = std::move(*service);
  if (server->options_.shard_map.has_value()) {
    server->shard_range_ =
        server->options_.shard_map->RangeFor(server->options_.shard_index);
    server->shard_digest_hex_ = server->options_.shard_map->DigestHex();
  }
  const service::FingerprintRange* range =
      server->options_.shard_map.has_value() ? &server->shard_range_ : nullptr;

  if (!server->options_.snapshot_path.empty() &&
      server->options_.load_snapshot_on_start) {
    auto loaded = service::LoadSnapshot(server->options_.snapshot_path,
                                        server->service_->result_cache(),
                                        server->service_->subproblem_store(),
                                        range);
    if (loaded.ok()) {
      server->restored_ = *loaded;
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      // Corrupt or version-mismatched warm state must not take the server
      // down — log and start cold (verified by tests/net_server_test.cc).
      std::fprintf(stderr, "hdserver: ignoring snapshot %s: %s\n",
                   server->options_.snapshot_path.c_str(),
                   loaded.status().message().c_str());
    }
  }

  server->http_ = std::make_unique<HttpServer>(
      server->options_.http,
      [raw = server.get()](const HttpRequest& request) {
        return raw->Handle(request);
      });
  return server;
}

DecompositionServer::~DecompositionServer() { Stop(); }

util::Status DecompositionServer::Start() { return http_->Start(); }

void DecompositionServer::Stop() {
  if (http_ == nullptr || !http_->running()) return;
  // Refuse new admissions first (503), then keep sweeping cancellations
  // while the listener drains: a handler that passed the stopping_ check
  // can still admit one more flight behind a single CancelAll, and with no
  // deadline that flight would park its handler thread — and HttpServer::
  // Stop()'s WaitIdle — forever.
  stopping_.store(true, std::memory_order_release);
  std::atomic<bool> http_stopped{false};
  std::thread canceller([&] {
    while (!http_stopped.load(std::memory_order_acquire)) {
      service_->CancelAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  http_->Stop();
  http_stopped.store(true, std::memory_order_release);
  canceller.join();
  service_->CancelAll();
  service_->Drain();
}

DecompositionServer::AdmissionStats DecompositionServer::admission_stats() const {
  AdmissionStats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.misrouted = misrouted_.load(std::memory_order_relaxed);
  return stats;
}

util::StatusOr<service::SnapshotStats> DecompositionServer::SaveSnapshotNow() {
  if (options_.snapshot_path.empty()) {
    return util::Status::FailedPrecondition(
        "no snapshot path configured (--snapshot)");
  }
  // One writer at a time: concurrent saves (two /v1/admin/snapshot requests,
  // or one racing the exit save) would interleave on the shared temp file
  // and rename a corrupt snapshot over the good one.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // Recompute the digest the way the service did (it arms solve.subproblem_store
  // before digesting), so the snapshot header matches the cache keys inside.
  SolveOptions solve = options_.service.solve;
  solve.subproblem_store = service_->subproblem_store();
  // A sharded server persists only its own fingerprint range: shard
  // snapshots never overlap, so a fleet's warm state is the disjoint union
  // of its shards' snapshot files.
  const service::FingerprintRange* range =
      options_.shard_map.has_value() ? &shard_range_ : nullptr;
  return service::SaveSnapshot(
      options_.snapshot_path, service_->result_cache(),
      service_->subproblem_store(),
      SolverConfigDigest(options_.service.solver_name, solve), range);
}

HttpResponse DecompositionServer::Handle(const HttpRequest& request) {
  if (request.path == "/healthz") {
    HttpResponse response;
    response.body = "{\"ok\": true}\n";
    return response;
  }
  if (request.path == "/v1/decompose") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/decompose");
    }
    return HandleDecompose(request);
  }
  if (request.path.rfind("/v1/jobs/", 0) == 0) {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/jobs/<id>");
    }
    return HandleJob(request.path.substr(sizeof("/v1/jobs/") - 1));
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/stats");
    }
    return HandleStats();
  }
  if (request.path == "/v1/admin/snapshot") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/snapshot");
    }
    return HandleSnapshot();
  }
  return ErrorResponse(404, "unknown route: " + request.path);
}

HttpResponse DecompositionServer::HandleDecompose(const HttpRequest& request) {
  int k = ParseInt(request.QueryOr("k", ""));
  if (k < 1 || k > options_.max_k) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        400, "query parameter k must be an integer in [1, " +
                 std::to_string(options_.max_k) + "]");
  }
  double timeout = ParseSeconds(request.QueryOr("timeout", ""),
                                service_->options().default_timeout_seconds);
  if (timeout < 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "query parameter timeout must be seconds >= 0");
  }
  const bool async = request.QueryOr("async", "0") == "1";
  const bool include_decomposition = request.QueryOr("decomposition", "0") == "1";
  // In a sharded deployment, a sender that hashed against a different
  // topology must be told so, not silently served — an entry cached here
  // under a foreign range would never be found again after its snapshot is
  // filtered to this shard's slice. `sender_hashed` records that the sender
  // proved it routed with the CURRENT map (digest header present and equal);
  // only then is its fingerprint header trusted below in place of our own
  // canonicalisation.
  bool sender_hashed = false;
  if (options_.shard_map.has_value()) {
    auto digest = request.headers.find("x-htd-shard-digest");
    if (digest != request.headers.end()) {
      if (digest->second != shard_digest_hex_) {
        misrouted_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(
            421, "shard map digest mismatch: this shard is " +
                     std::to_string(options_.shard_index) + "/" +
                     std::to_string(options_.shard_map->num_shards()) + " of " +
                     options_.shard_map->Serialise() + " (digest " +
                     shard_digest_hex_ + "); request was routed by digest " +
                     digest->second);
      }
      sender_hashed = true;
    }
    auto fp_header = request.headers.find("x-htd-shard-fingerprint");
    if (fp_header != request.headers.end()) {
      service::Fingerprint fp;
      if (!service::Fingerprint::FromHex(fp_header->second, &fp)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(400, "x-htd-shard-fingerprint must be 32 hex digits");
      }
      if (!shard_range_.Contains(fp)) {
        misrouted_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(
            421, "misrouted: fingerprint " + fp_header->second +
                     " is outside shard " + std::to_string(options_.shard_index) +
                     "'s range");
      }
    } else {
      sender_hashed = false;  // a digest without a fingerprint proves nothing
    }
  }
  if (request.body.empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "empty body: expected a hypergraph in "
                              "HyperBench or PACE format");
  }

  // Shedding comes BEFORE the body parse: an overloaded server must reject
  // in O(1), not pay a parse proportional to the body it is about to refuse.
  if (stopping_.load(std::memory_order_acquire)) {
    return ErrorResponse(503, "server is shutting down");
  }
  // Admission control: shed rather than queue without bound. The counter is
  // sampled lock-free and approximate (see the header comment); overshoot
  // on the order of the IO thread count is within the bound's semantics
  // (docs/SERVER.md).
  if (service_->outstanding_jobs() >=
      static_cast<uint64_t>(options_.max_queue_depth)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response = ErrorResponse(
        429, "queue full: " + std::to_string(options_.max_queue_depth) +
                 " jobs outstanding; retry later");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }

  auto parsed = ParseAuto(request.body);
  if (!parsed.ok()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "cannot parse hypergraph: " +
                                  parsed.status().message());
  }
  if (options_.shard_map.has_value() && !sender_hashed) {
    // The sender did not prove it hashed with the current map (no digest
    // header, or no fingerprint header to go with it — e.g. a client
    // talking to a shard directly, without --shards, or one sending a
    // crafted fingerprint alone). Enforce the range on OUR fingerprint:
    // admitting would warm a foreign range — the entry would be invisible
    // to correctly-routed traffic and silently dropped by the next
    // range-filtered snapshot. (When both headers are present and the
    // digest matches, the sender demonstrably ran IndexFor on the current
    // topology; recomputing here would double-pay canonicalisation on
    // every routed request.)
    const service::Fingerprint fp = service::CanonicalFingerprint(*parsed);
    if (!shard_range_.Contains(fp)) {
      misrouted_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(
          421, "misrouted: instance fingerprint " + fp.ToHex() +
                   " belongs to shard " +
                   std::to_string(options_.shard_map->IndexFor(fp)) +
                   ", this is shard " + std::to_string(options_.shard_index) +
                   " (route via the shard map)");
    }
  }

  auto graph = std::make_shared<const Hypergraph>(std::move(*parsed));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  std::future<service::JobResult> future = service_->Submit(*graph, k, timeout);

  if (!async) {
    service::JobResult job = future.get();
    HttpResponse response;
    response.body = RenderResult(job, *graph, include_decomposition);
    return response;
  }

  const std::string id = "j" + std::to_string(
      next_job_id_.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    AsyncJob record;
    record.future = future.share();
    record.graph = graph;
    record.k = k;
    record.include_decomposition = include_decomposition;
    jobs_.emplace(id, std::move(record));
    job_order_.push_back(id);
    // Evict the oldest *resolved* records over the retention cap; unresolved
    // jobs stay queryable (their count is bounded by admission control).
    for (auto it = job_order_.begin();
         jobs_.size() > options_.max_retained_jobs && it != job_order_.end();) {
      auto found = jobs_.find(*it);
      if (found != jobs_.end() &&
          found->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        jobs_.erase(found);
        it = job_order_.erase(it);
      } else {
        ++it;
      }
    }
  }
  HttpResponse response;
  response.status = 202;
  response.body = "{\"job\": \"" + id + "\", \"state\": \"admitted\"}\n";
  return response;
}

HttpResponse DecompositionServer::HandleJob(const std::string& id) {
  AsyncJob record;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return ErrorResponse(404, "unknown job id: " + id);
    }
    record = it->second;  // shared_future/shared_ptr copies are cheap
  }
  if (record.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    HttpResponse response;
    response.body = "{\"job\": \"" + id + "\", \"state\": \"running\"}\n";
    return response;
  }
  const service::JobResult& job = record.future.get();
  HttpResponse response;
  response.body = "{\"job\": \"" + id + "\", \"state\": \"done\", \"result\": " +
                  RenderResult(job, *record.graph, record.include_decomposition);
  // RenderResult ends with '\n'; splice the wrapper's closing brace in.
  response.body.back() = '}';
  response.body += "\n";
  return response;
}

HttpResponse DecompositionServer::HandleStats() {
  auto scheduler = service_->scheduler_stats();
  auto cache = service_->cache_stats();
  auto store = service_->subproblem_stats();
  AdmissionStats admission = admission_stats();

  std::string body = "{";
  body += "\"scheduler\": {";
  body += "\"submitted\": " + std::to_string(scheduler.submitted);
  body += ", \"solves\": " + std::to_string(scheduler.solves);
  body += ", \"dedup_joins\": " + std::to_string(scheduler.dedup_joins);
  body += ", \"cache_hits\": " + std::to_string(scheduler.cache_hits);
  body += ", \"completed\": " + std::to_string(scheduler.completed);
  body += ", \"queue_depth\": " + std::to_string(service_->queue_depth());
  body += ", \"outstanding\": " + std::to_string(service_->outstanding_jobs());
  body += "}, \"cache\": {";
  body += "\"hits\": " + std::to_string(cache.hits);
  body += ", \"misses\": " + std::to_string(cache.misses);
  body += ", \"insertions\": " + std::to_string(cache.insertions);
  body += ", \"evictions\": " + std::to_string(cache.evictions);
  body += ", \"entries\": " + std::to_string(cache.entries);
  body += ", \"capacity\": " + std::to_string(cache.capacity);
  body += "}, \"subproblem_store\": {";
  body += "\"enabled\": " +
          std::string(service_->options().enable_subproblem_store ? "true" : "false");
  body += ", \"probes\": " + std::to_string(store.probes);
  body += ", \"negative_hits\": " + std::to_string(store.negative_hits);
  body += ", \"positive_hits\": " + std::to_string(store.positive_hits);
  body += ", \"entries\": " + std::to_string(store.entries);
  body += ", \"bytes\": " + std::to_string(store.bytes);
  body += "}, \"admission\": {";
  body += "\"admitted\": " + std::to_string(admission.admitted);
  body += ", \"shed\": " + std::to_string(admission.shed);
  body += ", \"connections_shed\": " + std::to_string(http_->connections_shed());
  body += ", \"bad_requests\": " + std::to_string(admission.bad_requests);
  body += ", \"misrouted\": " + std::to_string(admission.misrouted);
  body += ", \"max_queue_depth\": " + std::to_string(options_.max_queue_depth);
  body += ", \"max_connections\": " + std::to_string(options_.http.max_connections);
  body += "}, \"shard\": {";
  if (options_.shard_map.has_value()) {
    body += "\"enabled\": true";
    body += ", \"index\": " + std::to_string(options_.shard_index);
    body += ", \"count\": " + std::to_string(options_.shard_map->num_shards());
    body += ", \"digest\": \"" + shard_digest_hex_ + "\"";
    char range_buf[64];
    std::snprintf(range_buf, sizeof(range_buf),
                  ", \"range\": \"%016llx-%016llx\"",
                  static_cast<unsigned long long>(shard_range_.first_hi),
                  static_cast<unsigned long long>(shard_range_.last_hi));
    body += range_buf;
  } else {
    body += "\"enabled\": false";
  }
  body += "}, \"snapshot\": {";
  body += "\"path\": \"" + JsonEscape(options_.snapshot_path) + "\"";
  body += ", \"restored_cache_entries\": " + std::to_string(restored_.cache_entries);
  body += ", \"restored_store_entries\": " + std::to_string(restored_.store_entries);
  body += ", \"restored_dropped_out_of_range\": " +
          std::to_string(restored_.dropped_out_of_range);
  body += "}}\n";

  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse DecompositionServer::HandleSnapshot() {
  auto saved = SaveSnapshotNow();
  if (!saved.ok()) {
    int status =
        saved.status().code() == util::StatusCode::kFailedPrecondition ? 412 : 500;
    return ErrorResponse(status, saved.status().message());
  }
  HttpResponse response;
  response.body = "{\"saved\": true, \"cache_entries\": " +
                  std::to_string(saved->cache_entries) +
                  ", \"store_entries\": " + std::to_string(saved->store_entries) +
                  ", \"bytes\": " + std::to_string(saved->bytes) + "}\n";
  return response;
}

std::string DecompositionServer::RenderResult(const service::JobResult& job,
                                              const Hypergraph& graph,
                                              bool include_decomposition) const {
  std::string body = "{";
  body += "\"outcome\": \"" + std::string(OutcomeName(job.result.outcome)) + "\"";
  if (job.result.decomposition.has_value()) {
    body += ", \"width\": " + std::to_string(job.result.decomposition->Width());
  }
  body += std::string(", \"cache_hit\": ") + (job.cache_hit ? "true" : "false");
  body += std::string(", \"deduplicated\": ") +
          (job.deduplicated ? "true" : "false");
  body += ", \"seconds\": " + std::to_string(job.seconds);
  body += ", \"threads_used\": " + std::to_string(job.threads_used);
  body += ", \"fingerprint\": \"" + job.fingerprint.ToHex() + "\"";
  if (include_decomposition && job.result.decomposition.has_value()) {
    body += ", \"decomposition\": " +
            WriteDecompositionJson(graph, *job.result.decomposition);
  }
  body += "}\n";
  return body;
}

}  // namespace htd::net
