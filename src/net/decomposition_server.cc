#include "net/decomposition_server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include <algorithm>

#include "decomp/decomp_writer.h"
#include "hypergraph/parser.h"
#include "net/http_client.h"
#include "qa/wire.h"
#include "service/anti_entropy.h"
#include "net/json.h"
#include "net/trace_json.h"
#include "util/cli.h"
#include "util/timer.h"

namespace htd::net {

namespace {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kYes: return "yes";
    case Outcome::kNo: return "no";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kError: return "error";
  }
  return "?";
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  return JsonErrorResponse(status, message);
}

/// Route label for the per-route latency histogram. A small closed set, so
/// an attacker probing random paths cannot mint unbounded label values.
const char* RouteLabel(const std::string& path) {
  if (path == "/v1/decompose") return "decompose";
  if (path == "/v1/query") return "query";
  if (path.rfind("/v1/jobs/", 0) == 0) return "jobs";
  if (path == "/v1/stats") return "stats";
  if (path == "/v1/metrics") return "metrics";
  if (path == "/v1/trace") return "trace";
  if (path.rfind("/v1/admin/", 0) == 0) return "admin";
  if (path == "/healthz") return "healthz";
  return "other";
}

/// Server-Timing header value (RFC draft syntax: name;dur=millis) for the
/// full stage breakdown of one synchronous decompose.
std::string StageTimingHeader(double parse_seconds,
                              const service::StageBreakdown& stages,
                              double serialise_seconds) {
  auto dur = [](const char* name, double seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s;dur=%.3f", name, seconds * 1e3);
    return std::string(buf);
  };
  return dur("parse", parse_seconds) + ", " +
         dur("fingerprint", stages.fingerprint_seconds) + ", " +
         dur("cache", stages.cache_seconds) + ", " +
         dur("schedule", stages.schedule_seconds) + ", " +
         dur("solve", stages.solve_seconds) + ", " +
         dur("serialise", serialise_seconds);
}

/// Server-Timing for one synchronous /v1/query: the query engine's stage
/// split plus the transport-side parse/serialise bookends.
std::string QueryTimingHeader(double parse_seconds,
                              const qa::QueryAnswer& answer,
                              double serialise_seconds) {
  auto dur = [](const char* name, double seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s;dur=%.3f", name, seconds * 1e3);
    return std::string(buf);
  };
  return dur("parse", parse_seconds) + ", " +
         dur("decompose", answer.decompose_seconds) + ", " +
         dur("pick", answer.pick_seconds) + ", " +
         dur("execute", answer.execute_seconds) + ", " +
         dur("serialise", serialise_seconds);
}

/// Strict non-negative integer parse; -1 on garbage.
int ParseInt(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || value < 0 || value > 1'000'000'000) {
    return -1;
  }
  return static_cast<int>(value);
}

double ParseSeconds(const std::string& text, double fallback) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || value < 0 || !(value < 1e9)) {
    return -1.0;
  }
  return value;
}

std::string HexRange(const service::FingerprintRange& range) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(range.first_hi),
                static_cast<unsigned long long>(range.last_hi));
  return std::string(buf);
}

/// Parses "HEX-HEX" (1..16 hex digits each side, first <= last) — the wire
/// form of a fingerprint hi-range, matching the rendering in /v1/stats.
bool ParseHexRange(const std::string& text, service::FingerprintRange* out) {
  size_t dash = text.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= text.size()) {
    return false;
  }
  auto parse_half = [](std::string_view half, uint64_t* value) {
    if (half.empty() || half.size() > 16) return false;
    *value = 0;
    for (char c : half) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return false;
      *value = (*value << 4) | static_cast<uint64_t>(digit);
    }
    return true;
  };
  uint64_t first, last;
  if (!parse_half(std::string_view(text).substr(0, dash), &first) ||
      !parse_half(std::string_view(text).substr(dash + 1), &last)) {
    return false;
  }
  if (first > last) return false;
  out->first_hi = first;
  out->last_hi = last;
  return true;
}

/// Intersection of two hi-ranges; false when they are disjoint.
bool Intersect(const service::FingerprintRange& a,
               const service::FingerprintRange& b,
               service::FingerprintRange* out) {
  const uint64_t first = a.first_hi > b.first_hi ? a.first_hi : b.first_hi;
  const uint64_t last = a.last_hi < b.last_hi ? a.last_hi : b.last_hi;
  if (first > last) return false;
  out->first_hi = first;
  out->last_hi = last;
  return true;
}

using ShardState = DecompositionServer::ShardState;

/// True when a request routed by `digest_hex` may be served here: the
/// current digest, or — mid-migration — the incoming topology's digest.
bool DigestAccepted(const ShardState& state, const std::string& digest_hex) {
  return digest_hex == state.digest_hex ||
         (state.transitioning() && digest_hex == state.new_digest_hex);
}

/// True when `fp` is in a range this server currently answers for: its old
/// range, or — mid-migration, when it stays in the fleet — its new one.
bool RangeAccepted(const ShardState& state, const service::Fingerprint& fp) {
  return state.range.Contains(fp) ||
         (state.transitioning() && state.new_index >= 0 &&
          state.new_range.Contains(fp));
}

/// The smallest single interval covering everything this server accepts.
/// Used by /v1/admin/import (an operator/migration path): precise enough to
/// refuse clearly-foreign entries while staying one DecodeSnapshot pass.
service::FingerprintRange CoveringRange(const ShardState& state) {
  service::FingerprintRange covering = state.range;
  if (state.transitioning() && state.new_index >= 0) {
    if (state.new_range.first_hi < covering.first_hi) {
      covering.first_hi = state.new_range.first_hi;
    }
    if (state.new_range.last_hi > covering.last_hi) {
      covering.last_hi = state.new_range.last_hi;
    }
  }
  return covering;
}

}  // namespace

DecompositionServer::DecompositionServer(DecompositionServerOptions options)
    : options_(std::move(options)) {}

util::StatusOr<std::unique_ptr<DecompositionServer>> DecompositionServer::Create(
    DecompositionServerOptions options) {
  if (options.max_queue_depth < 1) {
    return util::Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.max_k < 1) {
    return util::Status::InvalidArgument("max_k must be >= 1");
  }
  if (options.shard_map.has_value() &&
      (options.shard_index < 0 ||
       options.shard_index >= options.shard_map->num_shards())) {
    return util::Status::InvalidArgument(
        "shard_index must be in [0, " +
        std::to_string(options.shard_map->num_shards()) + ") for shard map " +
        options.shard_map->Serialise());
  }
  if (options.anti_entropy_interval_seconds < 0 ||
      !(options.anti_entropy_interval_seconds < 1e9)) {
    return util::Status::InvalidArgument(
        "anti_entropy_interval_seconds must be >= 0 (0 disables the sweep)");
  }
  if (options.anti_entropy_interval_seconds > 0 &&
      !options.shard_map.has_value()) {
    return util::Status::InvalidArgument(
        "anti-entropy needs a shard map: --anti-entropy-interval without "
        "--shard-map/--shard-index has no replica siblings to reconcile");
  }
  if (options.anti_entropy_slices < 1 || options.anti_entropy_slices > 4096) {
    return util::Status::InvalidArgument(
        "anti_entropy_slices must be in [1, 4096]");
  }
  std::optional<service::ShardEndpoint> ae_self;
  if (!options.anti_entropy_self.empty()) {
    const std::string& self_text = options.anti_entropy_self;
    size_t colon = self_text.rfind(':');
    long self_port;
    if (colon == std::string::npos || colon == 0 ||
        !util::ParseIntFlag(self_text.substr(colon + 1), 1, 65535,
                            &self_port)) {
      return util::Status::InvalidArgument(
          "anti_entropy_self must be host:port, got \"" + self_text + "\"");
    }
    ae_self = service::ShardEndpoint{self_text.substr(0, colon),
                                     static_cast<int>(self_port)};
  }
  // One Retry-After story for both shedding layers (queue bound here,
  // connection bound in the transport).
  options.http.retry_after_seconds = options.retry_after_seconds;
  auto service = service::DecompositionService::Create(options.service);
  if (!service.ok()) return service.status();

  auto server = std::unique_ptr<DecompositionServer>(
      new DecompositionServer(std::move(options)));
  server->service_ = std::move(*service);
  server->query_engine_ = std::make_unique<qa::QueryEngine>(
      server->service_.get(), server->options_.query);
  server->ae_self_ = std::move(ae_self);
  if (server->options_.shard_map.has_value()) {
    auto state = std::make_shared<ShardState>(*server->options_.shard_map);
    state->index = server->options_.shard_index;
    state->range = state->map.RangeFor(state->index);
    state->digest_hex = state->map.DigestHex();
    server->shard_state_ = std::move(state);
  }
  auto shard = server->shard_state();
  const service::FingerprintRange* range =
      shard != nullptr ? &shard->range : nullptr;

  if (!server->options_.snapshot_path.empty() &&
      server->options_.load_snapshot_on_start) {
    auto loaded = service::LoadSnapshot(server->options_.snapshot_path,
                                        server->service_->result_cache(),
                                        server->service_->subproblem_store(),
                                        range);
    if (loaded.ok()) {
      server->restored_ = *loaded;
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      // Corrupt or version-mismatched warm state must not take the server
      // down — log and start cold (verified by tests/net_server_test.cc).
      std::fprintf(stderr, "hdserver: ignoring snapshot %s: %s\n",
                   server->options_.snapshot_path.c_str(),
                   loaded.status().message().c_str());
    }
  }

  server->http_ = std::make_unique<HttpServer>(
      server->options_.http,
      [raw = server.get()](const HttpRequest& request) {
        return raw->Handle(request);
      });
  server->BindMetrics();
  return server;
}

void DecompositionServer::BindMetrics() {
  util::MetricsRegistry& metrics = service_->metrics();
  metrics.SetHelp("htd_admission_requests_total",
                  "Admission outcomes (admitted, shed, bad_request, "
                  "misrouted).");
  admitted_ =
      &metrics.GetCounter("htd_admission_requests_total", "result=\"admitted\"");
  shed_ = &metrics.GetCounter("htd_admission_requests_total", "result=\"shed\"");
  bad_requests_ = &metrics.GetCounter("htd_admission_requests_total",
                                      "result=\"bad_request\"");
  misrouted_ = &metrics.GetCounter("htd_admission_requests_total",
                                   "result=\"misrouted\"");
  metrics.SetHelp("htd_migration_entries_total",
                  "Warm-state entries moved by live resharding.");
  imported_cache_entries_ = &metrics.GetCounter("htd_migration_entries_total",
                                                "direction=\"imported_cache\"");
  imported_store_entries_ = &metrics.GetCounter("htd_migration_entries_total",
                                                "direction=\"imported_store\"");
  migrated_out_entries_ = &metrics.GetCounter("htd_migration_entries_total",
                                              "direction=\"migrated_out\"");
  metrics.SetHelp("htd_antientropy_rounds_total",
                  "Anti-entropy sweep rounds by result (ok, error, skipped).");
  ae_rounds_ok_ =
      &metrics.GetCounter("htd_antientropy_rounds_total", "result=\"ok\"");
  ae_rounds_error_ =
      &metrics.GetCounter("htd_antientropy_rounds_total", "result=\"error\"");
  ae_rounds_skipped_ =
      &metrics.GetCounter("htd_antientropy_rounds_total", "result=\"skipped\"");
  metrics.SetHelp("htd_antientropy_entries_total",
                  "Warm-state entries merged from replica siblings.");
  ae_entries_cache_ =
      &metrics.GetCounter("htd_antientropy_entries_total", "section=\"cache\"");
  ae_entries_store_ =
      &metrics.GetCounter("htd_antientropy_entries_total", "section=\"store\"");
  metrics.SetHelp("htd_antientropy_bytes_total",
                  "Slice blob bytes pulled from replica siblings.");
  ae_bytes_ = &metrics.GetCounter("htd_antientropy_bytes_total", "");
  metrics.SetHelp("htd_connections_shed_total",
                  "Connections refused at the transport bound (503).");
  metrics.RegisterCallback(
      "htd_connections_shed_total", "", "counter",
      [this] { return static_cast<double>(http_->connections_shed()); });
  metrics.SetHelp("htd_connections_reaped_total",
                  "Connections reaped by a timeout (idle, header/slow-loris, "
                  "or stalled write).");
  metrics.RegisterCallback(
      "htd_connections_reaped_total", "", "counter",
      [this] { return static_cast<double>(http_->connections_reaped()); });
  metrics.SetHelp("htd_accept_failures_total",
                  "accept() failures after a readable poll (fd exhaustion); "
                  "each costs one acceptor backoff.");
  metrics.RegisterCallback(
      "htd_accept_failures_total", "", "counter",
      [this] { return static_cast<double>(http_->accept_failures()); });
  metrics.SetHelp("htd_connections",
                  "Live connections by state on the epoll loop ring.");
  metrics.RegisterCallback("htd_connections", "state=\"idle\"", "gauge", [this] {
    return static_cast<double>(http_->connection_counts().idle);
  });
  metrics.RegisterCallback(
      "htd_connections", "state=\"reading\"", "gauge",
      [this] { return static_cast<double>(http_->connection_counts().reading); });
  metrics.RegisterCallback("htd_connections", "state=\"dispatched\"", "gauge",
                           [this] {
                             return static_cast<double>(
                                 http_->connection_counts().dispatched);
                           });
  metrics.RegisterCallback(
      "htd_connections", "state=\"writing\"", "gauge",
      [this] { return static_cast<double>(http_->connection_counts().writing); });
  metrics.SetHelp("htd_request_seconds", "HTTP request latency by route.");
}

DecompositionServer::~DecompositionServer() { Stop(); }

util::Status DecompositionServer::Start() {
  util::Status started = http_->Start();
  if (!started.ok()) return started;
  if (options_.anti_entropy_interval_seconds > 0) {
    anti_entropy_thread_ = std::thread([this] { AntiEntropyLoop(); });
  }
  return started;
}

void DecompositionServer::Stop() {
  if (http_ == nullptr || !http_->running()) return;
  // Refuse new admissions first (503), then keep sweeping cancellations
  // while the listener drains: a handler that passed the stopping_ check
  // can still admit one more flight behind a single CancelAll, and with no
  // deadline that flight would park its handler thread — and HttpServer::
  // Stop()'s WaitIdle — forever.
  stopping_.store(true, std::memory_order_release);
  // The sweep loop polls stopping_ between pulls; join it before tearing the
  // transport down so no pull races the listener drain.
  if (anti_entropy_thread_.joinable()) anti_entropy_thread_.join();
  std::atomic<bool> http_stopped{false};
  std::thread canceller([&] {
    while (!http_stopped.load(std::memory_order_acquire)) {
      service_->CancelAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  http_->Stop();
  http_stopped.store(true, std::memory_order_release);
  canceller.join();
  // Async query jobs run on the executor, not under HttpServer's WaitIdle;
  // their closing fetch_sub is the last touch of `this`, so the destructor
  // must not return while any are in flight. Keep cancelling so a job parked
  // on a probe future unblocks.
  while (outstanding_query_jobs_.load(std::memory_order_acquire) > 0) {
    service_->CancelAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  service_->CancelAll();
  service_->Drain();
}

uint64_t DecompositionServer::TotalOutstandingJobs() const {
  // Scheduler flights (decompose jobs, sync and async) plus async query
  // jobs; the 429 bound sheds against the sum so a query flood cannot pile
  // unbounded background work behind a healthy-looking scheduler queue.
  return service_->outstanding_jobs() +
         outstanding_query_jobs_.load(std::memory_order_acquire);
}

DecompositionServer::AdmissionStats DecompositionServer::admission_stats() const {
  AdmissionStats stats;
  stats.admitted = admitted_->Value();
  stats.shed = shed_->Value();
  stats.bad_requests = bad_requests_->Value();
  stats.misrouted = misrouted_->Value();
  return stats;
}

DecompositionServer::MigrationStats DecompositionServer::migration_stats() const {
  MigrationStats stats;
  stats.imported_cache_entries = imported_cache_entries_->Value();
  stats.imported_store_entries = imported_store_entries_->Value();
  stats.migrated_out_entries = migrated_out_entries_->Value();
  return stats;
}

DecompositionServer::AntiEntropyStats
DecompositionServer::anti_entropy_stats() const {
  AntiEntropyStats stats;
  stats.rounds_ok = ae_rounds_ok_->Value();
  stats.rounds_error = ae_rounds_error_->Value();
  stats.rounds_skipped = ae_rounds_skipped_->Value();
  stats.merged_cache_entries = ae_entries_cache_->Value();
  stats.merged_store_entries = ae_entries_store_->Value();
  stats.bytes_pulled = ae_bytes_->Value();
  return stats;
}

std::shared_ptr<const ShardState> DecompositionServer::shard_state() const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return shard_state_;
}

void DecompositionServer::SwapShardState(
    std::shared_ptr<const ShardState> next) {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  shard_state_ = std::move(next);
}

uint64_t DecompositionServer::CurrentConfigDigest() const {
  // Recompute the digest the way the service did (it arms
  // solve.subproblem_store before digesting), so snapshot headers match the
  // cache keys inside.
  SolveOptions solve = options_.service.solve;
  solve.subproblem_store = service_->subproblem_store();
  return SolverConfigDigest(options_.service.solver_name, solve);
}

util::StatusOr<service::SnapshotStats> DecompositionServer::SaveSnapshotNow() {
  if (options_.snapshot_path.empty()) {
    return util::Status::FailedPrecondition(
        "no snapshot path configured (--snapshot)");
  }
  // One writer at a time: concurrent saves (two /v1/admin/snapshot requests,
  // or one racing the exit save) would interleave on the shared temp file
  // and rename a corrupt snapshot over the good one.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // A sharded server persists only its own fingerprint range: shard
  // snapshots never overlap, so a fleet's warm state is the disjoint union
  // of its shards' snapshot files. Mid-migration the server answers for two
  // ranges at once, so it snapshots unfiltered (restores filter anyway).
  auto state = shard_state();
  const service::FingerprintRange* range =
      state != nullptr && !state->transitioning() ? &state->range : nullptr;
  return service::SaveSnapshot(options_.snapshot_path,
                               service_->result_cache(),
                               service_->subproblem_store(),
                               CurrentConfigDigest(), range);
}

HttpResponse DecompositionServer::Handle(const HttpRequest& request) {
  util::WallTimer timer;
  HttpResponse response = Dispatch(request);
  service_->metrics()
      .GetHistogram("htd_request_seconds",
                    std::string("route=\"") + RouteLabel(request.path) + "\"")
      .Observe(timer.ElapsedSeconds());
  return response;
}

HttpResponse DecompositionServer::Dispatch(const HttpRequest& request) {
  if (request.path == "/healthz") {
    HttpResponse response;
    response.body = "{\"ok\": true}\n";
    return response;
  }
  if (request.path == "/v1/decompose") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/decompose");
    }
    // Adopt the request id when a proxy (the shard router) already assigned
    // one — the fleet's spans then stitch onto one root — else mint our own.
    uint64_t request_id = 0;
    auto rid = request.headers.find("x-htd-request-id");
    if (rid == request.headers.end() ||
        !util::ParseTraceId(rid->second, &request_id)) {
      request_id = util::TraceRegistry::Instance().NextId();
    }
    std::string server_timing;
    HttpResponse response;
    {
      util::TraceScope root_span("request", util::TraceRootId{request_id},
                                 static_cast<uint64_t>(request.body.size()));
      response = HandleDecompose(request, request_id, &server_timing);
    }
    response.headers.emplace_back("X-HTD-Request-Id",
                                  util::TraceIdHex(request_id));
    if (!server_timing.empty()) {
      response.headers.emplace_back("Server-Timing", server_timing);
    }
    return response;
  }
  if (request.path == "/v1/query") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/query");
    }
    uint64_t request_id = 0;
    auto rid = request.headers.find("x-htd-request-id");
    if (rid == request.headers.end() ||
        !util::ParseTraceId(rid->second, &request_id)) {
      request_id = util::TraceRegistry::Instance().NextId();
    }
    std::string server_timing;
    HttpResponse response;
    {
      util::TraceScope root_span("request", util::TraceRootId{request_id},
                                 static_cast<uint64_t>(request.body.size()));
      response = HandleQuery(request, request_id, &server_timing);
    }
    response.headers.emplace_back("X-HTD-Request-Id",
                                  util::TraceIdHex(request_id));
    if (!server_timing.empty()) {
      response.headers.emplace_back("Server-Timing", server_timing);
    }
    return response;
  }
  if (request.path.rfind("/v1/jobs/", 0) == 0) {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/jobs/<id>");
    }
    const std::string id = request.path.substr(sizeof("/v1/jobs/") - 1);
    if (!id.empty() && id[0] == 'q') return HandleQueryJob(id);
    return HandleJob(id);
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/stats");
    }
    return HandleStats();
  }
  if (request.path == "/v1/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/metrics");
    }
    return HandleMetrics();
  }
  if (request.path == "/v1/trace") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/trace");
    }
    return HandleTrace(request);
  }
  if (request.path == "/v1/admin/snapshot") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/snapshot");
    }
    return HandleSnapshot();
  }
  if (request.path == "/v1/admin/export") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/admin/export");
    }
    return HandleExport(request);
  }
  if (request.path == "/v1/admin/import") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/import");
    }
    return HandleImport(request);
  }
  if (request.path == "/v1/admin/migrate") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/migrate");
    }
    return HandleMigrate(request);
  }
  if (request.path == "/v1/admin/digest") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for /v1/admin/digest");
    }
    return HandleDigest(request);
  }
  if (request.path == "/v1/admin/antientropy") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for /v1/admin/antientropy");
    }
    return HandleAntiEntropy();
  }
  return ErrorResponse(404, "unknown route: " + request.path);
}

HttpResponse DecompositionServer::HandleDecompose(const HttpRequest& request,
                                                  uint64_t request_id,
                                                  std::string* server_timing) {
  int k = ParseInt(request.QueryOr("k", ""));
  if (k < 1 || k > options_.max_k) {
    bad_requests_->Add();
    return ErrorResponse(
        400, "query parameter k must be an integer in [1, " +
                 std::to_string(options_.max_k) + "]");
  }
  double timeout = ParseSeconds(request.QueryOr("timeout", ""),
                                service_->options().default_timeout_seconds);
  if (timeout < 0) {
    bad_requests_->Add();
    return ErrorResponse(400, "query parameter timeout must be seconds >= 0");
  }
  const bool async = request.QueryOr("async", "0") == "1";
  const bool include_decomposition = request.QueryOr("decomposition", "0") == "1";
  // In a sharded deployment, a sender that hashed against a different
  // topology must be told so, not silently served — an entry cached here
  // under a foreign range would never be found again after its snapshot is
  // filtered to this shard's slice. `sender_hashed` records that the sender
  // proved it routed with a topology this server currently accepts (its own
  // map, or — mid-migration — the incoming one); only then is its
  // fingerprint header trusted below in place of our own canonicalisation.
  auto shard = shard_state();
  bool sender_hashed = false;
  if (shard != nullptr) {
    auto digest = request.headers.find("x-htd-shard-digest");
    if (digest != request.headers.end()) {
      if (!DigestAccepted(*shard, digest->second)) {
        misrouted_->Add();
        return ErrorResponse(
            421, "shard map digest mismatch: this shard is " +
                     std::to_string(shard->index) + "/" +
                     std::to_string(shard->map.num_shards()) + " of " +
                     shard->map.Serialise() + " (digest " + shard->digest_hex +
                     (shard->transitioning()
                          ? ", transitioning to " + shard->new_digest_hex
                          : "") +
                     "); request was routed by digest " + digest->second);
      }
      sender_hashed = true;
    }
    auto fp_header = request.headers.find("x-htd-shard-fingerprint");
    if (fp_header != request.headers.end()) {
      service::Fingerprint fp;
      if (!service::Fingerprint::FromHex(fp_header->second, &fp)) {
        bad_requests_->Add();
        return ErrorResponse(400, "x-htd-shard-fingerprint must be 32 hex digits");
      }
      if (!RangeAccepted(*shard, fp)) {
        misrouted_->Add();
        return ErrorResponse(
            421, "misrouted: fingerprint " + fp_header->second +
                     " is outside shard " + std::to_string(shard->index) +
                     "'s range");
      }
    } else {
      sender_hashed = false;  // a digest without a fingerprint proves nothing
    }
  }
  if (request.body.empty()) {
    bad_requests_->Add();
    return ErrorResponse(400, "empty body: expected a hypergraph in "
                              "HyperBench or PACE format");
  }

  // Shedding comes BEFORE the body parse: an overloaded server must reject
  // in O(1), not pay a parse proportional to the body it is about to refuse.
  if (stopping_.load(std::memory_order_acquire)) {
    return ErrorResponse(503, "server is shutting down");
  }
  // Admission control: shed rather than queue without bound. The counter is
  // sampled lock-free and approximate (see the header comment); overshoot
  // on the order of the IO thread count is within the bound's semantics
  // (docs/SERVER.md).
  if (TotalOutstandingJobs() >=
      static_cast<uint64_t>(options_.max_queue_depth)) {
    shed_->Add();
    HttpResponse response = ErrorResponse(
        429, "queue full: " + std::to_string(options_.max_queue_depth) +
                 " jobs outstanding; retry later");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }

  // The parse stage is timed unconditionally (histogram) and recorded as a
  // span when the request is traced. The WallTimer is the ground truth —
  // TraceScope::Seconds() is 0 when tracing is off.
  util::WallTimer parse_timer;
  auto parsed = [&] {
    util::TraceScope span("parse", util::TraceParent{request_id, request_id},
                          static_cast<uint64_t>(request.body.size()));
    return ParseAuto(request.body);
  }();
  const double parse_seconds = parse_timer.ElapsedSeconds();
  service_->ObserveParseSeconds(parse_seconds);
  if (!parsed.ok()) {
    bad_requests_->Add();
    return ErrorResponse(400, "cannot parse hypergraph: " +
                                  parsed.status().message());
  }
  if (shard != nullptr && !sender_hashed) {
    // The sender did not prove it hashed with an accepted map (no digest
    // header, or no fingerprint header to go with it — e.g. a client
    // talking to a shard directly, without --shards, or one sending a
    // crafted fingerprint alone). Enforce the range on OUR fingerprint:
    // admitting would warm a foreign range — the entry would be invisible
    // to correctly-routed traffic and silently dropped by the next
    // range-filtered snapshot. (When both headers are present and the
    // digest matches, the sender demonstrably ran IndexFor on an accepted
    // topology; recomputing here would double-pay canonicalisation on
    // every routed request.)
    const service::Fingerprint fp = service::CanonicalFingerprint(*parsed);
    if (!RangeAccepted(*shard, fp)) {
      misrouted_->Add();
      return ErrorResponse(
          421, "misrouted: instance fingerprint " + fp.ToHex() +
                   " belongs to shard " +
                   std::to_string(shard->map.IndexFor(fp)) +
                   ", this is shard " + std::to_string(shard->index) +
                   " (route via the shard map)");
    }
  }

  auto graph = std::make_shared<const Hypergraph>(std::move(*parsed));
  admitted_->Add();
  // Sync requests ride the executor's interactive lane (a client is parked
  // on the answer); polled async jobs take the lower-priority async lane.
  std::future<service::JobResult> future = service_->Submit(
      *graph, k, timeout, util::TraceParent{request_id, request_id},
      async ? util::Executor::Lane::kAsync : util::Executor::Lane::kSync);

  if (!async) {
    service::JobResult job = future.get();
    HttpResponse response;
    util::WallTimer serialise_timer;
    {
      util::TraceScope span("serialise",
                            util::TraceParent{request_id, request_id});
      response.body = RenderResult(job, *graph, include_decomposition);
    }
    const double serialise_seconds = serialise_timer.ElapsedSeconds();
    service_->ObserveSerialiseSeconds(serialise_seconds);
    if (server_timing != nullptr) {
      *server_timing =
          StageTimingHeader(parse_seconds, job.stages, serialise_seconds);
    }
    return response;
  }

  const std::string id = "j" + std::to_string(
      next_job_id_.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    AsyncJob record;
    record.future = future.share();
    record.graph = graph;
    record.k = k;
    record.include_decomposition = include_decomposition;
    jobs_.emplace(id, std::move(record));
    job_order_.push_back(id);
    // Evict the oldest *resolved* records over the retention cap; unresolved
    // jobs stay queryable (their count is bounded by admission control).
    for (auto it = job_order_.begin();
         jobs_.size() > options_.max_retained_jobs && it != job_order_.end();) {
      auto found = jobs_.find(*it);
      if (found != jobs_.end() &&
          found->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        jobs_.erase(found);
        it = job_order_.erase(it);
      } else {
        ++it;
      }
    }
  }
  HttpResponse response;
  response.status = 202;
  response.body = "{\"job\": \"" + id + "\", \"state\": \"admitted\"}\n";
  return response;
}

HttpResponse DecompositionServer::HandleJob(const std::string& id) {
  AsyncJob record;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return ErrorResponse(404, "unknown job id: " + id);
    }
    record = it->second;  // shared_future/shared_ptr copies are cheap
  }
  if (record.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    HttpResponse response;
    response.body = "{\"job\": \"" + id + "\", \"state\": \"running\"}\n";
    return response;
  }
  const service::JobResult& job = record.future.get();
  HttpResponse response;
  response.body = "{\"job\": \"" + id + "\", \"state\": \"done\", \"result\": " +
                  RenderResult(job, *record.graph, record.include_decomposition);
  // RenderResult ends with '\n'; splice the wrapper's closing brace in.
  response.body.back() = '}';
  response.body += "\n";
  return response;
}

HttpResponse DecompositionServer::HandleQuery(const HttpRequest& request,
                                              uint64_t request_id,
                                              std::string* server_timing) {
  double timeout = ParseSeconds(request.QueryOr("timeout", ""),
                                service_->options().default_timeout_seconds);
  if (timeout < 0) {
    bad_requests_->Add();
    return ErrorResponse(400, "query parameter timeout must be seconds >= 0");
  }
  const bool async = request.QueryOr("async", "0") == "1";
  const std::string count_param = request.QueryOr("count", "");
  if (!count_param.empty() && count_param != "0" && count_param != "1") {
    bad_requests_->Add();
    return ErrorResponse(400, "query parameter count must be 0 or 1");
  }
  std::optional<bool> count_override;
  if (!count_param.empty()) count_override = count_param == "1";

  // Shard admission mirrors /v1/decompose: ownership is decided by the
  // fingerprint of the QUERY'S HYPERGRAPH, so the decomposition state a
  // query warms lands on the shard that will be asked for it again.
  auto shard = shard_state();
  bool sender_hashed = false;
  if (shard != nullptr) {
    auto digest = request.headers.find("x-htd-shard-digest");
    if (digest != request.headers.end()) {
      if (!DigestAccepted(*shard, digest->second)) {
        misrouted_->Add();
        return ErrorResponse(
            421, "shard map digest mismatch: this shard is " +
                     std::to_string(shard->index) + "/" +
                     std::to_string(shard->map.num_shards()) + " of " +
                     shard->map.Serialise() + " (digest " + shard->digest_hex +
                     (shard->transitioning()
                          ? ", transitioning to " + shard->new_digest_hex
                          : "") +
                     "); request was routed by digest " + digest->second);
      }
      sender_hashed = true;
    }
    auto fp_header = request.headers.find("x-htd-shard-fingerprint");
    if (fp_header != request.headers.end()) {
      service::Fingerprint fp;
      if (!service::Fingerprint::FromHex(fp_header->second, &fp)) {
        bad_requests_->Add();
        return ErrorResponse(400,
                             "x-htd-shard-fingerprint must be 32 hex digits");
      }
      if (!RangeAccepted(*shard, fp)) {
        misrouted_->Add();
        return ErrorResponse(
            421, "misrouted: fingerprint " + fp_header->second +
                     " is outside shard " + std::to_string(shard->index) +
                     "'s range");
      }
    } else {
      sender_hashed = false;  // a digest without a fingerprint proves nothing
    }
  }
  if (request.body.empty()) {
    bad_requests_->Add();
    return ErrorResponse(400, "empty body: expected an HTDQUERY1 query "
                              "request (docs/QUERIES.md)");
  }

  // Same shed-before-parse ordering as /v1/decompose: refuse in O(1).
  if (stopping_.load(std::memory_order_acquire)) {
    return ErrorResponse(503, "server is shutting down");
  }
  if (TotalOutstandingJobs() >=
      static_cast<uint64_t>(options_.max_queue_depth)) {
    shed_->Add();
    HttpResponse response = ErrorResponse(
        429, "queue full: " + std::to_string(options_.max_queue_depth) +
                 " jobs outstanding; retry later");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_seconds));
    return response;
  }

  util::WallTimer parse_timer;
  auto parsed = [&] {
    util::TraceScope span("parse", util::TraceParent{request_id, request_id},
                          static_cast<uint64_t>(request.body.size()));
    return qa::ParseQueryRequest(request.body);
  }();
  const double parse_seconds = parse_timer.ElapsedSeconds();
  service_->ObserveParseSeconds(parse_seconds);
  if (!parsed.ok()) {
    bad_requests_->Add();
    return ErrorResponse(400, "cannot parse query request: " +
                                  parsed.status().message());
  }
  if (shard != nullptr && !sender_hashed) {
    // Unhashed sender: enforce the range on our own canonicalisation of the
    // query hypergraph (same reasoning as HandleDecompose).
    const service::Fingerprint fp =
        service::CanonicalFingerprint(cq::QueryHypergraph(parsed->query));
    if (!RangeAccepted(*shard, fp)) {
      misrouted_->Add();
      return ErrorResponse(
          421, "misrouted: query fingerprint " + fp.ToHex() +
                   " belongs to shard " + std::to_string(shard->map.IndexFor(fp)) +
                   ", this is shard " + std::to_string(shard->index) +
                   " (route via the shard map)");
    }
  }
  admitted_->Add();

  if (!async) {
    auto answer = query_engine_->Answer(parsed->query, parsed->db, timeout,
                                        util::TraceParent{request_id, request_id},
                                        count_override);
    if (!answer.ok()) {
      if (answer.status().code() == util::StatusCode::kInvalidArgument) {
        bad_requests_->Add();
        return ErrorResponse(400, answer.status().message());
      }
      return ErrorResponse(500, answer.status().message());
    }
    HttpResponse response;
    util::WallTimer serialise_timer;
    {
      util::TraceScope span("serialise",
                            util::TraceParent{request_id, request_id});
      response.body = RenderQueryAnswer(*answer);
    }
    const double serialise_seconds = serialise_timer.ElapsedSeconds();
    service_->ObserveSerialiseSeconds(serialise_seconds);
    if (server_timing != nullptr) {
      *server_timing =
          QueryTimingHeader(parse_seconds, *answer, serialise_seconds);
    }
    return response;
  }

  // Async: "q<N>". The answer runs as a background-lane task on the
  // fleet-wide executor (see the AsyncQueryJob comment in the header); the
  // outstanding counter makes it visible to the 429 bound and lets Stop()
  // wait the task out. The decrement is the task's last touch of `this`.
  const std::string id = "q" + std::to_string(next_job_id_.fetch_add(
                                   1, std::memory_order_relaxed));
  auto shared_request = std::make_shared<qa::QueryRequest>(std::move(*parsed));
  auto promise =
      std::make_shared<std::promise<util::StatusOr<qa::QueryAnswer>>>();
  std::shared_future<util::StatusOr<qa::QueryAnswer>> future =
      promise->get_future().share();
  outstanding_query_jobs_.fetch_add(1, std::memory_order_acq_rel);
  service_->executor().Submit(
      [this, shared_request, timeout, request_id, count_override, promise] {
        try {
          promise->set_value(query_engine_->Answer(
              shared_request->query, shared_request->db, timeout,
              util::TraceParent{request_id, request_id}, count_override));
        } catch (...) {
          promise->set_value(
              util::Status::Internal("query job failed with an exception"));
        }
        outstanding_query_jobs_.fetch_sub(1, std::memory_order_acq_rel);
      },
      util::Executor::Lane::kBackground);
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    query_jobs_.emplace(id, AsyncQueryJob{future});
    query_job_order_.push_back(id);
    // Same resolved-only eviction policy as decompose jobs.
    for (auto it = query_job_order_.begin();
         query_jobs_.size() > options_.max_retained_jobs &&
         it != query_job_order_.end();) {
      auto found = query_jobs_.find(*it);
      if (found != query_jobs_.end() &&
          found->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        query_jobs_.erase(found);
        it = query_job_order_.erase(it);
      } else {
        ++it;
      }
    }
  }
  HttpResponse response;
  response.status = 202;
  response.body = "{\"job\": \"" + id + "\", \"state\": \"admitted\"}\n";
  return response;
}

HttpResponse DecompositionServer::HandleQueryJob(const std::string& id) {
  AsyncQueryJob record;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = query_jobs_.find(id);
    if (it == query_jobs_.end()) {
      return ErrorResponse(404, "unknown job id: " + id);
    }
    record = it->second;
  }
  if (record.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    HttpResponse response;
    response.body = "{\"job\": \"" + id + "\", \"state\": \"running\"}\n";
    return response;
  }
  const util::StatusOr<qa::QueryAnswer>& answer = record.future.get();
  HttpResponse response;
  if (!answer.ok()) {
    response.body = "{\"job\": \"" + id + "\", \"state\": \"done\", "
                    "\"error\": \"" +
                    JsonEscape(answer.status().message()) + "\"}\n";
    return response;
  }
  response.body = "{\"job\": \"" + id + "\", \"state\": \"done\", \"result\": " +
                  RenderQueryAnswer(*answer);
  response.body.back() = '}';
  response.body += "\n";
  return response;
}

HttpResponse DecompositionServer::HandleStats() {
  // One registry snapshot: every counter is sampled exactly once, in an
  // order where derived counts precede the totals bounding them. The old
  // field-by-field sampling could catch a migration or fan-out mid-update
  // and report, e.g., more cache hits than submissions in one poll.
  std::map<std::string, double> sampled;
  for (const util::MetricSample& sample : service_->metrics().Snapshot()) {
    sampled[sample.labels.empty() ? sample.name
                                  : sample.name + "{" + sample.labels + "}"] =
        sample.value;
  }
  auto count = [&](const std::string& key) {
    auto it = sampled.find(key);
    return std::to_string(
        static_cast<uint64_t>(it == sampled.end() ? 0.0 : it->second));
  };
  auto shard = shard_state();

  std::string body = "{";
  body += "\"scheduler\": {";
  body += "\"submitted\": " + count("htd_scheduler_submitted_total");
  body += ", \"solves\": " + count("htd_scheduler_solves_total");
  body += ", \"dedup_joins\": " + count("htd_scheduler_dedup_joins_total");
  body += ", \"cache_hits\": " + count("htd_scheduler_cache_hits_total");
  body += ", \"completed\": " + count("htd_scheduler_completed_total");
  body += ", \"queue_depth\": " + count("htd_queue_depth");
  body += ", \"outstanding\": " + count("htd_outstanding_jobs");
  body += "}, \"cache\": {";
  body += "\"hits\": " + count("htd_cache_hits_total");
  body += ", \"misses\": " + count("htd_cache_misses_total");
  body += ", \"insertions\": " + count("htd_cache_insertions_total");
  body += ", \"evictions\": " + count("htd_cache_evictions_total");
  body += ", \"entries\": " + count("htd_cache_entries");
  body += ", \"capacity\": " + count("htd_cache_capacity");
  body += "}, \"subproblem_store\": {";
  body += "\"enabled\": " +
          std::string(service_->options().enable_subproblem_store ? "true" : "false");
  body += ", \"probes\": " + count("htd_store_probes_total");
  body += ", \"negative_hits\": " + count("htd_store_negative_hits_total");
  body += ", \"positive_hits\": " + count("htd_store_positive_hits_total");
  body += ", \"entries\": " + count("htd_store_entries");
  body += ", \"bytes\": " + count("htd_store_bytes");
  body += "}, \"admission\": {";
  body += "\"admitted\": " +
          count("htd_admission_requests_total{result=\"admitted\"}");
  body += ", \"shed\": " + count("htd_admission_requests_total{result=\"shed\"}");
  body += ", \"connections_shed\": " + count("htd_connections_shed_total");
  body += ", \"bad_requests\": " +
          count("htd_admission_requests_total{result=\"bad_request\"}");
  body += ", \"misrouted\": " +
          count("htd_admission_requests_total{result=\"misrouted\"}");
  body += ", \"max_queue_depth\": " + std::to_string(options_.max_queue_depth);
  body += ", \"max_connections\": " + std::to_string(options_.http.max_connections);
  body += "}, \"shard\": {";
  if (shard != nullptr) {
    body += "\"enabled\": true";
    body += ", \"index\": " + std::to_string(shard->index);
    body += ", \"count\": " + std::to_string(shard->map.num_shards());
    body += ", \"digest\": \"" + shard->digest_hex + "\"";
    body += ", \"range\": \"" + HexRange(shard->range) + "\"";
    body += std::string(", \"transitioning\": ") +
            (shard->transitioning() ? "true" : "false");
    if (shard->transitioning()) {
      body += ", \"new_digest\": \"" + shard->new_digest_hex + "\"";
      body += ", \"new_index\": " + std::to_string(shard->new_index);
      if (shard->new_index >= 0) {
        body += ", \"new_range\": \"" + HexRange(shard->new_range) + "\"";
      }
    }
  } else {
    body += "\"enabled\": false";
  }
  body += "}, \"anti_entropy\": {";
  body += std::string("\"enabled\": ") +
          (options_.anti_entropy_interval_seconds > 0 ? "true" : "false");
  body += ", \"interval_seconds\": " +
          std::to_string(options_.anti_entropy_interval_seconds);
  body += ", \"rounds_ok\": " +
          count("htd_antientropy_rounds_total{result=\"ok\"}");
  body += ", \"rounds_error\": " +
          count("htd_antientropy_rounds_total{result=\"error\"}");
  body += ", \"rounds_skipped\": " +
          count("htd_antientropy_rounds_total{result=\"skipped\"}");
  body += ", \"merged_cache_entries\": " +
          count("htd_antientropy_entries_total{section=\"cache\"}");
  body += ", \"merged_store_entries\": " +
          count("htd_antientropy_entries_total{section=\"store\"}");
  body += ", \"bytes_pulled\": " + count("htd_antientropy_bytes_total");
  body += "}, \"migration\": {";
  body += "\"imported_cache_entries\": " +
          count("htd_migration_entries_total{direction=\"imported_cache\"}");
  body += ", \"imported_store_entries\": " +
          count("htd_migration_entries_total{direction=\"imported_store\"}");
  body += ", \"migrated_out_entries\": " +
          count("htd_migration_entries_total{direction=\"migrated_out\"}");
  body += "}, \"snapshot\": {";
  body += "\"path\": \"" + JsonEscape(options_.snapshot_path) + "\"";
  body += ", \"restored_cache_entries\": " + std::to_string(restored_.cache_entries);
  body += ", \"restored_store_entries\": " + std::to_string(restored_.store_entries);
  body += ", \"restored_dropped_out_of_range\": " +
          std::to_string(restored_.dropped_out_of_range);
  body += "}}\n";

  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse DecompositionServer::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = service_->metrics().RenderPrometheus();
  return response;
}

HttpResponse DecompositionServer::HandleTrace(const HttpRequest& request) {
  int n = ParseInt(request.QueryOr("n", "16"));
  if (n < 1 || n > 256) {
    return ErrorResponse(400, "query parameter n must be an integer in [1, 256]");
  }
  HttpResponse response;
  response.body = RenderRecentTracesJson(static_cast<size_t>(n));
  return response;
}

HttpResponse DecompositionServer::HandleSnapshot() {
  auto saved = SaveSnapshotNow();
  if (!saved.ok()) {
    int status =
        saved.status().code() == util::StatusCode::kFailedPrecondition ? 412 : 500;
    return ErrorResponse(status, saved.status().message());
  }
  HttpResponse response;
  response.body = "{\"saved\": true, \"cache_entries\": " +
                  std::to_string(saved->cache_entries) +
                  ", \"store_entries\": " + std::to_string(saved->store_entries) +
                  ", \"bytes\": " + std::to_string(saved->bytes) + "}\n";
  return response;
}

HttpResponse DecompositionServer::HandleExport(const HttpRequest& request) {
  service::FingerprintRange range;
  const std::string range_text = request.QueryOr("range", "");
  if (range_text.empty()) {
    // No range = everything this server holds (an operator copy drill).
  } else if (!ParseHexRange(range_text, &range)) {
    return ErrorResponse(400, "query parameter range must be HEX-HEX "
                              "(fingerprint hi bounds, inclusive)");
  }
  service::SnapshotStats written;
  std::string blob = service::EncodeSnapshot(
      service_->result_cache(), service_->subproblem_store(),
      CurrentConfigDigest(), range_text.empty() ? nullptr : &range, &written);
  HttpResponse response;
  response.content_type = "application/octet-stream";
  response.headers.emplace_back("X-HTD-Cache-Entries",
                                std::to_string(written.cache_entries));
  response.headers.emplace_back("X-HTD-Store-Entries",
                                std::to_string(written.store_entries));
  response.body = std::move(blob);
  return response;
}

HttpResponse DecompositionServer::HandleImport(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected a snapshot blob "
                              "(service/persistence.h format)");
  }
  auto shard = shard_state();
  if (shard != nullptr) {
    auto digest = request.headers.find("x-htd-shard-digest");
    if (digest != request.headers.end() &&
        !DigestAccepted(*shard, digest->second)) {
      misrouted_->Add();
      return ErrorResponse(
          421, "import routed by digest " + digest->second +
                   " but this shard accepts " + shard->digest_hex +
                   (shard->transitioning() ? " or " + shard->new_digest_hex
                                           : ""));
    }
  }
  // Filter to the accepted slice of the key space; a migration push built
  // against the right map never loses entries to this (the sender already
  // cut the blob to our range), while a mis-aimed blob is trimmed instead
  // of poisoning a foreign range.
  service::FingerprintRange covering;
  const service::FingerprintRange* range = nullptr;
  if (shard != nullptr) {
    covering = CoveringRange(*shard);
    range = &covering;
  }
  auto imported = service::DecodeSnapshot(request.body,
                                          service_->result_cache(),
                                          service_->subproblem_store(), range);
  if (!imported.ok()) {
    bad_requests_->Add();
    return ErrorResponse(400, "cannot import snapshot blob: " +
                                  imported.status().message());
  }
  imported_cache_entries_->Add(imported->cache_entries);
  imported_store_entries_->Add(imported->store_entries);
  HttpResponse response;
  response.body = "{\"imported\": true, \"cache_entries\": " +
                  std::to_string(imported->cache_entries) +
                  ", \"store_entries\": " + std::to_string(imported->store_entries) +
                  ", \"dropped_out_of_range\": " +
                  std::to_string(imported->dropped_out_of_range) + "}\n";
  return response;
}

HttpResponse DecompositionServer::HandleMigrate(const HttpRequest& request) {
  // One migration flow at a time; begin, re-drive, and finalise serialise.
  std::lock_guard<std::mutex> migrate_lock(migrate_mutex_);
  auto shard = shard_state();
  if (shard == nullptr) {
    return ErrorResponse(412, "not a sharded server: /v1/admin/migrate needs "
                              "--shard-map/--shard-index");
  }
  if (stopping_.load(std::memory_order_acquire)) {
    return ErrorResponse(503, "server is shutting down");
  }

  if (request.QueryOr("finalise", "0") == "1") {
    if (!shard->transitioning()) {
      return ErrorResponse(412, "no migration in flight to finalise");
    }
    if (shard->new_index < 0) {
      return ErrorResponse(412, "this backend is leaving the fleet "
                                "(new_index=-1); shut it down instead of "
                                "finalising");
    }
    auto next = std::make_shared<ShardState>(*shard->new_map);
    next->index = shard->new_index;
    next->range = next->map.RangeFor(next->index);
    next->digest_hex = next->map.DigestHex();
    SwapShardState(next);
    HttpResponse response;
    response.body = "{\"finalised\": true, \"digest\": \"" + next->digest_hex +
                    "\", \"index\": " + std::to_string(next->index) +
                    ", \"range\": \"" + HexRange(next->range) + "\"}\n";
    return response;
  }

  long new_index;
  if (!util::ParseIntFlag(request.QueryOr("new_index", "-1"), -1, 4095,
                          &new_index)) {
    return ErrorResponse(400, "query parameter new_index must be an integer "
                              ">= -1 (-1 = this backend leaves the fleet)");
  }
  // `self` is this process's own endpoint as it appears in the new map. The
  // server cannot know its public host:port, and it matters when the new
  // map REPLICATES this server's own range: the retained slice must be
  // pushed to the new sibling replicas (minus self) or they come up cold.
  // Without `self` the own-range push is skipped entirely — a self-push
  // would tie up an IO thread talking to itself.
  std::optional<service::ShardEndpoint> self;
  const std::string self_text = request.QueryOr("self", "");
  if (!self_text.empty()) {
    size_t colon = self_text.rfind(':');
    long self_port;
    if (colon == std::string::npos || colon == 0 ||
        !util::ParseIntFlag(self_text.substr(colon + 1), 1, 65535,
                            &self_port)) {
      return ErrorResponse(400, "query parameter self must be host:port");
    }
    self = service::ShardEndpoint{self_text.substr(0, colon),
                                  static_cast<int>(self_port)};
  }
  if (request.body.empty()) {
    return ErrorResponse(400, "empty body: expected the new shard map spec "
                              "(host:port,host:port*2,...)");
  }
  std::string spec = request.body;
  while (!spec.empty() && (spec.back() == '\n' || spec.back() == '\r')) {
    spec.pop_back();
  }
  auto new_map = service::ShardMap::Parse(spec);
  if (!new_map.ok()) {
    return ErrorResponse(400, "cannot parse new shard map: " +
                                  new_map.status().message());
  }
  if (new_index >= new_map->num_shards()) {
    return ErrorResponse(400, "new_index " + std::to_string(new_index) +
                                  " is outside the new map (" +
                                  std::to_string(new_map->num_shards()) +
                                  " shards)");
  }
  if (new_map->DigestHex() == shard->digest_hex) {
    return ErrorResponse(400, "new map equals the current map (digest " +
                                  shard->digest_hex + "); nothing to migrate");
  }
  if (shard->transitioning() &&
      (shard->new_digest_hex != new_map->DigestHex() ||
       shard->new_index != static_cast<int>(new_index))) {
    return ErrorResponse(
        409, "a different migration is already in flight (to digest " +
                 shard->new_digest_hex + ", new_index " +
                 std::to_string(shard->new_index) +
                 "); finalise or restart it with the same arguments");
  }

  // Install the transitioning state BEFORE streaming anything out: from
  // here on this server accepts requests routed by either digest and
  // imports for its new range, so traffic keeps flowing mid-handover.
  // (Re-driving an identical in-flight migration is idempotent — pushes go
  // through the dominance-checked import path.)
  auto next = std::make_shared<ShardState>(*shard);
  next->new_map = *new_map;
  next->new_index = static_cast<int>(new_index);
  next->new_digest_hex = new_map->DigestHex();
  if (new_index >= 0) next->new_range = new_map->RangeFor(next->new_index);
  SwapShardState(next);
  shard = next;

  // ?prepare=1 stops here: the orchestrator (tools/hdreshard.cc) prepares
  // EVERY old backend before any of them streams, because migration pushes
  // carry the NEW digest — a receiver that has not yet learned the incoming
  // topology would refuse them with 421.
  if (request.QueryOr("prepare", "0") == "1") {
    HttpResponse response;
    response.body = "{\"prepared\": true, \"transitioning\": true, "
                    "\"new_digest\": \"" + shard->new_digest_hex +
                    "\", \"new_index\": " + std::to_string(shard->new_index) +
                    "}\n";
    return response;
  }

  // Stream the entries leaving this range to their new owners — and, when
  // the new map replicates our OWN range, the retained slice to the new
  // sibling replicas: cut a snapshot blob per overlapping new range and
  // push it to every replica of that range (minus ourselves).
  bool all_ok = true;
  uint64_t moved = 0;
  std::string targets_json;
  for (int j = 0; j < new_map->num_shards(); ++j) {
    if (j == shard->new_index && !self.has_value()) continue;
    service::FingerprintRange leaving;
    if (!Intersect(shard->range, new_map->RangeFor(j), &leaving)) continue;
    service::SnapshotStats written;
    std::string blob = service::EncodeSnapshot(
        service_->result_cache(), service_->subproblem_store(),
        CurrentConfigDigest(), &leaving, &written);
    const uint64_t entries = written.cache_entries + written.store_entries;
    bool pushed_any = false;
    for (int r = 0; r < new_map->num_replicas(j); ++r) {
      const service::ShardEndpoint& target = new_map->replica(j, r);
      if (self.has_value() && target == *self) continue;
      FetchOptions fetch;
      fetch.read_timeout_seconds = options_.migrate_push_timeout_seconds;
      FetchResult pushed =
          entries == 0
              ? FetchResult{FetchResult::Transport::kOk, 200, {}, "", ""}
              : HttpFetch(target.host, target.port, "POST", "/v1/admin/import",
                          blob,
                          {{"X-HTD-Shard-Digest", shard->new_digest_hex}},
                          fetch);
      pushed_any = true;
      const bool ok = pushed.ok() && pushed.status == 200;
      all_ok = all_ok && ok;
      if (!targets_json.empty()) targets_json += ", ";
      targets_json += "{\"range\": " + std::to_string(j);
      targets_json += ", \"endpoint\": \"" + JsonEscape(target.host) + ":" +
                      std::to_string(target.port) + "\"";
      targets_json += ", \"cache_entries\": " +
                      std::to_string(written.cache_entries);
      targets_json +=
          ", \"store_entries\": " + std::to_string(written.store_entries);
      if (pushed.ok()) {
        targets_json += ", \"status\": " + std::to_string(pushed.status);
      } else {
        targets_json += ", \"status\": 0, \"error\": \"" +
                        JsonEscape(pushed.error) + "\"";
      }
      targets_json += "}";
    }
    if (pushed_any) moved += entries;
  }
  migrated_out_entries_->Add(moved);

  HttpResponse response;
  // Partial pushes are a gateway-level failure: some new owner did NOT
  // receive its slice, and the operator must re-drive before finalising.
  response.status = all_ok ? 200 : 502;
  response.body = std::string("{\"migrated\": ") + (all_ok ? "true" : "false") +
                  ", \"transitioning\": true, \"new_digest\": \"" +
                  shard->new_digest_hex +
                  "\", \"new_index\": " + std::to_string(shard->new_index) +
                  ", \"entries_out\": " + std::to_string(moved) +
                  ", \"targets\": [" + targets_json + "]}\n";
  return response;
}

HttpResponse DecompositionServer::HandleDigest(const HttpRequest& request) {
  auto shard = shard_state();
  if (shard != nullptr) {
    auto digest = request.headers.find("x-htd-shard-digest");
    if (digest != request.headers.end() &&
        !DigestAccepted(*shard, digest->second)) {
      misrouted_->Add();
      return ErrorResponse(
          421, "digest request routed by shard-map digest " + digest->second +
                   " but this shard accepts " + shard->digest_hex +
                   (shard->transitioning() ? " or " + shard->new_digest_hex
                                           : ""));
    }
  }
  // Default to the slice of the key space this server owns (everything when
  // unsharded); an explicit ?range= narrows or widens it — e.g. a sweep
  // asking a transitioning sibling about the OLD range only.
  service::FingerprintRange range;
  if (shard != nullptr) range = shard->range;
  const std::string range_text = request.QueryOr("range", "");
  if (!range_text.empty() && !ParseHexRange(range_text, &range)) {
    return ErrorResponse(400, "query parameter range must be HEX-HEX "
                              "(fingerprint hi bounds, inclusive)");
  }
  long slices;
  if (!util::ParseIntFlag(
          request.QueryOr("slices", std::to_string(options_.anti_entropy_slices)),
          1, 4096, &slices)) {
    return ErrorResponse(400,
                         "query parameter slices must be an integer in [1, 4096]");
  }
  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  response.body = service::RenderDigestSummary(service::ComputeDigestSummary(
      service_->result_cache(), service_->subproblem_store(),
      CurrentConfigDigest(), range, static_cast<int>(slices)));
  return response;
}

HttpResponse DecompositionServer::HandleAntiEntropy() {
  auto swept = RunAntiEntropySweep();
  if (!swept.ok()) {
    int status = swept.status().code() == util::StatusCode::kFailedPrecondition
                     ? 412
                     : 500;
    return ErrorResponse(status, swept.status().message());
  }
  HttpResponse response;
  // Partial failures mirror the migrate contract: some sibling did not
  // complete its exchange, so the operator (or the next round) must re-drive.
  response.status = swept->errors == 0 ? 200 : 502;
  response.body = "{\"swept\": true, \"siblings\": " +
                  std::to_string(swept->siblings) +
                  ", \"slices_pulled\": " + std::to_string(swept->slices_pulled) +
                  ", \"cache_entries\": " + std::to_string(swept->cache_entries) +
                  ", \"store_entries\": " + std::to_string(swept->store_entries) +
                  ", \"bytes\": " + std::to_string(swept->bytes) +
                  ", \"errors\": " + std::to_string(swept->errors) + "}\n";
  return response;
}

void DecompositionServer::AntiEntropyLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.anti_entropy_interval_seconds);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    // Outcomes land in the htd_antientropy_* counters; a failed round is not
    // fatal to the loop (the next interval retries from the new digests).
    auto swept = RunAntiEntropySweep();
    (void)swept;
    next = std::chrono::steady_clock::now() + interval;
  }
}

service::ShardEndpoint DecompositionServer::SelfEndpoint(
    const ShardState& state) const {
  if (ae_self_.has_value()) return *ae_self_;
  // Fall back to matching the listen port against the replica group —
  // unambiguous whenever replica ports are distinct per host (loopback test
  // fleets always are). No match returns an empty endpoint: Siblings() then
  // yields the whole group, and the self-pull is a digest-equal no-op.
  for (int r = 0; r < state.map.num_replicas(state.index); ++r) {
    const service::ShardEndpoint& candidate = state.map.replica(state.index, r);
    if (candidate.port == port()) return candidate;
  }
  return service::ShardEndpoint{};
}

util::StatusOr<DecompositionServer::SweepResult>
DecompositionServer::RunAntiEntropySweep() {
  // One round at a time: the background loop and a forced
  // /v1/admin/antientropy must not interleave their pulls.
  std::lock_guard<std::mutex> sweep_lock(ae_mutex_);
  auto state = shard_state();
  if (state == nullptr) {
    return util::Status::FailedPrecondition(
        "not a sharded server: anti-entropy needs --shard-map/--shard-index");
  }
  if (state->transitioning()) {
    // Mid-migration the range boundaries are moving; reconciling against
    // them would tug entries back and forth. Skip; the loop retries after
    // the finalise.
    ae_rounds_skipped_->Add();
    return util::Status::FailedPrecondition(
        "migration in flight; anti-entropy resumes after finalise");
  }
  const std::vector<service::ShardEndpoint> siblings =
      state->map.Siblings(state->index, SelfEndpoint(*state));
  SweepResult result;
  result.siblings = static_cast<int>(siblings.size());
  if (siblings.empty()) {
    ae_rounds_skipped_->Add();
    return result;  // unreplicated range: nothing to reconcile
  }

  util::TraceScope sweep_span("ae_sweep",
                              static_cast<uint64_t>(siblings.size()));
  const uint64_t config_digest = CurrentConfigDigest();
  service::DigestSummary local = service::ComputeDigestSummary(
      service_->result_cache(), service_->subproblem_store(), config_digest,
      state->range, options_.anti_entropy_slices);
  const std::string digest_target =
      "/v1/admin/digest?range=" + HexRange(state->range) +
      "&slices=" + std::to_string(options_.anti_entropy_slices);
  FetchOptions fetch;
  fetch.read_timeout_seconds = options_.anti_entropy_pull_timeout_seconds;

  for (size_t s = 0; s < siblings.size(); ++s) {
    if (stopping_.load(std::memory_order_acquire)) break;
    const service::ShardEndpoint& sibling = siblings[s];
    util::TraceScope pull_span("ae_pull", static_cast<uint64_t>(sibling.port));
    uint64_t merged_cache = 0;
    uint64_t merged_store = 0;
    FetchResult digest_response = HttpFetch(
        sibling.host, sibling.port, "GET", digest_target, "",
        {{"X-HTD-Shard-Digest", state->digest_hex}}, fetch);
    if (!digest_response.ok() || digest_response.status != 200) {
      ++result.errors;
      continue;
    }
    auto remote = service::ParseDigestSummary(digest_response.body);
    if (!remote.ok()) {
      // Corrupt digest: abort this sibling's exchange before any pull — a
      // garbled summary must trigger zero imports.
      ++result.errors;
      continue;
    }
    if (remote->config_digest != local.config_digest) {
      // Incomparable warm state (different solver config); not an error,
      // but nothing can be merged either.
      continue;
    }
    if (remote->slices.size() != local.slices.size()) {
      ++result.errors;
      continue;
    }
    bool aligned = true;
    for (size_t i = 0; i < local.slices.size(); ++i) {
      if (!(remote->slices[i].range == local.slices[i].range)) {
        aligned = false;
        break;
      }
    }
    if (!aligned) {
      ++result.errors;
      continue;
    }
    bool sibling_ok = true;
    for (size_t i = 0; i < local.slices.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (remote->slices[i].digest == local.slices[i].digest) continue;
      ++result.slices_pulled;
      FetchResult blob = HttpFetch(
          sibling.host, sibling.port, "GET",
          "/v1/admin/export?range=" + HexRange(local.slices[i].range), "",
          {{"X-HTD-Shard-Digest", state->digest_hex}}, fetch);
      if (!blob.ok() || blob.status != 200) {
        ++result.errors;
        sibling_ok = false;
        break;
      }
      // DecodeSnapshot stages the whole blob before touching the live
      // state, so a truncated or bit-flipped transfer merges nothing.
      auto merged = service::DecodeSnapshot(
          blob.body, service_->result_cache(), service_->subproblem_store(),
          &local.slices[i].range);
      if (!merged.ok()) {
        ++result.errors;
        sibling_ok = false;
        break;
      }
      result.bytes += blob.body.size();
      merged_cache += merged->cache_entries;
      merged_store += merged->store_entries;
    }
    result.cache_entries += merged_cache;
    result.store_entries += merged_store;
    // What we merged from this sibling changes OUR digests; recompute before
    // comparing against the next sibling or its unchanged slices would look
    // spuriously different.
    if (sibling_ok && merged_cache + merged_store > 0 &&
        s + 1 < siblings.size()) {
      local = service::ComputeDigestSummary(
          service_->result_cache(), service_->subproblem_store(), config_digest,
          state->range, options_.anti_entropy_slices);
    }
  }

  ae_entries_cache_->Add(result.cache_entries);
  ae_entries_store_->Add(result.store_entries);
  ae_bytes_->Add(result.bytes);
  if (result.errors == 0) {
    ae_rounds_ok_->Add();
  } else {
    ae_rounds_error_->Add();
  }
  return result;
}

std::string DecompositionServer::RenderResult(const service::JobResult& job,
                                              const Hypergraph& graph,
                                              bool include_decomposition) const {
  std::string body = "{";
  body += "\"outcome\": \"" + std::string(OutcomeName(job.result.outcome)) + "\"";
  if (job.result.decomposition.has_value()) {
    body += ", \"width\": " + std::to_string(job.result.decomposition->Width());
  }
  body += std::string(", \"cache_hit\": ") + (job.cache_hit ? "true" : "false");
  body += std::string(", \"deduplicated\": ") +
          (job.deduplicated ? "true" : "false");
  body += ", \"seconds\": " + std::to_string(job.seconds);
  body += ", \"threads_used\": " + std::to_string(job.threads_used);
  body += ", \"fingerprint\": \"" + job.fingerprint.ToHex() + "\"";
  if (include_decomposition && job.result.decomposition.has_value()) {
    body += ", \"decomposition\": " +
            WriteDecompositionJson(graph, *job.result.decomposition);
  }
  body += "}\n";
  return body;
}

std::string DecompositionServer::RenderQueryAnswer(
    const qa::QueryAnswer& answer) {
  std::string body = "{";
  body += "\"outcome\": \"" +
          std::string(qa::QueryOutcomeName(answer.outcome)) + "\"";
  if (answer.outcome == qa::QueryOutcome::kSatisfiable) {
    // Witness keys are rendered sorted so the body is deterministic.
    std::vector<std::pair<std::string, int64_t>> vars(answer.witness.begin(),
                                                      answer.witness.end());
    std::sort(vars.begin(), vars.end());
    body += ", \"witness\": {";
    bool first = true;
    for (const auto& [var, value] : vars) {
      if (!first) body += ", ";
      first = false;
      body += "\"" + JsonEscape(var) + "\": " + std::to_string(value);
    }
    body += "}";
  }
  if (answer.counted) {
    body += ", \"count\": " + std::to_string(answer.count.value);
    body += std::string(", \"count_saturated\": ") +
            (answer.count.saturated ? "true" : "false");
  }
  if (answer.portfolio_size > 0) {
    body += ", \"width\": " + std::to_string(answer.width);
    body += ", \"fractional_width\": " +
            std::to_string(answer.fractional_width);
    body += ", \"estimated_cost\": " + std::to_string(answer.estimated_cost);
    body += ", \"portfolio\": {\"picked\": " +
            std::to_string(answer.picked_index) +
            ", \"size\": " + std::to_string(answer.portfolio_size) + "}";
  }
  body += ", \"fingerprint\": \"" + answer.fingerprint.ToHex() + "\"";
  body += std::string(", \"cache_hit\": ") +
          (answer.decompose_cache_hit ? "true" : "false");
  body += ", \"probes\": " + std::to_string(answer.probes);
  body += ", \"decompose_seconds\": " +
          std::to_string(answer.decompose_seconds);
  body += ", \"pick_seconds\": " + std::to_string(answer.pick_seconds);
  body += ", \"execute_seconds\": " + std::to_string(answer.execute_seconds);
  body += "}\n";
  return body;
}

}  // namespace htd::net
