#include "net/json.h"

#include <cstdio>

namespace htd::net {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

HttpResponse JsonErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\": \"" + JsonEscape(message) + "\"}\n";
  return response;
}

}  // namespace htd::net
