#include "net/json.h"

#include <cstdio>
#include <cstdlib>

namespace htd::net {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

HttpResponse JsonErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\": \"" + JsonEscape(message) + "\"}\n";
  return response;
}

bool FindJsonNumber(const std::string& body, const std::string& section,
                    const std::string& key, double* out) {
  size_t section_pos = body.find("\"" + section + "\": {");
  if (section_pos == std::string::npos) return false;
  size_t section_end = body.find('}', section_pos);
  if (section_end == std::string::npos) return false;
  size_t key_pos = body.find("\"" + key + "\": ", section_pos);
  if (key_pos == std::string::npos || key_pos > section_end) return false;
  *out = std::strtod(body.c_str() + key_pos + key.size() + 4, nullptr);
  return true;
}

bool FindJsonNumber(const std::string& body, const std::string& key,
                    double* out) {
  size_t key_pos = body.find("\"" + key + "\": ");
  if (key_pos == std::string::npos) return false;
  *out = std::strtod(body.c_str() + key_pos + key.size() + 4, nullptr);
  return true;
}

}  // namespace htd::net
