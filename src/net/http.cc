#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace htd::net {

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits the request target into a decoded path and query map.
void ParseTarget(const std::string& target, std::string* path,
                 std::map<std::string, std::string>* query) {
  size_t qpos = target.find('?');
  *path = UrlDecode(target.substr(0, qpos));
  if (qpos == std::string::npos) return;
  std::string_view rest = std::string_view(target).substr(qpos + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key = UrlDecode(pair.substr(0, eq));
    std::string value =
        eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
    (*query)[key] = value;
  }
}

}  // namespace

std::string HttpRequest::QueryOr(const std::string& key,
                                 const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

bool AsciiIEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool HttpRequest::WantsClose() const {
  auto it = headers.find("connection");
  if (it != headers.end()) {
    // The Connection header is a comma-separated token list (RFC 7230 §6.1):
    // "keep-alive, upgrade" must still read as keep-alive. `close` wins over
    // `keep-alive` when a confused client sends both.
    bool keep_alive = false;
    std::string_view rest = it->second;
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view token = Trim(rest.substr(0, comma));
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      if (AsciiIEquals(token, "close")) return true;
      if (AsciiIEquals(token, "keep-alive")) keep_alive = true;
    }
    if (keep_alive) return false;
  }
  // No (recognised) Connection header: HTTP/1.0 defaults to close,
  // HTTP/1.1+ to keep-alive.
  return version == "HTTP/1.0";
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 421: return "Misdirected Request";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 508: return "Loop Detected";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response,
                              std::string_view connection) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += StatusReason(response.status);
  out += "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: ";
  out += connection;
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    // The three fixed headers above are owned by the serialiser; a handler
    // that also sets one (e.g. a proxied response copying Content-Length)
    // must not produce a duplicate-header message.
    if (AsciiIEquals(key, "content-type") || AsciiIEquals(key, "content-length") ||
        AsciiIEquals(key, "connection")) {
      continue;
    }
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() && HexValue(text[i + 1]) >= 0 &&
               HexValue(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

HttpRequestParser::State HttpRequestParser::Fail(int status, std::string message) {
  error_status_ = status;
  error_ = std::move(message);
  state_ = State::kError;
  return state_;
}

bool HttpRequestParser::ParseHead(std::string_view head) {
  // Request line: METHOD SP target SP HTTP/1.x
  size_t line_end = head.find('\n');
  std::string_view request_line =
      Trim(head.substr(0, line_end == std::string_view::npos ? head.size()
                                                             : line_end));
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(Trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.substr(0, 7) != "HTTP/1.") {
    Fail(400, "unsupported HTTP version");
    return false;
  }
  request_.version = std::string(version);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed request target");
    return false;
  }
  ParseTarget(request_.target, &request_.path, &request_.query);

  // Header fields.
  while (line_end != std::string_view::npos) {
    size_t start = line_end + 1;
    line_end = head.find('\n', start);
    std::string_view line = head.substr(
        start, line_end == std::string_view::npos ? head.size() - start
                                                  : line_end - start);
    line = Trim(line);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      Fail(400, "malformed header line");
      return false;
    }
    std::string key = ToLower(Trim(line.substr(0, colon)));
    request_.headers[key] = std::string(Trim(line.substr(colon + 1)));
  }

  if (request_.headers.count("transfer-encoding") != 0) {
    Fail(501, "transfer-encoding not supported; send Content-Length");
    return false;
  }
  body_expected_ = 0;
  auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      Fail(400, "malformed Content-Length");
      return false;
    }
    if (parsed > limits_.max_body_bytes) {
      Fail(413, "body exceeds limit of " +
                    std::to_string(limits_.max_body_bytes) + " bytes");
      return false;
    }
    body_expected_ = static_cast<size_t>(parsed);
  }
  return true;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view bytes) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(bytes.data(), bytes.size());

  if (!head_done_) {
    // Resume the terminator scan where the previous chunk left off (backing
    // up 3 bytes so a terminator straddling the chunk boundary is seen) —
    // byte-at-a-time delivery stays O(total bytes).
    size_t from = head_scan_ > 3 ? head_scan_ - 3 : 0;
    size_t head_end = buffer_.find("\r\n\r\n", from);
    size_t head_len = 4;
    if (head_end == std::string::npos) {
      head_end = buffer_.find("\n\n", from);
      head_len = 2;
    }
    if (head_end == std::string::npos) {
      head_scan_ = buffer_.size();
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(413, "request head exceeds limit");
      }
      return State::kNeedMore;
    }
    if (head_end > limits_.max_head_bytes) {
      // Enforced on FOUND terminators too, not only unterminated buffers —
      // otherwise the verdict would depend on how the bytes were chunked
      // (a one-shot read of an oversized head would sneak past the limit
      // that byte-at-a-time delivery trips).
      return Fail(413, "request head exceeds limit");
    }
    if (!ParseHead(std::string_view(buffer_).substr(0, head_end))) {
      return state_;
    }
    buffer_.erase(0, head_end + head_len);
    head_done_ = true;
  }

  if (buffer_.size() < body_expected_) return State::kNeedMore;
  request_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kDone;
  return state_;
}

void HttpRequestParser::Reset() {
  request_ = HttpRequest();
  head_done_ = false;
  head_scan_ = 0;
  body_expected_ = 0;
  error_.clear();
  error_status_ = 400;
  state_ = State::kNeedMore;
}

HttpResponseParser::State HttpResponseParser::Fail(std::string message) {
  error_ = std::move(message);
  state_ = State::kError;
  return state_;
}

bool HttpResponseParser::ParseHead(std::string_view head) {
  size_t line_end = head.find('\n');
  std::string_view status_line =
      Trim(head.substr(0, line_end == std::string_view::npos ? head.size()
                                                             : line_end));
  if (status_line.substr(0, 5) != "HTTP/") {
    Fail("malformed status line");
    return false;
  }
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    Fail("malformed status line");
    return false;
  }
  status_ = std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());
  if (status_ < 100 || status_ > 599) {
    Fail("implausible status code");
    return false;
  }

  while (line_end != std::string_view::npos) {
    size_t start = line_end + 1;
    line_end = head.find('\n', start);
    std::string_view line = head.substr(
        start, line_end == std::string_view::npos ? head.size() - start
                                                  : line_end - start);
    line = Trim(line);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      Fail("malformed header line");
      return false;
    }
    headers_[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }

  auto it = headers_.find("content-length");
  if (it != headers_.end()) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      Fail("malformed Content-Length");
      return false;
    }
    have_length_ = true;
    body_expected_ = static_cast<size_t>(parsed);
  }
  return true;
}

HttpResponseParser::State HttpResponseParser::Consume(std::string_view bytes) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(bytes.data(), bytes.size());

  if (!head_done_) {
    size_t from = head_scan_ > 3 ? head_scan_ - 3 : 0;
    size_t head_end = buffer_.find("\r\n\r\n", from);
    size_t head_len = 4;
    if (head_end == std::string::npos) {
      head_end = buffer_.find("\n\n", from);
      head_len = 2;
    }
    if (head_end == std::string::npos) {
      head_scan_ = buffer_.size();
      return State::kNeedMore;
    }
    if (!ParseHead(std::string_view(buffer_).substr(0, head_end))) {
      return state_;
    }
    buffer_.erase(0, head_end + head_len);
    head_done_ = true;
  }

  // A Content-Length body completes the moment the promised bytes are in
  // (bytes beyond it are ignored — one exchange per parser); a length-less
  // body is framed by connection close and completes in Finish().
  if (!have_length_) return State::kNeedMore;
  if (buffer_.size() < body_expected_) return State::kNeedMore;
  body_ = buffer_.substr(0, body_expected_);
  buffer_.clear();
  state_ = State::kDone;
  return state_;
}

HttpResponseParser::State HttpResponseParser::Finish() {
  if (state_ != State::kNeedMore) return state_;
  if (!head_done_) return Fail("connection closed mid-head");
  if (have_length_) return Fail("connection closed short of Content-Length");
  body_ = std::move(buffer_);
  buffer_.clear();
  state_ = State::kDone;
  return state_;
}

bool ParseHttpResponseBlob(std::string_view blob, int* status,
                           std::map<std::string, std::string>* headers,
                           std::string* body) {
  HttpResponseParser parser;
  parser.Consume(blob);
  if (parser.Finish() != HttpResponseParser::State::kDone) return false;
  *status = parser.status();
  *headers = parser.headers();
  *body = parser.body();
  return true;
}

}  // namespace htd::net
