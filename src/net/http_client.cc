#include "net/http_client.h"

#include "net/http.h"
#include "util/socket.h"

namespace htd::net {

FetchResult HttpFetch(const std::string& host, int port,
                      const std::string& method, const std::string& target,
                      const std::string& body,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers,
                      const FetchOptions& options) {
  FetchResult result;
  // read_timeout 0 = wait indefinitely; SetRecvTimeout cannot unset a
  // timeout, so connect untimed too.
  auto sock = util::ConnectTcp(host, port,
                               options.read_timeout_seconds == 0
                                   ? 0
                                   : options.connect_timeout_seconds);
  if (!sock.ok()) {
    result.transport = FetchResult::Transport::kConnectFailed;
    result.error = sock.status().message();
    return result;
  }
  if (options.read_timeout_seconds > 0) {
    util::SetRecvTimeout(sock->fd(), options.read_timeout_seconds);
  }

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host + "\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [key, value] : extra_headers) {
    wire += key + ": " + value + "\r\n";
  }
  wire += "Connection: close\r\n\r\n";
  wire += body;
  if (!util::SendAll(sock->fd(), wire)) {
    result.transport = FetchResult::Transport::kSendFailed;
    result.error = "send failed";
    return result;
  }

  // Incremental parse: a Content-Length-framed response completes the
  // moment its last body byte arrives — no waiting for the server to close
  // the connection (the old read-until-EOF loop coupled every fan-out's
  // latency to the peer's teardown). Length-less responses still frame by
  // close via Finish().
  HttpResponseParser parser;
  char buffer[16 * 1024];
  auto state = HttpResponseParser::State::kNeedMore;
  while (state == HttpResponseParser::State::kNeedMore) {
    long n = util::RecvSome(sock->fd(), buffer, sizeof(buffer));
    if (n == 0) {
      state = parser.Finish();
      break;
    }
    if (n < 0) {
      result.transport = n == -2 ? FetchResult::Transport::kRecvTimeout
                                 : FetchResult::Transport::kRecvFailed;
      result.error = n == -2 ? "response timed out" : "recv failed";
      return result;
    }
    state = parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
  }

  if (state != HttpResponseParser::State::kDone) {
    result.transport = FetchResult::Transport::kParseFailed;
    result.error = "malformed HTTP response: " + parser.error();
    return result;
  }
  result.status = parser.status();
  result.headers = parser.headers();
  result.body = parser.body();
  result.transport = FetchResult::Transport::kOk;
  return result;
}

}  // namespace htd::net
