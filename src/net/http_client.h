// One blocking HTTP/1.1 exchange (Connection: close) over a raw TCP socket.
//
// Three places used to hand-roll the same request/recv/parse loop — the
// shard router's Forward, hdclient's Exchange, and now the migration pusher
// in net/decomposition_server.cc plus tools/hdreshard.cc. This is the shared
// implementation. It deliberately reports transport failures as a typed
// enum rather than an HTTP status: callers like the router must distinguish
// "the shard is down" (connect/send/recv failed → health bookkeeping,
// replica failover) from "the shard answered 5xx" (pass through verbatim).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace htd::net {

struct FetchOptions {
  /// Connect timeout; ignored (wait indefinitely) when read_timeout is 0.
  double connect_timeout_seconds = 5.0;
  /// Response read timeout; 0 = wait indefinitely (a synchronous solve with
  /// ?timeout=0 has no deadline).
  double read_timeout_seconds = 120.0;
};

struct FetchResult {
  /// Transport-level outcome; `status` and `body` are meaningful only on kOk.
  enum class Transport {
    kOk,
    kConnectFailed,
    kSendFailed,
    kRecvFailed,
    kRecvTimeout,
    kParseFailed,
  };

  Transport transport = Transport::kConnectFailed;
  int status = 0;
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
  std::string error;  ///< human-readable detail on transport failures

  bool ok() const { return transport == Transport::kOk; }
};

/// Sends `method target` with `body` and `extra_headers` to host:port and
/// reads the response incrementally (HttpResponseParser): a Content-Length
/// response completes without waiting for the peer to close; a length-less
/// one is framed by close. Host, Content-Length, and `Connection: close`
/// are added automatically.
FetchResult HttpFetch(const std::string& host, int port,
                      const std::string& method, const std::string& target,
                      const std::string& body,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers,
                      const FetchOptions& options);

}  // namespace htd::net
