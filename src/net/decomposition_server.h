// Out-of-process decomposition server: HTTP routes, admission control, and
// warm-state persistence over a DecompositionService.
//
// Routes (wire protocol details in docs/SERVER.md, fleet operations in
// docs/OPERATIONS.md):
//
//   POST /v1/decompose      body: hypergraph (HyperBench or PACE text),
//                           query: k (required), timeout, async,
//                           decomposition. Sync by default; async=1 returns
//                           202 + a job id for GET /v1/jobs/<id>.
//   POST /v1/query          body: conjunctive query + database (HTDQUERY1
//                           text, qa/wire.h); query: timeout, async, count.
//                           Decomposes the query's hypergraph through the
//                           service (same cache/shard warm path as
//                           /v1/decompose), picks a tree from the
//                           decomposition portfolio, runs Yannakakis, and
//                           returns witness/count/decomposition metadata
//                           (docs/QUERIES.md). Same admission (429/503),
//                           deadline, and 421 sharding semantics as
//                           /v1/decompose; async job ids are "q<N>".
//   GET  /v1/jobs/<id>      state of an async job; includes the result once
//                           resolved. Serves decompose ("j<N>") and query
//                           ("q<N>") jobs.
//   GET  /v1/stats          scheduler/cache/store/admission counters.
//   POST /v1/admin/snapshot persist warm state to the configured snapshot
//                           path (service/persistence.h).
//   GET  /v1/admin/export?range=HEX-HEX
//                           the warm state inside the given fingerprint
//                           hi-range as one snapshot blob (the
//                           service/persistence.h codec IS the wire format).
//   POST /v1/admin/import   merge a snapshot blob into the warm state
//                           (filtered to this shard's accepted range).
//   POST /v1/admin/migrate?new_index=K[&prepare=1|&finalise=1]
//                           live reshard: body carries the NEW shard map
//                           spec; the server enters a transitioning state
//                           (accepts both topologies), streams the entries
//                           leaving its range to their new owners via
//                           /v1/admin/import, and on finalise adopts the
//                           new map exclusively. prepare=1 installs the
//                           transitioning state WITHOUT streaming — the
//                           orchestrator prepares every backend first so
//                           each accepts its peers' new-digest pushes.
//   GET  /v1/admin/digest?range=HEX-HEX&slices=N
//                           order-independent content digest of the warm
//                           state per fingerprint sub-slice
//                           (service/anti_entropy.h wire format) — what a
//                           replica sibling compares against before pulling.
//   POST /v1/admin/antientropy
//                           force one synchronous anti-entropy sweep (the
//                           same round the background loop runs).
//   GET  /v1/metrics        Prometheus text exposition: admission/migration
//                           counters, component gauges, and per-stage /
//                           per-route latency histograms (util/metrics.h).
//   GET  /v1/trace?n=K      the most recent K completed root request spans
//                           as JSON, children attached (util/trace.h).
//   GET  /healthz           liveness probe.
//
// Observability: every POST /v1/decompose opens a root span whose id is
// echoed as X-HTD-Request-Id (an id arriving in that header — the shard
// router propagates its own — is adopted, so a fleet trace stitches
// together), and synchronous responses carry a Server-Timing header with
// the parse/fingerprint/cache/schedule/solve/serialise stage breakdown.
//
// Admission control: requests are shed with 429 + Retry-After once the
// number of admitted-but-unresolved jobs reaches max_queue_depth — a
// bounded queue in front of the scheduler, so overload degrades into fast
// failures instead of unbounded queueing. The check samples the scheduler's
// outstanding-jobs counter without a lock, and that counter itself can
// transiently under-count jobs mid-fan-out (see
// BatchScheduler::outstanding_jobs), so the bound is a load-shedding
// threshold with overshoot on the order of the IO thread count plus one
// fan-out, not an exact semaphore.
//
// Warm start: when a snapshot path is configured, Create() restores the
// result cache and subproblem store from it (a missing file is a normal
// cold start; a corrupt or version-mismatched file logs the reason to
// stderr and starts cold — it never aborts startup).
//
// Live resharding: a sharded server's topology is runtime state, not just
// configuration. /v1/admin/migrate installs a transitioning ShardState —
// old map and new map at once — during which the server accepts requests
// routed by EITHER digest and fingerprints in EITHER of its two ranges, so
// a router double-routing mid-handover never surfaces a 421. Entries whose
// owner changes are pushed (as range-filtered snapshot blobs) to every
// replica of the new owner; the old copies stay resident until the next
// range-filtered snapshot or LRU eviction drops them, so the donor keeps
// serving warm hits throughout. Finalise swaps to the new map atomically.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "net/http.h"
#include "net/server.h"
#include "qa/query_engine.h"
#include "service/persistence.h"
#include "service/service.h"
#include "service/shard_map.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace htd::net {

struct DecompositionServerOptions {
  HttpServer::Options http;
  service::ServiceOptions service;

  /// Admission bound: jobs admitted but not yet resolved. Requests beyond
  /// it are shed with 429.
  int max_queue_depth = 64;
  /// Advertised in the Retry-After header of shed responses.
  int retry_after_seconds = 1;

  /// Completed async job records retained for GET /v1/jobs/<id> (oldest
  /// evicted first). Unresolved jobs are never evicted.
  size_t max_retained_jobs = 1024;

  /// Snapshot file for warm-state persistence; empty disables the
  /// /v1/admin/snapshot route and startup restore.
  std::string snapshot_path;
  /// Restore from snapshot_path during Create() when the file exists.
  bool load_snapshot_on_start = true;

  /// Largest k accepted from the wire (guards against runaway requests).
  int max_k = 64;

  /// Query-answering engine knobs (qa/query_engine.h): width sweep bound,
  /// portfolio diversity probes, counting. The engine decomposes through
  /// this server's DecompositionService, so its probes hit the same result
  /// cache and shard warm path as /v1/decompose.
  qa::QueryEngineOptions query;

  /// Fingerprint-range sharding (docs/SERVER.md): when set, this server is
  /// shard `shard_index` of the map. Snapshots then cover only this shard's
  /// range (and restores drop out-of-range entries, so pre-resharding
  /// snapshots load cleanly), and requests carrying an x-htd-shard-digest
  /// header that disagrees with the map — a client or proxy routing by a
  /// stale topology — are refused with 421 Misdirected Request. The pair is
  /// only the STARTING topology: /v1/admin/migrate can replace it at
  /// runtime (live resharding, docs/OPERATIONS.md).
  std::optional<service::ShardMap> shard_map;
  int shard_index = -1;

  /// Transport timeout for one migration push (POST /v1/admin/import to a
  /// new owner). Blobs can be large; default is generous.
  double migrate_push_timeout_seconds = 300.0;

  /// Anti-entropy between replica siblings (docs/OPERATIONS.md): every
  /// interval, compare warm-state digests with the other replicas of this
  /// range and pull the differing slices. 0 (the default) disables the
  /// background loop; POST /v1/admin/antientropy still forces a round.
  /// Requires shard_map.
  double anti_entropy_interval_seconds = 0.0;
  /// Sub-slices per digest comparison: more slices = finer-grained pulls
  /// (less redundant transfer) at a longer digest response. [1, 4096].
  int anti_entropy_slices = 16;
  /// This process's own endpoint as listed in the shard map ("host:port"),
  /// so the sweep excludes itself from its sibling set. Empty = infer by
  /// matching the listen port against the replica group (works whenever
  /// replica ports are distinct per host, e.g. loopback test fleets); an
  /// unidentifiable self degrades to pulling from every replica, where the
  /// self-pull is a digest-equal no-op.
  std::string anti_entropy_self;
  /// Transport timeout for one digest or slice pull.
  double anti_entropy_pull_timeout_seconds = 60.0;
};

class DecompositionServer {
 public:
  struct AdmissionStats {
    uint64_t admitted = 0;     ///< requests handed to the scheduler
    uint64_t shed = 0;         ///< requests rejected with 429
    uint64_t bad_requests = 0; ///< parse/validation failures (4xx)
    uint64_t misrouted = 0;    ///< sharding refusals (421): digest or range
  };

  /// Warm-state movement counters (live resharding, docs/OPERATIONS.md).
  struct MigrationStats {
    uint64_t imported_cache_entries = 0;  ///< merged in via /v1/admin/import
    uint64_t imported_store_entries = 0;
    uint64_t migrated_out_entries = 0;    ///< pushed to new owners by migrate
  };

  /// Cumulative anti-entropy counters (same cells as the
  /// htd_antientropy_*_total metrics).
  struct AntiEntropyStats {
    uint64_t rounds_ok = 0;       ///< rounds completed without a pull error
    uint64_t rounds_error = 0;    ///< rounds with >= 1 failed/aborted sibling
    uint64_t rounds_skipped = 0;  ///< no siblings, or migration in flight
    uint64_t merged_cache_entries = 0;
    uint64_t merged_store_entries = 0;
    uint64_t bytes_pulled = 0;
  };

  /// Outcome of one sweep round (RunAntiEntropySweep).
  struct SweepResult {
    int siblings = 0;       ///< siblings this round compared against
    int slices_pulled = 0;  ///< digest slices that differed and were fetched
    uint64_t cache_entries = 0;  ///< merged in this round
    uint64_t store_entries = 0;
    uint64_t bytes = 0;  ///< slice blob bytes transferred
    int errors = 0;      ///< siblings whose exchange failed or was aborted
  };

  /// The sharding identity the server currently enforces. Starts from
  /// DecompositionServerOptions::{shard_map, shard_index}; replaced at
  /// runtime by /v1/admin/migrate. While `new_map` is set the server is
  /// TRANSITIONING: it accepts the old digest AND the new one, and
  /// fingerprints in the old range AND (when it stays in the fleet) the new
  /// one, so no correctly double-routed request 421s mid-migration.
  struct ShardState {
    explicit ShardState(service::ShardMap m) : map(std::move(m)) {}

    service::ShardMap map;
    int index = 0;
    service::FingerprintRange range;
    std::string digest_hex;

    std::optional<service::ShardMap> new_map;
    /// This server's range under new_map; -1 = leaving the fleet (it
    /// donates everything and serves only its old range until shut down).
    int new_index = -1;
    service::FingerprintRange new_range;  ///< valid iff new_index >= 0
    std::string new_digest_hex;

    bool transitioning() const { return new_map.has_value(); }
  };

  /// Builds the service (validated), restores the snapshot when configured,
  /// and wires the routes. The HTTP listener is not started yet — Start().
  static util::StatusOr<std::unique_ptr<DecompositionServer>> Create(
      DecompositionServerOptions options);

  ~DecompositionServer();

  DecompositionServer(const DecompositionServer&) = delete;
  DecompositionServer& operator=(const DecompositionServer&) = delete;

  util::Status Start();
  /// Cancels in-flight solves, stops the listener, drains the service.
  void Stop();

  int port() const { return http_->port(); }
  service::DecompositionService& decomposition_service() { return *service_; }
  qa::QueryEngine& query_engine() { return *query_engine_; }
  AdmissionStats admission_stats() const;
  MigrationStats migration_stats() const;
  /// Entries restored at startup (zeros when cold).
  const service::SnapshotStats& restored() const { return restored_; }
  /// Snapshot of the current sharding identity; null when unsharded.
  std::shared_ptr<const ShardState> shard_state() const;

  /// Saves warm state to options().snapshot_path (FailedPrecondition when no
  /// path is configured). Also reachable as POST /v1/admin/snapshot.
  util::StatusOr<service::SnapshotStats> SaveSnapshotNow();

  AntiEntropyStats anti_entropy_stats() const;

  /// Runs one synchronous anti-entropy round: digest every sibling of this
  /// range, pull the differing slices, merge under dominance. What the
  /// background loop runs every interval; also reachable as
  /// POST /v1/admin/antientropy, and callable directly from tests.
  /// FailedPrecondition when unsharded or a migration is in flight. A
  /// sibling that fails mid-exchange (transport error, corrupt digest or
  /// blob) aborts THAT sibling's exchange cleanly — counted in
  /// SweepResult::errors, the store left consistent — and the round
  /// continues with the next sibling.
  util::StatusOr<SweepResult> RunAntiEntropySweep();

  /// Route dispatch; public so tests can drive the server without sockets.
  HttpResponse Handle(const HttpRequest& request);

  const DecompositionServerOptions& options() const { return options_; }

 private:
  struct AsyncJob {
    std::shared_future<service::JobResult> future;
    /// The admitted instance; kept so a later GET can render the
    /// decomposition in the caller's vertex/edge names.
    std::shared_ptr<const Hypergraph> graph;
    int k = 0;
    bool include_decomposition = false;
  };

  /// Async query job ("q<N>"). Runs as a background-lane task on the
  /// fleet-wide executor: QueryEngine::Answer blocks on probe flights served
  /// by the same executor, which is safe because a worker running Answer
  /// helps execute sync/async-lane work while it waits
  /// (Executor::HelpWhileWaiting) — and the background lane itself is
  /// excluded from helping, so query jobs can't recursively stack. Counted
  /// in the admission bound via outstanding_query_jobs_ (unlike the old
  /// detached std::async threads, which the 429 check could not see).
  struct AsyncQueryJob {
    std::shared_future<util::StatusOr<qa::QueryAnswer>> future;
  };

  explicit DecompositionServer(DecompositionServerOptions options);

  /// Binds the admission/migration counters and route histograms onto the
  /// service's MetricsRegistry (called once from Create, after service_).
  void BindMetrics();

  /// Route dispatch body; Handle() wraps it with the per-route latency
  /// histogram observation.
  HttpResponse Dispatch(const HttpRequest& request);

  /// `request_id` is the root span id (echoed by the caller); on the
  /// synchronous path `server_timing` receives the stage breakdown in
  /// Server-Timing header syntax.
  HttpResponse HandleDecompose(const HttpRequest& request, uint64_t request_id,
                               std::string* server_timing);
  HttpResponse HandleQuery(const HttpRequest& request, uint64_t request_id,
                           std::string* server_timing);
  HttpResponse HandleJob(const std::string& id);
  HttpResponse HandleQueryJob(const std::string& id);
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();
  HttpResponse HandleTrace(const HttpRequest& request);
  HttpResponse HandleSnapshot();
  HttpResponse HandleExport(const HttpRequest& request);
  HttpResponse HandleImport(const HttpRequest& request);
  HttpResponse HandleMigrate(const HttpRequest& request);
  HttpResponse HandleDigest(const HttpRequest& request);
  HttpResponse HandleAntiEntropy();

  /// The background sweep loop (anti_entropy_interval_seconds > 0): one
  /// RunAntiEntropySweep per interval until Stop().
  void AntiEntropyLoop();

  /// This process's endpoint within `state`'s map: the configured
  /// anti_entropy_self, else the replica of our range matching the listen
  /// port, else an empty endpoint (matches nobody — the sweep then pulls
  /// from the whole replica group).
  service::ShardEndpoint SelfEndpoint(const ShardState& state) const;

  /// Jobs the admission bound counts: scheduler-outstanding plus async
  /// query jobs still running (their probe flights resolve before the job
  /// does, so the scheduler alone under-counts query load).
  uint64_t TotalOutstandingJobs() const;

  /// Renders one resolved JobResult as the response JSON body.
  std::string RenderResult(const service::JobResult& job, const Hypergraph& graph,
                           bool include_decomposition) const;

  /// Renders one QueryAnswer as the response JSON body (docs/QUERIES.md).
  static std::string RenderQueryAnswer(const qa::QueryAnswer& answer);

  /// The solver-config digest snapshots are stamped with (recomputed the
  /// way the service armed it, so the header matches the keys inside).
  uint64_t CurrentConfigDigest() const;

  /// Atomically replaces the sharding identity.
  void SwapShardState(std::shared_ptr<const ShardState> next);

  DecompositionServerOptions options_;
  std::unique_ptr<service::DecompositionService> service_;
  /// Built after service_ in Create(); its metrics land on the service's
  /// registry. Never null after Create().
  std::unique_ptr<qa::QueryEngine> query_engine_;
  std::unique_ptr<HttpServer> http_;
  service::SnapshotStats restored_;

  /// Current sharding identity (null = unsharded); readers copy the
  /// shared_ptr under shard_mutex_, writers swap it (live resharding).
  std::shared_ptr<const ShardState> shard_state_;
  mutable std::mutex shard_mutex_;
  /// Serialises /v1/admin/migrate flows (begin, re-drive, finalise).
  std::mutex migrate_mutex_;

  /// Admission/migration counters, owned by the service's MetricsRegistry
  /// (so /v1/metrics, /v1/stats, and the struct accessors all read the
  /// same cells). Bound in BindMetrics(); never null after Create().
  util::Counter* admitted_ = nullptr;
  util::Counter* shed_ = nullptr;
  util::Counter* bad_requests_ = nullptr;
  util::Counter* misrouted_ = nullptr;
  util::Counter* imported_cache_entries_ = nullptr;
  util::Counter* imported_store_entries_ = nullptr;
  util::Counter* migrated_out_entries_ = nullptr;
  util::Counter* ae_rounds_ok_ = nullptr;
  util::Counter* ae_rounds_error_ = nullptr;
  util::Counter* ae_rounds_skipped_ = nullptr;
  util::Counter* ae_entries_cache_ = nullptr;
  util::Counter* ae_entries_store_ = nullptr;
  util::Counter* ae_bytes_ = nullptr;
  std::atomic<uint64_t> next_job_id_{1};
  /// Set at the head of Stop(): new decompose requests are refused with 503
  /// so no fresh flight can slip in behind the cancellation sweep.
  std::atomic<bool> stopping_{false};
  /// Serialises snapshot writers (concurrent saves would interleave on the
  /// shared temp file and install a corrupt snapshot).
  std::mutex snapshot_mutex_;

  /// Async query jobs admitted but not yet resolved. Incremented before the
  /// background task is submitted; decremented as the task's last touch of
  /// this object, so Stop() seeing zero means no query task will dereference
  /// the server again.
  std::atomic<uint64_t> outstanding_query_jobs_{0};

  std::mutex jobs_mutex_;
  std::map<std::string, AsyncJob> jobs_;       // guarded by jobs_mutex_
  std::list<std::string> job_order_;           // insertion order, for eviction
  std::map<std::string, AsyncQueryJob> query_jobs_;  // guarded by jobs_mutex_
  std::list<std::string> query_job_order_;

  /// anti_entropy_self parsed at Create(); nullopt when empty/inferred.
  std::optional<service::ShardEndpoint> ae_self_;
  /// Serialises sweep rounds (the background loop vs a forced
  /// /v1/admin/antientropy) so two rounds never interleave their pulls.
  std::mutex ae_mutex_;
  /// Started by Start() when the interval is > 0; joined at the head of
  /// Stop() (the loop polls stopping_ and checks it between pulls).
  std::thread anti_entropy_thread_;
};

}  // namespace htd::net
