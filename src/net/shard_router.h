// Fingerprint-range routing proxy: hdserver's --route-to mode.
//
// One ShardRouter sits in front of N sharded hdserver backends
// (net/decomposition_server.h, each configured with the same ShardMap and
// its own shard_index) and forwards every /v1/decompose to the shard that
// owns the instance's canonical fingerprint. Because the fingerprint is
// isomorphism-invariant, all renamings of an instance — and, with the
// subproblem store enabled, all isomorphic subproblems the backends memoize
// — accumulate on one shard, so the fleet's warm state is a partition, not
// N overlapping copies (ROADMAP: "shard the warm state across processes").
//
//   clients ──► ShardRouter (hdserver --route-to a:1,b:2*2,c:2)
//                  │  fingerprint → ShardMap::IndexFor
//                  ├────────► range 0 (hdserver --shard-map … --shard-index 0)
//                  └──round-robin──► range 1 replicas b:2 and c:2
//                                    (both --shard-index 1)
//
// Replication (service/shard_map.h "host:port*R" syntax): a hot range can
// be served by R replicas. The router round-robins decompose requests over
// a range's replicas and FAILS OVER to the next replica on a transport
// error or backoff window, so one dead replica costs a connect timeout
// once, not availability; fan-out routes (stats/snapshot) and migration
// imports address every replica, which is what keeps a surviving replica
// warm enough to make shard death a non-event.
//
// Live resharding: the router can hold TWO maps at once (POST
// /v1/admin/transition installs the incoming topology next to the current
// one). While transitioning, decompose requests are double-routed: the
// CURRENT owner is tried first (it still holds the warm entry — donors keep
// their copies until the handover completes), and a 421 ("I already
// finalised onto the new map") or transport-level failure retries the NEW
// owner under the new digest. No correctly-operated request surfaces a 421
// mid-migration. `?complete=1` flips the new map to current;
// `?abort=1` drops it. tools/hdreshard.cc drives the whole sequence.
//
// Forwarding is SINGLE-HOP by construction: every forwarded request carries
// x-htd-forwarded, and a router that receives that header answers 508 Loop
// Detected instead of forwarding again — a mis-wired fleet (router routed to
// itself, or two routers pointed at each other) fails loudly on the first
// request rather than melting down. Requests also carry the map digest and
// the computed fingerprint, so a backend holding a different topology
// refuses with 421 (see DecompositionServerOptions::shard_map).
//
// Health: an endpoint whose transport fails (connect/send/recv) is marked
// down and skipped for an exponentially growing backoff window; with no
// healthy replica left the client gets a fail-fast 503 + Retry-After. One
// successful exchange resets it. A shard's own 429/503 load-shedding
// responses pass through verbatim and are NOT retried on a sibling replica
// — the router adds no retry magic to overload, clients already know how to
// back off (docs/SERVER.md).
//
// Routes: /v1/decompose forwards to the owning shard (async job ids come
// back prefixed "s<shard>r<replica>." so /v1/jobs/<id> can route without
// state to the exact minting process (replicas mint independent counters) —
// polls try every replica of the range); /v1/query routes identically but
// keys on the fingerprint of the QUERY'S HYPERGRAPH (qa/wire.h body), so
// repeated queries warm the shard that owns them; /v1/stats fans out to every
// endpoint and returns per-endpoint bodies plus an aggregated summary;
// /v1/metrics fans out and returns one Prometheus text page with identical
// backend series summed plus the router's own htd_router_* series appended;
// /v1/trace?n=K answers locally with the router's recent root spans;
// /v1/admin/snapshot fans out (each process persists its own range);
// /v1/admin/transition begins/completes/aborts a live reshard;
// /healthz answers locally with per-endpoint reachability.
//
// Observability: every forwarded /v1/decompose carries an
// X-HTD-Request-Id the backend adopts as its root span id, so the router's
// "route" span and the backend's "request" trace stitch on one id; the
// backend's X-HTD-Request-Id and Server-Timing response headers pass
// through to the client. Each forward attempt is recorded as a "forward"
// span tagged (range << 8 | replica).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "service/shard_map.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace htd::net {

struct ShardRouterOptions {
  service::ShardMap map;

  /// Transport timeout for connecting to a shard.
  double connect_timeout_seconds = 5.0;
  /// Floor for the forwarded-request read timeout. Synchronous decompose
  /// forwards stretch it to cover the job's own ?timeout= (the shard
  /// legitimately takes that long to answer); ?timeout=0 waits indefinitely.
  double read_timeout_seconds = 120.0;
  /// First backoff after a transport failure; doubles per consecutive
  /// failure up to backoff_max_seconds.
  double backoff_base_seconds = 0.5;
  double backoff_max_seconds = 30.0;
  /// Retry-After value on router-generated 503s (shard down / backing off).
  int retry_after_seconds = 1;
};

class ShardRouter {
 public:
  /// Per-ENDPOINT health and traffic counters (one row per process; a
  /// replicated range contributes one row per replica). Rows are ordered
  /// (range, replica) over the current map, then any endpoints only present
  /// in the incoming map while a transition is in flight (range = their
  /// range under the NEW map, new_map_only = true).
  struct ShardStats {
    std::string host;
    int port = 0;
    int range = 0;                ///< fingerprint range this endpoint serves
    int replica = 0;              ///< replica slot within the range
    bool new_map_only = false;    ///< only addressable under the incoming map
    uint64_t forwarded = 0;       ///< exchanges attempted against this endpoint
    uint64_t transport_errors = 0;///< connect/send/recv/parse failures
    uint64_t backoff_shed = 0;    ///< skips without touching the socket
    int consecutive_failures = 0;
    bool backing_off = false;     ///< true while inside the backoff window
  };

  explicit ShardRouter(ShardRouterOptions options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route dispatch; plug into HttpServer as the handler (tools/hdserver.cc)
  /// or call directly in tests.
  HttpResponse Handle(const HttpRequest& request);

  const ShardRouterOptions& options() const { return options_; }
  std::vector<ShardStats> shard_stats() const;

  /// The router's own registry (per-route latency histograms, rendered at
  /// the tail of the aggregated /v1/metrics page as htd_router_* series).
  util::MetricsRegistry& metrics() { return metrics_; }

  /// Installs `new_map` as the incoming topology and starts double-routing
  /// (also reachable as POST /v1/admin/transition with the spec as body).
  /// Idempotent for the same map; kFailedPrecondition when a DIFFERENT
  /// transition is already in flight, kInvalidArgument when the new map
  /// equals the current one.
  util::Status BeginTransition(const service::ShardMap& new_map);
  /// Flips the incoming map to current (kFailedPrecondition when no
  /// transition is in flight). Also POST /v1/admin/transition?complete=1.
  util::Status CompleteTransition();
  /// Drops the incoming map without flipping (?abort=1).
  util::Status AbortTransition();
  bool transitioning() const;
  /// The map currently routed by (the OLD map mid-transition).
  service::ShardMap current_map() const;

 private:
  struct EndpointHealth {
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point retry_at{};  // epoch = healthy
    uint64_t forwarded = 0;
    uint64_t transport_errors = 0;
    uint64_t backoff_shed = 0;
  };

  /// Immutable snapshot of the routing topology, swapped whole under
  /// maps_mutex_ so request handlers never see a half-updated transition.
  struct Maps {
    explicit Maps(service::ShardMap m) : map(std::move(m)) {}

    service::ShardMap map;
    std::string digest_hex;
    std::optional<service::ShardMap> new_map;
    std::string new_digest_hex;
    /// The map retired by the last completed transition. Job ids encode a
    /// range index under the map that minted them, so polls keep resolving
    /// against one generation of history — an async job admitted just
    /// before the flip stays pollable on the endpoint that owns it.
    std::optional<service::ShardMap> prev_map;
    std::string prev_digest_hex;
  };

  std::shared_ptr<const Maps> maps() const;

  /// Route dispatch body; Handle() wraps it with the per-route latency
  /// histogram observation.
  HttpResponse Dispatch(const HttpRequest& request);

  HttpResponse HandleDecompose(const HttpRequest& request);
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleJob(const HttpRequest& request);
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();
  HttpResponse HandleTrace(const HttpRequest& request);
  HttpResponse HandleSnapshot();
  HttpResponse HandleTransition(const HttpRequest& request);

  /// Shared forwarding tail of HandleDecompose and HandleQuery: route
  /// `request` to the range owning `fp` under the current map, double-route
  /// mid-transition, prefix async job ids, and guarantee an
  /// X-HTD-Request-Id on the way out.
  HttpResponse RouteByFingerprint(const HttpRequest& request,
                                  const service::Fingerprint& fp);

  /// One blocking exchange against `endpoint` (Connection: close), with the
  /// single-hop / digest / fingerprint headers attached. Applies the
  /// backoff gate before touching the socket and records the outcome.
  /// `*transport_failed` distinguishes "endpoint is down / backing off"
  /// (true — the caller may fail over to a sibling replica) from an HTTP
  /// response, which passes through verbatim.
  /// A non-empty `request_id_hex` is attached as X-HTD-Request-Id (the
  /// backend adopts it as its root span id); the backend's Server-Timing
  /// and X-HTD-Request-Id response headers pass through.
  HttpResponse ForwardToEndpoint(const service::ShardEndpoint& endpoint,
                                 const std::string& digest_hex,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& fingerprint_hex,
                                 const std::string& request_id_hex,
                                 double read_timeout_seconds,
                                 bool* transport_failed);

  /// Replica-aware forward to range `index` of `map`: starts at the
  /// round-robin slot, skips replicas in their backoff window, and fails
  /// over to the next replica on transport errors. Returns the first HTTP
  /// response, or a 503 when every replica is down or backing off. A
  /// non-null `served_replica` receives the replica slot that answered
  /// (unchanged when no replica did) — job-id prefixes need the exact
  /// minting process, not just the range.
  /// `trace` parents one "forward" span per attempt, tagged
  /// (range << 8 | replica); an all-zero TraceParent records nothing.
  HttpResponse ForwardToRange(const service::ShardMap& map, int index,
                              const std::string& digest_hex,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body,
                              const std::string& fingerprint_hex,
                              const std::string& request_id_hex,
                              double read_timeout_seconds,
                              util::TraceParent trace = {},
                              int* served_replica = nullptr);

  /// Every unique endpoint the router currently addresses (current map
  /// first in (range, replica) order, then incoming-map-only extras).
  struct AddressedEndpoint {
    service::ShardEndpoint endpoint;
    int range = 0;
    int replica = 0;
    bool new_map_only = false;
    std::string digest_hex;  ///< digest of the map this endpoint is under
  };
  static std::vector<AddressedEndpoint> AddressedEndpoints(const Maps& maps);

  /// Body-less forward to EVERY addressed endpoint concurrently (up to 16
  /// fan-out threads), index-aligned with AddressedEndpoints(). A
  /// sequential fan-out would serialise the connect timeouts of down
  /// endpoints on a router IO thread.
  std::vector<HttpResponse> ForwardAll(
      const std::vector<AddressedEndpoint>& targets, const std::string& method,
      const std::string& target, double read_timeout_seconds);

  /// Health rows for exactly `targets`, index-aligned — callers that pair
  /// health with per-endpoint responses pass the SAME target list to both,
  /// so a concurrent transition cannot misalign the rows.
  std::vector<ShardStats> StatsForTargets(
      const std::vector<AddressedEndpoint>& targets) const;

  static std::string HealthKey(const service::ShardEndpoint& endpoint) {
    return endpoint.host + ":" + std::to_string(endpoint.port);
  }

  /// True when the endpoint is inside its backoff window (also bumps the
  /// backoff_shed counter).
  bool InBackoff(const std::string& key);
  void RecordSuccess(const std::string& key);
  void RecordFailure(const std::string& key);

  ShardRouterOptions options_;
  /// Router-local metrics; family names are htd_router_* so the aggregated
  /// /v1/metrics page never collides with summed backend series.
  util::MetricsRegistry metrics_;
  mutable std::mutex maps_mutex_;
  std::shared_ptr<const Maps> maps_;  // swapped by transitions

  mutable std::mutex health_mutex_;
  /// Keyed "host:port" so health survives topology transitions — flipping
  /// the map must not forget which processes were down.
  std::map<std::string, EndpointHealth> health_;

  /// Round-robin cursor for replica selection (shared across ranges; only
  /// the modulo per range matters).
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace htd::net
