// Fingerprint-range routing proxy: hdserver's --route-to mode.
//
// One ShardRouter sits in front of N sharded hdserver backends
// (net/decomposition_server.h, each configured with the same ShardMap and
// its own shard_index) and forwards every /v1/decompose to the shard that
// owns the instance's canonical fingerprint. Because the fingerprint is
// isomorphism-invariant, all renamings of an instance — and, with the
// subproblem store enabled, all isomorphic subproblems the backends memoize
// — accumulate on one shard, so the fleet's warm state is a partition, not
// N overlapping copies (ROADMAP: "shard the warm state across processes").
//
//   clients ──► ShardRouter (hdserver --route-to a:1,b:2)
//                  │  fingerprint → ShardMap::IndexFor
//                  ├────────► shard 0 (hdserver --shard-map a:1,b:2 --shard-index 0)
//                  └────────► shard 1 (hdserver --shard-map a:1,b:2 --shard-index 1)
//
// Forwarding is SINGLE-HOP by construction: every forwarded request carries
// x-htd-forwarded, and a router that receives that header answers 508 Loop
// Detected instead of forwarding again — a mis-wired fleet (router routed to
// itself, or two routers pointed at each other) fails loudly on the first
// request rather than melting down. Requests also carry the map digest and
// the computed fingerprint, so a backend holding a different topology
// refuses with 421 (see DecompositionServerOptions::shard_map).
//
// Health: a shard whose transport fails (connect/send/recv) is marked down
// and skipped for an exponentially growing backoff window (fail-fast 503 +
// Retry-After to the client, per-shard, without touching the socket); one
// successful exchange resets it. A shard's own 429/503 load-shedding
// responses pass through verbatim — the router adds no retry magic, clients
// already know how to back off (docs/SERVER.md).
//
// Routes: /v1/decompose forwards to the owning shard (async job ids come
// back prefixed "s<shard>." so /v1/jobs/<id> can route without state);
// /v1/stats fans out and returns per-shard bodies plus an aggregated
// summary; /v1/admin/snapshot fans out (each shard persists its own range);
// /healthz answers locally with per-shard reachability.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "service/shard_map.h"

namespace htd::net {

struct ShardRouterOptions {
  service::ShardMap map;

  /// Transport timeout for connecting to a shard.
  double connect_timeout_seconds = 5.0;
  /// Floor for the forwarded-request read timeout. Synchronous decompose
  /// forwards stretch it to cover the job's own ?timeout= (the shard
  /// legitimately takes that long to answer); ?timeout=0 waits indefinitely.
  double read_timeout_seconds = 120.0;
  /// First backoff after a transport failure; doubles per consecutive
  /// failure up to backoff_max_seconds.
  double backoff_base_seconds = 0.5;
  double backoff_max_seconds = 30.0;
  /// Retry-After value on router-generated 503s (shard down / backing off).
  int retry_after_seconds = 1;
};

class ShardRouter {
 public:
  struct ShardStats {
    uint64_t forwarded = 0;       ///< exchanges attempted against this shard
    uint64_t transport_errors = 0;///< connect/send/recv/parse failures
    uint64_t backoff_shed = 0;    ///< 503s answered without touching the socket
    int consecutive_failures = 0;
    bool backing_off = false;     ///< true while inside the backoff window
  };

  explicit ShardRouter(ShardRouterOptions options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route dispatch; plug into HttpServer as the handler (tools/hdserver.cc)
  /// or call directly in tests.
  HttpResponse Handle(const HttpRequest& request);

  const ShardRouterOptions& options() const { return options_; }
  std::vector<ShardStats> shard_stats() const;

 private:
  struct ShardHealth {
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point retry_at{};  // epoch = healthy
    uint64_t forwarded = 0;
    uint64_t transport_errors = 0;
    uint64_t backoff_shed = 0;
  };

  HttpResponse HandleDecompose(const HttpRequest& request);
  HttpResponse HandleJob(const HttpRequest& request);
  HttpResponse HandleStats();
  HttpResponse HandleSnapshot();

  /// One blocking exchange against shard `index` (Connection: close), with
  /// the single-hop / digest / fingerprint headers attached. Applies the
  /// backoff gate before touching the socket and records the outcome.
  /// `fingerprint_hex` is empty for non-decompose forwards.
  HttpResponse Forward(int index, const std::string& method,
                       const std::string& target, const std::string& body,
                       const std::string& fingerprint_hex,
                       double read_timeout_seconds);

  /// Body-less Forward to EVERY shard concurrently (up to 16 fan-out
  /// threads), index-aligned results. A sequential fan-out would serialise
  /// the connect timeouts of down shards on a router IO thread.
  std::vector<HttpResponse> ForwardAll(const std::string& method,
                                       const std::string& target,
                                       double read_timeout_seconds);

  /// True when the shard is inside its backoff window (also bumps the
  /// backoff_shed counter).
  bool InBackoff(int index);
  void RecordSuccess(int index);
  void RecordFailure(int index);

  ShardRouterOptions options_;
  mutable std::mutex health_mutex_;
  std::vector<ShardHealth> health_;  // index-aligned with the map
};

}  // namespace htd::net
