// JSON rendering of the process's recent traces (GET /v1/trace), shared by
// the backend server and the shard router so both emit the same shape:
//
//   {"enabled": true, "traces": [
//     {"id": "<16 hex>", "name": "request", "start_ms": ..,
//      "duration_ms": .., "tag": .., "spans": [
//        {"id": .., "parent": .., "name": "solve", "start_ms": ..,
//         "duration_ms": .., "tag": ..}, ...]}, ...]}
//
// Traces are the most recent completed ROOT spans (newest first), children
// attached sorted by start time. Ids are 16 lowercase hex digits — the same
// encoding as the X-HTD-Request-Id header, so an operator can grep a
// response header straight into this output.
#pragma once

#include <cstddef>
#include <string>

namespace htd::net {

/// Body of GET /v1/trace?n=K (trailing newline included).
std::string RenderRecentTracesJson(size_t n);

}  // namespace htd::net
