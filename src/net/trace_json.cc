#include "net/trace_json.h"

#include <cstdio>

#include "net/json.h"
#include "util/trace.h"

namespace htd::net {

namespace {

/// Nanoseconds rendered as fractional milliseconds.
std::string MsJson(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return std::string(buf);
}

std::string SpanJson(const util::TraceSpan& span) {
  std::string json = "{\"id\": \"" + util::TraceIdHex(span.id) + "\"";
  json += ", \"parent\": \"" + util::TraceIdHex(span.parent) + "\"";
  json += ", \"name\": \"" + JsonEscape(span.Name()) + "\"";
  json += ", \"start_ms\": " + MsJson(span.start_ns);
  json += ", \"duration_ms\": " + MsJson(span.duration_ns);
  json += ", \"tag\": " + std::to_string(span.tag);
  json += "}";
  return json;
}

}  // namespace

std::string RenderRecentTracesJson(size_t n) {
  util::TraceRegistry& registry = util::TraceRegistry::Instance();
  auto roots = registry.RecentRoots(n);
  std::string body = std::string("{\"enabled\": ") +
                     (registry.enabled() ? "true" : "false") + ", \"traces\": [";
  bool first_root = true;
  for (const util::TraceRegistry::RootTrace& trace : roots) {
    if (!first_root) body += ", ";
    first_root = false;
    body += "{\"id\": \"" + util::TraceIdHex(trace.root.id) + "\"";
    body += ", \"name\": \"" + JsonEscape(trace.root.Name()) + "\"";
    body += ", \"start_ms\": " + MsJson(trace.root.start_ns);
    body += ", \"duration_ms\": " + MsJson(trace.root.duration_ns);
    body += ", \"tag\": " + std::to_string(trace.root.tag);
    body += ", \"spans\": [";
    bool first_span = true;
    for (const util::TraceSpan& span : trace.spans) {
      if (!first_span) body += ", ";
      first_span = false;
      body += SpanJson(span);
    }
    body += "]}";
  }
  body += "]}\n";
  return body;
}

}  // namespace htd::net
