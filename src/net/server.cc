#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace htd::net {

namespace internal {

using Clock = std::chrono::steady_clock;

namespace {

/// Timer wheel granularity and span: 20 ms ticks x 4096 slots ≈ 82 s
/// horizon, comfortably past the default 30 s idle timeout. Deadlines past
/// the horizon are parked at the rim and lazily re-inserted when they fire
/// early (the wheel stores check-times, not hard deadlines — the connection
/// carries the authoritative deadline).
constexpr auto kTick = std::chrono::milliseconds(20);
constexpr size_t kWheelSlots = 4096;

/// Per-event read budget: a firehose peer yields the loop back after this
/// many bytes; level-triggered EPOLLIN re-notifies immediately.
constexpr size_t kReadBudget = 256 * 1024;

}  // namespace

/// One member of the worker ring: an epoll set, a timer wheel, and the
/// state machines of every connection it owns. Connections are touched ONLY
/// by this loop's thread; the acceptor and the handler pool communicate
/// through the eventfd-woken inbox.
class EventLoop {
 public:
  explicit EventLoop(HttpServer* server) : server_(server) {}

  ~EventLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  util::Status Init() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      return util::Status::Internal(std::string("epoll_create1(): ") +
                                    std::strerror(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return util::Status::Internal(std::string("eventfd(): ") +
                                    std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return util::Status::Internal(std::string("epoll_ctl(wake): ") +
                                    std::strerror(errno));
    }
    return util::Status::Ok();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Acceptor hand-off. Safe from any thread.
  void AddConnection(int fd) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      pending_fds_.push_back(fd);
    }
    Wake();
  }

  /// Handler completion hand-off: the serialised response for `conn_id`.
  /// Safe from any thread, including after the loop thread has exited
  /// (the bytes are then dropped — the connection is gone).
  void PostCompletion(uint64_t conn_id, int fd, std::string bytes, bool close) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      completions_.push_back(Completion{conn_id, fd, std::move(bytes), close});
    }
    Wake();
  }

  /// Begin shutdown: idle/mid-read connections close now; dispatched and
  /// part-written ones drain (handler finishes, response flushes, bounded
  /// by the write timeout). The loop thread exits once no connections
  /// remain. Safe from any thread.
  void BeginDrain() {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      drain_requested_ = true;
    }
    Wake();
  }

  HttpServer::ConnectionCounts counts() const {
    HttpServer::ConnectionCounts counts;
    counts.idle = n_idle_.load(std::memory_order_relaxed);
    counts.reading = n_reading_.load(std::memory_order_relaxed);
    counts.dispatched = n_dispatched_.load(std::memory_order_relaxed);
    counts.writing = n_writing_.load(std::memory_order_relaxed);
    return counts;
  }

 private:
  enum class State { kIdle, kReading, kDispatched, kWriting };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    State state = State::kIdle;
    HttpRequestParser parser;
    std::string out;        ///< response bytes being flushed
    size_t out_off = 0;
    bool close_after_write = false;
    /// Authoritative timeout for the current state; Clock::time_point::max()
    /// while dispatched (the handler owns its own deadline).
    Clock::time_point deadline = Clock::time_point::max();
    /// Earliest wheel check currently scheduled for this connection. A
    /// deadline moving EARLIER than this needs a fresh wheel entry — the
    /// parked one would fire too late (stale later entries are harmless;
    /// they fire, see an undue deadline, and re-park).
    Clock::time_point next_check = Clock::time_point::max();
    uint32_t events = 0;    ///< epoll interest currently armed

    explicit Conn(HttpRequestParser::Limits limits) : parser(limits) {}
  };

  struct Completion {
    uint64_t conn_id = 0;
    int fd = -1;
    std::string bytes;
    bool close = false;
  };

  struct TimerEntry {
    int fd = -1;
    uint64_t id = 0;
  };

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void Run() {
    wheel_time_ = Clock::now();
    std::vector<epoll_event> events(128);
    while (true) {
      auto now = Clock::now();
      auto until_tick = std::chrono::duration_cast<std::chrono::milliseconds>(
          wheel_time_ + kTick - now);
      int timeout_ms = static_cast<int>(
          std::min<long long>(100, std::max<long long>(0, until_tick.count())));
      int n = ::epoll_wait(epoll_fd_, events.data(),
                           static_cast<int>(events.size()), timeout_ms);
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == wake_fd_) {
          uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        HandleEvent(events[i].data.fd, events[i].events);
      }
      DrainInbox();
      AdvanceWheel(Clock::now());
      if (draining_ && conns_.empty()) break;
    }
  }

  void DrainInbox() {
    std::vector<int> fds;
    std::vector<Completion> completions;
    bool drain = false;
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      fds.swap(pending_fds_);
      completions.swap(completions_);
      drain = drain_requested_;
    }
    if (drain && !draining_) {
      draining_ = true;
      // Close everything with no in-flight work. Dispatched connections
      // stay for their response; part-written ones stay for their flush.
      std::vector<int> to_close;
      for (const auto& [fd, conn] : conns_) {
        if (conn->state == State::kIdle || conn->state == State::kReading) {
          to_close.push_back(fd);
        }
      }
      for (int fd : to_close) CloseConn(*conns_.at(fd));
    }
    for (int fd : fds) Register(fd);
    for (Completion& completion : completions) {
      auto it = conns_.find(completion.fd);
      if (it == conns_.end() || it->second->id != completion.conn_id) {
        continue;  // connection died while its handler ran (e.g. reaped)
      }
      Conn& conn = *it->second;
      // The completed request is history: drop it, keep pipelined bytes.
      conn.parser.Reset();
      QueueWrite(conn, std::move(completion.bytes), completion.close);
    }
  }

  void Register(int fd) {
    if (draining_) {
      ::close(fd);
      server_->OnConnectionClosed();
      return;
    }
    util::SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>(server_->options_.limits);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->deadline = Clock::now() + IdleTimeout();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      server_->OnConnectionClosed();
      return;
    }
    conn->events = EPOLLIN;
    conn->next_check = InsertTimer(fd, conn->id, conn->deadline);
    n_idle_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
  }

  std::atomic<uint64_t>& StateCounter(State state) {
    switch (state) {
      case State::kIdle: return n_idle_;
      case State::kReading: return n_reading_;
      case State::kDispatched: return n_dispatched_;
      case State::kWriting: return n_writing_;
    }
    return n_idle_;
  }

  void SetState(Conn& conn, State state) {
    if (conn.state == state) return;
    StateCounter(conn.state).fetch_sub(1, std::memory_order_relaxed);
    StateCounter(state).fetch_add(1, std::memory_order_relaxed);
    conn.state = state;
  }

  void SetInterest(Conn& conn, uint32_t mask) {
    if (conn.events == mask) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.events = mask;
  }

  void CloseConn(Conn& conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    // Free the admission slot BEFORE dropping the state gauge: an observer
    // who sees the gauges hit zero must be guaranteed the acceptor won't
    // shed their very next connect on a slot that is still being released.
    server_->OnConnectionClosed();
    StateCounter(conn.state).fetch_sub(1, std::memory_order_relaxed);
    conns_.erase(conn.fd);  // destroys conn — no member access past this
  }

  /// Seconds → wheel duration; <= 0 disables the timeout (a year ≈ never,
  /// and stays far inside time_point arithmetic range unlike max()).
  static std::chrono::nanoseconds TimeoutDuration(double seconds) {
    if (seconds <= 0) return std::chrono::hours(24 * 365);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(seconds));
  }

  std::chrono::nanoseconds IdleTimeout() const {
    return TimeoutDuration(server_->options_.idle_timeout_seconds);
  }

  std::chrono::nanoseconds HeaderTimeout() const {
    double seconds = server_->options_.header_timeout_seconds > 0
                         ? server_->options_.header_timeout_seconds
                         : server_->options_.idle_timeout_seconds;
    return TimeoutDuration(seconds);
  }

  std::chrono::nanoseconds WriteTimeout() const {
    return TimeoutDuration(server_->options_.write_timeout_seconds);
  }

  void HandleEvent(int fd, uint32_t events) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = *it->second;
    if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
        conn.state != State::kWriting) {
      // kWriting keeps going: EPOLLOUT|EPOLLHUP can arrive together and the
      // flush attempt itself reports the definitive error.
      CloseConn(conn);
      return;
    }
    if ((events & EPOLLOUT) != 0 && conn.state == State::kWriting) {
      TryFlush(conn);
      return;
    }
    if ((events & (EPOLLIN | EPOLLHUP)) != 0 &&
        (conn.state == State::kIdle || conn.state == State::kReading)) {
      ReadAvailable(conn);
    }
  }

  void ReadAvailable(Conn& conn) {
    char buffer[16 * 1024];
    size_t budget = kReadBudget;
    while (budget > 0) {
      long n = util::RecvSome(conn.fd, buffer,
                              std::min(budget, sizeof(buffer)));
      if (n == -2) break;  // drained the socket for now
      if (n <= 0) {        // orderly close or hard error
        CloseConn(conn);
        return;
      }
      budget -= static_cast<size_t>(n);
      if (conn.state == State::kIdle) {
        // First byte of a request starts the header clock. It is NOT
        // reset per byte — that is the whole slow-loris defence.
        SetState(conn, State::kReading);
        ArmDeadline(conn, Clock::now() + HeaderTimeout());
      }
      auto state = conn.parser.Consume(
          std::string_view(buffer, static_cast<size_t>(n)));
      if (state == HttpRequestParser::State::kDone) {
        Dispatch(conn);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        RespondParseError(conn);
        return;
      }
    }
  }

  void RespondParseError(Conn& conn) {
    HttpResponse response;
    response.status = conn.parser.error_status();
    response.body = "{\"error\": \"" + conn.parser.error() + "\"}\n";
    QueueWrite(conn, SerializeResponse(response, "close"), /*close=*/true);
  }

  void Dispatch(Conn& conn) {
    bool close = conn.parser.request().WantsClose();
    HttpRequest request = conn.parser.TakeRequest();
    SetState(conn, State::kDispatched);
    conn.deadline = Clock::time_point::max();
    SetInterest(conn, 0);  // quiescent until the response comes back
    HttpServer* server = server_;
    server->io_pool_->Submit([server, loop = this, conn_id = conn.id,
                              fd = conn.fd, request = std::move(request),
                              close]() {
      HttpResponse response;
      // The handler is application code; a stray exception must cost one
      // 500, not the worker.
      try {
        response = server->handler_(request);
      } catch (...) {
        response = HttpResponse();
        response.status = 500;
        response.body = "{\"error\": \"internal server error\"}\n";
      }
      loop->PostCompletion(
          conn_id, fd,
          SerializeResponse(response, close ? "close" : "keep-alive"), close);
    });
  }

  void QueueWrite(Conn& conn, std::string bytes, bool close) {
    conn.out = std::move(bytes);
    conn.out_off = 0;
    conn.close_after_write = close || draining_;
    TryFlush(conn);
  }

  void TryFlush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      long n = util::SendNonBlocking(
          conn.fd, std::string_view(conn.out).substr(conn.out_off));
      if (n == -2) {
        // Send buffer full: level-triggered write interest, armed only
        // while the flush is incomplete. Progress re-arms the stall clock.
        SetState(conn, State::kWriting);
        ArmDeadline(conn, Clock::now() + WriteTimeout());
        SetInterest(conn, EPOLLOUT);
        return;
      }
      if (n < 0) {
        CloseConn(conn);
        return;
      }
      conn.out_off += static_cast<size_t>(n);
      if (conn.state == State::kWriting) {
        conn.deadline = Clock::now() + WriteTimeout();
      }
    }
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_write) {
      CloseConn(conn);
      return;
    }
    // Keep-alive: back to reading. Pipelined bytes the previous read
    // pulled in may already hold the next request.
    SetInterest(conn, EPOLLIN);
    if (conn.parser.buffered_bytes() > 0) {
      SetState(conn, State::kReading);
      ArmDeadline(conn, Clock::now() + HeaderTimeout());
      auto state = conn.parser.Continue();
      if (state == HttpRequestParser::State::kDone) {
        Dispatch(conn);
      } else if (state == HttpRequestParser::State::kError) {
        RespondParseError(conn);
      }
    } else {
      SetState(conn, State::kIdle);
      ArmDeadline(conn, Clock::now() + IdleTimeout());
    }
  }

  // -- Timer wheel ---------------------------------------------------------

  /// Schedules a check for (fd, id) and returns the check's nominal time
  /// (the deadline rounded up to a wheel slot, capped at the horizon).
  Clock::time_point InsertTimer(int fd, uint64_t id, Clock::time_point when) {
    long long ticks;
    if (when == Clock::time_point::max()) {
      ticks = static_cast<long long>(kWheelSlots) - 1;
    } else {
      auto delta = when - wheel_time_;
      ticks = delta.count() <= 0 ? 1 : (delta / kTick) + 1;
      ticks = std::min<long long>(ticks, static_cast<long long>(kWheelSlots) - 1);
      ticks = std::max<long long>(ticks, 1);
    }
    size_t slot = (wheel_pos_ + static_cast<size_t>(ticks)) % kWheelSlots;
    wheel_[slot].push_back(TimerEntry{fd, id});
    return wheel_time_ + ticks * kTick;
  }

  /// Sets the connection's deadline, scheduling an earlier wheel check when
  /// the current one would fire too late. Extensions need no new entry —
  /// the parked check fires early, sees an undue deadline, and re-parks.
  void ArmDeadline(Conn& conn, Clock::time_point deadline) {
    conn.deadline = deadline;
    if (deadline < conn.next_check) {
      conn.next_check = InsertTimer(conn.fd, conn.id, deadline);
    }
  }

  void AdvanceWheel(Clock::time_point now) {
    while (wheel_time_ + kTick <= now) {
      wheel_time_ += kTick;
      wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
      if (wheel_[wheel_pos_].empty()) continue;
      std::vector<TimerEntry> due = std::move(wheel_[wheel_pos_]);
      wheel_[wheel_pos_].clear();
      for (const TimerEntry& entry : due) {
        auto it = conns_.find(entry.fd);
        if (it == conns_.end() || it->second->id != entry.id) continue;
        Conn& conn = *it->second;
        if (conn.deadline > now) {
          // Re-armed (activity) or disarmed (dispatched): check again later.
          conn.next_check = InsertTimer(entry.fd, entry.id, conn.deadline);
          continue;
        }
        OnTimeout(conn);
      }
    }
  }

  void OnTimeout(Conn& conn) {
    server_->connections_reaped_.fetch_add(1, std::memory_order_relaxed);
    switch (conn.state) {
      case State::kIdle:
        // Keep-alive client gone quiet past the idle bound.
        CloseConn(conn);
        return;
      case State::kReading: {
        // Slow-loris drip: best-effort 408, then the connection is done.
        // The conn re-enters the wheel via the write deadline, so a peer
        // that also refuses to READ the 408 is reaped by the write timeout.
        HttpResponse response;
        response.status = 408;
        response.body = "{\"error\": \"timed out waiting for the request\"}\n";
        QueueWrite(conn, SerializeResponse(response, "close"), /*close=*/true);
        return;
      }
      case State::kWriting:
        // Stalled reader with a half-flushed response: abandon it; the
        // connection slot is worth more than the peer's backlog.
        CloseConn(conn);
        return;
      case State::kDispatched:
        // Unreachable: dispatched deadlines are max(). Be safe anyway.
        return;
    }
  }

  HttpServer* server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  // Loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
  std::vector<std::vector<TimerEntry>> wheel_{kWheelSlots};
  size_t wheel_pos_ = 0;
  Clock::time_point wheel_time_{};

  // Cross-thread inbox.
  std::mutex inbox_mutex_;
  std::vector<int> pending_fds_;         // guarded by inbox_mutex_
  std::vector<Completion> completions_;  // guarded by inbox_mutex_
  bool drain_requested_ = false;         // guarded by inbox_mutex_

  // Gauges, sampled by any thread.
  std::atomic<uint64_t> n_idle_{0};
  std::atomic<uint64_t> n_reading_{0};
  std::atomic<uint64_t> n_dispatched_{0};
  std::atomic<uint64_t> n_writing_{0};
};

}  // namespace internal

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  HTD_CHECK(handler_ != nullptr);
}

HttpServer::~HttpServer() { Stop(); }

util::Status HttpServer::Start() {
  if (running()) return util::Status::FailedPrecondition("server already running");
  auto listener = util::ListenTcp(options_.host, options_.port,
                                  std::max(1, options_.backlog));
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = util::LocalPort(listener_.fd());
  io_pool_ = std::make_unique<util::ThreadPool>(std::max(1, options_.io_threads));
  loops_.clear();
  for (int i = 0; i < std::max(1, options_.loop_threads); ++i) {
    auto loop = std::make_unique<internal::EventLoop>(this);
    if (auto status = loop->Init(); !status.ok()) {
      loops_.clear();
      io_pool_.reset();
      listener_.Close();
      return status;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) loop->StartThread();
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // The acceptor polls with a 100 ms timeout, so it observes running_ ==
  // false within one tick; only then is the listener closed (closing first
  // would race the acceptor's use of the fd).
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // Drain the loop ring: idle connections close now; in-flight handlers
  // finish and their responses FLUSH (bounded by the write timeout) before
  // the loops exit — a cancelled sync solve still delivers its 200.
  for (auto& loop : loops_) loop->BeginDrain();
  for (auto& loop : loops_) loop->Join();
  // Handler tasks all posted their completions before the loops emptied;
  // WaitIdle reaps the tail of any task still returning.
  io_pool_->WaitIdle();
  io_pool_.reset();
  loops_.clear();
}

HttpServer::ConnectionCounts HttpServer::connection_counts() const {
  ConnectionCounts total;
  for (const auto& loop : loops_) {
    ConnectionCounts counts = loop->counts();
    total.idle += counts.idle;
    total.reading += counts.reading;
    total.dispatched += counts.dispatched;
    total.writing += counts.writing;
  }
  return total;
}

void HttpServer::OnConnectionClosed() {
  live_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void HttpServer::AcceptLoop() {
  size_t next_loop = 0;
  while (running()) {
    util::AcceptOutcome outcome =
        util::AcceptPolled(listener_.fd(), /*timeout_ms=*/100);
    if (outcome.soft_failure) {
      // Accept failed with the connection still queued (EMFILE under fd
      // exhaustion is the classic): a bare retry would spin at 100% CPU on
      // the still-readable listener. Back off, count it, try again — the
      // connection is served as soon as an fd frees up.
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      timespec backoff{0, 10 * 1000 * 1000};  // 10 ms
      ::nanosleep(&backoff, nullptr);
      continue;
    }
    if (!outcome.socket.valid()) continue;  // poll tick: re-check running()
    // Transport-level shedding: beyond max_connections the connection is
    // refused right here. The bound is the ONLY connection limit — the
    // loops hold sockets, not threads, so io_threads no longer caps
    // admission.
    if (live_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response;
      response.status = 503;
      response.headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      response.body =
          "{\"error\": \"server at connection capacity; retry later\"}\n";
      util::SetSendTimeout(outcome.socket.fd(), 1.0);
      util::SendAll(outcome.socket.fd(), SerializeResponse(response, "close"));
      continue;  // socket destructor closes it
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    live_connections_.fetch_add(1, std::memory_order_relaxed);
    loops_[next_loop]->AddConnection(outcome.socket.Release());
    next_loop = (next_loop + 1) % loops_.size();
  }
}

}  // namespace htd::net
