#include "net/server.h"

#include <utility>

#include "util/logging.h"

namespace htd::net {

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  HTD_CHECK(handler_ != nullptr);
}

HttpServer::~HttpServer() { Stop(); }

util::Status HttpServer::Start() {
  if (running()) return util::Status::FailedPrecondition("server already running");
  auto listener = util::ListenTcp(options_.host, options_.port,
                                  std::max(1, options_.backlog));
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = util::LocalPort(listener_.fd());
  io_pool_ = std::make_unique<util::ThreadPool>(std::max(1, options_.io_threads));
  // Every IO thread must be able to hold a connection, or the pool would
  // starve below its own concurrency.
  options_.max_connections = std::max(options_.max_connections, options_.io_threads);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // The acceptor polls with a 100 ms timeout, so it observes running_ ==
  // false within one tick; only then is the listener closed (closing first
  // would race the acceptor's use of the fd).
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  {
    // Unblock every connection thread parked in recv (read-side shutdown:
    // they see EOF and bail out on running_ == false) without cutting the
    // write side — a handler mid-response can still flush it.
    std::lock_guard<std::mutex> lock(live_mutex_);
    for (int fd : live_fds_) util::ShutdownRead(fd);
  }
  io_pool_->WaitIdle();
  io_pool_.reset();
}

void HttpServer::AcceptLoop() {
  while (running()) {
    util::Socket conn = util::AcceptWithTimeout(listener_.fd(), /*timeout_ms=*/100);
    if (!conn.valid()) continue;
    {
      // Transport-level shedding: beyond max_connections the connection is
      // refused right here, on the acceptor thread — queueing it as an IO
      // task would let a synchronous-request flood grow the pool's queue
      // without bound (the application queue bound can't see it until a
      // handler thread picks it up).
      std::lock_guard<std::mutex> lock(live_mutex_);
      if (static_cast<int>(live_fds_.size()) >= options_.max_connections) {
        connections_shed_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse response;
        response.status = 503;
        response.headers.emplace_back(
            "Retry-After", std::to_string(options_.retry_after_seconds));
        response.body = "{\"error\": \"server at connection capacity; retry later\"}\n";
        util::SendAll(conn.fd(), SerializeResponse(response, "close"));
        continue;  // conn's destructor closes the socket
      }
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    int fd = conn.Release();
    {
      std::lock_guard<std::mutex> lock(live_mutex_);
      live_fds_.insert(fd);
    }
    io_pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  util::Socket conn(fd);
  util::SetRecvTimeout(fd, options_.idle_timeout_seconds);
  // A stalled peer must not park this thread in send() forever — Stop()'s
  // WaitIdle waits on it.
  util::SetSendTimeout(fd, options_.idle_timeout_seconds);
  HttpRequestParser parser(options_.limits);
  char buffer[16 * 1024];

  while (running()) {
    HttpRequestParser::State state = parser.Continue();
    while (state == HttpRequestParser::State::kNeedMore) {
      long n = util::RecvSome(fd, buffer, sizeof(buffer));
      if (n <= 0) goto done;  // peer close, error, or idle timeout
      if (!running()) goto done;
      state = parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
    }

    if (state == HttpRequestParser::State::kError) {
      HttpResponse response;
      response.status = parser.error_status();
      response.body = "{\"error\": \"" + parser.error() + "\"}\n";
      util::SendAll(fd, SerializeResponse(response, "close"));
      goto done;
    }

    {
      const HttpRequest& request = parser.request();
      bool close = request.WantsClose();
      HttpResponse response;
      // The handler is application code; a stray exception must cost one
      // 500, not the connection thread.
      try {
        response = handler_(request);
      } catch (...) {
        response = HttpResponse();
        response.status = 500;
        response.body = "{\"error\": \"internal server error\"}\n";
      }
      if (!util::SendAll(
              fd, SerializeResponse(response, close ? "close" : "keep-alive"))) {
        goto done;
      }
      if (close) goto done;
    }
    parser.Reset();
  }

done : {
  std::lock_guard<std::mutex> lock(live_mutex_);
  live_fds_.erase(fd);
}
}

}  // namespace htd::net
