// log-k-decomp — the paper's contribution (Algorithm 2, all optimisations).
//
// The recursive function Decompose searches for the λ-labels of a
// parent/child node pair (p, c) such that c is a *balanced separator* of the
// current extended subhypergraph H' = ⟨E', Sp⟩: every [λ(c)]-component of H'
// has size ≤ |H'|/2 (Definition 3.9 via Lemma 3.10). Knowing λ(p) pins down
// χ(c) = ⋃λ(c) ∩ V(comp_down) (normal-form condition 3 / Corollary 3.8), so
// the subproblem splits into the [χ(c)]-components below c plus one "up"
// problem carrying χ(c) as a fresh special edge — all of size ≤ ⌈|H'|/2⌉,
// giving the logarithmic recursion depth of Theorem 4.1.
//
// Optimisations from Appendix C, all implemented:
//  * negative base case (no edges left but ≥ 2 special edges),
//  * explicit fragment-root handling (Conn ⊆ ⋃λ(c) → c roots the fragment),
//  * allowed-edge sets A, reduced by comp_down's edges for the up-call,
//  * child-before-parent search order (balancedness is the rare property),
//  * λ(p) restricted to edges intersecting ⋃λ(c) (Theorem C.1),
//  * λ-labels must contain at least one edge of the current component.
//
// Beyond the paper's decision procedure, Decompose *constructs* the
// HD-fragment (Appendix A's soundness construction) and the top-level call
// returns a validated hypertree decomposition. One strengthening makes the
// stitched HD valid unconditionally: the up-call's allowed set additionally
// drops edges that dip into V(comp_down) \ χ(c). Any valid HD's upper labels
// avoid such edges anyway (their dipping vertices would have to lie in χ(c)
// by connectedness), so completeness is unaffected, and with the filter every
// λ-label above c is disjoint from the private vertices below c — exactly
// what the special condition needs at stitch time.
#pragma once

#include <memory>

#include "baselines/det_k_decomp.h"
#include "core/negative_cache.h"
#include "core/parallel_search.h"
#include "core/search_types.h"
#include "core/solver.h"
#include "decomp/components.h"

namespace htd {

/// Recursive engine; one instance per Solve call.
class LogKEngine {
 public:
  /// `fallback` (optional) is the hybrid's det-k engine: subproblems whose
  /// hybrid metric drops below options.hybrid_threshold are forwarded to it.
  /// `cache` (optional) is the negative subproblem cache that
  /// options.enable_cache switches on. A cross-instance subproblem store, if
  /// any, rides in on options.subproblem_store.
  LogKEngine(const Hypergraph& graph, SpecialEdgeRegistry& registry, int k,
             const SolveOptions& options, StatsCounters& stats,
             DetKEngine* fallback, ThreadBudget* budget,
             NegativeCache* cache = nullptr);

  SearchOutcome Decompose(const ExtendedSubhypergraph& comp,
                          const util::DynamicBitset& conn,
                          const util::DynamicBitset& allowed, int depth);

 private:
  SearchOutcome TryChildCandidate(const ExtendedSubhypergraph& comp,
                                  const util::DynamicBitset& conn,
                                  const util::DynamicBitset& allowed,
                                  const util::DynamicBitset& comp_vertices,
                                  const std::vector<int>& lambda_child, int depth);

  double MetricValue(const ExtendedSubhypergraph& comp) const;

  bool ShouldStop() const {
    return options_.cancel != nullptr && options_.cancel->ShouldStop();
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry& registry_;
  const int k_;
  const SolveOptions& options_;
  StatsCounters& stats_;
  DetKEngine* fallback_;
  ThreadBudget* budget_;
  NegativeCache* cache_;
};

/// HdSolver façade. With options.hybrid_metric == kNone this is plain
/// log-k-decomp; otherwise it is the paper's hybrid (log-k splits until the
/// metric drops below the threshold, then det-k finishes the subproblem).
class LogKDecomp : public HdSolver {
 public:
  explicit LogKDecomp(SolveOptions options = {}) : options_(std::move(options)) {}

  SolveResult Solve(const Hypergraph& graph, int k) override;
  std::string name() const override;

 private:
  SolveOptions options_;
};

}  // namespace htd
