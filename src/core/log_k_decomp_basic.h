// log-k-decomp, basic variant — a faithful transcription of Algorithm 1.
//
// Kept alongside the optimised Algorithm 2 implementation for two purposes:
//  * the ablation benchmark (how much the Appendix C optimisations buy),
//  * differential testing (both algorithms must agree on hw(H) ≤ k).
//
// This variant is a *decision procedure*, exactly as the paper presents it
// ("we have formulated algorithm log-k-decomp as a decision procedure", §4);
// use LogKDecomp for constructed, validated decompositions.
#pragma once

#include "core/search_types.h"
#include "core/solver.h"
#include "decomp/components.h"
#include "decomp/extended_subhypergraph.h"
#include "decomp/special_edges.h"

namespace htd {

class LogKDecompBasic : public HdSolver {
 public:
  explicit LogKDecompBasic(SolveOptions options = {}) : options_(std::move(options)) {}

  /// Decision only: on kYes, `decomposition` stays empty.
  SolveResult Solve(const Hypergraph& graph, int k) override;
  std::string name() const override { return "log-k-decomp-basic"; }

 private:
  SolveOptions options_;
};

}  // namespace htd
