#include "core/log_k_decomp.h"

#include <algorithm>
#include <optional>

#include "core/search_steps.h"
#include "decomp/validation.h"
#include "service/subproblem_store.h"
#include "util/combinations.h"
#include "util/timer.h"
#include "util/trace.h"

namespace htd {
namespace {

// Per-recursion-level separator-search spans are recorded down to this
// depth. The paper's bound makes depth logarithmic, so a handful of levels
// shows the whole shape; deeper calls are legion and would only churn the
// ring buffers.
constexpr int kMaxTracedDepth = 6;

// Models "the subproblems are independent of each other and are therefore
// processed in parallel" (§D.1) in partition-simulation mode: the effective
// cost of each sibling recursive call is measured, the set of costs is
// list-scheduled onto the virtual workers, and the effective counter
// collapses to the resulting makespan (plus any serial glue between calls).
// In real-thread mode this is a no-op.
class SiblingCollapse {
 public:
  SiblingCollapse(bool enabled, int workers)
      : enabled_(enabled && workers > 1),
        workers_(workers),
        base_(CurrentEffectiveSteps()),
        child_start_(base_) {}

  void BeginChild() { child_start_ = CurrentEffectiveSteps(); }
  void EndChild() { costs_.push_back(CurrentEffectiveSteps() - child_start_); }

  void Finish() {
    if (!enabled_ || costs_.size() < 2) return;
    std::vector<long> load(workers_, 0);
    for (long cost : costs_) {
      *std::min_element(load.begin(), load.end()) += cost;
    }
    long makespan = *std::max_element(load.begin(), load.end());
    long serial_glue = CurrentEffectiveSteps() - base_;
    for (long cost : costs_) serial_glue -= cost;
    CollapseEffectiveSteps(base_ + std::max<long>(serial_glue, 0) + makespan);
  }

 private:
  bool enabled_;
  int workers_;
  long base_;
  long child_start_;
  std::vector<long> costs_;
};

}  // namespace

LogKEngine::LogKEngine(const Hypergraph& graph, SpecialEdgeRegistry& registry, int k,
                       const SolveOptions& options, StatsCounters& stats,
                       DetKEngine* fallback, ThreadBudget* budget,
                       NegativeCache* cache)
    : graph_(graph),
      registry_(registry),
      k_(k),
      options_(options),
      stats_(stats),
      fallback_(fallback),
      budget_(budget),
      cache_(cache) {
  HTD_CHECK_GE(k, 1);
}

double LogKEngine::MetricValue(const ExtendedSubhypergraph& comp) const {
  switch (options_.hybrid_metric) {
    case HybridMetric::kNone:
      return 0.0;
    case HybridMetric::kEdgeCount:
      return static_cast<double>(comp.size());
    case HybridMetric::kWeightedCount: {
      // |E(H')| * k / avg-arity (§D.2). Arity is averaged over the normal
      // edges; a subproblem of special edges only is trivially "simple".
      long arity_sum = 0;
      comp.edges.ForEach(
          [&](int e) { arity_sum += graph_.edge_vertex_list(e).size(); });
      double avg_arity = comp.edge_count > 0
                             ? static_cast<double>(arity_sum) / comp.edge_count
                             : 1.0;
      return static_cast<double>(comp.size()) * k_ / avg_arity;
    }
  }
  return 0.0;
}

SearchOutcome LogKEngine::Decompose(const ExtendedSubhypergraph& comp,
                                    const util::DynamicBitset& conn,
                                    const util::DynamicBitset& allowed, int depth) {
  stats_.recursive_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.UpdateMaxDepth(depth);
  if (ShouldStop()) return SearchOutcome::Stopped();

  // Hybrid switch (§D.2): hand simple subproblems to det-k-decomp.
  if (fallback_ != nullptr && options_.hybrid_metric != HybridMetric::kNone &&
      MetricValue(comp) < options_.hybrid_threshold) {
    stats_.detk_subproblems.fetch_add(1, std::memory_order_relaxed);
    return fallback_->Decompose(comp, conn, allowed, depth);
  }

  const util::DynamicBitset comp_vertices = VerticesOf(graph_, registry_, comp);

  // Base cases (Algorithm 2, lines 5-10).
  if (comp.edge_count <= k_ && comp.specials.empty()) {
    Fragment fragment;
    std::vector<int> lambda = comp.edges.ToVector();
    if (lambda.empty()) return SearchOutcome::Found(Fragment());
    int root = fragment.AddNode(std::move(lambda), comp_vertices);
    fragment.SetRoot(root);
    return SearchOutcome::Found(std::move(fragment));
  }
  if (comp.edge_count == 0 && comp.specials.size() == 1) {
    Fragment fragment;
    int special = comp.specials[0];
    int root = fragment.AddSpecialLeaf(special, registry_.vertices(special));
    fragment.SetRoot(root);
    return SearchOutcome::Found(std::move(fragment));
  }
  if (comp.edge_count == 0) return SearchOutcome::NotFound();  // ≥ 2 specials

  // Negative cache: a recorded failure with an allowed-set ⊇ ours dominates
  // this search (soundness argument in core/negative_cache.h).
  if (cache_ != nullptr && cache_->ContainsDominating(comp, conn, allowed)) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return SearchOutcome::NotFound();
  }

  // Cross-instance subproblem store: canonical dominance lookup, and the key
  // is kept for the post-search insert (service/subproblem_store.h).
  service::SubproblemStore* store = options_.subproblem_store;
  std::optional<service::SubproblemStore::Key> store_key;
  if (store != nullptr && store->ShouldProbe(comp)) {
    store_key = service::SubproblemStore::MakeKey(graph_, registry_, comp, conn,
                                                  allowed, k_);
    Fragment reusable;
    switch (store->Lookup(*store_key, graph_, &reusable)) {
      case service::SubproblemStore::Hit::kNegative:
        stats_.store_negative_hits.fetch_add(1, std::memory_order_relaxed);
        // Mirror into the per-run cache: revisits of this subproblem then
        // answer from a local hash probe instead of re-canonicalising.
        if (cache_ != nullptr) cache_->Insert(comp, conn, allowed);
        return SearchOutcome::NotFound();
      case service::SubproblemStore::Hit::kPositive:
        stats_.store_positive_hits.fetch_add(1, std::memory_order_relaxed);
        return SearchOutcome::Found(std::move(reusable));
      case service::SubproblemStore::Hit::kMiss:
        break;
    }
  }

  // Candidate λ(c) edges: allowed edges touching the component, with the
  // component's own edges first so that the first-element bound enforces
  // λ(c) ∩ H'.E ≠ ∅ (Algorithm 2, line 11).
  std::vector<int> candidates;
  allowed.ForEach([&](int e) {
    if (comp.edges.Test(e)) candidates.push_back(e);
  });
  const int num_new = static_cast<int>(candidates.size());
  allowed.ForEach([&](int e) {
    if (!comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(comp_vertices)) {
      candidates.push_back(e);
    }
  });
  const int n = static_cast<int>(candidates.size());

  // ChildLoop, possibly parallel over (size, first-element) chunks. Real
  // parallelism needs a task group to spawn into (Solve opens one when the
  // scheduler didn't lend a flight group); the budget bounds how many slot
  // tasks this solve offers across all its concurrent search levels.
  int extra = 0;
  int simulate_workers = 1;
  if (options_.num_threads > 1 && comp.size() >= options_.parallel_min_size) {
    if (options_.simulate_partition) {
      simulate_workers = options_.num_threads;
    } else if (budget_ != nullptr && options_.task_group != nullptr) {
      extra = budget_->Claim(options_.num_threads - 1);
    }
  }
  // The per-recursion-level span: one "sep_search" per Decompose call near
  // the top of the tree, tagged with its depth — /v1/trace shows the
  // paper's log-depth recursion directly.
  util::TraceScope sep_span(
      "sep_search",
      depth <= kMaxTracedDepth
          ? util::TraceParent{options_.trace_parent, options_.trace_root}
          : util::TraceParent{},
      static_cast<uint64_t>(depth));
  SearchOutcome outcome = DriveCandidates(
      n, k_, num_new, extra, options_.task_group, simulate_workers, stats_,
      [&](const std::vector<int>& subset) {
        std::vector<int> lambda_child;
        lambda_child.reserve(subset.size());
        for (int idx : subset) lambda_child.push_back(candidates[idx]);
        return TryChildCandidate(comp, conn, allowed, comp_vertices, lambda_child,
                                 depth);
      },
      util::TraceParent{sep_span.id(), sep_span.root()});
  if (budget_ != nullptr) budget_->Release(extra);
  if (cache_ != nullptr && outcome.status == SearchStatus::kNotFound) {
    cache_->Insert(comp, conn, allowed);
  }
  // Definitive outcomes feed the shared store; kStopped says nothing.
  if (store_key.has_value()) {
    if (outcome.status == SearchStatus::kNotFound) {
      store->InsertNegative(*store_key);
    } else if (outcome.status == SearchStatus::kFound) {
      store->InsertPositive(*store_key, graph_, outcome.fragment);
    }
  }
  return outcome;
}

SearchOutcome LogKEngine::TryChildCandidate(const ExtendedSubhypergraph& comp,
                                            const util::DynamicBitset& conn,
                                            const util::DynamicBitset& allowed,
                                            const util::DynamicBitset& comp_vertices,
                                            const std::vector<int>& lambda_child,
                                            int depth) {
  if (ShouldStop()) return SearchOutcome::Stopped();
  stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
  AddSearchStep();
  const int total = comp.size();

  const util::DynamicBitset child_union = graph_.UnionOfEdges(lambda_child);
  // Balancedness of c (Algorithm 2, lines 12-14): every [λ(c)]-component of
  // H' must have size ≤ |H'|/2 — the over-approximation of χ(c) by ⋃λ(c)
  // discussed in App. C ("searching for child nodes first").
  ComponentSplit child_split =
      SplitComponents(graph_, registry_, comp, child_union);
  if (child_split.MaxComponentSize() * 2 > total) return SearchOutcome::NotFound();

  const bool simulate = options_.simulate_partition && options_.num_threads > 1 &&
                        comp.size() >= options_.parallel_min_size;

  // Root case (lines 15-21): if ⋃λ(c) covers the interface, c can root this
  // fragment; χ(c) = ⋃λ(c) ∩ V(H').
  if (conn.IsSubsetOf(child_union)) {
    util::DynamicBitset chi_child = child_union & comp_vertices;
    Fragment fragment;
    int root = fragment.AddNode(lambda_child, chi_child);
    fragment.SetRoot(root);
    bool failed = false;
    SiblingCollapse collapse(simulate, options_.num_threads);
    for (size_t i = 0; i < child_split.components.size() && !failed; ++i) {
      util::DynamicBitset child_conn =
          child_split.component_vertices[i] & chi_child;
      collapse.BeginChild();
      SearchOutcome sub = Decompose(child_split.components[i], child_conn, allowed,
                                    depth + 1);
      collapse.EndChild();
      if (sub.status == SearchStatus::kStopped) return sub;
      if (sub.status == SearchStatus::kNotFound) {
        failed = true;
        break;
      }
      fragment.Graft(sub.fragment, root);
    }
    collapse.Finish();
    if (!failed) {
      // Special edges fully covered by χ(c) become leaf children of c
      // (Definition 3.3, conditions 2b/5).
      for (int s : child_split.covered.specials) {
        int leaf = fragment.AddSpecialLeaf(s, registry_.vertices(s));
        fragment.AddChild(root, leaf);
      }
      return SearchOutcome::Found(std::move(fragment));
    }
    // Fall through to the parent search: the algorithm as printed skips it
    // when Conn ⊆ ⋃λ(c), but trying (p, c) pairs as well only enlarges the
    // searched space, so completeness is certainly preserved.
  }

  // ParentLoop (lines 22-43). λ(p) candidates: allowed edges that intersect
  // ⋃λ(c) (Theorem C.1), component edges first (λ(p) ∩ H'.E ≠ ∅).
  std::vector<int> parent_candidates;
  allowed.ForEach([&](int e) {
    if (comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(child_union)) {
      parent_candidates.push_back(e);
    }
  });
  const int parent_new = static_cast<int>(parent_candidates.size());
  allowed.ForEach([&](int e) {
    if (!comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(child_union) &&
        graph_.edge_vertices(e).Intersects(comp_vertices)) {
      parent_candidates.push_back(e);
    }
  });
  const int parent_n = static_cast<int>(parent_candidates.size());

  // The ParentLoop body for one λ(p) candidate (lines 23-43).
  auto try_parent = [&](const std::vector<int>& subset) -> SearchOutcome {
    if (ShouldStop()) return SearchOutcome::Stopped();
    stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
    AddSearchStep();
    std::vector<int> lambda_parent;
    lambda_parent.reserve(subset.size());
    for (int idx : subset) lambda_parent.push_back(parent_candidates[idx]);
    const util::DynamicBitset parent_union = graph_.UnionOfEdges(lambda_parent);

    // Lines 23-27: the unique oversized [λ(p)]-component becomes comp_down
    // (the component the subtree T_c must cover).
    ComponentSplit parent_split =
        SplitComponents(graph_, registry_, comp, parent_union);
    int down_index = parent_split.FindOversized(total);
    if (down_index < 0) return SearchOutcome::NotFound();
    const ExtendedSubhypergraph& comp_down = parent_split.components[down_index];
    const util::DynamicBitset& down_vertices =
        parent_split.component_vertices[down_index];

    // Line 29: interface vertices inside comp_down must be covered by λ(p).
    if (!(down_vertices & conn).IsSubsetOf(parent_union)) {
      return SearchOutcome::NotFound();
    }
    // Line 28: χ(c) = ⋃λ(c) ∩ V(comp_down) (normal-form condition 3).
    util::DynamicBitset chi_child = child_union & down_vertices;
    if (chi_child.None()) return SearchOutcome::NotFound();
    // Line 31: connectedness between p and c.
    if (!(down_vertices & parent_union).IsSubsetOf(chi_child)) {
      return SearchOutcome::NotFound();
    }

    // [χ(c)]-components of comp_down (== its [λ(c)]-components, Cor. 3.8).
    ComponentSplit down_split =
        SplitComponents(graph_, registry_, comp_down, chi_child);
    // Balancedness re-check (Algorithm 1, line 29): guarantees the halving
    // invariant unconditionally; the normal-form witness always passes.
    if (down_split.MaxComponentSize() * 2 > total) return SearchOutcome::NotFound();

    // Recursive calls for the components below c and for the "up" problem —
    // all independent subproblems (processed in parallel per §D.1; the
    // collapse models that in simulation mode).
    SiblingCollapse collapse(simulate, options_.num_threads);
    std::vector<Fragment> below;
    below.reserve(down_split.components.size());
    for (size_t i = 0; i < down_split.components.size(); ++i) {
      util::DynamicBitset sub_conn = down_split.component_vertices[i] & chi_child;
      collapse.BeginChild();
      SearchOutcome sub =
          Decompose(down_split.components[i], sub_conn, allowed, depth + 1);
      collapse.EndChild();
      if (sub.status == SearchStatus::kStopped) return sub;
      if (sub.status == SearchStatus::kNotFound) {
        collapse.Finish();
        return SearchOutcome::NotFound();  // reject this parent
      }
      below.push_back(std::move(sub.fragment));
    }

    // The "up" problem: H' \ comp_down plus χ(c) as a fresh special edge
    // (lines 38-39).
    int special_id = registry_.Add(chi_child, lambda_child);
    ExtendedSubhypergraph comp_up;
    comp_up.edges = comp.edges - comp_down.edges;
    comp_up.edge_count = comp.edge_count - comp_down.edge_count;
    for (int s : comp.specials) {
      if (std::find(comp_down.specials.begin(), comp_down.specials.end(), s) ==
          comp_down.specials.end()) {
        comp_up.specials.push_back(s);
      }
    }
    comp_up.specials.push_back(special_id);  // ids increase: stays sorted

    // Allowed edges for the up-call (line 40) — minus comp_down's edges,
    // and minus any edge dipping into comp_down's private vertices
    // V(comp_down) \ χ(c) (see the header comment: keeps the special
    // condition intact at stitch time; completeness unaffected).
    util::DynamicBitset private_below = down_vertices - chi_child;
    util::DynamicBitset allowed_up = allowed - comp_down.edges;
    std::vector<int> to_remove;
    allowed_up.ForEach([&](int e) {
      if (graph_.edge_vertices(e).Intersects(private_below)) to_remove.push_back(e);
    });
    for (int e : to_remove) allowed_up.Reset(e);

    collapse.BeginChild();
    SearchOutcome up = Decompose(comp_up, conn, allowed_up, depth + 1);
    collapse.EndChild();
    collapse.Finish();
    if (up.status == SearchStatus::kStopped) return up;
    if (up.status == SearchStatus::kNotFound) {
      return SearchOutcome::NotFound();  // reject this parent
    }

    // Stitch (Appendix A): the up-fragment's leaf for χ(c) becomes node c;
    // covered specials of comp_down and the below-fragments hang under it.
    Fragment fragment = std::move(up.fragment);
    int leaf = fragment.FindSpecialLeaf(special_id);
    HTD_CHECK_GE(leaf, 0) << "up-fragment lost its interface leaf";
    fragment.ReplaceSpecialLeaf(leaf, lambda_child);
    for (int s : down_split.covered.specials) {
      int special_leaf = fragment.AddSpecialLeaf(s, registry_.vertices(s));
      fragment.AddChild(leaf, special_leaf);
    }
    for (const Fragment& child : below) {
      fragment.Graft(child, leaf);
    }
    return SearchOutcome::Found(std::move(fragment));
  };

  // The pair search over λ(p) shares the separator search's partitioning
  // (the paper's parallelisation covers the whole (p, c) pair space); here
  // it is driven sequentially and contributes to the partition simulation.
  return DriveCandidates(parent_n, k_, parent_new, /*extra_workers=*/0,
                         /*group=*/nullptr, simulate ? options_.num_threads : 1,
                         stats_, try_parent);
}

SolveResult LogKDecomp::Solve(const Hypergraph& graph, int k) {
  util::WallTimer timer;
  SolveResult result;
  if (graph.num_edges() == 0) {
    result.outcome = Outcome::kYes;
    result.decomposition = Decomposition();
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }
  StatsCounters counters;
  SpecialEdgeRegistry registry(graph.num_vertices());
  // Resolve the width hint against the executor and make sure a parallel
  // solve has a task group to spawn into: the scheduler lends a flight
  // group; standalone callers (tests, benches, CLI) get a root group on
  // the global executor. num_threads == 0 means "as wide as the fleet".
  SolveOptions options = options_;
  if (options.num_threads <= 0) {
    options.num_threads = options.task_group != nullptr
                              ? options.task_group->executor().num_workers()
                              : util::Executor::Global().num_workers();
  }
  std::unique_ptr<util::TaskGroup> own_group;
  if (options.num_threads > 1 && !options.simulate_partition &&
      options.task_group == nullptr) {
    own_group = std::make_unique<util::TaskGroup>(util::Executor::Global(),
                                                  options.cancel);
    options.task_group = own_group.get();
  }
  ThreadBudget budget(options.num_threads - 1);
  std::unique_ptr<DetKEngine> fallback;
  if (options.hybrid_metric != HybridMetric::kNone) {
    fallback = std::make_unique<DetKEngine>(graph, registry, k, options, counters);
  }
  std::unique_ptr<NegativeCache> cache;
  if (options.enable_cache) {
    cache = std::make_unique<NegativeCache>(options.cache_shards);
  }
  LogKEngine engine(graph, registry, k, options, counters, fallback.get(), &budget,
                    cache.get());

  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset empty_conn(graph.num_vertices());
  const long steps_before = CurrentSearchSteps();
  const long effective_before = CurrentEffectiveSteps();
  SearchOutcome outcome = engine.Decompose(full, empty_conn, graph.AllEdges(), 0);

  result.stats = counters.Snapshot();
  result.stats.seconds = timer.ElapsedSeconds();
  if (options.simulate_partition) {
    // Whole-solve partition metric: raw work vs modelled critical path, with
    // Brent's bound work/T as the floor (see search_steps.h).
    long total = CurrentSearchSteps() - steps_before;
    long effective = CurrentEffectiveSteps() - effective_before;
    long floor = (total + options.num_threads - 1) / std::max(1, options.num_threads);
    result.stats.work_total = total;
    result.stats.work_parallel = std::max(effective, floor);
    CollapseEffectiveSteps(effective_before + result.stats.work_parallel);
  }
  switch (outcome.status) {
    case SearchStatus::kStopped:
      result.outcome = Outcome::kCancelled;
      break;
    case SearchStatus::kNotFound:
      result.outcome = Outcome::kNo;
      break;
    case SearchStatus::kFound: {
      result.outcome = Outcome::kYes;
      result.decomposition = outcome.fragment.ToDecomposition();
      if (options_.validate_result) {
        Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
        if (!validation.ok) {
          result.outcome = Outcome::kError;
          result.decomposition.reset();
        }
      }
      break;
    }
  }
  return result;
}

std::string LogKDecomp::name() const {
  switch (options_.hybrid_metric) {
    case HybridMetric::kNone:
      return "log-k-decomp";
    case HybridMetric::kEdgeCount:
      return "log-k-hybrid(EdgeCount)";
    case HybridMetric::kWeightedCount:
      return "log-k-hybrid(WeightedCount)";
  }
  return "log-k-decomp";
}

}  // namespace htd
