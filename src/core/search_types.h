// Internal tri-state result of recursive Decomp searches.
//
// Shared between log-k-decomp and det-k-decomp (the latter doubles as the
// hybrid's leaf solver, so both speak the same fragment protocol).
#pragma once

#include <utility>

#include "decomp/fragment.h"

namespace htd {

enum class SearchStatus {
  kFound,     ///< HD-fragment of width ≤ k exists (attached)
  kNotFound,  ///< search space exhausted, no fragment exists
  kStopped,   ///< cancelled — no statement about existence
};

struct SearchOutcome {
  SearchStatus status = SearchStatus::kNotFound;
  Fragment fragment;  ///< valid iff status == kFound

  static SearchOutcome Found(Fragment fragment) {
    SearchOutcome outcome;
    outcome.status = SearchStatus::kFound;
    outcome.fragment = std::move(fragment);
    return outcome;
  }
  static SearchOutcome NotFound() { return SearchOutcome{}; }
  static SearchOutcome Stopped() {
    SearchOutcome outcome;
    outcome.status = SearchStatus::kStopped;
    return outcome;
  }
};

}  // namespace htd
