#include "core/hybrid.h"

namespace htd {

std::unique_ptr<HdSolver> MakeHybridSolver(HybridMetric metric, double threshold,
                                           SolveOptions base) {
  base.hybrid_metric = metric;
  base.hybrid_threshold = threshold;
  return std::make_unique<LogKDecomp>(std::move(base));
}

std::unique_ptr<HdSolver> MakeDefaultHybrid(SolveOptions base) {
  return MakeHybridSolver(HybridMetric::kWeightedCount,
                          kDefaultWeightedCountThreshold, std::move(base));
}

}  // namespace htd
