// Thread-local search-step accounting for the parallel-scaling metric.
//
// A "step" is one candidate separator examined, anywhere in the recursion
// (log-k child or parent candidates, det-k candidates inside the hybrid).
// Two thread-local counters run in parallel:
//
//  * tls_search_steps   — raw work: every step, always.
//  * tls_effective_steps — modelled parallel time: in partition-simulation
//    mode (SolveOptions::simulate_partition), a nested separator search
//    collapses its contribution to the makespan its chunks would achieve on
//    num_threads virtual workers, so an ancestor candidate's cost reflects
//    what a parallel execution of the subtree would have taken. The ratio
//    effective/raw over a whole solve estimates the critical path of the
//    paper's no-communication parallelisation (§5.2 / §D.1).
//
// DriveCandidates snapshots the executing thread's counters around each
// top-level candidate, so a candidate's *entire nested cost* — including
// recursive Decompose calls and det-k leaf work — is credited to the worker
// (real or virtual) that ran it.
#pragma once

namespace htd {

inline thread_local long tls_search_steps = 0;
inline thread_local long tls_effective_steps = 0;

inline void AddSearchStep() {
  ++tls_search_steps;
  ++tls_effective_steps;
}
inline long CurrentSearchSteps() { return tls_search_steps; }
inline long CurrentEffectiveSteps() { return tls_effective_steps; }
inline void CollapseEffectiveSteps(long value) { tls_effective_steps = value; }

}  // namespace htd
