#include "core/solver.h"

#include "util/timer.h"

namespace htd {

namespace {

void Accumulate(SolveStats& into, const SolveStats& from) {
  into.separators_tried += from.separators_tried;
  into.recursive_calls += from.recursive_calls;
  into.max_recursion_depth =
      std::max(into.max_recursion_depth, from.max_recursion_depth);
  into.cache_hits += from.cache_hits;
  into.detk_subproblems += from.detk_subproblems;
  into.store_negative_hits += from.store_negative_hits;
  into.store_positive_hits += from.store_positive_hits;
  into.work_total += from.work_total;
  into.work_parallel += from.work_parallel;
}

}  // namespace

OptimalRun FindOptimalWidth(HdSolver& solver, const Hypergraph& graph, int max_k) {
  util::WallTimer timer;
  OptimalRun run;
  for (int k = 1; k <= max_k; ++k) {
    SolveResult result = solver.Solve(graph, k);
    Accumulate(run.stats, result.stats);
    if (result.outcome == Outcome::kYes) {
      run.outcome = Outcome::kYes;
      run.width = k;
      run.decomposition = std::move(result.decomposition);
      run.seconds = timer.ElapsedSeconds();
      return run;
    }
    if (result.outcome != Outcome::kNo) {
      run.outcome = result.outcome;  // cancelled or error
      run.seconds = timer.ElapsedSeconds();
      return run;
    }
  }
  run.outcome = Outcome::kNo;  // width exceeds max_k
  run.seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace htd
